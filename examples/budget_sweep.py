"""Sweep the investment budget and watch the redemption rate respond.

A compact version of the paper's Fig. 6(a)-(b): the script sweeps B_inv on a
scaled-down Facebook-like dataset, runs S3CA and the IM-U/PM-U baselines at
each budget, and prints one series per algorithm for the redemption rate and
the total expected benefit.

Run with::

    python examples/budget_sweep.py [--budgets 100 200 400]
"""

from __future__ import annotations

import argparse

from repro.core.s3ca import S3CA
from repro.baselines.coupon_wrappers import make_im_u, make_pm_u
from repro.experiments.config import AlgorithmSpec, ExperimentConfig
from repro.experiments.reporting import format_series
from repro.experiments.sweeps import sweep_budget


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budgets", type=float, nargs="+", default=[80, 160, 320])
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--samples", type=int, default=50)
    parser.add_argument("--seed", type=int, default=2019)
    args = parser.parse_args()

    config = ExperimentConfig(
        dataset="facebook",
        scale=args.scale,
        num_samples=args.samples,
        seed=args.seed,
        candidate_limit=8,
        max_pivot_candidates=25,
    )
    algorithms = [
        AlgorithmSpec("IM-U", lambda sc, est, seed: make_im_u(sc, estimator=est)),
        AlgorithmSpec("PM-U", lambda sc, est, seed: make_pm_u(sc, estimator=est)),
        AlgorithmSpec(
            "S3CA",
            lambda sc, est, seed: S3CA(
                sc, estimator=est, candidate_limit=8, max_pivot_candidates=25,
                max_paths_per_seed=40,
            ),
        ),
    ]

    results = sweep_budget(
        config,
        args.budgets,
        metrics=("redemption_rate", "expected_benefit"),
        algorithms=algorithms,
    )

    print(format_series(
        results["redemption_rate"], x_label="budget",
        title="Redemption rate vs investment budget (Fig. 6(a) analogue)",
    ))
    print()
    print(format_series(
        results["expected_benefit"], x_label="budget",
        title="Total expected benefit vs investment budget (Fig. 6(b) analogue)",
    ))


if __name__ == "__main__":
    main()
