"""Quickstart: solve a small S3CRM instance with S3CA.

Run with::

    python examples/quickstart.py

The example builds the packaged 8-node toy scenario (two communities joined by
a bridge, with the high-benefit users sitting behind the bridge), runs S3CA
and prints the selected seeds, the coupon allocation and the headline metrics,
then compares the result against the IM-U baseline.
"""

from __future__ import annotations

from repro import S3CA, MonteCarloEstimator, toy_scenario
from repro.baselines.coupon_wrappers import make_im_u
from repro.experiments.reporting import format_table


def main() -> None:
    scenario = toy_scenario()
    print(scenario.describe())
    print()

    # One shared estimator so S3CA and the baseline are scored on the same
    # Monte-Carlo worlds.
    estimator = MonteCarloEstimator(scenario.graph, num_samples=300, seed=7)

    s3ca_result = S3CA(scenario, estimator=estimator).solve()
    print("S3CA selected seeds:     ", sorted(map(str, s3ca_result.seeds)))
    print("S3CA coupon allocation:  ", dict(sorted(s3ca_result.allocation.items())))
    print(f"S3CA expected benefit:    {s3ca_result.expected_benefit:.3f}")
    print(f"S3CA total cost:          {s3ca_result.total_cost:.3f}")
    print(f"S3CA redemption rate:     {s3ca_result.redemption_rate:.3f}")
    print()

    baseline = make_im_u(scenario, estimator=estimator).run()

    rows = [
        {
            "algorithm": "S3CA",
            "redemption_rate": s3ca_result.redemption_rate,
            "expected_benefit": s3ca_result.expected_benefit,
            "total_cost": s3ca_result.total_cost,
        },
        {
            "algorithm": baseline.name,
            "redemption_rate": baseline.redemption_rate,
            "expected_benefit": baseline.expected_benefit,
            "total_cost": baseline.total_cost,
        },
    ]
    print(format_table(rows, title="S3CA vs the IM-U baseline on the toy scenario"))


if __name__ == "__main__":
    main()
