"""Dropbox-style referral campaign on a synthetic Facebook-like network.

The scenario mirrors the paper's motivating example: a company hands out
storage-upgrade coupons (uniform SC cost), users' benefits follow the normal
setting of the evaluation, and seed costs grow with the number of friends.
The script compares S3CA against the two real-world coupon policies the paper
evaluates — the limited strategy (Dropbox's 32 coupons per user, attached to
the IM seed selector) and the unlimited strategy — and prints the paper's four
headline metrics for each.

Run with::

    python examples/dropbox_campaign.py [--nodes 150] [--budget 300]
"""

from __future__ import annotations

import argparse

from repro import S3CA, MonteCarloEstimator
from repro.baselines.coupon_wrappers import make_im_l, make_im_u, make_pm_l, make_pm_u
from repro.experiments.datasets import build_scenario
from repro.experiments.metrics import average_farthest_hop, seed_sc_rate
from repro.experiments.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5,
                        help="dataset scale factor (0.5 = ~150 users)")
    parser.add_argument("--budget", type=float, default=None,
                        help="investment budget (default: dataset default)")
    parser.add_argument("--samples", type=int, default=100,
                        help="Monte-Carlo worlds for the estimator")
    parser.add_argument("--seed", type=int, default=2019)
    args = parser.parse_args()

    scenario = build_scenario(
        "facebook", scale=args.scale, budget=args.budget, seed=args.seed
    )
    print(scenario.describe())
    estimator = MonteCarloEstimator(
        scenario.graph, num_samples=args.samples, seed=args.seed
    )

    algorithms = {
        "IM-U": make_im_u(scenario, estimator=estimator),
        "IM-L": make_im_l(scenario, coupons_per_user=32, estimator=estimator),
        "PM-U": make_pm_u(scenario, estimator=estimator),
        "PM-L": make_pm_l(scenario, coupons_per_user=32, estimator=estimator),
        "S3CA": S3CA(
            scenario, estimator=estimator, candidate_limit=20, max_pivot_candidates=60
        ),
    }

    rows = []
    for name, algorithm in algorithms.items():
        raw = algorithm.run() if hasattr(algorithm, "run") else algorithm.solve()
        deployment = raw.deployment
        rows.append(
            {
                "algorithm": name,
                "redemption_rate": (
                    raw.redemption_rate
                    if hasattr(raw, "redemption_rate")
                    else deployment.redemption_rate(estimator)
                ),
                "expected_benefit": deployment.expected_benefit(estimator),
                "total_cost": deployment.total_cost(),
                "seed_sc_rate": seed_sc_rate(deployment),
                "farthest_hop": average_farthest_hop(
                    scenario.graph, deployment, samples=50, rng=args.seed
                ),
            }
        )

    print()
    print(format_table(rows, title="Dropbox-style campaign: S3CA vs coupon-policy baselines"))


if __name__ == "__main__":
    main()
