"""Case study: Airbnb vs Booking referral policies under varying gross margin.

Reproduces the setting of the paper's Sec. VI-C (Fig. 8) at example scale:
real SC costs and per-user coupon caps from the two referral programs, the
85/10/5 adoption model damping influence probabilities, and benefits derived
from the SC cost through a swept gross margin.  For each margin the script
prints the redemption rate and seed-vs-SC spending split of S3CA and the
PM-L baseline.

Run with::

    python examples/airbnb_case_study.py [--policy airbnb|booking]
"""

from __future__ import annotations

import argparse

from repro.core.s3ca import S3CA
from repro.experiments.case_study import AIRBNB, BOOKING, case_study_series, run_case_study
from repro.experiments.config import AlgorithmSpec, ExperimentConfig
from repro.experiments.reporting import format_series


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--policy", choices=("airbnb", "booking"), default="airbnb")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--samples", type=int, default=60)
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument(
        "--margins", type=float, nargs="+", default=[0.2, 0.4, 0.6, 0.8]
    )
    args = parser.parse_args()

    policy = AIRBNB if args.policy == "airbnb" else BOOKING
    config = ExperimentConfig(
        dataset="facebook",
        scale=args.scale,
        num_samples=args.samples,
        seed=args.seed,
        candidate_limit=10,
        max_pivot_candidates=30,
        limited_coupons=policy.coupons_per_user,
    )

    def s3ca_factory(scenario, estimator, seed):
        return S3CA(
            scenario,
            estimator=estimator,
            candidate_limit=10,
            max_pivot_candidates=30,
            max_paths_per_seed=50,
        )

    from repro.baselines.coupon_wrappers import make_pm_l

    algorithms = [
        AlgorithmSpec("S3CA", s3ca_factory),
        AlgorithmSpec(
            "PM-L",
            lambda scenario, estimator, seed: make_pm_l(
                scenario, coupons_per_user=policy.coupons_per_user, estimator=estimator
            ),
        ),
    ]

    print(f"Case study for the {policy.name} policy "
          f"(SC cost {policy.sc_cost:g}, {policy.coupons_per_user} coupons/user)")
    results = run_case_study(policy, args.margins, config, algorithms=algorithms)

    print()
    print(format_series(
        case_study_series(results, "redemption_rate"),
        x_label="gross_margin",
        title="Redemption rate vs gross margin (Fig. 8(a)/(c) analogue)",
    ))
    print()
    print(format_series(
        case_study_series(results, "seed_sc_rate"),
        x_label="gross_margin",
        title="Seed-SC spending split vs gross margin (Fig. 8(b)/(d) analogue)",
    ))


if __name__ == "__main__":
    main()
