"""Tests for the benefit models."""

import pytest

from repro.economics.benefits import (
    assign_gross_margin_benefits,
    assign_normal_benefits,
    assign_uniform_benefits,
    benefit_cost_ratio,
    seed_cost_benefit_ratio,
)
from repro.economics.costs import assign_uniform_sc_costs, assign_uniform_seed_costs
from repro.graph.generators import erdos_renyi_graph, star_graph


def test_normal_benefits_deterministic_with_seed():
    first = erdos_renyi_graph(20, 0.1, seed=1)
    second = erdos_renyi_graph(20, 0.1, seed=1)
    assign_normal_benefits(first, 10.0, 2.0, seed=5)
    assign_normal_benefits(second, 10.0, 2.0, seed=5)
    assert [first.benefit(n) for n in first.nodes()] == [
        second.benefit(n) for n in second.nodes()
    ]


def test_normal_benefits_close_to_mean():
    graph = erdos_renyi_graph(400, 0.01, seed=2)
    assign_normal_benefits(graph, 10.0, 2.0, seed=3)
    mean = graph.total_benefit() / graph.num_nodes
    assert 9.0 < mean < 11.0


def test_normal_benefits_truncated_at_minimum():
    graph = star_graph(50)
    assign_normal_benefits(graph, 1.0, 50.0, seed=4, minimum=0.0)
    assert all(graph.benefit(node) >= 0.0 for node in graph.nodes())


def test_normal_benefits_invalid_parameters():
    graph = star_graph(2)
    with pytest.raises(ValueError):
        assign_normal_benefits(graph, -1.0, 1.0)
    with pytest.raises(ValueError):
        assign_normal_benefits(graph, 1.0, -1.0)


def test_uniform_benefits():
    graph = star_graph(3)
    assign_uniform_benefits(graph, 6.0)
    assert all(graph.benefit(node) == 6.0 for node in graph.nodes())


def test_gross_margin_benefits():
    graph = star_graph(3)
    assign_uniform_sc_costs(graph, 50.0)
    assign_gross_margin_benefits(graph, 0.6)
    assert all(graph.benefit(node) == pytest.approx(125.0) for node in graph.nodes())


def test_gross_margin_out_of_range_rejected():
    graph = star_graph(2)
    assign_uniform_sc_costs(graph, 1.0)
    with pytest.raises(ValueError):
        assign_gross_margin_benefits(graph, 1.0)
    with pytest.raises(ValueError):
        assign_gross_margin_benefits(graph, -0.1)


def test_ratio_helpers():
    graph = star_graph(3)
    assign_uniform_benefits(graph, 4.0)
    assign_uniform_sc_costs(graph, 2.0)
    assign_uniform_seed_costs(graph, 8.0)
    assert benefit_cost_ratio(graph) == pytest.approx(2.0)
    assert seed_cost_benefit_ratio(graph) == pytest.approx(2.0)


def test_ratio_helpers_reject_zero_denominators():
    graph = star_graph(2)
    with pytest.raises(ValueError):
        benefit_cost_ratio(graph)
    with pytest.raises(ValueError):
        seed_cost_benefit_ratio(graph)
