"""Tests for the Budget ledger."""

import pytest

from repro.economics.budget import Budget
from repro.exceptions import BudgetError


def test_basic_spend_and_remaining():
    budget = Budget(10.0)
    assert budget.remaining == 10.0
    budget.spend(4.0, "seed")
    assert budget.spent == 4.0
    assert budget.remaining == 6.0


def test_can_afford():
    budget = Budget(5.0)
    assert budget.can_afford(5.0)
    assert not budget.can_afford(5.1)
    budget.spend(3.0)
    assert budget.can_afford(2.0)
    assert not budget.can_afford(2.5)


def test_overspend_raises():
    budget = Budget(2.0)
    with pytest.raises(BudgetError):
        budget.spend(3.0)


def test_negative_amounts_rejected():
    budget = Budget(2.0)
    with pytest.raises(BudgetError):
        budget.spend(-1.0)
    with pytest.raises(BudgetError):
        budget.can_afford(-1.0)
    with pytest.raises(BudgetError):
        budget.refund(-1.0)


def test_refund_restores_capacity():
    budget = Budget(10.0)
    budget.spend(8.0, "coupons")
    budget.refund(3.0, "maneuver")
    assert budget.spent == 5.0
    assert budget.can_afford(5.0)


def test_refund_never_goes_negative():
    budget = Budget(10.0)
    budget.spend(1.0)
    budget.refund(5.0)
    assert budget.spent == 0.0


def test_entries_ledger():
    budget = Budget(10.0)
    budget.spend(2.0, "a")
    budget.refund(1.0, "b")
    assert budget.entries() == [("a", 2.0), ("b", -1.0)]


def test_reset():
    budget = Budget(10.0)
    budget.spend(5.0)
    budget.reset()
    assert budget.spent == 0.0
    assert budget.entries() == []


def test_copy_is_independent():
    budget = Budget(10.0)
    budget.spend(4.0)
    clone = budget.copy()
    clone.spend(2.0)
    assert budget.spent == 4.0
    assert clone.spent == 6.0


def test_invalid_limit_rejected():
    with pytest.raises(ValueError):
        Budget(0.0)
    with pytest.raises(ValueError):
        Budget(-5.0)


def test_tolerance_allows_rounding_error():
    budget = Budget(1.0)
    budget.spend(0.3)
    budget.spend(0.3)
    budget.spend(0.4)  # floating-point sum may slightly exceed 1.0
    assert budget.spent == pytest.approx(1.0)
