"""Tests for the case-study adoption model."""

import pytest

from repro.economics.adoption import AdoptionModel, AdoptionSegment
from repro.economics.costs import assign_uniform_sc_costs
from repro.graph.generators import erdos_renyi_graph, star_graph


def test_probabilities_in_unit_interval():
    graph = erdos_renyi_graph(50, 0.1, seed=1)
    assign_uniform_sc_costs(graph, 50.0)
    model = AdoptionModel(seed=2)
    probabilities = model.adoption_probabilities(graph)
    assert set(probabilities) == set(graph.nodes())
    assert all(0.0 <= p <= 1.0 for p in probabilities.values())


def test_zero_cost_users_always_adopt():
    graph = star_graph(3)
    assign_uniform_sc_costs(graph, 0.0)
    model = AdoptionModel(seed=1)
    assert all(p == 1.0 for p in model.adoption_probabilities(graph).values())


def test_deterministic_given_seed():
    graph = erdos_renyi_graph(30, 0.1, seed=3)
    assign_uniform_sc_costs(graph, 10.0)
    first = AdoptionModel(seed=7).adoption_probabilities(graph)
    second = AdoptionModel(seed=7).adoption_probabilities(graph)
    assert first == second


def test_apply_damps_edge_probabilities():
    graph = erdos_renyi_graph(40, 0.1, seed=4)
    assign_uniform_sc_costs(graph, 50.0)
    damped = AdoptionModel(seed=5).apply(graph)
    assert damped.num_edges == graph.num_edges
    for source, target, probability in damped.edges():
        assert probability <= graph.probability(source, target) + 1e-12


def test_apply_leaves_original_untouched():
    graph = star_graph(3)
    assign_uniform_sc_costs(graph, 50.0)
    original = dict(((s, t), p) for s, t, p in graph.edges())
    AdoptionModel(seed=1).apply(graph)
    assert dict(((s, t), p) for s, t, p in graph.edges()) == original


def test_segment_shares_must_sum_to_one():
    with pytest.raises(ValueError):
        AdoptionModel(
            segments=(
                AdoptionSegment(share=0.5, exponent=1.0),
                AdoptionSegment(share=0.3, exponent=2.0),
            )
        )


def test_default_segments_match_paper():
    shares = [segment.share for segment in AdoptionModel.DEFAULT_SEGMENTS]
    assert shares == [0.85, 0.10, 0.05]
