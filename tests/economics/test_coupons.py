"""Tests for the limited / unlimited coupon strategies."""

import pytest

from repro.economics.coupons import LimitedCouponStrategy, UnlimitedCouponStrategy
from repro.graph.generators import star_graph


def test_unlimited_gives_out_degree():
    graph = star_graph(4)
    strategy = UnlimitedCouponStrategy()
    assert strategy.allocation_for(graph, 0) == 4
    assert strategy.allocation_for(graph, 1) == 0
    assert strategy.name == "unlimited"


def test_limited_caps_at_constant():
    graph = star_graph(40)
    strategy = LimitedCouponStrategy(32)
    assert strategy.allocation_for(graph, 0) == 32


def test_limited_caps_at_out_degree():
    graph = star_graph(3)
    strategy = LimitedCouponStrategy(32)
    assert strategy.allocation_for(graph, 0) == 3
    assert strategy.allocation_for(graph, 2) == 0


def test_limited_name_includes_constant():
    assert LimitedCouponStrategy(10).name == "limited(10)"


def test_allocate_skips_zero_entries():
    graph = star_graph(3)
    strategy = LimitedCouponStrategy(2)
    allocation = strategy.allocate(graph, graph.nodes())
    assert allocation == {0: 2}


def test_negative_constant_rejected():
    with pytest.raises(ValueError):
        LimitedCouponStrategy(-1)


def test_zero_constant_allocates_nothing():
    graph = star_graph(3)
    strategy = LimitedCouponStrategy(0)
    assert strategy.allocate(graph, graph.nodes()) == {}
