"""Tests for the seed/SC cost models and the κ/λ rescaling knobs."""

import pytest

from repro.economics.benefits import assign_uniform_benefits
from repro.economics.costs import (
    assign_degree_proportional_seed_costs,
    assign_uniform_sc_costs,
    assign_uniform_seed_costs,
    scale_sc_costs_to_lambda,
    scale_seed_costs_to_kappa,
)
from repro.graph.generators import star_graph


def test_degree_proportional_seed_costs():
    graph = star_graph(4)
    assign_degree_proportional_seed_costs(graph, cost_per_friend=2.0, minimum_cost=1.0)
    assert graph.seed_cost(0) == 8.0
    assert all(graph.seed_cost(leaf) == 1.0 for leaf in range(1, 5))


def test_degree_proportional_minimum_applies():
    graph = star_graph(2)
    assign_degree_proportional_seed_costs(graph, cost_per_friend=0.1, minimum_cost=5.0)
    assert graph.seed_cost(0) == 5.0


def test_uniform_costs():
    graph = star_graph(3)
    assign_uniform_seed_costs(graph, 7.0)
    assign_uniform_sc_costs(graph, 3.0)
    assert all(graph.seed_cost(node) == 7.0 for node in graph.nodes())
    assert all(graph.sc_cost(node) == 3.0 for node in graph.nodes())


def test_negative_costs_rejected():
    graph = star_graph(2)
    with pytest.raises(ValueError):
        assign_uniform_seed_costs(graph, -1.0)
    with pytest.raises(ValueError):
        assign_uniform_sc_costs(graph, -1.0)


def test_scale_seed_costs_to_kappa():
    graph = star_graph(3)
    assign_uniform_benefits(graph, 10.0)
    assign_degree_proportional_seed_costs(graph)
    scale_seed_costs_to_kappa(graph, kappa=5.0)
    assert graph.total_seed_cost() / graph.total_benefit() == pytest.approx(5.0)


def test_scale_seed_costs_preserves_relative_profile():
    graph = star_graph(3)
    assign_uniform_benefits(graph, 10.0)
    assign_degree_proportional_seed_costs(graph)
    ratio_before = graph.seed_cost(0) / graph.seed_cost(1)
    scale_seed_costs_to_kappa(graph, kappa=2.0)
    assert graph.seed_cost(0) / graph.seed_cost(1) == pytest.approx(ratio_before)


def test_scale_sc_costs_to_lambda():
    graph = star_graph(3)
    assign_uniform_benefits(graph, 8.0)
    assign_uniform_sc_costs(graph, 1.0)
    scale_sc_costs_to_lambda(graph, lam=4.0)
    assert graph.total_benefit() / graph.total_sc_cost() == pytest.approx(4.0)


def test_scale_requires_positive_totals():
    graph = star_graph(2)
    assign_uniform_sc_costs(graph, 1.0)
    with pytest.raises(ValueError):
        scale_sc_costs_to_lambda(graph, 1.0)  # no benefits assigned yet
    assign_uniform_benefits(graph, 1.0)
    with pytest.raises(ValueError):
        scale_seed_costs_to_kappa(graph, 1.0)  # no seed costs assigned yet


def test_scale_rejects_non_positive_targets():
    graph = star_graph(2)
    assign_uniform_benefits(graph, 1.0)
    assign_uniform_seed_costs(graph, 1.0)
    with pytest.raises(ValueError):
        scale_seed_costs_to_kappa(graph, 0.0)
