"""Tests for Scenario and ScenarioBuilder."""

import pytest

from repro.economics.scenario import Scenario, ScenarioBuilder
from repro.exceptions import ScenarioError
from repro.graph.generators import erdos_renyi_graph, star_graph
from repro.graph.social_graph import SocialGraph


def build_basic(budget=50.0):
    graph = erdos_renyi_graph(30, 0.1, seed=1)
    return (
        ScenarioBuilder(graph, name="basic")
        .with_normal_benefits(10.0, 2.0, seed=1)
        .with_uniform_sc_costs(10.0)
        .with_degree_proportional_seed_costs()
        .with_budget(budget)
        .build()
    )


def test_builder_produces_scenario():
    scenario = build_basic()
    assert isinstance(scenario, Scenario)
    assert scenario.budget_limit == 50.0
    assert scenario.num_nodes == 30
    assert scenario.name == "basic"


def test_builder_requires_budget():
    graph = star_graph(3)
    builder = ScenarioBuilder(graph).with_uniform_benefits(1.0)
    with pytest.raises(ScenarioError):
        builder.build()


def test_builder_requires_benefits():
    graph = star_graph(3)
    builder = ScenarioBuilder(graph).with_budget(10.0)
    with pytest.raises(ScenarioError):
        builder.build()


def test_builder_does_not_mutate_input_graph():
    graph = star_graph(3)
    ScenarioBuilder(graph).with_uniform_benefits(9.0).with_budget(5.0).build()
    assert graph.benefit(0) == 0.0


def test_lambda_and_kappa_knobs():
    graph = erdos_renyi_graph(40, 0.1, seed=2)
    scenario = (
        ScenarioBuilder(graph)
        .with_normal_benefits(10.0, 2.0, seed=2)
        .with_uniform_sc_costs(5.0)
        .with_degree_proportional_seed_costs()
        .with_lambda(2.0)
        .with_kappa(10.0)
        .with_budget(100.0)
        .build()
    )
    assert scenario.lam() == pytest.approx(2.0)
    assert scenario.kappa() == pytest.approx(10.0)
    assert scenario.metadata["lambda"] == 2.0
    assert scenario.metadata["kappa"] == 10.0


def test_gross_margin_builder_path():
    graph = star_graph(4)
    scenario = (
        ScenarioBuilder(graph)
        .with_uniform_sc_costs(50.0)
        .with_gross_margin_benefits(0.5)
        .with_uniform_seed_costs(10.0)
        .with_budget(100.0)
        .build()
    )
    assert scenario.graph.benefit(0) == pytest.approx(100.0)


def test_scenario_rejects_empty_graph():
    with pytest.raises(ScenarioError):
        Scenario(graph=SocialGraph(), budget_limit=1.0)


def test_scenario_rejects_non_positive_budget():
    graph = star_graph(2)
    graph.add_node(0, benefit=1.0)
    with pytest.raises(ValueError):
        Scenario(graph=graph, budget_limit=0.0)


def test_budget_ledger_and_describe():
    scenario = build_basic(budget=20.0)
    ledger = scenario.budget()
    assert ledger.limit == 20.0
    assert "basic" in scenario.describe()
    assert "B_inv=20" in scenario.describe()


def test_metadata_passthrough():
    graph = star_graph(2)
    scenario = (
        ScenarioBuilder(graph)
        .with_uniform_benefits(1.0)
        .with_budget(5.0)
        .with_metadata(source="unit-test")
        .build()
    )
    assert scenario.metadata["source"] == "unit-test"
