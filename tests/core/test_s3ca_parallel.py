"""End-to-end determinism regression: parallel sharded S3CA == serial S3CA.

PR 2 locked the incremental ID phase to the eager reference path bit for bit;
this locks the sharded multiprocess estimator to the PR 2 serial path the same
way.  On a Fig. 9-style synthetic scenario, ``S3CA`` running with
``workers=2, shard_size=16`` must produce the same deployment, the same
benefit trace (every intermediate ID-phase snapshot) and the same reported
metrics as the serial resident-worlds run.
"""

import pytest

from repro.core.investment import InvestmentDeployment
from repro.core.s3ca import S3CA
from repro.diffusion.factory import make_estimator
from repro.experiments.scalability import synthetic_scenario

NUM_SAMPLES = 30
SEED = 2019


@pytest.fixture(scope="module")
def scenario():
    return synthetic_scenario(80, budget=60.0, seed=SEED)


def _solve(scenario, **estimator_knobs):
    result = S3CA(
        scenario,
        num_samples=NUM_SAMPLES,
        seed=SEED,
        candidate_limit=8,
        max_pivot_candidates=15,
        **estimator_knobs,
    ).solve()
    return result


def test_parallel_sharded_s3ca_matches_serial(scenario):
    serial = _solve(scenario)
    parallel = _solve(scenario, workers=2, shard_size=16)
    assert parallel.seeds == serial.seeds
    assert parallel.allocation == serial.allocation
    assert parallel.expected_benefit == serial.expected_benefit
    assert parallel.redemption_rate == serial.redemption_rate
    assert parallel.total_cost == serial.total_cost
    assert parallel.explored_nodes == serial.explored_nodes
    assert parallel.num_paths == serial.num_paths
    assert parallel.num_maneuvers == serial.num_maneuvers


def test_parallel_sharded_id_phase_benefit_trace_matches_serial(scenario):
    """Every intermediate greedy snapshot — the benefit trace — is identical."""
    def run(**knobs):
        estimator = make_estimator(
            scenario, num_samples=NUM_SAMPLES, seed=SEED, **knobs
        )
        try:
            result = InvestmentDeployment(
                scenario, estimator, candidate_limit=8, max_pivot_candidates=15
            ).run()
            trace = [
                (
                    tuple(sorted(snapshot.seeds, key=str)),
                    tuple(sorted(snapshot.allocation.as_dict().items(), key=str)),
                    snapshot.expected_benefit(estimator),
                )
                for snapshot in result.snapshots
            ]
            return result, trace
        finally:
            estimator.close()

    serial_result, serial_trace = run()
    parallel_result, parallel_trace = run(workers=2, shard_size=16)
    assert parallel_trace == serial_trace
    assert parallel_result.iterations == serial_result.iterations
    assert parallel_result.explored_nodes == serial_result.explored_nodes
