"""Additional GPI tests: interaction with realistic ID outputs."""

import pytest

from repro.core.guaranteed_paths import identify_guaranteed_paths
from repro.core.investment import InvestmentDeployment
from repro.core.s3ca import S3CA
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.experiments.datasets import build_scenario, toy_scenario


def test_gpi_on_toy_id_output():
    scenario = toy_scenario()
    estimator = MonteCarloEstimator(scenario.graph, num_samples=60, seed=2)
    id_result = InvestmentDeployment(scenario, estimator).run()
    paths = identify_guaranteed_paths(
        scenario.graph, id_result.deployment, scenario.budget_limit
    )
    for path in paths:
        # Every path is rooted at a selected seed and stays within the
        # remaining budget after paying for that seed.
        assert path.seed in id_result.deployment.seeds
        remaining = scenario.budget_limit - scenario.graph.seed_cost(path.seed)
        assert path.guaranteed_cost <= remaining + 1e-9
        assert path.terminal in path.nodes
        assert path.seed == path.nodes[0]


def test_gpi_allocation_counts_children():
    scenario = toy_scenario()
    estimator = MonteCarloEstimator(scenario.graph, num_samples=60, seed=2)
    id_result = InvestmentDeployment(scenario, estimator).run()
    paths = identify_guaranteed_paths(
        scenario.graph, id_result.deployment, scenario.budget_limit
    )
    for path in paths:
        # Total coupons equal the number of non-seed users on the path (each
        # visited child consumed exactly one coupon from its parent).
        assert path.total_coupons == len(path.nodes) - 1
        for node, count in path.allocation.items():
            assert count <= scenario.graph.out_degree(node)


def test_gpi_paths_used_by_full_s3ca_on_dataset():
    scenario = build_scenario("facebook", scale=0.08, seed=4)
    result = S3CA(
        scenario, num_samples=25, seed=4, candidate_limit=4,
        max_pivot_candidates=10, max_paths_per_seed=15,
    ).solve()
    assert result.num_paths >= 0
    assert result.total_cost <= scenario.budget_limit + 1e-6
