"""Tests for the S3CA orchestrator."""

import pytest

from repro.core.s3ca import S3CA, S3CAResult
from repro.diffusion.exact import ExactEstimator
from repro.diffusion.monte_carlo import MonteCarloEstimator


def test_solve_on_toy_scenario(toy):
    result = S3CA(toy, num_samples=80, seed=7).solve()
    assert isinstance(result, S3CAResult)
    assert result.redemption_rate > 0
    assert result.total_cost <= toy.budget_limit + 1e-9
    assert result.seeds
    assert result.expected_benefit > 0


def test_result_accounting_consistency(toy):
    result = S3CA(toy, num_samples=60, seed=1).solve()
    assert result.total_cost == pytest.approx(result.seed_cost + result.sc_cost)
    if result.total_cost > 0:
        assert result.redemption_rate == pytest.approx(
            result.expected_benefit / result.total_cost
        )


def test_deterministic_given_seed(toy):
    first = S3CA(toy, num_samples=60, seed=11).solve()
    second = S3CA(toy, num_samples=60, seed=11).solve()
    assert first.seeds == second.seeds
    assert first.allocation == second.allocation
    assert first.redemption_rate == pytest.approx(second.redemption_rate)


def test_allocation_respects_out_degree_and_budget(toy):
    result = S3CA(toy, num_samples=60, seed=2).solve()
    for node, coupons in result.allocation.items():
        assert 0 < coupons <= toy.graph.out_degree(node)
    assert result.deployment.fits_budget(toy.budget_limit)


def test_phase_timings_and_counters(toy):
    result = S3CA(toy, num_samples=60, seed=3).solve()
    assert "investment_deployment" in result.phase_seconds
    assert result.total_seconds >= 0.0
    assert result.explored_nodes >= 1
    assert result.num_paths >= 0
    assert result.num_maneuvers >= 0


def test_ablation_switches(toy):
    estimator = MonteCarloEstimator(toy.graph, num_samples=60, seed=4)
    full = S3CA(toy, estimator=estimator, seed=4).solve()
    id_only = S3CA(toy, estimator=estimator, enable_gpi=False, enable_scm=False).solve()
    assert id_only.num_paths == 0
    assert id_only.num_maneuvers == 0
    # The full pipeline can only improve on (or match) the ID-only result.
    assert full.redemption_rate >= id_only.redemption_rate - 1e-9


def test_seed_sc_rate_property(toy):
    result = S3CA(toy, num_samples=60, seed=5).solve()
    if result.sc_cost > 0:
        assert result.seed_sc_rate == pytest.approx(result.seed_cost / result.sc_cost)
    else:
        assert result.seed_sc_rate in (0.0, float("inf"))


def test_uses_supplied_estimator(example1_scenario):
    estimator = ExactEstimator(example1_scenario.graph)
    result = S3CA(example1_scenario, estimator=estimator).solve()
    assert result.total_cost <= example1_scenario.budget_limit + 1e-9
    assert "v1" in result.seeds


def test_s3ca_beats_or_matches_trivial_seed_only_policy(toy):
    estimator = MonteCarloEstimator(toy.graph, num_samples=100, seed=6)
    result = S3CA(toy, estimator=estimator).solve()
    # Compare against the best single-seed no-coupon deployment.
    from repro.core.deployment import Deployment

    best_single = 0.0
    for node in toy.graph.nodes():
        deployment = Deployment(toy.graph, seeds=[node])
        if deployment.total_cost() <= toy.budget_limit:
            best_single = max(best_single, deployment.redemption_rate(estimator))
    assert result.redemption_rate >= best_single - 1e-9
