"""Regression tests pinned to the worked examples and special cases of the paper.

* Example 1 (Fig. 3): the marginal-redemption numbers of the first ID
  iteration, reproduced exactly with the exact estimator and the analytic SC
  cost model.
* Sec. III special cases: under the unlimited coupon strategy the
  SC-constrained cascade reduces to the plain independent cascade, and with
  zero SC costs the objective reduces to benefit over seed cost (the IM-like
  special case).
* The redemption-rate example of Sec. III (two isolated users u, v with
  complementary costs/benefits): the rate-optimal choice picks only u.
"""

import pytest

from repro.core.deployment import Deployment
from repro.core.marginal import MarginalRedemption
from repro.diffusion.exact import ExactEstimator
from repro.diffusion.independent_cascade import (
    saturated_allocation,
    simulate_independent_cascade,
)
from repro.diffusion.sc_cascade import simulate_sc_cascade
from repro.economics.scenario import Scenario
from repro.graph.social_graph import SocialGraph


class TestExample1:
    """The ID walk-through of Sec. IV-A.1 (Fig. 3, first iteration)."""

    def test_initial_deployment_benefit_and_cost(self, example1_graph):
        estimator = ExactEstimator(example1_graph)
        base = Deployment(example1_graph, seeds=["v1"], allocation={"v1": 1})
        assert base.expected_benefit(estimator) == pytest.approx(1.76)
        assert base.sc_cost() == pytest.approx(0.76)

    def test_first_iteration_marginal_redemptions(self, example1_graph):
        estimator = ExactEstimator(example1_graph)
        evaluator = MarginalRedemption(estimator)
        base = Deployment(example1_graph, seeds=["v1"], allocation={"v1": 1})
        mr_v1 = evaluator.of_extra_coupon(base, "v1").ratio
        mr_v2 = evaluator.of_extra_coupon(base, "v2").ratio
        mr_v3 = evaluator.of_extra_coupon(base, "v3").ratio
        assert mr_v1 == pytest.approx(1.0)
        assert mr_v2 == pytest.approx(0.6)
        assert mr_v3 == pytest.approx(0.16, abs=0.01)
        # The paper allocates the first extra coupon to v1 (largest MR).
        assert mr_v1 > mr_v2 > mr_v3


class TestUnlimitedCouponSpecialCase:
    """With saturated allocations the model reduces to the plain IC."""

    def graph(self):
        graph = SocialGraph()
        graph.add_edge("a", "b", 0.7)
        graph.add_edge("a", "c", 0.4)
        graph.add_edge("b", "d", 0.6)
        for node in graph.nodes():
            graph.add_node(node, benefit=1.0, sc_cost=1.0, seed_cost=1.0)
        return graph

    def test_exact_benefit_matches_ic(self):
        graph = self.graph()
        estimator = ExactEstimator(graph)
        saturated = saturated_allocation(graph)
        benefit = estimator.expected_benefit(["a"], saturated)
        # Plain IC: 1 + 0.7 + 0.4 + 0.7*0.6
        assert benefit == pytest.approx(1 + 0.7 + 0.4 + 0.42)

    def test_simulated_activations_agree_world_by_world(self):
        graph = self.graph()
        saturated = saturated_allocation(graph)
        outcomes = {("a", "b"): True, ("a", "c"): False, ("b", "d"): True}
        sc = simulate_sc_cascade(graph, ["a"], saturated, edge_outcomes=outcomes)
        ic = simulate_independent_cascade(graph, ["a"], edge_outcomes=outcomes)
        assert sc.activated == ic.activated == {"a", "b", "d"}


class TestRedemptionRateExample:
    """The two-user example motivating the redemption-rate objective."""

    def test_rate_optimal_choice_picks_only_the_cheap_user(self):
        epsilon = 0.01
        graph = SocialGraph()
        graph.add_node("u", benefit=1 - epsilon, seed_cost=epsilon, sc_cost=0.0)
        graph.add_node("v", benefit=epsilon, seed_cost=1 - epsilon, sc_cost=0.0)
        estimator = ExactEstimator(graph)

        only_u = Deployment(graph, seeds=["u"])
        both = Deployment(graph, seeds=["u", "v"])
        assert only_u.redemption_rate(estimator) == pytest.approx(
            (1 - epsilon) / epsilon
        )
        assert both.expected_benefit(estimator) == pytest.approx(1.0)
        assert both.redemption_rate(estimator) == pytest.approx(1.0)
        assert only_u.redemption_rate(estimator) > both.redemption_rate(estimator)


class TestZeroSCCostSpecialCase:
    """With zero SC costs the objective reduces to benefit / seed cost."""

    def test_total_cost_equals_seed_cost(self):
        graph = SocialGraph()
        graph.add_edge("a", "b", 0.5)
        graph.add_node("a", benefit=1.0, seed_cost=2.0, sc_cost=0.0)
        graph.add_node("b", benefit=1.0, seed_cost=2.0, sc_cost=0.0)
        deployment = Deployment(graph, seeds=["a"], allocation={"a": 1})
        assert deployment.sc_cost() == 0.0
        assert deployment.total_cost() == pytest.approx(2.0)


class TestBudgetFeasibilityAcrossAlgorithms:
    """Constraint (1b): every algorithm's output respects the budget."""

    def test_s3ca_output_is_feasible_on_example1(self, example1_graph):
        from repro.core.s3ca import S3CA

        scenario = Scenario(graph=example1_graph, budget_limit=2.0)
        estimator = ExactEstimator(example1_graph)
        result = S3CA(scenario, estimator=estimator).solve()
        assert result.total_cost <= scenario.budget_limit + 1e-9
