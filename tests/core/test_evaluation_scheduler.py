"""The unified batched evaluation scheduler, locked down layer by layer.

Every benefit evaluation in the library flows through the
:class:`~repro.diffusion.estimator.EvaluationPlan` / ``submit_many`` batch
API.  These tests pin the refactor's two contracts:

* **batched == serial**: for every converted call site — the SCM donor
  ranking, the eager coupon-candidate pass, the pivot queue, the IM/PM
  baselines — running on an estimator whose ``submit_many`` is forced to the
  serial base-class loop produces bit-identical decisions to the pipelined
  batch path, for any pipeline depth and worker count;
* **one instrumented pass**: a full ``S3CA`` run advances the delta snapshot
  exclusively by splicing (coupon accepts via ``splice_base``, pivot accepts
  via the seed-accept splice), so ``snapshot_passes == 1`` end to end.
"""

import pytest

from repro.core.guaranteed_paths import identify_guaranteed_paths
from repro.core.investment import InvestmentDeployment
from repro.core.maneuver import SCManeuver
from repro.core.s3ca import S3CA
from repro.baselines.influence_max import GreedyInfluenceMaximization
from repro.baselines.profit_max import GreedyProfitMaximization
from repro.diffusion.estimator import BenefitEstimator
from repro.diffusion.factory import make_estimator
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.exceptions import EstimationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.scalability import synthetic_scenario
from repro.exceptions import ExperimentError

NUM_SAMPLES = 30
SEED = 2019


class SerialFallbackEstimator(MonteCarloEstimator):
    """A compiled estimator whose scheduler is forced to the serial loop.

    ``submit_many`` / ``expected_spreads`` fall back to the base-class
    one-at-a-time implementations, so comparing against a regular
    (pipelining) estimator built from the same seed isolates the batch
    machinery: any divergence is the scheduler's fault.
    """

    def submit_many(self, deployments):
        return BenefitEstimator.submit_many(self, deployments)

    def expected_spreads(self, deployments):
        return BenefitEstimator.expected_spreads(self, deployments)


@pytest.fixture(scope="module")
def scenario():
    return synthetic_scenario(80, budget=60.0, seed=SEED)


@pytest.fixture(scope="module")
def scm_scenario():
    """Small, coupon-heavy instance in which SCM really moves coupons."""
    return synthetic_scenario(50, budget=200.0, seed=5)


def _deployment_key(deployment):
    return (
        tuple(sorted(deployment.seeds, key=str)),
        tuple(sorted(deployment.allocation.as_dict().items(), key=str)),
    )


# ----------------------------------------------------------------------
# EvaluationPlan semantics
# ----------------------------------------------------------------------


def test_evaluation_plan_slots_and_idempotence(toy):
    estimator = make_estimator(toy, num_samples=20, seed=1)
    nodes = sorted(toy.graph.nodes(), key=str)[:3]
    plan = estimator.plan()
    slots = [plan.add([node], {}) for node in nodes]
    assert slots == [0, 1, 2]
    assert len(plan) == 3 and not plan.executed

    benefits = plan.execute()
    assert plan.executed
    assert benefits == [estimator.expected_benefit([node], {}) for node in nodes]
    assert [plan.benefit(slot) for slot in slots] == benefits
    # idempotent: a second execute returns the same list, runs nothing new
    evaluations = estimator.evaluations
    assert plan.execute() is benefits
    assert estimator.evaluations == evaluations
    with pytest.raises(RuntimeError):
        plan.add([nodes[0]], {})


def test_unexecuted_plan_refuses_benefit_reads(toy):
    plan = make_estimator(toy, num_samples=10, seed=1).plan()
    plan.add(["u1"], {})
    with pytest.raises(RuntimeError):
        plan.benefit(0)


def test_submit_many_matches_single_calls_with_duplicates(toy):
    estimator = make_estimator(toy, num_samples=25, seed=3)
    reference = make_estimator(toy, num_samples=25, seed=3)
    nodes = sorted(toy.graph.nodes(), key=str)
    batch = [([node], {node: 1}) for node in nodes]
    batch += batch[:2]  # duplicates collapse onto one in-flight evaluation
    assert estimator.submit_many(batch) == [
        reference.expected_benefit(seeds, alloc) for seeds, alloc in batch
    ]


def test_expected_spreads_match_single_calls(toy):
    estimator = make_estimator(toy, num_samples=25, seed=3)
    reference = make_estimator(toy, num_samples=25, seed=3)
    nodes = sorted(toy.graph.nodes(), key=str)
    batch = [([node], {node: 2}) for node in nodes]
    assert estimator.expected_spreads(batch) == [
        reference.expected_spread(seeds, alloc) for seeds, alloc in batch
    ]


def test_pipeline_depth_knob_validation(toy):
    estimator = make_estimator(toy, num_samples=10, seed=1, pipeline_depth=7)
    assert estimator.pipeline_depth == 7
    default = make_estimator(toy, num_samples=10, seed=1)
    assert default.pipeline_depth == max(2, 2 * default.workers)
    with pytest.raises(EstimationError):
        MonteCarloEstimator(toy.graph, num_samples=10, seed=1, pipeline_depth=0)
    with pytest.raises(ExperimentError):
        ExperimentConfig(pipeline_depth=0)
    assert ExperimentConfig(pipeline_depth=4).pipeline_depth == 4


# ----------------------------------------------------------------------
# batched == serial, phase by phase
# ----------------------------------------------------------------------


def test_eager_coupon_candidate_pass_batched_matches_serial(scenario):
    """The ID phase's eager candidate pass: one plan vs one call per node."""
    def run(estimator_class):
        estimator = estimator_class(
            scenario.graph, num_samples=NUM_SAMPLES, seed=SEED, incremental=False
        )
        result = InvestmentDeployment(
            scenario, estimator,
            candidate_limit=8, max_pivot_candidates=15, incremental=False,
        ).run()
        return result

    batched = run(MonteCarloEstimator)
    serial = run(SerialFallbackEstimator)
    assert _deployment_key(batched.deployment) == _deployment_key(serial.deployment)
    assert [_deployment_key(s) for s in batched.snapshots] == [
        _deployment_key(s) for s in serial.snapshots
    ]
    assert batched.iterations == serial.iterations
    assert batched.explored_nodes == serial.explored_nodes


def test_scm_phase_batched_matches_serial(scm_scenario):
    """The SCM donor ranking: one plan per round vs one call per donor."""
    # Estimator seed 5 makes this instance actually execute maneuvers, so
    # the parity check covers accepted transfers, not only rejections.
    scm_seed = 5
    setup = make_estimator(
        scm_scenario, num_samples=NUM_SAMPLES, seed=scm_seed,
    )
    id_result = InvestmentDeployment(
        scm_scenario, setup, candidate_limit=8, max_pivot_candidates=15
    ).run()
    deployment = id_result.snapshots[-1]  # spend-full-budget regime
    paths = identify_guaranteed_paths(
        scm_scenario.graph, deployment, scm_scenario.budget_limit,
        max_paths_per_seed=200,
    )
    assert len(paths) > 0

    def run(estimator_class):
        estimator = estimator_class(
            scm_scenario.graph, num_samples=NUM_SAMPLES, seed=scm_seed
        )
        return SCManeuver(estimator, scm_scenario.budget_limit).run(
            deployment, paths
        )

    batched = run(MonteCarloEstimator)
    serial = run(SerialFallbackEstimator)
    # The whole phase must agree: examined paths, executed operations (donor,
    # amount, DI, routing — bit for bit) and the final deployment.
    assert batched.paths_examined == serial.paths_examined
    assert batched.operations == serial.operations
    assert batched.paths_created == serial.paths_created
    assert _deployment_key(batched.deployment) == _deployment_key(serial.deployment)
    # and the instance genuinely exercises the maneuver machinery
    assert batched.improved


def test_pivot_queue_batched_matches_serial(scenario):
    def build(estimator_class):
        estimator = estimator_class(
            scenario.graph, num_samples=NUM_SAMPLES, seed=SEED
        )
        phase = InvestmentDeployment(
            scenario, estimator, candidate_limit=8, max_pivot_candidates=15
        )
        queue = phase.build_pivot_queue()
        return {
            node: (config.coupons, config.redemption_rate, config.total_cost)
            for node, config in phase._pivot_configs.items()
        }, [queue.pop() for _ in range(len(queue))]

    assert build(MonteCarloEstimator) == build(SerialFallbackEstimator)


def test_im_pm_baselines_batched_match_serial(scenario):
    for selector_class in (GreedyInfluenceMaximization, GreedyProfitMaximization):
        def ranking(estimator_class):
            estimator = estimator_class(
                scenario.graph, num_samples=NUM_SAMPLES, seed=SEED
            )
            return selector_class(
                scenario, estimator=estimator, max_seeds=5
            ).ranked_seeds()

        assert ranking(MonteCarloEstimator) == ranking(SerialFallbackEstimator), (
            selector_class.__name__
        )


def test_full_s3ca_identical_for_any_pipeline_depth(scenario):
    def solve(depth):
        return S3CA(
            scenario, num_samples=NUM_SAMPLES, seed=SEED,
            candidate_limit=8, max_pivot_candidates=15, pipeline_depth=depth,
        ).solve()

    reference = solve(None)
    for depth in (1, 3, 64):
        result = solve(depth)
        assert _deployment_key(result.deployment) == (
            _deployment_key(reference.deployment)
        )
        assert result.expected_benefit == reference.expected_benefit
        assert result.redemption_rate == reference.redemption_rate
        assert result.explored_nodes == reference.explored_nodes


def test_full_s3ca_workers_and_pipeline_depth_match_serial(scenario):
    """The batched scheduler on a live 2-worker pool == the serial path."""
    serial = S3CA(
        scenario, num_samples=NUM_SAMPLES, seed=SEED,
        candidate_limit=8, max_pivot_candidates=15,
    ).solve()
    algorithm = S3CA(
        scenario, num_samples=NUM_SAMPLES, seed=SEED,
        candidate_limit=8, max_pivot_candidates=15,
        workers=2, shard_size=16, pipeline_depth=1,
    )
    try:
        parallel = algorithm.solve()
    finally:
        algorithm.estimator.close()
    assert parallel.seeds == serial.seeds
    assert parallel.allocation == serial.allocation
    assert parallel.expected_benefit == serial.expected_benefit
    assert parallel.num_maneuvers == serial.num_maneuvers


# ----------------------------------------------------------------------
# one instrumented snapshot pass end to end
# ----------------------------------------------------------------------


def test_full_s3ca_run_pays_exactly_one_snapshot_pass(scenario):
    estimator = make_estimator(scenario, num_samples=NUM_SAMPLES, seed=SEED)
    result = S3CA(
        scenario, estimator=estimator, candidate_limit=8, max_pivot_candidates=15
    ).solve()
    assert result.total_cost > 0  # the run genuinely invested
    # Every accepted investment after the initial snapshot was spliced:
    assert estimator.delta_snapshot_passes == 1
    assert (
        estimator.delta_spliced_advances + estimator.delta_spliced_seed_advances
        > 0
    )


def test_id_phase_splices_every_accept(scm_scenario):
    estimator = make_estimator(scm_scenario, num_samples=NUM_SAMPLES, seed=SEED)
    result = InvestmentDeployment(
        scm_scenario, estimator, candidate_limit=8, max_pivot_candidates=15
    ).run()
    seed_accepts = sum(
        1
        for before, after in zip(result.snapshots, result.snapshots[1:])
        if len(after.seeds) > len(before.seeds)
    )
    coupon_accepts = result.iterations - seed_accepts
    assert estimator.delta_snapshot_passes == 1
    assert estimator.delta_spliced_advances == coupon_accepts
    assert estimator.delta_spliced_seed_advances == seed_accepts
