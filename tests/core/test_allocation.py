"""Tests for SCAllocation and the analytic expected SC cost."""

import pytest

from repro.core.allocation import SCAllocation, expected_sc_cost, node_expected_sc_cost
from repro.exceptions import AllocationError
from repro.graph.generators import star_graph
from repro.graph.social_graph import SocialGraph


def test_empty_allocation():
    allocation = SCAllocation()
    assert len(allocation) == 0
    assert allocation.total_coupons == 0
    assert allocation.get("x") == 0


def test_set_get_and_zero_removes():
    allocation = SCAllocation()
    allocation.set("a", 3)
    assert allocation.get("a") == 3
    assert "a" in allocation
    allocation.set("a", 0)
    assert "a" not in allocation


def test_constructor_drops_zero_entries():
    allocation = SCAllocation({"a": 2, "b": 0})
    assert allocation.as_dict() == {"a": 2}


def test_negative_count_rejected():
    with pytest.raises(AllocationError):
        SCAllocation({"a": -1})
    allocation = SCAllocation()
    with pytest.raises(AllocationError):
        allocation.set("a", -2)


def test_increment_and_decrement():
    allocation = SCAllocation()
    allocation.increment("a")
    allocation.increment("a", 2)
    assert allocation.get("a") == 3
    allocation.decrement("a", 2)
    assert allocation.get("a") == 1
    with pytest.raises(AllocationError):
        allocation.decrement("a", 5)


def test_increment_capped_by_out_degree():
    graph = star_graph(2)
    allocation = SCAllocation()
    allocation.increment(0, 2, graph=graph)
    with pytest.raises(AllocationError):
        allocation.increment(0, 1, graph=graph)


def test_copy_is_independent():
    allocation = SCAllocation({"a": 1})
    clone = allocation.copy()
    clone.increment("a")
    assert allocation.get("a") == 1
    assert clone.get("a") == 2


def test_equality_with_mapping():
    allocation = SCAllocation({"a": 2})
    assert allocation == {"a": 2}
    assert allocation == SCAllocation({"a": 2})
    assert allocation != SCAllocation({"a": 3})
    assert allocation == {"a": 2, "b": 0}


def test_merged_with_takes_maximum():
    allocation = SCAllocation({"a": 1, "b": 3})
    merged = allocation.merged_with({"a": 4, "c": 2})
    assert merged.as_dict() == {"a": 4, "b": 3, "c": 2}
    assert allocation.as_dict() == {"a": 1, "b": 3}


def test_nodes_and_items():
    allocation = SCAllocation({"a": 1, "b": 2})
    assert set(allocation.nodes()) == {"a", "b"}
    assert dict(allocation.items()) == {"a": 1, "b": 2}
    assert allocation.total_coupons == 3


# ----------------------------------------------------------------------
# expected SC cost
# ----------------------------------------------------------------------


def example1_node():
    """v1 with friends at probabilities 0.6 and 0.4, unit SC costs."""
    graph = SocialGraph()
    graph.add_edge("v1", "v2", 0.6)
    graph.add_edge("v1", "v3", 0.4)
    for node in graph.nodes():
        graph.add_node(node, sc_cost=1.0, benefit=1.0)
    return graph


def test_node_cost_one_coupon_matches_paper_example():
    graph = example1_node()
    # Paper Example 1: cost of k=1 on v1 is 0.6 + 0.4*0.4 = 0.76.
    assert node_expected_sc_cost(graph, "v1", 1) == pytest.approx(0.76)


def test_node_cost_two_coupons_matches_paper_example():
    graph = example1_node()
    # k=2: every friend has a reserved coupon -> 0.6 + 0.4 = 1.0.
    assert node_expected_sc_cost(graph, "v1", 2) == pytest.approx(1.0)


def test_node_cost_zero_coupons_is_zero():
    graph = example1_node()
    assert node_expected_sc_cost(graph, "v1", 0) == 0.0
    assert node_expected_sc_cost(graph, "v2", 3) == 0.0  # no out-neighbours


def test_node_cost_clamped_to_out_degree():
    graph = example1_node()
    assert node_expected_sc_cost(graph, "v1", 10) == node_expected_sc_cost(
        graph, "v1", 2
    )


def test_node_cost_monotone_in_coupons():
    graph = star_graph(5, probability=0.5)
    for node in graph.nodes():
        graph.add_node(node, sc_cost=2.0)
    costs = [node_expected_sc_cost(graph, 0, k) for k in range(6)]
    assert costs == sorted(costs)


def test_node_cost_weighted_by_target_sc_cost():
    graph = SocialGraph()
    graph.add_edge("s", "cheap", 0.5)
    graph.add_node("cheap", sc_cost=1.0)
    cheap = node_expected_sc_cost(graph, "s", 1)
    graph.add_node("cheap", sc_cost=10.0)
    assert node_expected_sc_cost(graph, "s", 1) == pytest.approx(10 * cheap)


def test_expected_sc_cost_sums_over_holders():
    graph = example1_node()
    graph.add_edge("v2", "v4", 0.5)
    graph.add_node("v4", sc_cost=1.0)
    total = expected_sc_cost(graph, {"v1": 1, "v2": 1})
    assert total == pytest.approx(0.76 + 0.5)


def test_expected_sc_cost_cache_consistency():
    graph = example1_node()
    cache = {}
    first = expected_sc_cost(graph, {"v1": 2}, _cache=cache)
    second = expected_sc_cost(graph, {"v1": 2}, _cache=cache)
    assert first == second
    assert ("v1", 2) in cache


def test_expected_sc_cost_ignores_zero_and_empty():
    graph = example1_node()
    assert expected_sc_cost(graph, {}) == 0.0
    assert expected_sc_cost(graph, {"v1": 0}) == 0.0
