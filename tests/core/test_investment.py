"""Tests for the Investment Deployment (ID) phase."""

import pytest

from repro.core.investment import InvestmentDeployment
from repro.diffusion.exact import ExactEstimator
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.economics.scenario import Scenario
from repro.graph.social_graph import SocialGraph


def make_id(scenario, estimator=None, **kwargs):
    estimator = estimator or ExactEstimator(scenario.graph)
    return InvestmentDeployment(scenario, estimator, **kwargs)


def test_pivot_queue_only_contains_affordable_seeds(example1_scenario):
    phase = make_id(example1_scenario)
    queue = phase.build_pivot_queue()
    # Only v1 has a seed cost (0.01) below the budget of 3.
    assert set(iter(queue)) == {"v1"}


def test_pivot_queue_empty_when_nothing_affordable(example1_graph):
    for node in example1_graph.nodes():
        example1_graph.add_node(node, seed_cost=1000.0)
    scenario = Scenario(graph=example1_graph, budget_limit=5.0)
    phase = make_id(scenario)
    result = phase.run()
    assert result.deployment.is_empty()


def test_run_returns_budget_feasible_deployment(example1_scenario):
    phase = make_id(example1_scenario)
    result = phase.run()
    assert result.deployment.total_cost() <= example1_scenario.budget_limit + 1e-9
    assert "v1" in result.deployment.seeds


def test_run_tracks_explored_nodes_and_iterations(example1_scenario):
    phase = make_id(example1_scenario)
    result = phase.run()
    assert result.explored_count >= 1
    assert "v1" in result.explored_nodes
    assert result.iterations >= 0
    assert len(result.snapshots) == result.iterations + 1


def test_best_snapshot_has_max_redemption_rate(example1_scenario):
    estimator = ExactEstimator(example1_scenario.graph)
    phase = make_id(example1_scenario, estimator)
    result = phase.run()
    best_rate = result.deployment.redemption_rate(estimator)
    for snapshot in result.snapshots:
        assert best_rate >= snapshot.redemption_rate(estimator) - 1e-12


def test_candidate_limit_restricts_work(example1_scenario):
    unrestricted = make_id(example1_scenario).run()
    restricted = make_id(example1_scenario, candidate_limit=1).run()
    # Both must stay feasible; the restricted run may explore fewer users.
    assert restricted.deployment.total_cost() <= example1_scenario.budget_limit + 1e-9
    assert restricted.explored_count <= unrestricted.explored_count


def test_larger_budget_never_decreases_best_rate():
    graph = SocialGraph()
    graph.add_edge("s", "x", 0.9)
    graph.add_edge("s", "y", 0.8)
    graph.add_edge("x", "z", 0.7)
    for node in graph.nodes():
        graph.add_node(node, benefit=2.0, sc_cost=1.0,
                       seed_cost=1.0 if node == "s" else 50.0)
    estimator = ExactEstimator(graph)
    small = InvestmentDeployment(Scenario(graph, 1.5), estimator).run()
    large = InvestmentDeployment(Scenario(graph, 6.0), estimator).run()
    assert large.deployment.redemption_rate(estimator) >= (
        small.deployment.redemption_rate(estimator) - 1e-9
    )


def test_works_with_monte_carlo_estimator(toy):
    estimator = MonteCarloEstimator(toy.graph, num_samples=60, seed=3)
    result = InvestmentDeployment(toy, estimator).run()
    assert result.deployment.total_cost() <= toy.budget_limit + 1e-9
    assert result.deployment.seeds


def test_multiple_seed_initiation_when_profitable():
    """Two disconnected cheap hubs: ID should eventually pick both seeds."""
    graph = SocialGraph()
    graph.add_edge("s1", "a", 0.9)
    graph.add_edge("s2", "b", 0.9)
    for node in graph.nodes():
        graph.add_node(node, benefit=5.0, sc_cost=1.0,
                       seed_cost=1.0 if node in {"s1", "s2"} else 100.0)
    estimator = ExactEstimator(graph)
    scenario = Scenario(graph, budget_limit=10.0)
    result = InvestmentDeployment(scenario, estimator).run()
    # Snapshots should contain a deployment with both seeds; the best one has
    # at least one.
    seeds_seen = set()
    for snapshot in result.snapshots:
        seeds_seen |= snapshot.seeds
    assert {"s1", "s2"} <= seeds_seen
