"""Tests for the Guaranteed Path Identification (GPI) phase."""

import pytest

from repro.core.deployment import Deployment
from repro.core.guaranteed_paths import GuaranteedPath, identify_guaranteed_paths
from repro.graph.social_graph import SocialGraph


def chain_graph():
    """s -> a -> b with descending probabilities, unit costs/benefits."""
    graph = SocialGraph()
    graph.add_edge("s", "a", 0.9)
    graph.add_edge("a", "b", 0.8)
    for node in graph.nodes():
        graph.add_node(node, benefit=1.0, sc_cost=1.0, seed_cost=1.0)
    return graph


def branching_graph():
    """A seed with two subtrees; left child has higher probability."""
    graph = SocialGraph()
    graph.add_edge("s", "left", 0.9)
    graph.add_edge("s", "right", 0.6)
    graph.add_edge("left", "ll", 0.8)
    graph.add_edge("right", "rr", 0.7)
    for node in graph.nodes():
        graph.add_node(node, benefit=1.0, sc_cost=1.0, seed_cost=1.0)
    return graph


def test_paths_enumerated_along_chain():
    graph = chain_graph()
    deployment = Deployment(graph, seeds=["s"])
    result = identify_guaranteed_paths(graph, deployment, budget_limit=10.0)
    terminals = {path.terminal for path in result}
    assert terminals == {"a", "b"}
    path_b = result.paths_by_terminal[("s", "b")]
    assert set(path_b.nodes) == {"s", "a", "b"}
    assert path_b.allocation == {"s": 1, "a": 1}
    assert path_b.depth == 2
    assert path_b.parent == "a"


def test_guaranteed_cost_is_expected_sc_cost_of_path_allocation():
    graph = chain_graph()
    deployment = Deployment(graph, seeds=["s"])
    result = identify_guaranteed_paths(graph, deployment, budget_limit=10.0)
    path_b = result.paths_by_terminal[("s", "b")]
    # s hands one coupon to a (0.9) and a hands one to b (0.8).
    assert path_b.guaranteed_cost == pytest.approx(0.9 + 0.8)
    assert path_b.expected_benefit == pytest.approx(3.0)


def test_budget_prunes_deep_paths():
    graph = chain_graph()
    deployment = Deployment(graph, seeds=["s"])
    # Remaining budget after the seed (cost 1) is 1.0: only the first hop
    # (guaranteed cost 0.9) fits; the second (1.7) does not.
    result = identify_guaranteed_paths(graph, deployment, budget_limit=2.0)
    assert {path.terminal for path in result} == {"a"}


def test_no_budget_left_yields_no_paths():
    graph = chain_graph()
    deployment = Deployment(graph, seeds=["s"])
    result = identify_guaranteed_paths(graph, deployment, budget_limit=1.0)
    assert len(result) == 0


def test_traversal_visits_high_probability_child_first():
    graph = branching_graph()
    deployment = Deployment(graph, seeds=["s"])
    result = identify_guaranteed_paths(graph, deployment, budget_limit=10.0)
    order = [path.terminal for path in result.paths]
    assert order.index("left") < order.index("right")
    assert order.index("ll") < order.index("right")


def test_paths_are_cumulative_visited_sets():
    graph = branching_graph()
    deployment = Deployment(graph, seeds=["s"])
    result = identify_guaranteed_paths(graph, deployment, budget_limit=10.0)
    first = result.paths[0]
    last = result.paths[-1]
    assert set(first.nodes) <= set(last.nodes)
    assert last.total_coupons == sum(last.allocation.values())


def test_max_paths_per_seed_limits_enumeration():
    graph = branching_graph()
    deployment = Deployment(graph, seeds=["s"])
    result = identify_guaranteed_paths(
        graph, deployment, budget_limit=10.0, max_paths_per_seed=2
    )
    assert len(result) == 2


def test_max_depth_limits_enumeration():
    graph = chain_graph()
    deployment = Deployment(graph, seeds=["s"])
    result = identify_guaranteed_paths(
        graph, deployment, budget_limit=10.0, max_depth=1
    )
    assert {path.terminal for path in result} == {"a"}


def test_multiple_seeds_each_get_paths():
    graph = SocialGraph()
    graph.add_edge("s1", "a", 0.9)
    graph.add_edge("s2", "b", 0.9)
    for node in graph.nodes():
        graph.add_node(node, benefit=1.0, sc_cost=1.0, seed_cost=1.0)
    deployment = Deployment(graph, seeds=["s1", "s2"])
    result = identify_guaranteed_paths(graph, deployment, budget_limit=10.0)
    assert {(p.seed, p.terminal) for p in result} == {("s1", "a"), ("s2", "b")}
    assert result.for_seed("s1")[0].terminal == "a"


def test_amelioration_index_against_ancestor():
    graph = chain_graph()
    deployment = Deployment(graph, seeds=["s"])
    result = identify_guaranteed_paths(graph, deployment, budget_limit=10.0)
    path_a = result.paths_by_terminal[("s", "a")]
    path_b = result.paths_by_terminal[("s", "b")]
    # Relative to nothing: benefit 2 over cost 0.9.
    assert path_a.amelioration_index(None) == pytest.approx(2.0 / 0.9)
    # Relative to the ancestor path ending at a.
    assert path_b.amelioration_index(path_a) == pytest.approx(1.0 / 0.8)


def test_amelioration_index_zero_cost_conventions():
    path = GuaranteedPath(
        seed="s", terminal="t", nodes=("s", "t"), allocation={"s": 1},
        guaranteed_cost=0.0, expected_benefit=2.0, parent="s", depth=1,
    )
    assert path.amelioration_index(None) == float("inf")
    zero_benefit = GuaranteedPath(
        seed="s", terminal="t", nodes=("s", "t"), allocation={"s": 1},
        guaranteed_cost=0.0, expected_benefit=0.0, parent="s", depth=1,
    )
    assert zero_benefit.amelioration_index(None) == 0.0
