"""Tests for the Deployment object."""

import pytest

from repro.core.deployment import Deployment
from repro.diffusion.exact import ExactEstimator
from repro.exceptions import AllocationError


def test_empty_deployment(two_hop_path):
    deployment = Deployment(two_hop_path)
    assert deployment.is_empty()
    assert deployment.total_cost() == 0.0
    assert deployment.num_seeds == 0
    assert deployment.total_coupons == 0


def test_internal_nodes_union_of_seeds_and_holders(two_hop_path):
    deployment = Deployment(two_hop_path, seeds=["a"], allocation={"b": 1})
    assert deployment.internal_nodes == {"a", "b"}


def test_seed_cost_and_sc_cost(two_hop_path):
    deployment = Deployment(two_hop_path, seeds=["a"], allocation={"a": 1})
    assert deployment.seed_cost() == 1.0
    assert deployment.sc_cost() == pytest.approx(0.5)  # one friend at 0.5
    assert deployment.total_cost() == pytest.approx(1.5)


def test_expected_benefit_and_redemption_rate(two_hop_path):
    estimator = ExactEstimator(two_hop_path)
    deployment = Deployment(two_hop_path, seeds=["a"], allocation={"a": 1, "b": 1})
    benefit = deployment.expected_benefit(estimator)
    assert benefit == pytest.approx(1 + 0.5 + 0.4)
    assert deployment.redemption_rate(estimator) == pytest.approx(
        benefit / deployment.total_cost()
    )


def test_zero_cost_redemption_rate_is_zero(two_hop_path):
    estimator = ExactEstimator(two_hop_path)
    assert Deployment(two_hop_path).redemption_rate(estimator) == 0.0


def test_fits_budget(two_hop_path):
    deployment = Deployment(two_hop_path, seeds=["a"])
    assert deployment.fits_budget(1.0)
    assert not deployment.fits_budget(0.5)


def test_with_seed_and_with_extra_coupon_do_not_mutate(two_hop_path):
    base = Deployment(two_hop_path, seeds=["a"])
    with_seed = base.with_seed("b", coupons=1)
    with_coupon = base.with_extra_coupon("a")
    assert base.seeds == {"a"}
    assert base.total_coupons == 0
    assert with_seed.seeds == {"a", "b"}
    assert with_seed.allocation.get("b") == 1
    assert with_coupon.allocation.get("a") == 1


def test_with_seed_keeps_larger_existing_allocation(two_hop_path):
    base = Deployment(two_hop_path, seeds=[], allocation={"a": 1})
    grown = base.with_seed("a", coupons=0)
    assert grown.allocation.get("a") == 1


def test_with_extra_coupon_respects_out_degree(two_hop_path):
    base = Deployment(two_hop_path, seeds=["a"], allocation={"a": 1})
    with pytest.raises(AllocationError):
        base.with_extra_coupon("a")  # a has only one friend


def test_with_coupons_retrieved(two_hop_path):
    base = Deployment(two_hop_path, seeds=["a"], allocation={"a": 1})
    reduced = base.with_coupons_retrieved("a")
    assert reduced.total_coupons == 0
    assert base.total_coupons == 1


def test_key_is_order_insensitive(two_hop_path):
    first = Deployment(two_hop_path, seeds=["a", "b"], allocation={"a": 1, "b": 1})
    second = Deployment(two_hop_path, seeds=["b", "a"], allocation={"b": 1, "a": 1})
    assert first.key() == second.key()


def test_key_is_memoised_on_the_instance(two_hop_path):
    deployment = Deployment(two_hop_path, seeds=["a"], allocation={"a": 1})
    first = deployment.key()
    assert deployment.key() is first  # cached, not recomputed


def test_key_memo_invalidated_by_allocation_mutation(two_hop_path):
    deployment = Deployment(two_hop_path, seeds=["a"], allocation={"a": 1})
    stale = deployment.key()
    deployment.allocation.set("b", 1)  # in-place edit, as the baselines do
    fresh = deployment.key()
    assert fresh != stale
    assert fresh[1] == (("a", 1), ("b", 1))


def test_key_memo_not_shared_by_variants(two_hop_path):
    base = Deployment(two_hop_path, seeds=["a"], allocation={"a": 1})
    base_key = base.key()
    variant = base.with_extra_coupon("b")
    assert variant.key() != base_key
    assert base.key() == base_key


def test_summary_contains_expected_fields(two_hop_path):
    estimator = ExactEstimator(two_hop_path)
    deployment = Deployment(two_hop_path, seeds=["a"], allocation={"a": 1})
    summary = deployment.summary(estimator)
    for field in (
        "num_seeds",
        "total_coupons",
        "seed_cost",
        "sc_cost",
        "total_cost",
        "expected_benefit",
        "redemption_rate",
    ):
        assert field in summary
    assert summary["num_seeds"] == 1.0


def test_copy_shares_nothing_mutable(two_hop_path):
    base = Deployment(two_hop_path, seeds=["a"], allocation={"a": 1})
    clone = base.copy()
    clone.seeds.add("b")
    clone.allocation.set("b", 1)
    assert base.seeds == {"a"}
    assert base.allocation.as_dict() == {"a": 1}
