"""Identity of the incremental (CELF-lazy) greedy and the eager reference.

The acceptance bar for the incremental ID phase is not "close" but *equal*:
for a fixed RNG seed, ``incremental=True`` must select the same seeds, the
same coupon allocation and report the same expected benefit as the eager
full-resimulation loop, on the toy scenario and on Fig. 9-style synthetic
graphs alike.
"""

from __future__ import annotations

import pytest

from repro.core.investment import InvestmentDeployment
from repro.core.s3ca import S3CA
from repro.diffusion.factory import make_estimator
from repro.experiments.datasets import toy_scenario
from repro.experiments.scalability import synthetic_scenario


def _solve(scenario, incremental, *, num_samples=60, seed=11, **kwargs):
    estimator = make_estimator(
        scenario, "mc-compiled", num_samples=num_samples, seed=seed,
        incremental=incremental,
    )
    return S3CA(
        scenario, estimator=estimator, incremental=incremental, **kwargs
    ).solve()


def _assert_identical(eager, lazy):
    assert eager.seeds == lazy.seeds
    assert eager.allocation == lazy.allocation
    assert eager.expected_benefit == lazy.expected_benefit
    assert eager.total_cost == lazy.total_cost


def test_toy_scenario_bit_identical():
    scenario = toy_scenario()
    _assert_identical(_solve(scenario, False), _solve(scenario, True))


@pytest.mark.parametrize("seed", [3, 11, 2019])
def test_fig9_graph_bit_identical(seed):
    scenario = synthetic_scenario(150, budget=120.0, seed=2019)
    eager = _solve(scenario, False, seed=seed,
                   candidate_limit=10, max_pivot_candidates=40)
    lazy = _solve(scenario, True, seed=seed,
                  candidate_limit=10, max_pivot_candidates=40)
    _assert_identical(eager, lazy)


@pytest.mark.parametrize("budget", [40.0, 90.0, 200.0])
def test_fig9_budget_sweep_bit_identical(budget):
    scenario = synthetic_scenario(100, budget=budget, seed=7)
    eager = _solve(scenario, False, candidate_limit=8, max_pivot_candidates=25)
    lazy = _solve(scenario, True, candidate_limit=8, max_pivot_candidates=25)
    _assert_identical(eager, lazy)


def test_id_phase_snapshot_sequence_identical():
    """The lazy loop makes the same investment at every greedy step."""
    scenario = synthetic_scenario(120, budget=150.0, seed=13)
    runs = {}
    for incremental in (False, True):
        estimator = make_estimator(
            scenario, "mc-compiled", num_samples=50, seed=5,
            incremental=incremental,
        )
        phase = InvestmentDeployment(
            scenario, estimator, candidate_limit=10, max_pivot_candidates=30,
            incremental=incremental,
        )
        runs[incremental] = phase.run()
    eager, lazy = runs[False], runs[True]
    assert eager.iterations == lazy.iterations
    assert len(eager.snapshots) == len(lazy.snapshots)
    for eager_snap, lazy_snap in zip(eager.snapshots, lazy.snapshots):
        assert eager_snap.seeds == lazy_snap.seeds
        assert eager_snap.allocation.as_dict() == lazy_snap.allocation.as_dict()
    assert eager.deployment.seeds == lazy.deployment.seeds
    assert eager.deployment.allocation == lazy.deployment.allocation
    # The Fig. 9 explored-ratio metric is mode-independent.
    assert lazy.explored_nodes == eager.explored_nodes


def test_incremental_flag_defaults_to_estimator_capability():
    scenario = toy_scenario()
    compiled = make_estimator(scenario, "mc-compiled", num_samples=20, seed=1)
    phase = InvestmentDeployment(scenario, compiled)
    assert phase.incremental

    eager_only = make_estimator(
        scenario, "mc-compiled", num_samples=20, seed=1, incremental=False
    )
    phase = InvestmentDeployment(scenario, eager_only)
    assert not phase.incremental
    # Forcing incremental on an estimator without delta support degrades
    # gracefully to the eager path.
    phase = InvestmentDeployment(scenario, eager_only, incremental=True)
    assert not phase.incremental


def test_rr_prescreen_returns_feasible_deployment():
    scenario = synthetic_scenario(80, budget=60.0, seed=3)
    result = S3CA(
        scenario, num_samples=30, seed=3,
        max_pivot_candidates=10, rr_prescreen=True,
    ).solve()
    assert result.deployment.total_cost() <= scenario.budget_limit + 1e-9
    assert result.deployment.seeds
