"""Tests for S3CA configuration options (spend_full_budget, bounds)."""

import pytest

from repro.core.s3ca import S3CA
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.experiments.datasets import build_scenario, toy_scenario


def test_spend_full_budget_uses_at_least_as_much_budget():
    scenario = toy_scenario()
    estimator = MonteCarloEstimator(scenario.graph, num_samples=60, seed=9)
    best_rate = S3CA(scenario, estimator=estimator).solve()
    full = S3CA(scenario, estimator=estimator, spend_full_budget=True).solve()
    assert full.total_cost >= best_rate.total_cost - 1e-9
    assert full.total_cost <= scenario.budget_limit + 1e-9
    # The default (best-rate snapshot) can only have the better rate.
    assert best_rate.redemption_rate >= full.redemption_rate - 1e-9


def test_spend_full_budget_gains_benefit_on_dataset():
    scenario = build_scenario("facebook", scale=0.1, seed=6)
    estimator = MonteCarloEstimator(scenario.graph, num_samples=30, seed=6)
    kwargs = dict(candidate_limit=5, max_pivot_candidates=10, max_paths_per_seed=15)
    best_rate = S3CA(scenario, estimator=estimator, **kwargs).solve()
    full = S3CA(scenario, estimator=estimator, spend_full_budget=True, **kwargs).solve()
    assert full.expected_benefit >= best_rate.expected_benefit - 1e-6


def test_max_depth_limits_paths():
    scenario = toy_scenario()
    estimator = MonteCarloEstimator(scenario.graph, num_samples=60, seed=9)
    shallow = S3CA(scenario, estimator=estimator, max_depth=1).solve()
    deep = S3CA(scenario, estimator=estimator, max_depth=None).solve()
    assert shallow.num_paths <= deep.num_paths


def test_max_pivot_candidates_bounds_exploration():
    scenario = build_scenario("facebook", scale=0.1, seed=6)
    estimator = MonteCarloEstimator(scenario.graph, num_samples=20, seed=6)
    narrow = S3CA(
        scenario, estimator=estimator, max_pivot_candidates=3, candidate_limit=3
    ).solve()
    wide = S3CA(
        scenario, estimator=estimator, max_pivot_candidates=30, candidate_limit=3
    ).solve()
    assert narrow.explored_nodes <= wide.explored_nodes
