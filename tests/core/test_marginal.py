"""Tests for marginal-redemption evaluation, pinned to the paper's Example 1."""

import pytest

from repro.core.deployment import Deployment
from repro.core.marginal import MarginalRedemption, _safe_ratio
from repro.diffusion.exact import ExactEstimator


@pytest.fixture
def example1(example1_graph):
    estimator = ExactEstimator(example1_graph)
    evaluator = MarginalRedemption(estimator)
    base = Deployment(example1_graph, seeds=["v1"], allocation={"v1": 1})
    return example1_graph, estimator, evaluator, base


def test_base_deployment_matches_paper_numbers(example1):
    graph, estimator, _, base = example1
    # Expected benefit 1 + 0.6 + 0.4*0.4 = 1.76, expected SC cost 0.76.
    assert base.expected_benefit(estimator) == pytest.approx(1.76)
    assert base.sc_cost() == pytest.approx(0.76)


def test_mr_of_extra_coupon_on_seed_is_one(example1):
    _, _, evaluator, base = example1
    evaluation = evaluator.of_extra_coupon(base, "v1")
    assert evaluation.benefit_gain == pytest.approx(0.24)
    assert evaluation.cost_gain == pytest.approx(0.24)
    assert evaluation.ratio == pytest.approx(1.0)
    assert evaluation.action == "coupon"


def test_mr_of_coupon_on_v2_matches_paper(example1):
    _, _, evaluator, base = example1
    evaluation = evaluator.of_extra_coupon(base, "v2")
    assert evaluation.benefit_gain == pytest.approx(0.42)
    assert evaluation.cost_gain == pytest.approx(0.70)
    assert evaluation.ratio == pytest.approx(0.6)


def test_mr_of_coupon_on_v3_matches_paper(example1):
    _, _, evaluator, base = example1
    evaluation = evaluator.of_extra_coupon(base, "v3")
    # Paper rounds to 0.15/0.94; exact values are 0.1504 and 0.94.
    assert evaluation.benefit_gain == pytest.approx(0.1504, abs=1e-4)
    assert evaluation.cost_gain == pytest.approx(0.94)
    assert evaluation.ratio == pytest.approx(0.16, abs=0.01)


def test_best_first_investment_is_coupon_on_v1(example1):
    _, _, evaluator, base = example1
    ratios = {
        node: evaluator.of_extra_coupon(base, node).ratio
        for node in ("v1", "v2", "v3")
    }
    assert max(ratios, key=ratios.get) == "v1"


def test_mr_of_new_seed(example1):
    graph, estimator, evaluator, _ = example1
    empty = Deployment(graph)
    evaluation = evaluator.of_new_seed(empty, "v1")
    assert evaluation.action == "seed"
    assert evaluation.benefit_gain == pytest.approx(1.0)
    assert evaluation.cost_gain == pytest.approx(0.01)
    assert evaluation.ratio == pytest.approx(100.0)


def test_mr_of_new_seed_with_coupon_includes_sc_cost(example1):
    graph, _, evaluator, _ = example1
    empty = Deployment(graph)
    evaluation = evaluator.of_new_seed(empty, "v1", coupons=1)
    assert evaluation.cost_gain == pytest.approx(0.01 + 0.76)
    assert evaluation.benefit_gain == pytest.approx(1.76)


def test_of_extra_coupon_returns_none_when_saturated(example1):
    graph, _, evaluator, base = example1
    saturated = base.with_extra_coupon("v1")  # now 2 coupons = out-degree
    assert evaluator.of_extra_coupon(saturated, "v1") is None


def test_base_benefit_shortcut_gives_same_result(example1):
    _, estimator, evaluator, base = example1
    expected = evaluator.of_extra_coupon(base, "v2").ratio
    precomputed = base.expected_benefit(estimator)
    assert evaluator.of_extra_coupon(base, "v2", base_benefit=precomputed).ratio == (
        pytest.approx(expected)
    )


def test_safe_ratio_conventions():
    assert _safe_ratio(1.0, 0.0) == float("inf")
    assert _safe_ratio(0.0, 0.0) == 0.0
    assert _safe_ratio(-1.0, 0.0) == 0.0
    assert _safe_ratio(2.0, 4.0) == 0.5
    assert _safe_ratio(-1.0, 2.0) == -0.5
