"""Tests for the SC Maneuver (SCM) phase."""

import pytest

from repro.core.deployment import Deployment
from repro.core.guaranteed_paths import identify_guaranteed_paths
from repro.core.maneuver import SCManeuver
from repro.diffusion.exact import ExactEstimator
from repro.graph.social_graph import SocialGraph


def maneuver_graph():
    """A seed with a low-value branch (where ID parked coupons) and a
    high-benefit branch that a maneuver should redirect coupons towards.

    ``s`` has friends ``cheap1``/``cheap2`` (benefit 1) and ``gate`` (benefit
    1) whose child ``prize`` carries a large benefit.
    """
    graph = SocialGraph()
    graph.add_edge("s", "cheap1", 0.9)
    graph.add_edge("s", "cheap2", 0.85)
    graph.add_edge("s", "gate", 0.8)
    graph.add_edge("gate", "prize", 0.9)
    for node in graph.nodes():
        graph.add_node(
            node,
            benefit=50.0 if node == "prize" else 1.0,
            sc_cost=1.0,
            seed_cost=1.0 if node == "s" else 100.0,
        )
    return graph


def test_maneuver_moves_coupons_towards_high_benefit_path():
    graph = maneuver_graph()
    estimator = ExactEstimator(graph)
    budget = 5.0
    # ID-style deployment that wastes coupons on the cheap branch: the seed
    # holds 2 coupons (cheap1, cheap2 reachable) and gate holds none.
    start = Deployment(graph, seeds=["s"], allocation={"s": 2})
    paths = identify_guaranteed_paths(graph, start, budget)
    maneuver = SCManeuver(estimator, budget)
    result = maneuver.run(start, paths)

    base_rate = start.redemption_rate(estimator)
    new_rate = result.deployment.redemption_rate(estimator)
    assert new_rate >= base_rate
    if result.operations:
        # If a maneuver happened it must route coupons towards the prize path.
        assert result.deployment.allocation.get("gate") >= 1 or (
            result.deployment.allocation.get("s") >= 3
        )
        assert new_rate > base_rate


def test_maneuver_never_exceeds_budget():
    graph = maneuver_graph()
    estimator = ExactEstimator(graph)
    budget = 4.0
    start = Deployment(graph, seeds=["s"], allocation={"s": 2})
    paths = identify_guaranteed_paths(graph, start, budget)
    result = SCManeuver(estimator, budget).run(start, paths)
    assert result.deployment.total_cost() <= budget + 1e-9


def test_maneuver_noop_without_paths():
    graph = maneuver_graph()
    estimator = ExactEstimator(graph)
    start = Deployment(graph, seeds=["s"], allocation={"s": 2})
    empty_paths = identify_guaranteed_paths(graph, start, budget_limit=1.0)
    result = SCManeuver(estimator, 5.0).run(start, empty_paths)
    assert result.deployment.allocation.as_dict() == start.allocation.as_dict()
    assert not result.improved


def test_maneuver_never_decreases_redemption_rate():
    graph = maneuver_graph()
    estimator = ExactEstimator(graph)
    for allocation in ({"s": 1}, {"s": 2}, {"s": 3}):
        start = Deployment(graph, seeds=["s"], allocation=dict(allocation))
        paths = identify_guaranteed_paths(graph, start, 6.0)
        result = SCManeuver(estimator, 6.0).run(start, paths)
        assert result.deployment.redemption_rate(estimator) >= (
            start.redemption_rate(estimator) - 1e-9
        )


def test_maneuver_keeps_total_coupons_bounded():
    graph = maneuver_graph()
    estimator = ExactEstimator(graph)
    start = Deployment(graph, seeds=["s"], allocation={"s": 3})
    paths = identify_guaranteed_paths(graph, start, 6.0)
    result = SCManeuver(estimator, 6.0).run(start, paths)
    for node, count in result.deployment.allocation.items():
        assert 0 < count <= graph.out_degree(node)


def test_operations_record_donor_and_routing():
    graph = maneuver_graph()
    estimator = ExactEstimator(graph)
    start = Deployment(graph, seeds=["s"], allocation={"s": 2})
    paths = identify_guaranteed_paths(graph, start, 5.0)
    result = SCManeuver(estimator, 5.0).run(start, paths)
    for operation in result.operations:
        assert operation.retrieved >= 1
        assert operation.deterioration_index >= 0.0
        assert sum(count for _, count in operation.routing) >= 1
    assert result.paths_examined >= len(result.paths_created)
