"""Tests for the command-line interface (run in-process with tiny settings)."""

import pytest

from repro.cli import build_parser, main

TINY = ["--scale", "0.08", "--samples", "15", "--candidate-limit", "3",
        "--pivot-limit", "6", "--seed", "3"]


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_parser_rejects_unknown_dataset():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["solve", "--dataset", "myspace"])


def test_datasets_command(capsys):
    assert main(["datasets", "--scale", "0.08"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out
    assert "douban" in out


def test_solve_command(capsys):
    assert main(["solve", "--dataset", "facebook", *TINY]) == 0
    out = capsys.readouterr().out
    assert "S3CA on" in out
    assert "redemption_rate" in out


def test_solve_command_full_budget_flag(capsys):
    assert main(["solve", "--dataset", "facebook", "--spend-full-budget", *TINY]) == 0
    assert "redemption_rate" in capsys.readouterr().out


def test_compare_command_without_im_s(capsys):
    assert main(["compare", "--dataset", "facebook", "--no-im-s", *TINY]) == 0
    out = capsys.readouterr().out
    for name in ("IM-U", "IM-L", "PM-U", "PM-L", "S3CA"):
        assert name in out
    assert "IM-S" not in out


def test_sweep_budget_command(capsys):
    assert main([
        "sweep-budget", "--dataset", "facebook", "--budgets", "30", "60", *TINY
    ]) == 0
    out = capsys.readouterr().out
    assert "Redemption rate vs budget" in out
    assert "Total benefit vs budget" in out


def test_case_study_command(capsys):
    assert main([
        "case-study", "--policy", "booking", "--margins", "0.4", "0.6", *TINY
    ]) == 0
    out = capsys.readouterr().out
    assert "booking" in out
    assert "gross_margin" in out


def test_solve_command_scaling_flags_are_deterministic(capsys):
    """--shard-size / --workers change execution, not the printed result."""

    def stripped(out):
        # Drop the trailing wall-clock column; everything else must match.
        return [line.rstrip().rsplit(maxsplit=1)[0]
                for line in out.strip().splitlines() if line.strip()]

    assert main(["solve", "--dataset", "facebook", *TINY]) == 0
    serial_out = capsys.readouterr().out
    assert main([
        "solve", "--dataset", "facebook", "--shard-size", "4", "--workers", "2",
        *TINY,
    ]) == 0
    parallel_out = capsys.readouterr().out
    assert stripped(parallel_out) == stripped(serial_out)


def test_parser_accepts_scaling_flags():
    parser = build_parser()
    args = parser.parse_args(["solve", "--shard-size", "16", "--workers", "4"])
    assert args.shard_size == 16
    assert args.workers == 4
