"""Tests for the command-line interface (run in-process with tiny settings)."""

import pytest

from repro.cli import build_parser, main

TINY = ["--scale", "0.08", "--samples", "15", "--candidate-limit", "3",
        "--pivot-limit", "6", "--seed", "3"]


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_parser_rejects_unknown_dataset():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["solve", "--dataset", "myspace"])


def test_datasets_command(capsys):
    assert main(["datasets", "--scale", "0.08"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out
    assert "douban" in out


def test_solve_command(capsys):
    assert main(["solve", "--dataset", "facebook", *TINY]) == 0
    out = capsys.readouterr().out
    assert "S3CA on" in out
    assert "redemption_rate" in out


def test_solve_command_full_budget_flag(capsys):
    assert main(["solve", "--dataset", "facebook", "--spend-full-budget", *TINY]) == 0
    assert "redemption_rate" in capsys.readouterr().out


def test_compare_command_without_im_s(capsys):
    assert main(["compare", "--dataset", "facebook", "--no-im-s", *TINY]) == 0
    out = capsys.readouterr().out
    for name in ("IM-U", "IM-L", "PM-U", "PM-L", "S3CA"):
        assert name in out
    assert "IM-S" not in out


def test_sweep_budget_command(capsys):
    assert main([
        "sweep-budget", "--dataset", "facebook", "--budgets", "30", "60", *TINY
    ]) == 0
    out = capsys.readouterr().out
    assert "Redemption rate vs budget" in out
    assert "Total benefit vs budget" in out


def test_case_study_command(capsys):
    assert main([
        "case-study", "--policy", "booking", "--margins", "0.4", "0.6", *TINY
    ]) == 0
    out = capsys.readouterr().out
    assert "booking" in out
    assert "gross_margin" in out


def test_solve_command_scaling_flags_are_deterministic(capsys):
    """--shard-size / --workers change execution, not the printed result."""

    def stripped(out):
        # Drop the trailing wall-clock column; everything else must match.
        return [line.rstrip().rsplit(maxsplit=1)[0]
                for line in out.strip().splitlines() if line.strip()]

    assert main(["solve", "--dataset", "facebook", *TINY]) == 0
    serial_out = capsys.readouterr().out
    assert main([
        "solve", "--dataset", "facebook", "--shard-size", "4", "--workers", "2",
        *TINY,
    ]) == 0
    parallel_out = capsys.readouterr().out
    assert stripped(parallel_out) == stripped(serial_out)


def test_parser_accepts_scaling_flags():
    parser = build_parser()
    args = parser.parse_args(["solve", "--shard-size", "16", "--workers", "4"])
    assert args.shard_size == 16
    assert args.workers == 4


# ----------------------------------------------------------------------
# parse-time validation of scaling knobs
# ----------------------------------------------------------------------


@pytest.mark.parametrize("flag", ["--workers", "--shard-size", "--pipeline-depth"])
@pytest.mark.parametrize("value", ["0", "-1", "-128"])
def test_non_positive_scaling_knobs_rejected_at_parse_time(flag, value, capsys):
    """0/negative worker or shard counts are argparse errors, not deep crashes."""
    parser = build_parser()
    with pytest.raises(SystemExit) as excinfo:
        parser.parse_args(["solve", flag, value])
    assert excinfo.value.code == 2
    assert "must be a positive integer" in capsys.readouterr().err


def test_non_integer_scaling_knob_rejected(capsys):
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["solve", "--workers", "many"])
    assert "is not an integer" in capsys.readouterr().err


def test_serve_parser_knobs():
    parser = build_parser()
    args = parser.parse_args([
        "serve", "--host", "0.0.0.0", "--port", "9999", "--workers", "2",
        "--job-workers", "3", "--max-queue", "5",
    ])
    assert args.command == "serve"
    assert args.host == "0.0.0.0"
    assert args.port == 9999
    assert args.workers == 2
    assert args.job_workers == 3
    assert args.max_queue == 5


def test_serve_parser_rejects_bad_port(capsys):
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["serve", "--port", "0"])
    assert "must be a positive integer" in capsys.readouterr().err


# ----------------------------------------------------------------------
# interrupt / broken-pipe exit paths
# ----------------------------------------------------------------------


def test_main_keyboard_interrupt_returns_130(monkeypatch, capsys):
    """Ctrl-C mid-solve: exit 130, a one-line notice, no traceback."""
    import repro.cli as cli

    def interrupted(args):
        raise KeyboardInterrupt

    monkeypatch.setitem(cli._COMMANDS, "solve", interrupted)
    assert main(["solve", "--dataset", "facebook", *TINY]) == 130
    captured = capsys.readouterr()
    assert "interrupted" in captured.err
    assert "Traceback" not in captured.err


def test_main_keyboard_interrupt_releases_pools(monkeypatch):
    """The interrupt path tears down live pools and owned shm segments."""
    import repro.cli as cli

    calls = []
    monkeypatch.setitem(
        cli._COMMANDS, "solve", lambda args: (_ for _ in ()).throw(KeyboardInterrupt)
    )
    import repro.diffusion.parallel as parallel
    import repro.utils.shm as shm

    monkeypatch.setattr(
        parallel, "shutdown_live_pools", lambda: calls.append("pools") or 0
    )
    monkeypatch.setattr(shm, "sweep_owned", lambda: calls.append("shm") or 0)
    assert main(["solve", "--dataset", "facebook", *TINY]) == 130
    assert calls == ["pools", "shm"]


def test_main_broken_pipe_returns_141(monkeypatch):
    """`repro ... | head` must exit with the SIGPIPE code, not a traceback."""
    import repro.cli as cli

    monkeypatch.setitem(
        cli._COMMANDS, "solve", lambda args: (_ for _ in ()).throw(BrokenPipeError)
    )
    # Keep pytest's captured stdout intact: the dup2 dance is only for real
    # pipes, not in-process tests.
    monkeypatch.setattr(cli, "_suppress_broken_pipe", lambda: None)
    assert main(["solve", "--dataset", "facebook", *TINY]) == 141


def test_shutdown_live_pools_closes_everything():
    from repro.diffusion.parallel import (
        SharedShardPool,
        live_pool_count,
        shutdown_live_pools,
    )

    pool = SharedShardPool(2)
    assert live_pool_count() >= 1
    closed = shutdown_live_pools()
    assert closed >= 1
    assert pool.closed
    assert shutdown_live_pools() == 0  # idempotent


@pytest.mark.skipif(not hasattr(__import__("signal"), "SIGINT"), reason="posix only")
def test_sigint_mid_solve_exits_clean(tmp_path):
    """SIGINT during a multi-worker solve: exit 130, no shm residue left.

    Runs the real CLI in a subprocess, interrupts it while workers are busy,
    and checks the three acceptance properties: exit code 130, no Python
    traceback, and no new /dev/shm/repro-* segments surviving the process.
    """
    import glob
    import os
    import signal
    import subprocess
    import sys
    import time

    before = set(glob.glob("/dev/shm/repro-*"))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.abspath("src"), env.get("PYTHONPATH", "")])
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "solve",
            "--dataset", "facebook", "--scale", "1.0", "--samples", "400",
            "--workers", "2", "--seed", "3",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        start_new_session=True,
        text=True,
    )
    try:
        time.sleep(4.0)  # let the pool spin up and the solve get going
        if process.poll() is not None:  # pragma: no cover - solve too fast
            pytest.skip("solve finished before the interrupt could land")
        process.send_signal(signal.SIGINT)
        try:
            _, stderr = process.communicate(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - hang guard
            process.kill()
            pytest.fail("CLI did not exit within 30s of SIGINT")
        assert process.returncode == 130, stderr
        assert "Traceback" not in stderr, stderr
        assert "interrupted" in stderr
        leaked = set(glob.glob("/dev/shm/repro-*")) - before
        assert not leaked, f"shm segments leaked past SIGINT: {sorted(leaked)}"
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup fallback
            os.killpg(process.pid, signal.SIGKILL)
