"""Shared fixtures for the test suite.

The fixtures centre on small, hand-analysable graphs:

* ``example1_graph`` reproduces the instance of the paper's Example 1 (Fig. 3):
  a cheap seed ``v1`` with two ranked friends, each with two friends of their
  own, unit benefits and SC costs.  Its marginal-redemption numbers are worked
  out in the paper, so tests can pin our implementation to them exactly.
* ``two_hop_path`` / ``small_star`` are minimal topologies for cascade and
  cost-model unit tests.
* ``toy`` is the packaged 8-node quickstart scenario.
"""

from __future__ import annotations

import pytest

from repro.economics.scenario import Scenario
from repro.experiments.datasets import toy_scenario
from repro.graph.social_graph import SocialGraph


@pytest.fixture
def example1_graph() -> SocialGraph:
    """The Example 1 instance (Fig. 3 of the paper).

    ``v1`` is the only affordable seed (seed cost ~0); every user has benefit
    and SC cost 1.  ``v1``'s friends are ``v2`` (probability 0.6) and ``v3``
    (0.4); ``v2``'s friends are ``v4`` (0.5) and ``v5`` (0.4); ``v3``'s are
    ``v6`` (0.8) and ``v7`` (0.7).
    """
    graph = SocialGraph()
    edges = [
        ("v1", "v2", 0.6),
        ("v1", "v3", 0.4),
        ("v2", "v4", 0.5),
        ("v2", "v5", 0.4),
        ("v3", "v6", 0.8),
        ("v3", "v7", 0.7),
    ]
    for source, target, probability in edges:
        graph.add_edge(source, target, probability)
    for node in graph.nodes():
        graph.add_node(
            node,
            benefit=1.0,
            sc_cost=1.0,
            seed_cost=0.01 if node == "v1" else 1000.0,
        )
    return graph


@pytest.fixture
def example1_scenario(example1_graph) -> Scenario:
    """Example 1 wrapped in a scenario with a budget that fits a few coupons."""
    return Scenario(graph=example1_graph, budget_limit=3.0, name="example1")


@pytest.fixture
def two_hop_path() -> SocialGraph:
    """``a -> b -> c`` with probabilities 0.5 and 0.8, unit economics."""
    graph = SocialGraph()
    graph.add_edge("a", "b", 0.5)
    graph.add_edge("b", "c", 0.8)
    for node in graph.nodes():
        graph.add_node(node, benefit=1.0, seed_cost=1.0, sc_cost=1.0)
    return graph


@pytest.fixture
def small_star() -> SocialGraph:
    """A centre with three leaves at probabilities 0.9 / 0.5 / 0.1."""
    graph = SocialGraph()
    graph.add_edge("hub", "x", 0.9)
    graph.add_edge("hub", "y", 0.5)
    graph.add_edge("hub", "z", 0.1)
    for node in graph.nodes():
        graph.add_node(node, benefit=2.0, seed_cost=3.0, sc_cost=1.0)
    return graph


@pytest.fixture
def toy() -> Scenario:
    """The packaged quickstart scenario."""
    return toy_scenario()
