"""Tests for NodeAttributes."""

import pytest

from repro.graph.attributes import NodeAttributes


def test_defaults_are_zero():
    attrs = NodeAttributes()
    assert attrs.benefit == 0.0
    assert attrs.seed_cost == 0.0
    assert attrs.sc_cost == 0.0


def test_negative_values_rejected():
    with pytest.raises(ValueError):
        NodeAttributes(benefit=-1.0)
    with pytest.raises(ValueError):
        NodeAttributes(seed_cost=-0.1)
    with pytest.raises(ValueError):
        NodeAttributes(sc_cost=-5)


def test_with_methods_return_new_instances():
    attrs = NodeAttributes(benefit=1.0, seed_cost=2.0, sc_cost=3.0)
    updated = attrs.with_benefit(10.0)
    assert updated.benefit == 10.0
    assert attrs.benefit == 1.0
    assert updated.seed_cost == 2.0

    assert attrs.with_seed_cost(5.0).seed_cost == 5.0
    assert attrs.with_sc_cost(6.0).sc_cost == 6.0


def test_frozen():
    attrs = NodeAttributes(benefit=1.0)
    with pytest.raises(AttributeError):
        attrs.benefit = 2.0  # type: ignore[misc]


def test_dict_round_trip():
    attrs = NodeAttributes(benefit=1.5, seed_cost=2.5, sc_cost=0.5)
    assert NodeAttributes.from_dict(attrs.as_dict()) == attrs


def test_from_dict_with_missing_keys():
    attrs = NodeAttributes.from_dict({"benefit": 3})
    assert attrs.benefit == 3.0
    assert attrs.seed_cost == 0.0
