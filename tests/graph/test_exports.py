"""Subpackage export surface tests.

These guard the documented import paths of each subpackage: everything listed
in a subpackage's ``__all__`` must resolve, so downstream users can rely on
the names shown in the README architecture section.
"""

import importlib

import pytest

SUBPACKAGES = [
    "repro.graph",
    "repro.economics",
    "repro.diffusion",
    "repro.core",
    "repro.baselines",
    "repro.experiments",
    "repro.utils",
]


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_all_resolves(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} has no __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20


def test_cli_module_importable():
    module = importlib.import_module("repro.cli")
    assert callable(module.main)
    assert callable(module.build_parser)
