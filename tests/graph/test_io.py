"""Tests for graph persistence (edge list and JSON formats)."""

import pytest

from repro.exceptions import GraphError
from repro.graph.io import load_edge_list, load_json, save_edge_list, save_json
from repro.graph.social_graph import SocialGraph


@pytest.fixture
def sample_graph():
    graph = SocialGraph()
    graph.add_edge(1, 2, 0.5)
    graph.add_edge(2, 3, 0.25)
    graph.add_node(1, benefit=4.0, seed_cost=2.0, sc_cost=1.0)
    return graph


def test_edge_list_round_trip(sample_graph, tmp_path):
    path = tmp_path / "graph.txt"
    save_edge_list(sample_graph, path)
    loaded = load_edge_list(path)
    assert set(loaded.edges()) == set(sample_graph.edges())


def test_edge_list_comments_and_default_probability(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text("# a comment\n1 2\n2 3 0.7\n\n")
    graph = load_edge_list(path, default_probability=0.2)
    assert graph.probability(1, 2) == 0.2
    assert graph.probability(2, 3) == 0.7


def test_edge_list_reciprocal_in_degree(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text("1 3\n2 3\n")
    graph = load_edge_list(path, reciprocal_in_degree=True)
    assert graph.probability(1, 3) == pytest.approx(0.5)


def test_edge_list_malformed_line_raises(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text("justonetoken\n")
    with pytest.raises(GraphError):
        load_edge_list(path)


def test_edge_list_string_node_ids(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text("alice bob 0.4\n")
    graph = load_edge_list(path)
    assert graph.has_edge("alice", "bob")


def test_json_round_trip_preserves_attributes(sample_graph, tmp_path):
    path = tmp_path / "graph.json"
    save_json(sample_graph, path)
    loaded = load_json(path)
    assert loaded.num_nodes == sample_graph.num_nodes
    assert loaded.num_edges == sample_graph.num_edges
    assert loaded.benefit(1) == 4.0
    assert loaded.seed_cost(1) == 2.0
    assert loaded.probability(2, 3) == 0.25
