"""The streaming SNAP loader and the content-addressed compile cache.

Two contracts are locked down here:

* **parity** — :func:`load_snap_graph` produces the exact compiled graph the
  reference ``load_edge_list(...).compiled()`` path would (same node order,
  CSR ranking, draw-order ``edge_pos``) for every file shape: duplicate
  edges, comments, mixed 2/3-column lines, string ids, any chunk size;
* **the cache is invisible** — a warm :func:`load_compiled_snap` memory-maps
  bit-identical arrays to a fresh compile, and the content hash makes a
  stale hit impossible (touching a byte of the source changes the key).
"""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.io import (
    GRAPH_CACHE_ENV,
    default_graph_cache_dir,
    load_compiled_snap,
    load_edge_list,
    load_snap_graph,
    snap_cache_path,
)

FIELDS = ("indptr", "indices", "probs", "edge_pos", "benefits", "seed_costs", "sc_costs")


def _write(tmp_path, text, name="edges.txt"):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


def _assert_compiled_equal(actual, expected):
    assert list(actual.node_ids) == list(expected.node_ids)
    for field in FIELDS:
        assert np.array_equal(
            np.asarray(getattr(actual, field)), np.asarray(getattr(expected, field))
        ), field


def _random_edges(seed, num_nodes=35, num_lines=300):
    rng = np.random.default_rng(seed)
    pairs = rng.integers(0, num_nodes, size=(num_lines, 2))
    return [
        (int(s), int(d), round(float(p), 3))
        for (s, d), p in zip(pairs, rng.random(num_lines))
        if s != d
    ]


# ----------------------------------------------------------------------
# parity with the SocialGraph reference path
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kwargs", [
    {},
    {"default_probability": 0.25},
    {"reciprocal_in_degree": True},
])
def test_snap_parity_int_ids_with_duplicates(tmp_path, kwargs):
    edges = _random_edges(0)
    text = "# src dst prob\n" + "\n".join(f"{s}\t{d} {p}" for s, d, p in edges)
    path = _write(tmp_path, text)
    _assert_compiled_equal(
        load_snap_graph(path, **kwargs), load_edge_list(path, **kwargs).compiled()
    )


def test_snap_parity_two_column_default_probability(tmp_path):
    edges = _random_edges(1)
    path = _write(tmp_path, "\n".join(f"{s} {d}" for s, d, _ in edges))
    _assert_compiled_equal(
        load_snap_graph(path, default_probability=0.4),
        load_edge_list(path, default_probability=0.4).compiled(),
    )


def test_snap_parity_string_ids(tmp_path):
    edges = _random_edges(2)
    path = _write(tmp_path, "\n".join(f"u{s} v{d} {p}" for s, d, p in edges))
    _assert_compiled_equal(
        load_snap_graph(path), load_edge_list(path).compiled()
    )


def test_snap_parity_mixed_column_counts(tmp_path):
    edges = _random_edges(3)
    lines = [
        f"{s} {d} {p}" if index % 3 else f"{s} {d}"
        for index, (s, d, p) in enumerate(edges)
    ]
    path = _write(tmp_path, "\n".join(lines))
    _assert_compiled_equal(
        load_snap_graph(path, default_probability=0.5),
        load_edge_list(path, default_probability=0.5).compiled(),
    )


@pytest.mark.parametrize("chunk_bytes", [7, 64, 4096])
def test_snap_parity_across_chunk_boundaries(tmp_path, chunk_bytes):
    edges = _random_edges(4)
    path = _write(
        tmp_path, "# header\n\n" + "\n".join(f"{s} {d} {p}" for s, d, p in edges)
    )
    _assert_compiled_equal(
        load_snap_graph(path, chunk_bytes=chunk_bytes),
        load_edge_list(path).compiled(),
    )


def test_zero_and_one_based_ids_give_isomorphic_structure(tmp_path):
    zero = load_snap_graph(_write(tmp_path, "0 1 0.5\n1 2 0.3\n0 2 0.8", "z.txt"))
    one = load_snap_graph(_write(tmp_path, "1 2 0.5\n2 3 0.3\n1 3 0.8", "o.txt"))
    assert zero.node_ids == [0, 1, 2]
    assert one.node_ids == [1, 2, 3]
    for field in ("indptr", "indices", "probs", "edge_pos"):
        assert np.array_equal(getattr(zero, field), getattr(one, field))


# ----------------------------------------------------------------------
# irregular input
# ----------------------------------------------------------------------


def test_comments_headers_and_blank_lines_are_ignored(tmp_path):
    path = _write(tmp_path, "# SNAP header\n# more\n\n  \n1 2 0.5\n# tail\n2 3 0.7\n")
    compiled = load_snap_graph(path)
    assert compiled.node_ids == [1, 2, 3]
    assert compiled.num_edges == 2


def test_self_loops_are_skipped_without_creating_their_node(tmp_path):
    path = _write(tmp_path, "1 2 0.5\n9 9 0.9\n2 1 0.4\n")
    compiled = load_snap_graph(path)
    assert compiled.node_ids == [1, 2]
    assert compiled.num_edges == 2


def test_duplicate_edges_keep_last_probability_first_position(tmp_path):
    # The reference path overwrites the probability in place; the duplicate
    # must not create a second edge or move the first one.
    path = _write(tmp_path, "1 2 0.9\n1 3 0.5\n1 2 0.1\n")
    compiled = load_snap_graph(path)
    reference = load_edge_list(path).compiled()
    _assert_compiled_equal(compiled, reference)
    assert compiled.num_edges == 2
    assert compiled.ranked_out_neighbors(1) == [(3, 0.5), (2, 0.1)]


def test_malformed_line_reports_path_and_line_number(tmp_path):
    path = _write(tmp_path, "1 2 0.5\njunk\n")
    with pytest.raises(GraphError, match=r"edges\.txt:2"):
        load_snap_graph(path)


def test_malformed_probability_reports_line_number(tmp_path):
    path = _write(tmp_path, "1 2 0.5\n2 3 zero.nine\n")
    with pytest.raises(GraphError, match=r"edges\.txt:2.*probab"):
        load_snap_graph(path)


def test_out_of_range_probability_is_rejected(tmp_path):
    path = _write(tmp_path, "1 2 1.5\n")
    with pytest.raises(GraphError, match=r"outside \[0, 1\]"):
        load_snap_graph(path)


def test_empty_and_comment_only_files(tmp_path):
    compiled = load_snap_graph(_write(tmp_path, "# nothing here\n\n"))
    assert compiled.num_nodes == 0
    assert compiled.num_edges == 0


# ----------------------------------------------------------------------
# the compile cache
# ----------------------------------------------------------------------


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    cache = tmp_path / "graph-cache"
    monkeypatch.setenv(GRAPH_CACHE_ENV, str(cache))
    return cache


def test_cache_round_trip_is_bit_identical_and_memory_mapped(tmp_path, cache_dir):
    edges = _random_edges(5)
    path = _write(tmp_path, "\n".join(f"{s} {d} {p}" for s, d, p in edges))
    cold = load_compiled_snap(path)
    entry = snap_cache_path(path)
    assert (entry / "meta.json").exists()
    warm = load_compiled_snap(path)
    fresh = load_snap_graph(path)
    _assert_compiled_equal(cold, fresh)
    _assert_compiled_equal(warm, fresh)
    assert isinstance(warm.indptr, np.memmap)
    # node ids come back as the same plain Python values.
    assert warm.node_ids == fresh.node_ids


def test_cached_node_ids_and_index_load_lazily(tmp_path, cache_dir):
    path = _write(tmp_path, "1 2 0.5\n2 3 0.7\n")
    load_compiled_snap(path)
    warm = load_compiled_snap(path)
    assert warm._node_ids is None
    assert warm._index is None
    assert warm.index_of(3) == 2  # forces materialisation
    assert warm._node_ids == [1, 2, 3]


def test_touching_the_source_changes_the_cache_key(tmp_path, cache_dir):
    path = _write(tmp_path, "1 2 0.5\n")
    first_entry = snap_cache_path(path)
    load_compiled_snap(path)
    path.write_text("1 2 0.5\n2 3 0.7\n", encoding="utf-8")
    assert snap_cache_path(path) != first_entry
    recompiled = load_compiled_snap(path)
    assert recompiled.num_edges == 2


def test_build_parameters_participate_in_the_key(tmp_path, cache_dir):
    path = _write(tmp_path, "1 2 0.5\n2 1 0.7\n")
    plain = snap_cache_path(path)
    assert snap_cache_path(path, reciprocal_in_degree=True) != plain
    assert snap_cache_path(path, default_probability=0.2) != plain


def test_explicit_cache_dir_and_use_cache_false(tmp_path):
    edges_path = _write(tmp_path, "1 2 0.5\n")
    cache = tmp_path / "explicit-cache"
    compiled = load_compiled_snap(edges_path, cache_dir=cache)
    assert (snap_cache_path(edges_path, cache_dir=cache) / "meta.json").exists()
    bypass = load_compiled_snap(edges_path, cache_dir=cache, use_cache=False)
    _assert_compiled_equal(bypass, compiled)
    assert not isinstance(bypass.indptr, np.memmap)


def test_default_cache_dir_honours_environment(monkeypatch):
    monkeypatch.setenv(GRAPH_CACHE_ENV, "/tmp/some-cache")
    assert str(default_graph_cache_dir()) == "/tmp/some-cache"
    monkeypatch.delenv(GRAPH_CACHE_ENV)
    assert default_graph_cache_dir().name == "repro-graphs"


def test_cached_graph_estimates_identically_to_fresh(tmp_path, cache_dir):
    """The memmapped arrays drive the full Monte-Carlo engine bit-identically."""
    from repro.diffusion.engine import CompiledCascadeEngine

    edges = _random_edges(6, num_nodes=20, num_lines=120)
    path = _write(tmp_path, "\n".join(f"{s} {d} {p}" for s, d, p in edges))
    load_compiled_snap(path)  # populate
    warm = load_compiled_snap(path)
    fresh = load_snap_graph(path)
    seeds = [fresh.node_ids[0]]
    engine_warm = CompiledCascadeEngine(warm, 30, seed=13)
    engine_fresh = CompiledCascadeEngine(fresh, 30, seed=13)
    counts_w, benefit_w = engine_warm.run(seeds, {fresh.node_ids[1]: 1})
    counts_f, benefit_f = engine_fresh.run(seeds, {fresh.node_ids[1]: 1})
    assert np.array_equal(counts_w, counts_f)
    assert benefit_w == benefit_f


def test_snap_scenario_builds_on_the_cache(tmp_path, cache_dir):
    from repro.experiments.datasets import snap_scenario

    edges = _random_edges(7, num_nodes=15, num_lines=60)
    path = _write(tmp_path, "\n".join(f"{s} {d}" for s, d, _ in edges))
    scenario = snap_scenario(path, seed=3)
    assert scenario.budget_limit == 2.0 * scenario.graph.num_nodes
    assert (snap_cache_path(path, reciprocal_in_degree=True) / "meta.json").exists()
    # 1/in-degree probabilities, the paper's weighted-cascade setting.
    graph = scenario.graph
    some_target = next(t for _, t, _ in graph.edges())
    assert graph.probability(
        next(s for s, t, _ in graph.edges() if t == some_target), some_target
    ) == pytest.approx(1.0 / graph.in_degree(some_target))
