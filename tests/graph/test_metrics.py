"""Tests for structural graph metrics."""

import pytest

from repro.graph.generators import path_graph, star_graph
from repro.graph.metrics import (
    average_clustering_coefficient,
    connected_component_sizes,
    degree_histogram,
    farthest_hop_from,
    reachable_set,
)
from repro.graph.social_graph import SocialGraph


def test_degree_histogram_out_and_in():
    graph = star_graph(3)
    out_hist = degree_histogram(graph, direction="out")
    in_hist = degree_histogram(graph, direction="in")
    assert out_hist == {3: 1, 0: 3}
    assert in_hist == {0: 1, 1: 3}


def test_degree_histogram_invalid_direction():
    with pytest.raises(ValueError):
        degree_histogram(star_graph(2), direction="sideways")


def test_clustering_zero_on_star_and_path():
    assert average_clustering_coefficient(star_graph(4)) == 0.0
    assert average_clustering_coefficient(path_graph(5)) == 0.0


def test_clustering_positive_on_closed_triangle():
    graph = SocialGraph()
    graph.add_edge("a", "b", 0.5)
    graph.add_edge("a", "c", 0.5)
    graph.add_edge("b", "c", 0.5)
    assert average_clustering_coefficient(graph) > 0.0


def test_clustering_empty_graph_is_zero():
    assert average_clustering_coefficient(SocialGraph()) == 0.0


def test_reachable_set_follows_direction():
    graph = path_graph(4)
    assert reachable_set(graph, [0]) == {0, 1, 2, 3}
    assert reachable_set(graph, [2]) == {2, 3}
    assert reachable_set(graph, [3]) == {3}


def test_reachable_set_ignores_unknown_sources():
    graph = path_graph(3)
    assert reachable_set(graph, ["not-there"]) == set()


def test_farthest_hop_unrestricted():
    graph = path_graph(5)
    assert farthest_hop_from(graph, [0]) == 4
    assert farthest_hop_from(graph, [4]) == 0


def test_farthest_hop_restricted_to_activated_set():
    graph = path_graph(5)
    assert farthest_hop_from(graph, [0], restrict_to={0, 1, 2}) == 2
    assert farthest_hop_from(graph, [0], restrict_to={0}) == 0


def test_farthest_hop_multiple_sources():
    graph = path_graph(6)
    assert farthest_hop_from(graph, [0, 3]) == 2


def test_connected_component_sizes():
    graph = SocialGraph()
    graph.add_edge("a", "b", 0.5)
    graph.add_edge("c", "d", 0.5)
    graph.add_node("e")
    assert connected_component_sizes(graph) == [2, 2, 1]
