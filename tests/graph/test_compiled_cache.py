"""The CSR snapshot cache on SocialGraph / Scenario and its invalidation."""

from __future__ import annotations

from repro.diffusion.factory import make_estimator
from repro.experiments.datasets import toy_scenario


def test_compiled_is_cached_until_mutation(toy):
    graph = toy.graph
    first = graph.compiled()
    assert graph.compiled() is first  # cache hit

    node = next(iter(graph.nodes()))
    graph.add_node(node, benefit=123.0)  # attribute mutation bumps the version
    second = graph.compiled()
    assert second is not first
    assert second.benefits[second.index_of(node)] == 123.0


def test_scenario_compiled_graph_shared_across_estimators():
    scenario = toy_scenario()
    first = make_estimator(scenario, "mc-compiled", num_samples=10, seed=1)
    second = make_estimator(scenario, "mc-compiled", num_samples=20, seed=2)
    # Both estimators run on the scenario's single cached CSR snapshot.
    assert first._engine.compiled is scenario.compiled_graph()
    assert second._engine.compiled is scenario.compiled_graph()


def test_edge_mutations_invalidate_cache(toy):
    graph = toy.graph
    before = graph.compiled()
    nodes = list(graph.nodes())
    graph.add_edge(nodes[0], nodes[-1], 0.25)
    after = graph.compiled()
    assert after is not before
    assert after.num_edges == before.num_edges + 1
    graph.remove_edge(nodes[0], nodes[-1])
    assert graph.compiled() is not after
    assert graph.compiled().num_edges == before.num_edges


def test_copy_does_not_share_cache(toy):
    graph = toy.graph
    original = graph.compiled()
    clone = graph.copy()
    assert clone.compiled() is not original


def test_attribute_edits_do_not_recompile_topology(toy):
    """Regression: attribute-only edits used to discard the whole CSR.

    The single version counter made ``add_node(existing, benefit=...)``
    invalidate the cached snapshot wholesale, re-running the full CSR build
    for a change that cannot touch the adjacency arrays.  With the counter
    split into topology/attribute sub-versions, the attribute path rebuilds
    only the benefit/cost vectors and *aliases* the adjacency arrays of the
    cached snapshot.
    """
    graph = toy.graph
    before = graph.compiled()
    topology_before = graph.topology_version

    node = next(iter(graph.nodes()))
    graph.add_node(node, benefit=77.0)
    assert graph.topology_version == topology_before
    assert graph.attribute_version > 0

    after = graph.compiled()
    assert after is not before  # new snapshot object (benefits differ)...
    assert after.indptr is before.indptr  # ...sharing the topology arrays
    assert after.indices is before.indices
    assert after.probs is before.probs
    assert after.edge_pos is before.edge_pos
    assert after.node_ids == before.node_ids
    assert after.benefits[after.index_of(node)] == 77.0
    assert graph.compiled() is after  # and cached again

    # A topology edit still invalidates wholesale.
    nodes = list(graph.nodes())
    graph.add_edge(nodes[0], nodes[-1], 0.125)
    assert graph.topology_version == topology_before + 1
    rebuilt = graph.compiled()
    assert rebuilt.indptr is not after.indptr
