"""Tests for the synthetic graph generators."""

import pytest

from repro.graph.generators import (
    GraphSpec,
    erdos_renyi_graph,
    path_graph,
    power_law_graph,
    ppgg_like_graph,
    star_graph,
    tree_graph,
)
from repro.graph.metrics import average_clustering_coefficient


def test_path_graph_structure():
    graph = path_graph(4, probability=0.3)
    assert graph.num_nodes == 4
    assert graph.num_edges == 3
    assert graph.has_edge(0, 1)
    assert graph.has_edge(2, 3)
    assert graph.probability(1, 2) == 0.3


def test_star_graph_structure():
    graph = star_graph(5, probability=0.2)
    assert graph.num_nodes == 6
    assert graph.out_degree(0) == 5
    assert all(graph.in_degree(leaf) == 1 for leaf in range(1, 6))


def test_tree_graph_node_count():
    graph = tree_graph(branching=2, depth=3)
    assert graph.num_nodes == 1 + 2 + 4 + 8
    assert graph.num_edges == graph.num_nodes - 1
    assert graph.out_degree(0) == 2


def test_tree_graph_depth_zero():
    graph = tree_graph(branching=3, depth=0)
    assert graph.num_nodes == 1
    assert graph.num_edges == 0


def test_erdos_renyi_is_seeded():
    first = erdos_renyi_graph(30, 0.1, seed=5)
    second = erdos_renyi_graph(30, 0.1, seed=5)
    assert set(first.edges()) == set(second.edges())


def test_erdos_renyi_zero_probability_has_no_edges():
    graph = erdos_renyi_graph(10, 0.0, seed=1)
    assert graph.num_edges == 0
    assert graph.num_nodes == 10


def test_erdos_renyi_reciprocal_probabilities():
    graph = erdos_renyi_graph(25, 0.2, seed=3)
    for _, target, probability in graph.edges():
        assert probability == pytest.approx(1.0 / graph.in_degree(target))


def test_power_law_graph_size_and_determinism():
    first = power_law_graph(60, avg_out_degree=4, seed=11)
    second = power_law_graph(60, avg_out_degree=4, seed=11)
    assert first.num_nodes == 60
    assert first.num_edges > 0
    assert set(first.edges()) == set(second.edges())


def test_power_law_graph_has_degree_heterogeneity():
    graph = power_law_graph(150, avg_out_degree=5, exponent=1.8, seed=2)
    degrees = sorted(graph.out_degree(node) for node in graph.nodes())
    assert degrees[-1] > degrees[len(degrees) // 2]


def test_ppgg_like_clustering_increases_with_parameter():
    low = ppgg_like_graph(80, avg_out_degree=4, clustering=0.0, seed=7)
    high = ppgg_like_graph(80, avg_out_degree=4, clustering=0.8, seed=7)
    assert average_clustering_coefficient(high) >= average_clustering_coefficient(low)
    assert high.num_edges >= low.num_edges


def test_ppgg_like_probabilities_are_reciprocal_in_degree():
    graph = ppgg_like_graph(50, avg_out_degree=4, clustering=0.3, seed=9)
    for _, target, probability in graph.edges():
        assert probability == pytest.approx(1.0 / graph.in_degree(target))


def test_graph_spec_build():
    spec = GraphSpec(name="demo", num_nodes=40, avg_out_degree=3, seed=1)
    graph = spec.build()
    assert graph.num_nodes == 40
    assert graph.num_edges > 0


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        path_graph(0)
    with pytest.raises(ValueError):
        star_graph(3, probability=2.0)
    with pytest.raises(ValueError):
        tree_graph(2, depth=-1)
    with pytest.raises(ValueError):
        power_law_graph(10, avg_out_degree=-1)
