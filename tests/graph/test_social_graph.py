"""Tests for the SocialGraph substrate."""

import pytest

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graph.attributes import NodeAttributes
from repro.graph.social_graph import SocialGraph


@pytest.fixture
def triangle():
    graph = SocialGraph()
    graph.add_edge("a", "b", 0.5)
    graph.add_edge("b", "c", 0.3)
    graph.add_edge("a", "c", 0.2)
    return graph


def test_add_node_with_attributes():
    graph = SocialGraph()
    graph.add_node("a", benefit=5.0, seed_cost=2.0, sc_cost=1.0)
    attrs = graph.attributes("a")
    assert attrs.benefit == 5.0
    assert attrs.seed_cost == 2.0
    assert attrs.sc_cost == 1.0


def test_add_node_updates_existing_attributes():
    graph = SocialGraph()
    graph.add_node("a", benefit=5.0)
    graph.add_node("a", seed_cost=3.0)
    assert graph.benefit("a") == 5.0
    assert graph.seed_cost("a") == 3.0


def test_add_edge_creates_endpoints(triangle):
    assert triangle.num_nodes == 3
    assert triangle.num_edges == 3
    assert triangle.has_edge("a", "b")
    assert not triangle.has_edge("b", "a")


def test_self_loop_rejected():
    graph = SocialGraph()
    with pytest.raises(GraphError):
        graph.add_edge("a", "a", 0.5)


def test_invalid_probability_rejected():
    graph = SocialGraph()
    with pytest.raises(ValueError):
        graph.add_edge("a", "b", 1.5)


def test_probability_lookup_and_missing_edge(triangle):
    assert triangle.probability("a", "b") == 0.5
    with pytest.raises(EdgeNotFoundError):
        triangle.probability("c", "a")


def test_missing_node_raises():
    graph = SocialGraph()
    with pytest.raises(NodeNotFoundError):
        graph.out_degree("nope")
    with pytest.raises(NodeNotFoundError):
        graph.attributes("nope")


def test_degrees(triangle):
    assert triangle.out_degree("a") == 2
    assert triangle.in_degree("c") == 2
    assert triangle.in_degree("a") == 0


def test_remove_edge(triangle):
    triangle.remove_edge("a", "b")
    assert not triangle.has_edge("a", "b")
    assert triangle.num_edges == 2
    with pytest.raises(EdgeNotFoundError):
        triangle.remove_edge("a", "b")


def test_re_adding_edge_overwrites_probability(triangle):
    triangle.add_edge("a", "b", 0.9)
    assert triangle.num_edges == 3
    assert triangle.probability("a", "b") == 0.9


def test_ranked_out_neighbors_sorted_by_probability(triangle):
    ranked = triangle.ranked_out_neighbors("a")
    assert [node for node, _ in ranked] == ["b", "c"]
    assert [probability for _, probability in ranked] == [0.5, 0.2]


def test_ranked_out_neighbors_cache_invalidated_on_change(triangle):
    assert [n for n, _ in triangle.ranked_out_neighbors("a")] == ["b", "c"]
    triangle.add_edge("a", "c", 0.95)
    assert [n for n, _ in triangle.ranked_out_neighbors("a")] == ["c", "b"]


def test_ranked_ties_broken_by_identifier():
    graph = SocialGraph()
    graph.add_edge("s", "b", 0.5)
    graph.add_edge("s", "a", 0.5)
    assert [n for n, _ in graph.ranked_out_neighbors("s")] == ["a", "b"]


def test_edges_iteration(triangle):
    edges = set(triangle.edges())
    assert ("a", "b", 0.5) in edges
    assert len(edges) == 3


def test_totals():
    graph = SocialGraph()
    graph.add_node("a", benefit=1.0, seed_cost=2.0, sc_cost=3.0)
    graph.add_node("b", benefit=4.0, seed_cost=5.0, sc_cost=6.0)
    assert graph.total_benefit() == 5.0
    assert graph.total_seed_cost() == 7.0
    assert graph.total_sc_cost() == 9.0


def test_copy_is_independent(triangle):
    clone = triangle.copy()
    clone.add_edge("c", "a", 0.1)
    assert not triangle.has_edge("c", "a")
    assert clone.num_edges == triangle.num_edges + 1


def test_subgraph_induces_edges(triangle):
    sub = triangle.subgraph(["a", "b"])
    assert sub.num_nodes == 2
    assert sub.has_edge("a", "b")
    assert not sub.has_edge("a", "c")


def test_subgraph_missing_node_raises(triangle):
    with pytest.raises(NodeNotFoundError):
        triangle.subgraph(["a", "zzz"])


def test_from_edges_with_attributes():
    attrs = {"a": NodeAttributes(benefit=9.0)}
    graph = SocialGraph.from_edges([("a", "b", 0.4)], attributes=attrs)
    assert graph.benefit("a") == 9.0
    assert graph.has_edge("a", "b")


def test_networkx_round_trip(triangle):
    pytest.importorskip("networkx")
    triangle.add_node("a", benefit=7.0)
    digraph = triangle.to_networkx()
    back = SocialGraph.from_networkx(digraph)
    assert back.num_nodes == triangle.num_nodes
    assert back.num_edges == triangle.num_edges
    assert back.benefit("a") == 7.0
    assert back.probability("a", "b") == 0.5


def test_assign_reciprocal_in_degree_probabilities(triangle):
    triangle.assign_reciprocal_in_degree_probabilities()
    assert triangle.probability("a", "b") == 1.0  # b has in-degree 1
    assert triangle.probability("a", "c") == 0.5  # c has in-degree 2
    assert triangle.probability("b", "c") == 0.5


def test_contains_len_iter(triangle):
    assert "a" in triangle
    assert len(triangle) == 3
    assert set(iter(triangle)) == {"a", "b", "c"}
