"""CompiledGraph round-trip tests against the dict-backed SocialGraph."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.exceptions import NodeNotFoundError
from repro.graph.csr import CompiledGraph
from repro.graph.generators import ppgg_like_graph, star_graph
from repro.graph.social_graph import SocialGraph


@st.composite
def random_graph(draw):
    """A random attributed graph with mixed string/int node identifiers."""
    num_nodes = draw(st.integers(min_value=1, max_value=12))
    nodes = [f"u{i}" if i % 2 else i for i in range(num_nodes)]
    graph = SocialGraph()
    for node in nodes:
        graph.add_node(
            node,
            benefit=draw(st.floats(min_value=0.0, max_value=10.0)),
            seed_cost=draw(st.floats(min_value=0.0, max_value=10.0)),
            sc_cost=draw(st.floats(min_value=0.0, max_value=10.0)),
        )
    possible = [(u, v) for u in nodes for v in nodes if u != v]
    chosen = draw(
        st.lists(
            st.sampled_from(possible), max_size=min(30, len(possible)), unique=True
        )
        if possible
        else st.just([])
    )
    for source, target in chosen:
        graph.add_edge(
            source, target, draw(st.floats(min_value=0.0, max_value=1.0))
        )
    return graph


@settings(max_examples=40, deadline=None)
@given(random_graph())
def test_round_trips_nodes_edges_and_ranked_neighbors(graph):
    compiled = CompiledGraph.from_social_graph(graph)

    assert compiled.num_nodes == graph.num_nodes
    assert compiled.num_edges == graph.num_edges
    assert list(compiled) == list(graph.nodes())

    # node <-> index round trip
    for node in graph.nodes():
        assert compiled.node_of(compiled.index_of(node)) == node

    # the ranked adjacency view is identical, node by node
    for node in graph.nodes():
        assert compiled.ranked_out_neighbors(node) == graph.ranked_out_neighbors(node)
        assert compiled.out_degree(node) == graph.out_degree(node)

    # the edge set (with probabilities) survives compilation
    assert sorted(compiled.edges(), key=str) == sorted(graph.edges(), key=str)


@settings(max_examples=40, deadline=None)
@given(random_graph())
def test_attribute_vectors_match(graph):
    compiled = CompiledGraph.from_social_graph(graph)
    for node in graph.nodes():
        i = compiled.index_of(node)
        assert compiled.benefits[i] == graph.benefit(node)
        assert compiled.seed_costs[i] == graph.seed_cost(node)
        assert compiled.sc_costs[i] == graph.sc_cost(node)


@settings(max_examples=40, deadline=None)
@given(random_graph())
def test_edge_pos_is_a_permutation_of_draw_order(graph):
    """Every ranked edge maps to exactly one coin-flip draw position."""
    compiled = CompiledGraph.from_social_graph(graph)
    assert sorted(compiled.edge_pos.tolist()) == list(range(graph.num_edges))
    # and the mapped probability agrees with the draw-order edge list
    draw_order = list(graph.edges())
    for slot in range(compiled.num_edges):
        _, _, probability = draw_order[int(compiled.edge_pos[slot])]
        assert compiled.probs[slot] == probability


def test_ranked_order_is_by_decreasing_probability():
    graph = star_graph(5, probability=0.5)
    # distinct probabilities so the ranking is unambiguous
    for rank, (_, target, _) in enumerate(list(graph.edges())):
        graph.add_edge(0, target, 0.1 + 0.2 * (rank % 4))
    compiled = CompiledGraph.from_social_graph(graph)
    probs = [p for _, p in compiled.ranked_out_neighbors(0)]
    assert probs == sorted(probs, reverse=True)


def test_indices_of_skips_unknown_and_dedupes_preserving_order():
    graph = star_graph(4)
    compiled = CompiledGraph.from_social_graph(graph)
    result = compiled.indices_of([3, "ghost", 1, 3, 2])
    assert result == [compiled.index_of(3), compiled.index_of(1), compiled.index_of(2)]


def test_allocation_vector_ignores_unknown_and_nonpositive():
    graph = star_graph(4)
    compiled = CompiledGraph.from_social_graph(graph)
    vector = compiled.allocation_vector({0: 2, 1: 0, "ghost": 5, 2: -1})
    assert vector[compiled.index_of(0)] == 2
    assert int(vector.sum()) == 2


def test_unknown_node_raises():
    compiled = CompiledGraph.from_social_graph(star_graph(3))
    with pytest.raises(NodeNotFoundError):
        compiled.index_of("missing")


def test_csr_arrays_are_consistent_on_a_real_topology():
    graph = ppgg_like_graph(
        num_nodes=80, avg_out_degree=5.0, power_law_exponent=1.7,
        clustering=0.3, seed=11,
    )
    compiled = CompiledGraph.from_social_graph(graph)
    assert compiled.indptr[0] == 0
    assert compiled.indptr[-1] == compiled.num_edges
    assert np.all(np.diff(compiled.indptr) >= 0)
    assert np.all((compiled.probs >= 0.0) & (compiled.probs <= 1.0))
    assert np.all((compiled.indices >= 0) & (compiled.indices < compiled.num_nodes))


def test_pickle_round_trip_preserves_graph_and_cascades():
    """A pickled-and-restored CompiledGraph yields identical cascades.

    This is the transport contract of the multiprocess shard executor: the
    compiled graph travels to worker processes by pickle, so a round-tripped
    copy must reproduce the index, every CSR array and — run through the
    cascade engine with the same seed — bit-identical activation counts.
    """
    import pickle

    from repro.diffusion.engine import CompiledCascadeEngine

    graph = ppgg_like_graph(
        num_nodes=60, avg_out_degree=5.0, power_law_exponent=1.7,
        clustering=0.3, seed=7,
    )
    for position, node in enumerate(graph.nodes()):
        graph.add_node(
            node, benefit=1.0 + position % 3, seed_cost=2.0, sc_cost=1.0
        )
    compiled = CompiledGraph.from_social_graph(graph)
    restored = pickle.loads(pickle.dumps(compiled))

    assert restored.node_ids == compiled.node_ids
    assert restored.index == compiled.index
    for attribute in (
        "indptr", "indices", "probs", "edge_pos",
        "benefits", "seed_costs", "sc_costs",
    ):
        assert np.array_equal(
            getattr(restored, attribute), getattr(compiled, attribute)
        )

    nodes = list(graph.nodes())
    seeds = nodes[:3]
    allocation = {node: 2 for node in nodes[:10] if graph.out_degree(node)}
    counts, benefit = CompiledCascadeEngine(compiled, 25, seed=5).run(
        seeds, allocation
    )
    counts_restored, benefit_restored = CompiledCascadeEngine(
        restored, 25, seed=5
    ).run(seeds, allocation)
    assert (counts == counts_restored).all()
    assert benefit == benefit_restored
