"""Tests for the subgraph samplers."""

import pytest

from repro.exceptions import GraphError
from repro.graph.generators import erdos_renyi_graph, power_law_graph
from repro.graph.sampling import (
    forest_fire_sample,
    random_node_sample,
    snowball_sample,
)


@pytest.fixture(scope="module")
def base_graph():
    graph = power_law_graph(120, avg_out_degree=5, seed=1)
    for node in graph.nodes():
        graph.add_node(node, benefit=float(node), seed_cost=1.0, sc_cost=1.0)
    return graph


@pytest.mark.parametrize(
    "sampler", [random_node_sample, snowball_sample, forest_fire_sample]
)
def test_sample_size_and_attribute_preservation(base_graph, sampler):
    sample = sampler(base_graph, 30, seed=3)
    assert sample.num_nodes == 30
    for node in sample.nodes():
        assert sample.benefit(node) == base_graph.benefit(node)
        assert node in base_graph


@pytest.mark.parametrize(
    "sampler", [random_node_sample, snowball_sample, forest_fire_sample]
)
def test_sample_deterministic_given_seed(base_graph, sampler):
    first = sampler(base_graph, 25, seed=9)
    second = sampler(base_graph, 25, seed=9)
    assert set(first.nodes()) == set(second.nodes())


@pytest.mark.parametrize(
    "sampler", [random_node_sample, snowball_sample, forest_fire_sample]
)
def test_sample_edges_are_induced(base_graph, sampler):
    sample = sampler(base_graph, 40, seed=5)
    for source, target, _ in sample.edges():
        assert base_graph.has_edge(source, target)


def test_invalid_sizes_rejected(base_graph):
    with pytest.raises(GraphError):
        random_node_sample(base_graph, 0)
    with pytest.raises(GraphError):
        random_node_sample(base_graph, base_graph.num_nodes + 1)
    with pytest.raises(GraphError):
        snowball_sample(base_graph, 10, num_roots=0)
    with pytest.raises(GraphError):
        forest_fire_sample(base_graph, 10, forward_probability=1.5)


def test_snowball_keeps_local_structure(base_graph):
    from repro.graph.metrics import connected_component_sizes

    sample = snowball_sample(base_graph, 30, seed=2, num_roots=1)
    # A snowball sample grows as a BFS ball, so the bulk of it hangs together
    # in one weak component (uniform sampling typically shatters into many).
    sizes = connected_component_sizes(sample)
    assert sizes[0] >= sample.num_nodes * 0.5


def test_reciprocal_probability_recomputation(base_graph):
    sample = random_node_sample(base_graph, 50, seed=4, reciprocal_in_degree=True)
    for _, target, probability in sample.edges():
        assert probability == pytest.approx(1.0 / sample.in_degree(target))


def test_forest_fire_handles_low_probability(base_graph):
    sample = forest_fire_sample(base_graph, 20, seed=6, forward_probability=0.05)
    assert sample.num_nodes == 20
