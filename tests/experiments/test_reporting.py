"""Tests for the text-table reporting helpers."""

from repro.experiments.reporting import (
    format_series,
    format_table,
    records_to_rows,
    to_csv,
)
from repro.experiments.runner import RunRecord


def test_format_table_alignment_and_title():
    rows = [
        {"algorithm": "S3CA", "rate": 1.23456},
        {"algorithm": "IM-U", "rate": 0.5},
    ]
    text = format_table(rows, title="Fig. X")
    lines = text.splitlines()
    assert lines[0] == "Fig. X"
    assert "algorithm" in lines[1]
    assert "1.235" in text
    assert "IM-U" in text


def test_format_table_empty():
    assert "(no rows)" in format_table([])
    assert "(no rows)" in format_table([], title="T")


def test_format_table_explicit_columns_and_missing_values():
    rows = [{"a": 1.0}, {"a": 2.0, "b": 3.0}]
    text = format_table(rows, columns=["a", "b"])
    assert "b" in text.splitlines()[0]


def test_format_table_handles_infinity():
    text = format_table([{"x": float("inf")}])
    assert "inf" in text


def test_format_series_layout():
    series = {
        "S3CA": {1.0: 2.0, 2.0: 3.0},
        "IM-U": {1.0: 0.5, 2.0: 0.4},
    }
    text = format_series(series, x_label="budget", title="Fig. 6(a)")
    lines = text.splitlines()
    assert lines[0] == "Fig. 6(a)"
    assert lines[1].startswith("budget")
    assert "S3CA" in lines[1] and "IM-U" in lines[1]
    assert len(lines) == 2 + 1 + 2  # title + header + separator + two x rows


def test_to_csv_round_trip():
    rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]
    csv_text = to_csv(rows)
    assert csv_text.splitlines()[0] == "a,b"
    assert "3,4.5" in csv_text
    assert to_csv([]) == ""


def test_format_table_golden():
    """Golden rendering: layout changes must be deliberate."""
    rows = [
        {"algorithm": "S3CA", "rate": 1.5, "explored": 12, "ok": True},
        {"algorithm": "IM-U", "rate": 0.25, "explored": 3, "ok": False},
    ]
    golden = (
        "Fig. G\n"
        "algorithm  rate   explored  ok   \n"
        "---------  -----  --------  -----\n"
        "S3CA       1.500  12        True \n"
        "IM-U       0.250  3         False"
    )
    assert format_table(rows, title="Fig. G") == golden


def test_format_series_golden():
    series = {"S3CA": {40.0: 1.5, 80.0: 1.25}, "IM-U": {40.0: 0.5}}
    golden = (
        "Golden\n"
        "budget  S3CA   IM-U \n"
        "------  -----  -----\n"
        "40.000  1.500  0.500\n"
        "80.000  1.250       "
    )
    assert format_series(series, x_label="budget", title="Golden") == golden


def test_to_csv_golden():
    rows = [
        {"algorithm": "S3CA", "rate": 1.5, "explored": 12, "ok": True},
        {"algorithm": "IM-U", "rate": 0.25, "explored": 3, "ok": False},
    ]
    assert to_csv(rows) == (
        "algorithm,rate,explored,ok\r\n"
        "S3CA,1.5,12,True\r\n"
        "IM-U,0.25,3,False\r\n"
    )


def test_records_to_rows():
    records = [
        RunRecord(algorithm="S3CA", scenario="toy", metrics={"rate": 1.0, "x": 2.0}),
        RunRecord(algorithm="IM-U", scenario="toy", metrics={"rate": 0.5}),
    ]
    rows = records_to_rows(records, metrics=["rate"])
    assert rows[0]["algorithm"] == "S3CA"
    assert rows[0]["rate"] == 1.0
    assert "x" not in rows[0]
