"""Tests for the Fig. 10 optimality study."""

import pytest

from repro.experiments.approximation import (
    approximation_ratio,
    benefit_spread_ratio,
    compare_with_optimal,
    cost_spread_ratio,
    points_to_rows,
    small_instance,
    sweep_gross_margin,
)
from repro.experiments.config import ExperimentConfig
from repro.graph.social_graph import SocialGraph
from repro.economics.scenario import Scenario


def uniform_scenario():
    graph = SocialGraph()
    graph.add_edge("a", "b", 0.5)
    for node in graph.nodes():
        graph.add_node(node, benefit=2.0, seed_cost=2.0, sc_cost=2.0)
    return Scenario(graph, 4.0)


def test_spread_ratios_on_uniform_instance():
    scenario = uniform_scenario()
    assert benefit_spread_ratio(scenario) == pytest.approx(1.0)
    assert cost_spread_ratio(scenario) == pytest.approx(1.0)
    # 1 - e^{-1} for b0 = c0 = 1.
    assert approximation_ratio(scenario) == pytest.approx(0.6321, abs=1e-3)


def test_approximation_ratio_decreases_with_spread():
    scenario = uniform_scenario()
    scenario.graph.add_node("a", benefit=20.0)
    assert approximation_ratio(scenario) < 0.6321


def test_small_instance_has_gross_margin_benefits():
    scenario = small_instance(0.5, num_nodes=10, seed=1)
    graph = scenario.graph
    for node in graph.nodes():
        assert graph.benefit(node) == pytest.approx(graph.sc_cost(node) / 0.5)


def test_compare_with_optimal_bounds_hold():
    config = ExperimentConfig(num_samples=50, seed=13, candidate_limit=4,
                              max_pivot_candidates=10)
    scenario = small_instance(0.5, num_nodes=9, avg_out_degree=1.5, seed=5,
                              budget=6.0)
    point = compare_with_optimal(
        scenario, config=config, max_seeds=1, max_coupons_per_node=2,
        max_total_coupons=4, gross_margin=0.5,
    )
    assert point.optimal_rate >= 0
    assert point.worst_case_bound <= point.optimal_rate + 1e-9
    # S3CA should respect the worst-case guarantee on these tiny instances.
    assert point.above_bound


def test_sweep_gross_margin_rows():
    config = ExperimentConfig(num_samples=30, seed=13, candidate_limit=3,
                              max_pivot_candidates=8)
    points = sweep_gross_margin(
        [0.4, 0.6], config=config,
        instance_kwargs={"num_nodes": 8, "avg_out_degree": 1.5, "budget": 5.0},
    )
    rows = points_to_rows(points)
    assert [row["gross_margin"] for row in rows] == [0.4, 0.6]
    for row in rows:
        assert row["worst_case"] <= row["OPT"] + 1e-9
