"""Tests for the Fig. 8 case study machinery."""

import pytest

from repro.core.s3ca import S3CA
from repro.experiments.case_study import (
    AIRBNB,
    BOOKING,
    case_study_scenario,
    case_study_series,
    run_case_study,
)
from repro.experiments.config import AlgorithmSpec, ExperimentConfig


def test_policies_match_paper_parameters():
    assert AIRBNB.sc_cost == 50.0 and AIRBNB.coupons_per_user == 100
    assert BOOKING.sc_cost == 100.0 and BOOKING.coupons_per_user == 10


def test_case_study_scenario_economics():
    scenario = case_study_scenario(AIRBNB, 0.5, dataset="facebook", scale=0.1, seed=3)
    graph = scenario.graph
    assert all(graph.sc_cost(node) == 50.0 for node in graph.nodes())
    assert all(graph.benefit(node) == pytest.approx(100.0) for node in graph.nodes())
    assert scenario.budget_limit > 0
    assert scenario.metadata["policy"] == "airbnb"


def test_adoption_damps_probabilities():
    raw = case_study_scenario(AIRBNB, 0.5, dataset="facebook", scale=0.1, seed=3)
    # Every edge probability must be <= the undamped 1/in-degree value.
    for _, target, probability in raw.graph.edges():
        assert probability <= 1.0 / raw.graph.in_degree(target) + 1e-12


def test_case_study_fixed_seed_is_bit_deterministic():
    """Golden-style lockdown of the Fig. 8 harness on a tiny fixed-seed run.

    Timing aside, two identical invocations must produce identical records —
    scenario economics, adoption damping, greedy decisions and metrics are
    all seeded.
    """
    config = ExperimentConfig(
        dataset="facebook", scale=0.1, num_samples=15, seed=5,
        candidate_limit=3, max_pivot_candidates=6,
    )
    algorithms = [
        AlgorithmSpec(
            "S3CA",
            lambda scenario, estimator, seed: S3CA(
                scenario, estimator=estimator, candidate_limit=3,
                max_pivot_candidates=6, max_paths_per_seed=10,
            ),
        )
    ]
    runs = [
        run_case_study(AIRBNB, [0.5], config, algorithms=algorithms)
        for _ in range(2)
    ]
    stable_metrics = (
        "redemption_rate", "expected_benefit", "total_cost", "seed_sc_rate",
        "explored_nodes",
    )
    for first, second in zip(runs[0][0.5], runs[1][0.5]):
        assert first.algorithm == second.algorithm
        assert first.scenario == second.scenario == "airbnb-gm0.5"
        for metric in stable_metrics:
            assert first.get(metric) == second.get(metric), metric


def test_run_case_study_and_series_shape():
    config = ExperimentConfig(
        dataset="facebook", scale=0.1, num_samples=20, seed=3,
        candidate_limit=3, max_pivot_candidates=8,
    )
    algorithms = [
        AlgorithmSpec(
            "S3CA",
            lambda scenario, estimator, seed: S3CA(
                scenario, estimator=estimator, candidate_limit=3,
                max_pivot_candidates=8, max_paths_per_seed=10,
            ),
        )
    ]
    results = run_case_study(BOOKING, [0.4, 0.6], config, algorithms=algorithms)
    assert set(results) == {0.4, 0.6}
    series = case_study_series(results, "redemption_rate")
    assert set(series["S3CA"]) == {0.4, 0.6}
    assert all(value >= 0 for value in series["S3CA"].values())
