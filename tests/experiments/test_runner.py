"""Tests for the experiment runner (uses tiny configurations throughout)."""

import pytest

from repro.baselines.coupon_wrappers import make_im_u
from repro.core.s3ca import S3CA
from repro.experiments.config import AlgorithmSpec, ExperimentConfig
from repro.experiments.datasets import toy_scenario
from repro.experiments.runner import ExperimentRunner, RunRecord


@pytest.fixture
def tiny_config():
    return ExperimentConfig(num_samples=40, repetitions=1, seed=5, candidate_limit=5)


@pytest.fixture
def runner(tiny_config):
    return ExperimentRunner(toy_scenario(), tiny_config)


def test_default_algorithms_cover_paper_set(runner):
    names = [spec.name for spec in runner.default_algorithms()]
    assert names == ["IM-U", "IM-L", "PM-U", "PM-L", "IM-S", "S3CA"]
    without_im_s = [spec.name for spec in runner.default_algorithms(include_im_s=False)]
    assert "IM-S" not in without_im_s


def test_run_spec_s3ca(runner):
    spec = AlgorithmSpec(
        "S3CA",
        lambda scenario, estimator, seed: S3CA(
            scenario, estimator=estimator, candidate_limit=5
        ),
    )
    record = runner.run_spec(spec)
    assert isinstance(record, RunRecord)
    assert record.algorithm == "S3CA"
    assert record.get("redemption_rate") > 0
    assert record.get("explored_ratio") > 0
    assert record.seconds >= 0
    assert record.deployment is not None


def test_run_spec_baseline(runner):
    spec = AlgorithmSpec(
        "IM-U", lambda scenario, estimator, seed: make_im_u(scenario, estimator=estimator)
    )
    record = runner.run_spec(spec)
    assert record.algorithm == "IM-U"
    assert record.get("total_cost") <= runner.scenario.budget_limit + 1e-9
    assert "farthest_hop" in record.metrics


def test_run_all_returns_one_record_per_spec(runner):
    specs = runner.default_algorithms(include_im_s=False)[:2]
    records = runner.run_all(specs)
    assert [record.algorithm for record in records] == [spec.name for spec in specs]


def test_shared_estimator_across_algorithms(runner):
    # All algorithms run by one runner share the same estimator instance, so
    # repeated runs of the same spec give identical metrics.
    spec = AlgorithmSpec(
        "IM-U", lambda scenario, estimator, seed: make_im_u(scenario, estimator=estimator)
    )
    first = runner.run_spec(spec)
    second = runner.run_spec(spec)
    assert first.get("expected_benefit") == pytest.approx(
        second.get("expected_benefit")
    )


def test_runner_owns_its_pool_and_closes_it(tiny_config):
    """workers>1 with no injected pool: the runner creates, shares, closes."""
    import multiprocessing

    baseline = len(multiprocessing.active_children())
    with ExperimentRunner(
        toy_scenario(), tiny_config.replace(workers=2, shard_size=10)
    ) as runner:
        assert runner.pool is not None and not runner.pool.closed
        spec = AlgorithmSpec(
            "IM-U",
            lambda scenario, estimator, seed: make_im_u(
                scenario, estimator=estimator
            ),
        )
        parallel_record = runner.run_spec(spec)
    assert runner.pool.closed
    assert len(multiprocessing.active_children()) == baseline

    with ExperimentRunner(toy_scenario(), tiny_config) as serial_runner:
        assert serial_runner.pool is None
        serial_record = serial_runner.run_spec(spec)
    assert parallel_record.get("expected_benefit") == (
        serial_record.get("expected_benefit")
    )


def test_runner_never_closes_an_injected_pool(tiny_config):
    from repro.diffusion.parallel import SharedShardPool

    with SharedShardPool(2) as pool:
        with ExperimentRunner(
            toy_scenario(), tiny_config.replace(workers=2, shard_size=10),
            pool=pool,
        ) as runner:
            assert runner.pool is pool
            runner.estimator.expected_benefit(["v1"], {})
        assert not pool.closed  # runner released only its estimator
    assert pool.closed


def test_record_get_default():
    record = RunRecord(algorithm="x", scenario="y", metrics={"a": 1.0})
    assert record.get("a") == 1.0
    assert record.get("missing") == 0.0
    assert record.get("missing", -1.0) == -1.0
