"""Tests for the Fig. 9 scalability harness."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.scalability import (
    measure_s3ca,
    points_to_rows,
    sweep_network_size,
    sweep_scalability_budget,
    synthetic_scenario,
)


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        num_samples=20, seed=11, candidate_limit=3, max_pivot_candidates=8
    )


def test_synthetic_scenario_structure():
    scenario = synthetic_scenario(40, budget=60.0, seed=1)
    assert scenario.num_nodes == 40
    assert scenario.budget_limit == 60.0
    assert scenario.lam() == pytest.approx(1.0)


def test_measure_s3ca_point(tiny_config):
    scenario = synthetic_scenario(30, budget=40.0, seed=tiny_config.seed)
    point = measure_s3ca(scenario, tiny_config)
    assert point.num_nodes == 30
    assert point.seconds >= 0
    assert 0.0 <= point.explored_ratio <= 1.0
    assert point.redemption_rate >= 0


def test_sweep_network_size(tiny_config):
    points = sweep_network_size([25, 40], budget=40.0, config=tiny_config)
    assert [p.num_nodes for p in points] == [25, 40]


def test_sweep_budget(tiny_config):
    points = sweep_scalability_budget([30.0, 80.0], num_nodes=30, config=tiny_config)
    assert [p.budget for p in points] == [30.0, 80.0]
    # A larger budget can only explore at least as much of the network.
    assert points[1].explored_ratio >= points[0].explored_ratio - 0.25


def test_points_to_rows(tiny_config):
    points = sweep_network_size([25], budget=30.0, config=tiny_config)
    rows = points_to_rows(points)
    assert rows[0]["nodes"] == 25
    assert {"edges", "budget", "seconds", "explored_ratio"} <= set(rows[0])
