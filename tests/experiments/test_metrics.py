"""Tests for the experiment metrics."""

import pytest

from repro.core.deployment import Deployment
from repro.diffusion.exact import ExactEstimator
from repro.experiments.metrics import (
    average_farthest_hop,
    explored_ratio,
    redemption_rate,
    seed_sc_rate,
    summarize_deployment,
)
from repro.graph.generators import path_graph, star_graph
from repro.graph.social_graph import SocialGraph


def unit(graph):
    for node in graph.nodes():
        graph.add_node(node, benefit=1.0, sc_cost=1.0, seed_cost=1.0)
    return graph


def test_seed_sc_rate_regular_case(small_star):
    deployment = Deployment(small_star, seeds=["hub"], allocation={"hub": 2})
    assert seed_sc_rate(deployment) == pytest.approx(
        deployment.seed_cost() / deployment.sc_cost()
    )


def test_seed_sc_rate_degenerate_cases(small_star):
    only_seed = Deployment(small_star, seeds=["hub"])
    assert seed_sc_rate(only_seed) == float("inf")
    empty = Deployment(small_star)
    assert seed_sc_rate(empty) == 0.0


def test_average_farthest_hop_zero_without_coupons():
    graph = unit(path_graph(4, probability=1.0))
    deployment = Deployment(graph, seeds=[0])
    assert average_farthest_hop(graph, deployment, samples=10, rng=1) == 0.0


def test_average_farthest_hop_full_chain():
    graph = unit(path_graph(4, probability=1.0))
    deployment = Deployment(graph, seeds=[0], allocation={0: 1, 1: 1, 2: 1})
    assert average_farthest_hop(graph, deployment, samples=5, rng=1) == 3.0


def test_average_farthest_hop_no_seeds():
    graph = unit(path_graph(3))
    assert average_farthest_hop(graph, Deployment(graph), samples=5) == 0.0


def test_average_farthest_hop_between_zero_and_diameter():
    graph = unit(path_graph(5, probability=0.5))
    deployment = Deployment(graph, seeds=[0], allocation={n: 1 for n in range(4)})
    value = average_farthest_hop(graph, deployment, samples=100, rng=2)
    assert 0.0 <= value <= 4.0


def test_explored_ratio():
    graph = unit(star_graph(4))
    assert explored_ratio(3, graph) == pytest.approx(3 / 5)
    assert explored_ratio(0, SocialGraph()) == 0.0


def test_summarize_deployment_fields(small_star):
    estimator = ExactEstimator(small_star)
    deployment = Deployment(small_star, seeds=["hub"], allocation={"hub": 2})
    summary = summarize_deployment(small_star, deployment, estimator, hop_samples=10, rng=1)
    expected_fields = {
        "expected_benefit",
        "total_cost",
        "redemption_rate",
        "seed_cost",
        "sc_cost",
        "seed_sc_rate",
        "num_seeds",
        "total_coupons",
        "farthest_hop",
    }
    assert expected_fields <= set(summary)
    assert summary["redemption_rate"] == pytest.approx(
        redemption_rate(deployment, estimator)
    )
