"""Tests for the experiment configuration dataclasses."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.config import AlgorithmSpec, ExperimentConfig


def test_defaults_are_valid():
    config = ExperimentConfig()
    assert config.dataset == "facebook"
    assert config.num_samples > 0
    assert config.lam == 1.0
    assert config.kappa == 10.0


def test_replace_returns_modified_copy():
    config = ExperimentConfig()
    modified = config.replace(lam=2.0, dataset="douban")
    assert modified.lam == 2.0
    assert modified.dataset == "douban"
    assert config.lam == 1.0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"scale": 0},
        {"num_samples": 0},
        {"repetitions": 0},
        {"lam": 0},
        {"kappa": -1},
    ],
)
def test_invalid_values_rejected(kwargs):
    with pytest.raises(ExperimentError):
        ExperimentConfig(**kwargs)


def test_algorithm_spec_holds_factory():
    spec = AlgorithmSpec("demo", lambda scenario, estimator, seed: None, {"x": 1})
    assert spec.name == "demo"
    assert spec.options == {"x": 1}
    assert callable(spec.factory)
