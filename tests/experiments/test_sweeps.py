"""Tests for the parameter sweeps (tiny settings so they stay fast)."""

import pytest

from repro.core.s3ca import S3CA
from repro.experiments.config import AlgorithmSpec, ExperimentConfig
from repro.experiments.sweeps import (
    run_comparison,
    sweep_budget,
    sweep_kappa,
    sweep_lambda,
)


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        dataset="facebook",
        scale=0.12,
        num_samples=25,
        seed=7,
        candidate_limit=4,
        max_pivot_candidates=10,
    )


@pytest.fixture(scope="module")
def s3ca_only():
    return [
        AlgorithmSpec(
            "S3CA",
            lambda scenario, estimator, seed: S3CA(
                scenario,
                estimator=estimator,
                candidate_limit=4,
                max_pivot_candidates=10,
                max_paths_per_seed=20,
            ),
        )
    ]


def test_sweep_budget_shapes(tiny_config, s3ca_only):
    budgets = [40.0, 120.0]
    results = sweep_budget(
        tiny_config, budgets, metrics=("redemption_rate", "expected_benefit"),
        algorithms=s3ca_only,
    )
    assert set(results) == {"redemption_rate", "expected_benefit"}
    series = results["expected_benefit"]["S3CA"]
    assert set(series) == set(budgets)
    # More budget never reduces the achievable expected benefit.
    assert series[120.0] >= series[40.0] - 1e-6


def test_sweep_lambda_contains_all_values(tiny_config, s3ca_only):
    lams = [0.5, 2.0]
    results = sweep_lambda(
        tiny_config, lams, metrics=("redemption_rate",), algorithms=s3ca_only
    )
    assert set(results["redemption_rate"]["S3CA"]) == set(lams)


def test_sweep_kappa_contains_all_values(tiny_config, s3ca_only):
    kappas = [5.0, 20.0]
    results = sweep_kappa(
        tiny_config, kappas, metrics=("seed_sc_rate",), algorithms=s3ca_only
    )
    assert set(results["seed_sc_rate"]["S3CA"]) == set(kappas)


def test_sweep_budget_fixed_seed_is_bit_deterministic(tiny_config, s3ca_only):
    """Golden-style lockdown: the same config reproduces the same numbers.

    The whole pipeline — scenario build, world draws, greedy decisions — is
    seeded, so two sweeps must agree float for float, and the rendered series
    table (what the benchmark harness writes to disk) must be byte-identical.
    """
    from repro.experiments.reporting import format_series

    budgets = [40.0, 80.0]
    first = sweep_budget(
        tiny_config, budgets, metrics=("redemption_rate", "expected_benefit"),
        algorithms=s3ca_only,
    )
    second = sweep_budget(
        tiny_config, budgets, metrics=("redemption_rate", "expected_benefit"),
        algorithms=s3ca_only,
    )
    assert first == second
    assert format_series(first["redemption_rate"], x_label="budget") == (
        format_series(second["redemption_rate"], x_label="budget")
    )
    # Sanity on the values themselves: finite, non-negative redemption rates.
    for value in first["redemption_rate"]["S3CA"].values():
        assert value >= 0.0 and value == value


def test_run_comparison_produces_all_algorithms(tiny_config):
    records = run_comparison(tiny_config, include_im_s=False)
    names = {record.algorithm for record in records}
    assert {"IM-U", "IM-L", "PM-U", "PM-L", "S3CA"} == names
    for record in records:
        assert record.get("total_cost") <= (
            tiny_config.budget or 1e18
        ) or record.get("total_cost") > 0
