"""Tests for the Table II dataset stand-ins."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.datasets import (
    DATASET_SPECS,
    build_scenario,
    dataset_graph,
    named_dataset,
    table2_rows,
    toy_scenario,
)


def test_all_four_datasets_defined():
    assert set(DATASET_SPECS) == {"facebook", "epinions", "gplus", "douban"}


def test_dataset_graph_size_scales():
    small = dataset_graph("facebook", scale=0.2, seed=1)
    base = dataset_graph("facebook", scale=0.5, seed=1)
    assert small.num_nodes < base.num_nodes
    assert small.num_edges > 0


def test_dataset_graph_deterministic():
    first = dataset_graph("epinions", scale=0.2, seed=3)
    second = dataset_graph("epinions", scale=0.2, seed=3)
    assert set(first.edges()) == set(second.edges())


def test_unknown_dataset_rejected():
    with pytest.raises(ExperimentError):
        dataset_graph("myspace")
    with pytest.raises(ExperimentError):
        build_scenario("friendster")


def test_build_scenario_applies_ratios_and_budget():
    scenario = build_scenario("facebook", scale=0.2, lam=2.0, kappa=5.0, seed=1)
    assert scenario.lam() == pytest.approx(2.0)
    assert scenario.kappa() == pytest.approx(5.0)
    assert scenario.budget_limit > 0
    assert scenario.metadata["dataset"] == "facebook"


def test_build_scenario_budget_override():
    scenario = build_scenario("facebook", scale=0.2, budget=123.0, seed=1)
    assert scenario.budget_limit == 123.0


def test_named_dataset_shorthand():
    scenario = named_dataset("epinions", scale=0.15, seed=2)
    assert scenario.num_nodes > 0
    assert "epinions" in scenario.name


def test_every_node_has_full_economics():
    scenario = build_scenario("gplus", scale=0.1, seed=1)
    graph = scenario.graph
    assert all(graph.benefit(node) >= 0 for node in graph.nodes())
    assert all(graph.seed_cost(node) > 0 for node in graph.nodes())
    assert all(graph.sc_cost(node) > 0 for node in graph.nodes())


def test_table2_rows_structure():
    rows = table2_rows(scale=0.1, seed=1)
    assert len(rows) == 4
    for row in rows:
        assert {"dataset", "nodes", "edges", "budget", "paper_nodes"} <= set(row)
        assert row["nodes"] >= 20


def test_toy_scenario_is_small_and_feasible():
    scenario = toy_scenario()
    assert scenario.num_nodes == 8
    assert scenario.budget_limit > 0
    assert scenario.graph.seed_cost("a") < scenario.budget_limit
