"""Property-based tests for SCAllocation and Deployment invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.allocation import SCAllocation
from repro.core.deployment import Deployment
from repro.graph.generators import star_graph


allocation_entries = st.dictionaries(
    keys=st.text(alphabet="abcdef", min_size=1, max_size=2),
    values=st.integers(min_value=0, max_value=10),
    max_size=6,
)


@settings(max_examples=60, deadline=None)
@given(allocation_entries)
def test_total_coupons_matches_sum_of_positive_entries(entries):
    allocation = SCAllocation(entries)
    assert allocation.total_coupons == sum(v for v in entries.values() if v > 0)
    assert all(count > 0 for _, count in allocation.items())


@settings(max_examples=60, deadline=None)
@given(allocation_entries, st.text(alphabet="abcdef", min_size=1, max_size=2))
def test_increment_then_decrement_is_identity(entries, node):
    allocation = SCAllocation(entries)
    before = allocation.as_dict()
    allocation.increment(node, 2)
    allocation.decrement(node, 2)
    assert allocation.as_dict() == before


@settings(max_examples=60, deadline=None)
@given(allocation_entries, allocation_entries)
def test_merged_with_is_pointwise_maximum(first, second):
    merged = SCAllocation(first).merged_with(SCAllocation(second).as_dict())
    keys = set(first) | set(second)
    for key in keys:
        expected = max(first.get(key, 0), second.get(key, 0))
        assert merged.get(key) == expected


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=6))
def test_deployment_costs_are_non_negative_and_additive(leaves, coupons):
    graph = star_graph(leaves, probability=0.5)
    for node in graph.nodes():
        graph.add_node(node, benefit=1.0, seed_cost=2.0, sc_cost=1.0)
    coupons = min(coupons, leaves)
    deployment = Deployment(graph, seeds=[0], allocation={0: coupons} if coupons else {})
    assert deployment.seed_cost() == 2.0
    assert deployment.sc_cost() >= 0.0
    assert deployment.total_cost() == deployment.seed_cost() + deployment.sc_cost()


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=6))
def test_deployment_variants_do_not_mutate_base(leaves):
    graph = star_graph(leaves, probability=0.5)
    for node in graph.nodes():
        graph.add_node(node, benefit=1.0, seed_cost=2.0, sc_cost=1.0)
    base = Deployment(graph, seeds=[0])
    base_key = base.key()
    base.with_extra_coupon(0)
    base.with_seed(1)
    assert base.key() == base_key
