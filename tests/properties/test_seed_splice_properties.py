"""Property tests: the seed-accept splice is *identical* to a fresh snapshot.

:meth:`DeltaCascadeEngine.splice_base_new_seed` grafts an accepted pivot
(seed-add) move into the existing snapshot: dirty worlds are re-simulated and
grafted like a coupon splice, clean worlds are advanced by pure bookkeeping —
the new seed enters each clean world's queue at its canonical seed-prefix
position, and a zero-coupon seed with live out-edges gets its coupon-limited
bit set at its dequeue position.  As with the coupon splice, the contract is
not "equivalent" but **identical**: every piece of the engine's snapshot
state must equal, bit for bit and element for element, what a from-scratch
:meth:`DeltaCascadeEngine.snapshot` of the resulting deployment produces —
after any interleaving of seed accepts, coupon accepts and rejected probes,
which is exactly the trace the ID phase's greedy loop generates.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.diffusion.delta import DeltaCascadeEngine
from repro.diffusion.engine import CompiledCascadeEngine
from repro.diffusion.monte_carlo import MonteCarloEstimator

from tests.properties.test_splice_properties import (
    _assert_snapshot_state_identical,
    instance,
)

NUM_WORLDS = 16


@settings(max_examples=25, deadline=None)
@given(
    instance(),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.booleans(),
    st.data(),
)
def test_seed_splice_identical_to_fresh_snapshot(data_instance, seed, sharded, data):
    graph, seeds, allocation = data_instance
    engine = CompiledCascadeEngine(
        graph.compiled(), NUM_WORLDS, seed=seed,
        shard_size=5 if sharded else None,
    )
    delta = DeltaCascadeEngine(engine)
    delta.snapshot(seeds, allocation)
    nodes = list(graph.nodes())
    current_seeds = sorted(seeds, key=str)
    alloc = {node: count for node, count in allocation.items() if count > 0}

    steps = data.draw(st.integers(min_value=1, max_value=3))
    for _ in range(steps):
        candidates = [node for node in nodes if node not in current_seeds]
        if not candidates:
            break
        # Rejected probes first, as in a greedy iteration: candidate seed
        # evaluations must leave the snapshot untouched.
        for _ in range(data.draw(st.integers(min_value=0, max_value=2))):
            probe = data.draw(st.sampled_from(candidates))
            delta.eval_new_seed(
                probe, current_seeds + [probe], alloc, collect_clean_limited=True
            )

        node = data.draw(st.sampled_from(candidates))
        new_seeds = sorted(current_seeds + [node], key=str)
        new_alloc = dict(alloc)
        # Pivot configs may carry a first coupon (Alg. 1 lines 1-8); exercise
        # both the zero-coupon (clean-limited bookkeeping) and coupon cases.
        if graph.out_degree(node) and data.draw(st.booleans()):
            new_alloc[node] = new_alloc.get(node, 0) + 1
        outcome = delta.eval_new_seed(
            node, new_seeds, new_alloc, collect_clean_limited=True
        )
        assert outcome.exact
        assert outcome.clean_limited is not None

        benefit = delta.splice_base_new_seed(outcome, node, new_seeds, new_alloc)
        assert benefit is not None
        current_seeds = new_seeds
        alloc = new_alloc

        fresh = DeltaCascadeEngine(engine)
        _, fresh_benefit = fresh.snapshot(current_seeds, alloc)
        assert benefit == fresh_benefit
        _assert_snapshot_state_identical(delta, fresh)
    # The whole trace ran on exactly one instrumented pass.
    assert delta.snapshot_passes == 1


@settings(max_examples=15, deadline=None)
@given(instance(), st.integers(min_value=0, max_value=2**31 - 1), st.data())
def test_interleaved_seed_and_coupon_splices_identical_to_fresh(
    data_instance, seed, data
):
    """A greedy-like trace mixing pivot and coupon accepts never re-snapshots."""
    graph, seeds, allocation = data_instance
    engine = CompiledCascadeEngine(graph.compiled(), NUM_WORLDS, seed=seed)
    delta = DeltaCascadeEngine(engine)
    delta.snapshot(seeds, allocation)
    nodes = list(graph.nodes())
    current_seeds = sorted(seeds, key=str)
    alloc = {node: count for node, count in allocation.items() if count > 0}

    for _ in range(data.draw(st.integers(min_value=2, max_value=4))):
        non_seeds = [node for node in nodes if node not in current_seeds]
        take_seed = bool(non_seeds) and data.draw(st.booleans())
        if take_seed:
            node = data.draw(st.sampled_from(non_seeds))
            new_seeds = sorted(current_seeds + [node], key=str)
            outcome = delta.eval_new_seed(
                node, new_seeds, alloc, collect_clean_limited=True
            )
            assert delta.splice_base_new_seed(outcome, node, new_seeds, alloc) \
                is not None
            current_seeds = new_seeds
        else:
            node = data.draw(st.sampled_from(nodes))
            new_alloc = dict(alloc)
            new_alloc[node] = new_alloc.get(node, 0) + 1
            outcome = delta.eval_extra_coupon(node, current_seeds, new_alloc)
            assert delta.splice_base(outcome, node, current_seeds, new_alloc) \
                is not None
            alloc = new_alloc

        fresh = DeltaCascadeEngine(engine)
        fresh.snapshot(current_seeds, alloc)
        _assert_snapshot_state_identical(delta, fresh)
    assert delta.snapshot_passes == 1


@settings(max_examples=10, deadline=None)
@given(instance(), st.integers(min_value=0, max_value=2**31 - 1), st.data())
def test_estimator_advance_base_new_seed_matches_fresh_snapshot_base(
    data_instance, seed, data
):
    """The estimator-level seed splice produces the same base benefit, memo
    state and follow-up delta answers a fresh ``snapshot_base`` would."""
    graph, seeds, allocation = data_instance
    spliced = MonteCarloEstimator(graph, num_samples=NUM_WORLDS, seed=seed)
    reference = MonteCarloEstimator(graph, num_samples=NUM_WORLDS, seed=seed)

    spliced.snapshot_base(seeds, allocation)
    current_seeds = sorted(seeds, key=str)
    alloc = {node: count for node, count in allocation.items() if count > 0}
    nodes = list(graph.nodes())
    for _ in range(data.draw(st.integers(min_value=1, max_value=3))):
        candidates = [node for node in nodes if node not in current_seeds]
        if not candidates:
            break
        node = data.draw(st.sampled_from(candidates))
        current_seeds = sorted(current_seeds + [node], key=str)
        if graph.out_degree(node) and data.draw(st.booleans()):
            alloc = dict(alloc)
            alloc[node] = alloc.get(node, 0) + 1
        benefit = spliced.advance_base_new_seed(node, current_seeds, alloc)

        assert benefit == reference.snapshot_base(current_seeds, alloc)
        assert spliced.expected_benefit(current_seeds, alloc) == (
            reference.expected_benefit(current_seeds, alloc)
        )
        assert spliced.activation_probabilities(current_seeds, alloc) == (
            reference.activation_probabilities(current_seeds, alloc)
        )
        # Follow-up delta queries against the spliced base must match ones
        # against the freshly snapshotted base.
        probe = data.draw(st.sampled_from(nodes))
        assert spliced.coupon_dirty_worlds(probe) == (
            reference.coupon_dirty_worlds(probe)
        )
        probe_alloc = dict(alloc)
        probe_alloc[probe] = probe_alloc.get(probe, 0) + 1
        probed = spliced.delta_extra_coupon(
            current_seeds, alloc, probe, current_seeds, probe_alloc
        )
        probed_ref = reference.delta_extra_coupon(
            current_seeds, alloc, probe, current_seeds, probe_alloc
        )
        assert probed.benefit == probed_ref.benefit
        assert probed.dirty_worlds == probed_ref.dirty_worlds
        assert probed.touched == probed_ref.touched
    assert spliced.delta_snapshot_passes == 1


def test_seed_splice_refuses_mismatched_deployments(two_hop_path):
    """Wrong seed sets, missing bookkeeping and stale outcomes fall back."""
    engine = CompiledCascadeEngine(two_hop_path.compiled(), 12, seed=5)
    delta = DeltaCascadeEngine(engine)
    delta.snapshot(["a"], {"a": 1})
    outcome = delta.eval_new_seed(
        "b", ["a", "b"], {"a": 1}, collect_clean_limited=True
    )
    assert outcome.exact

    # missing clean-limited bookkeeping (plain candidate evaluation)
    plain = delta.eval_new_seed("b", ["a", "b"], {"a": 1})
    assert plain.clean_limited is None
    assert delta.splice_base_new_seed(plain, "b", ["a", "b"], {"a": 1}) is None
    # seed set that is not base + the node
    assert delta.splice_base_new_seed(outcome, "b", ["b"], {"a": 1}) is None
    assert delta.splice_base_new_seed(
        outcome, "b", ["a", "b", "c"], {"a": 1}
    ) is None
    # allocation that is not base + one increment on the node
    assert delta.splice_base_new_seed(
        outcome, "b", ["a", "b"], {"a": 2}
    ) is None
    # node already a seed
    already = delta.eval_new_seed("a", ["a"], {"a": 1}, collect_clean_limited=True)
    assert delta.splice_base_new_seed(already, "a", ["a"], {"a": 1}) is None
    # the refusals must not have corrupted the snapshot
    fresh = DeltaCascadeEngine(engine)
    fresh.snapshot(["a"], {"a": 1})
    _assert_snapshot_state_identical(delta, fresh)

    # a valid accept still splices after all the refusals
    assert delta.splice_base_new_seed(outcome, "b", ["a", "b"], {"a": 1}) \
        is not None
    fresh = DeltaCascadeEngine(engine)
    fresh.snapshot(["a", "b"], {"a": 1})
    _assert_snapshot_state_identical(delta, fresh)
    assert delta.spliced_seed_advances == 1
