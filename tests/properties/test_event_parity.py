"""Property tests: the delta CSR recompile is *identical* to a full rebuild.

:meth:`SocialGraph.apply_events` evolves the cached
:class:`~repro.graph.csr.CompiledGraph` through the delta recompiler
(:func:`repro.graph.events.compute_application`): touched rows are rebuilt,
untouched rows are copied as bulk runs, survivors keep their node indices
(prefix order) and surviving edges keep their persistent draw positions.
The contract is not "equivalent" but **identical**: the evolved snapshot's
adjacency and attribute arrays must equal, element for element, a from-scratch
compile of the same mutated graph — across duplicate adds, self-loop skips,
drops of absent edges, reweights, node churn, and retire-then-re-add of the
same identifier.

Only ``edge_pos`` legitimately differs from a cold compile (positions are
persistent across versions, a cold compile numbers them 0..E-1); the tests pin
its invariants instead: uniqueness, bounds, stability for surviving edges.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.graph.events import (
    EdgeAdd,
    EdgeDrop,
    EdgeReweight,
    GraphEventBatch,
    NodeAdd,
    NodeRetire,
)
from repro.graph.attributes import NodeAttributes
from repro.graph.social_graph import SocialGraph


@st.composite
def instance(draw):
    """Random attributed graph plus a random event batch against it."""
    num_nodes = draw(st.integers(min_value=2, max_value=8))
    nodes = list(range(num_nodes))
    graph = SocialGraph()
    for node in nodes:
        graph.add_node(
            node,
            benefit=draw(st.floats(min_value=0.0, max_value=5.0)),
            sc_cost=1.0,
            seed_cost=1.0,
        )
    possible = [(u, v) for u in nodes for v in nodes if u != v]
    chosen = draw(
        st.lists(
            st.sampled_from(possible), max_size=min(16, len(possible)), unique=True
        )
    )
    for source, target in chosen:
        graph.add_edge(source, target, draw(st.floats(min_value=0.1, max_value=1.0)))

    # New identifiers live in a disjoint namespace so retire-then-re-add and
    # add-new-node cases are generated without colliding with the int nodes.
    new_ids = [f"x{k}" for k in range(3)]
    candidates = nodes + new_ids
    probability = st.floats(min_value=0.0, max_value=1.0)
    events = []
    num_events = draw(st.integers(min_value=1, max_value=8))
    for _ in range(num_events):
        kind = draw(st.sampled_from(("add", "drop", "reweight", "node", "retire")))
        if kind == "add":
            source = draw(st.sampled_from(candidates))
            target = draw(st.sampled_from(candidates))
            if source == target:
                continue  # apply paths skip self-loops; nothing to generate
            events.append(EdgeAdd(source, target, draw(probability)))
        elif kind == "drop":
            source = draw(st.sampled_from(candidates))
            target = draw(st.sampled_from(candidates))
            events.append(EdgeDrop(source, target))
        elif kind == "reweight":
            source = draw(st.sampled_from(candidates))
            target = draw(st.sampled_from(candidates))
            events.append(EdgeReweight(source, target, draw(probability)))
        elif kind == "node":
            node = draw(st.sampled_from(candidates))
            if draw(st.booleans()):
                events.append(
                    NodeAdd(node, NodeAttributes(benefit=draw(probability) * 4))
                )
            else:
                events.append(NodeAdd(node))
        else:
            events.append(NodeRetire(draw(st.sampled_from(candidates))))
    if not events:
        events.append(EdgeAdd(nodes[0], nodes[1], draw(probability)))
    return graph, GraphEventBatch(events)


def _assert_csr_identical(evolved, fresh):
    assert list(evolved.node_ids) == list(fresh.node_ids)
    np.testing.assert_array_equal(evolved.indptr, fresh.indptr)
    np.testing.assert_array_equal(evolved.indices, fresh.indices)
    np.testing.assert_array_equal(evolved.probs, fresh.probs)
    np.testing.assert_array_equal(evolved.benefits, fresh.benefits)
    np.testing.assert_array_equal(evolved.seed_costs, fresh.seed_costs)
    np.testing.assert_array_equal(evolved.sc_costs, fresh.sc_costs)


@settings(max_examples=60, deadline=None)
@given(instance())
def test_delta_recompile_identical_to_full_rebuild(data_instance):
    graph, batch = data_instance
    replica = graph.copy()
    old_compiled = graph.compiled()
    old_positions = {
        (str(old_compiled.node_ids[s]), str(old_compiled.node_ids[old_compiled.indices[e]])): int(
            old_compiled.edge_pos[e]
        )
        for s in range(old_compiled.num_nodes)
        for e in range(int(old_compiled.indptr[s]), int(old_compiled.indptr[s + 1]))
    }
    old_probs = {
        (str(old_compiled.node_ids[s]), str(old_compiled.node_ids[old_compiled.indices[e]])): float(
            old_compiled.probs[e]
        )
        for s in range(old_compiled.num_nodes)
        for e in range(int(old_compiled.indptr[s]), int(old_compiled.indptr[s + 1]))
    }

    application = graph.apply_events(batch)
    evolved = graph.compiled()
    assert evolved is application.compiled

    batch.apply_to_graph(replica)
    fresh = replica.compiled()
    _assert_csr_identical(evolved, fresh)

    # Draw positions: a permutation-free unique set within num_draws...
    positions = np.asarray(evolved.edge_pos)
    assert positions.shape[0] == evolved.num_edges
    assert len(set(positions.tolist())) == positions.shape[0]
    if positions.size:
        assert positions.min() >= 0
        assert positions.max() < evolved.num_draws
    assert evolved.num_draws >= old_compiled.num_draws

    # ...where every surviving same-probability edge keeps its old position
    # (same coin flip in every world across versions).
    for s in range(evolved.num_nodes):
        for e in range(int(evolved.indptr[s]), int(evolved.indptr[s + 1])):
            key = (
                str(evolved.node_ids[s]),
                str(evolved.node_ids[evolved.indices[e]]),
            )
            if key in old_positions and old_probs[key] == float(evolved.probs[e]):
                # Unless the edge was dropped and re-added by the batch, which
                # legitimately assigns a new position; those edges are listed
                # in the application's add records.
                if int(evolved.edge_pos[e]) >= old_compiled.num_draws:
                    added_positions = {pos for pos, _ in application.added}
                    assert int(evolved.edge_pos[e]) in added_positions
                else:
                    assert int(evolved.edge_pos[e]) == old_positions[key]

    # Remap: survivors keep their prefix order, retires map to -1.
    remap = application.remap
    assert remap.shape[0] == application.old_num_nodes
    for old_index, node in enumerate(old_compiled.node_ids):
        new_index = int(remap[old_index])
        if new_index >= 0:
            assert evolved.node_ids[new_index] == node or str(
                evolved.node_ids[new_index]
            ) == str(node)
        else:
            assert old_index in application.retired
    assert application.identity_remap == (not application.retired)


@settings(max_examples=25, deadline=None)
@given(instance(), instance())
def test_two_chained_batches_stay_identical(first_instance, second_instance):
    """Delta-of-a-delta: a second batch applies to an evolved snapshot."""
    graph, first_batch = first_instance
    _, second_batch = second_instance
    replica = graph.copy()
    graph.compiled()
    graph.apply_events(first_batch)
    graph.apply_events(second_batch)
    evolved = graph.compiled()

    first_batch.apply_to_graph(replica)
    second_batch.apply_to_graph(replica)
    _assert_csr_identical(evolved, replica.compiled())
    positions = np.asarray(evolved.edge_pos)
    assert len(set(positions.tolist())) == positions.shape[0]


def test_attribute_only_batch_aliases_topology():
    """A batch with no edge effect shares the old adjacency arrays outright."""
    graph = SocialGraph()
    for node in range(4):
        graph.add_node(node, benefit=float(node))
    graph.add_edge(0, 1, 0.5)
    graph.add_edge(1, 2, 0.25)
    before = graph.compiled()
    application = graph.apply_events(
        GraphEventBatch([NodeAdd(1, NodeAttributes(benefit=9.0))])
    )
    after = graph.compiled()
    assert after is application.compiled
    assert after.indptr is before.indptr
    assert after.indices is before.indices
    assert after.probs is before.probs
    assert after.edge_pos is before.edge_pos
    assert application.touched_edges == 0
    assert application.identity_remap
    assert float(after.benefits[after.index[1]]) == 9.0


def test_noop_batch_returns_the_same_snapshot():
    graph = SocialGraph()
    graph.add_node(0)
    graph.add_node(1)
    graph.add_edge(0, 1, 0.5)
    before = graph.compiled()
    application = graph.apply_events(GraphEventBatch([EdgeDrop(0, 5)]))
    assert application.compiled is before
    assert graph.compiled() is before
