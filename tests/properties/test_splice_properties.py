"""Property tests: a spliced snapshot is *identical* to a fresh one.

:meth:`DeltaCascadeEngine.splice_base` grafts an accepted move's re-simulated
worlds into the existing snapshot instead of re-running the instrumented full
pass.  The contract is not "equivalent" but **identical**: after any sequence
of accepted single-coupon investments — interleaved with rejected candidate
evaluations, exactly like a greedy trace — every piece of the engine's
snapshot state (count vector, per-world queues, per-world limited lists, the
per-node active/limited world indices and the base benefit) must equal, bit
for bit and element for element, what a from-scratch
:meth:`DeltaCascadeEngine.snapshot` of the same deployment produces.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.diffusion.delta import DeltaCascadeEngine
from repro.diffusion.engine import CompiledCascadeEngine
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.graph.social_graph import SocialGraph

NUM_WORLDS = 16


@st.composite
def instance(draw):
    """Random attributed graph plus a random base deployment."""
    num_nodes = draw(st.integers(min_value=2, max_value=9))
    nodes = list(range(num_nodes))
    graph = SocialGraph()
    for node in nodes:
        graph.add_node(
            node,
            benefit=draw(st.floats(min_value=0.0, max_value=5.0)),
            sc_cost=1.0,
            seed_cost=1.0,
        )
    possible = [(u, v) for u in nodes for v in nodes if u != v]
    chosen = draw(
        st.lists(
            st.sampled_from(possible), max_size=min(18, len(possible)), unique=True
        )
    )
    for source, target in chosen:
        graph.add_edge(source, target, draw(st.floats(min_value=0.1, max_value=1.0)))
    seeds = draw(st.lists(st.sampled_from(nodes), min_size=1, max_size=3, unique=True))
    allocation = {}
    for node in nodes:
        if graph.out_degree(node) and draw(st.booleans()):
            allocation[node] = draw(st.integers(min_value=1, max_value=2))
    return graph, seeds, allocation


def _assert_snapshot_state_identical(spliced: DeltaCascadeEngine, fresh: DeltaCascadeEngine):
    np.testing.assert_array_equal(spliced.base_counts, fresh.base_counts)
    assert spliced.base_benefit == fresh.base_benefit
    assert spliced._base_queues == fresh._base_queues
    assert spliced._base_limited == fresh._base_limited
    assert spliced._active_worlds == fresh._active_worlds
    assert spliced._limited_worlds == fresh._limited_worlds
    assert spliced._base_alloc == fresh._base_alloc
    assert spliced._base_coupons == fresh._base_coupons
    assert spliced._base_seed_indices == fresh._base_seed_indices


@settings(max_examples=20, deadline=None)
@given(
    instance(),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.booleans(),
    st.data(),
)
def test_spliced_snapshot_identical_to_fresh_after_every_accept(
    data_instance, seed, sharded, data
):
    graph, seeds, allocation = data_instance
    engine = CompiledCascadeEngine(
        graph.compiled(), NUM_WORLDS, seed=seed,
        shard_size=5 if sharded else None,
    )
    delta = DeltaCascadeEngine(engine)
    delta.snapshot(seeds, allocation)
    nodes = list(graph.nodes())
    alloc = {node: count for node, count in allocation.items() if count > 0}

    steps = data.draw(st.integers(min_value=1, max_value=4))
    for _ in range(steps):
        # A few *rejected* candidate evaluations first, as in a greedy
        # iteration — they must leave the snapshot untouched.
        for _ in range(data.draw(st.integers(min_value=0, max_value=2))):
            probe = data.draw(st.sampled_from(nodes))
            probe_alloc = dict(alloc)
            probe_alloc[probe] = probe_alloc.get(probe, 0) + 1
            delta.eval_extra_coupon(probe, seeds, probe_alloc)

        node = data.draw(st.sampled_from(nodes))
        new_alloc = dict(alloc)
        new_alloc[node] = new_alloc.get(node, 0) + 1
        outcome = delta.eval_extra_coupon(node, seeds, new_alloc)
        assert outcome.exact

        benefit = delta.splice_base(outcome, node, seeds, new_alloc)
        assert benefit is not None
        alloc = new_alloc

        fresh = DeltaCascadeEngine(engine)
        _, fresh_benefit = fresh.snapshot(seeds, alloc)
        assert benefit == fresh_benefit
        _assert_snapshot_state_identical(delta, fresh)
    # The whole trace ran on exactly one instrumented pass.
    assert delta.snapshot_passes == 1
    assert delta.spliced_advances == steps


@settings(max_examples=10, deadline=None)
@given(instance(), st.integers(min_value=0, max_value=2**31 - 1), st.data())
def test_estimator_advance_base_matches_fresh_snapshot_base(
    data_instance, seed, data
):
    """The estimator-level splice produces the same base benefit and memo
    state a fresh ``snapshot_base`` would."""
    graph, seeds, allocation = data_instance
    spliced = MonteCarloEstimator(graph, num_samples=NUM_WORLDS, seed=seed)
    reference = MonteCarloEstimator(graph, num_samples=NUM_WORLDS, seed=seed)

    spliced.snapshot_base(seeds, allocation)
    alloc = {node: count for node, count in allocation.items() if count > 0}
    nodes = list(graph.nodes())
    for _ in range(data.draw(st.integers(min_value=1, max_value=3))):
        node = data.draw(st.sampled_from(nodes))
        new_alloc = dict(alloc)
        new_alloc[node] = new_alloc.get(node, 0) + 1
        outcome = spliced.delta_extra_coupon(seeds, alloc, node, seeds, new_alloc)
        benefit = spliced.advance_base(outcome, node, seeds, new_alloc)
        alloc = new_alloc

        assert benefit == reference.snapshot_base(seeds, alloc)
        assert spliced.expected_benefit(seeds, alloc) == (
            reference.expected_benefit(seeds, alloc)
        )
        assert spliced.activation_probabilities(seeds, alloc) == (
            reference.activation_probabilities(seeds, alloc)
        )
        # Follow-up delta queries run against the spliced base must match
        # ones against the freshly snapshotted base.
        probe = data.draw(st.sampled_from(nodes))
        assert spliced.coupon_dirty_worlds(probe) == (
            reference.coupon_dirty_worlds(probe)
        )
        probe_alloc = dict(alloc)
        probe_alloc[probe] = probe_alloc.get(probe, 0) + 1
        probed = spliced.delta_extra_coupon(seeds, alloc, probe, seeds, probe_alloc)
        probed_ref = reference.delta_extra_coupon(
            seeds, alloc, probe, seeds, probe_alloc
        )
        assert probed.benefit == probed_ref.benefit
        assert probed.dirty_worlds == probed_ref.dirty_worlds
        assert probed.touched == probed_ref.touched


def test_splice_base_refuses_mismatched_deployments(two_hop_path):
    """Seed changes and non-single increments fall back (return None)."""
    engine = CompiledCascadeEngine(two_hop_path.compiled(), 12, seed=5)
    delta = DeltaCascadeEngine(engine)
    delta.snapshot(["a"], {"a": 1})
    outcome = delta.eval_extra_coupon("b", ["a"], {"a": 1, "b": 1})

    # different seed set
    assert delta.splice_base(outcome, "b", ["a", "b"], {"a": 1, "b": 1}) is None
    # allocation that is not base + one increment on the node
    assert delta.splice_base(outcome, "b", ["a"], {"a": 2, "b": 1}) is None
    # fallback outcomes carry no per-world data
    fallback = delta.eval_extra_coupon("b", ["b"], {"a": 1, "b": 1})
    assert not fallback.exact
    assert delta.splice_base(fallback, "b", ["b"], {"a": 1, "b": 1}) is None
    # the refusals must not have corrupted the snapshot
    fresh = DeltaCascadeEngine(engine)
    fresh.snapshot(["a"], {"a": 1})
    _assert_snapshot_state_identical(delta, fresh)
