"""Property tests: the streaming reduction never depends on completion order.

The :class:`~repro.diffusion.parallel.ShardExecutor` folds per-block
activation counts in block order, buffering blocks that complete early.  To
exercise *arbitrary* completion orders deterministically — a real pool mostly
completes nearly in order — these tests inject an in-process fake pool
that evaluates every task through the exact same
:func:`~repro.diffusion.parallel.evaluate_block_in_state` routine the real
workers run, then yields the results in a seeded random order.  Whatever the
shuffle, the shard size or the pipelining pattern, every estimate must equal
the serial engine's bit for bit.
"""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

import numpy as np

from repro.diffusion import parallel
from repro.diffusion.engine import CompiledCascadeEngine
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.diffusion.parallel import ShardExecutor
from repro.graph.social_graph import SocialGraph

NUM_WORLDS = 24


class ShufflingFakePool:
    """Duck-typed SharedShardPool executing in-process, results shuffled.

    Implements the exact surface :class:`ShardExecutor` needs —
    ``workers`` / ``closed`` / ``register`` / ``release`` /
    ``imap_unordered`` / ``close`` — so it can be injected anywhere a real
    pool can.
    """

    def __init__(self, order_seed: int, workers: int = 2) -> None:
        self.workers = workers
        self.closed = False
        self._states = {}
        self._next_token = 0
        self._rng = random.Random(order_seed)

    def register(self, sampler) -> int:
        token = self._next_token
        self._next_token += 1
        self._states[token] = parallel._WorkerState(sampler, cache_blocks=4)
        return token

    def release(self, token) -> None:
        self._states.pop(token, None)

    def imap_unordered(self, tasks):
        results = [
            parallel.evaluate_block_in_state(self._states[task[0]], task)
            for task in tasks
        ]
        self._rng.shuffle(results)
        return iter(results)

    def close(self) -> None:
        self.closed = True


@st.composite
def instance(draw):
    """Random attributed graph plus a random deployment."""
    num_nodes = draw(st.integers(min_value=2, max_value=10))
    nodes = list(range(num_nodes))
    graph = SocialGraph()
    for node in nodes:
        graph.add_node(
            node,
            benefit=draw(st.floats(min_value=0.0, max_value=5.0)),
            sc_cost=1.0,
            seed_cost=1.0,
        )
    possible = [(u, v) for u in nodes for v in nodes if u != v]
    chosen = draw(
        st.lists(
            st.sampled_from(possible), max_size=min(20, len(possible)), unique=True
        )
    )
    for source, target in chosen:
        graph.add_edge(source, target, draw(st.floats(min_value=0.0, max_value=1.0)))
    seeds = draw(st.lists(st.sampled_from(nodes), min_size=1, max_size=3, unique=True))
    allocation = {}
    for node in nodes:
        degree = graph.out_degree(node)
        if degree:
            allocation[node] = draw(st.integers(min_value=0, max_value=degree))
    return graph, seeds, allocation


@settings(max_examples=12, deadline=None)
@given(
    instance(),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=1, max_value=NUM_WORLDS + 3),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_streaming_reduction_matches_serial_for_any_completion_order(
    data, seed, shard_size, order_seed
):
    graph, seeds, allocation = data
    serial = MonteCarloEstimator(graph, num_samples=NUM_WORLDS, seed=seed)
    fake = ShufflingFakePool(order_seed)
    streaming = MonteCarloEstimator(
        graph, num_samples=NUM_WORLDS, seed=seed,
        shard_size=shard_size, pool=fake,
    )
    assert streaming.workers == fake.workers  # pool width wins
    assert streaming.expected_benefit(seeds, allocation) == (
        serial.expected_benefit(seeds, allocation)
    )
    assert streaming.activation_probabilities(seeds, allocation) == (
        serial.activation_probabilities(seeds, allocation)
    )


@settings(max_examples=8, deadline=None)
@given(
    instance(),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_pipelined_batch_matches_sequential_estimates(data, seed, order_seed):
    """expected_benefits (several pending evaluations) == one-by-one calls."""
    graph, seeds, allocation = data
    nodes = list(graph.nodes())
    deployments = [(seeds, allocation)]
    for node in nodes[:4]:
        extra = dict(allocation)
        extra[node] = extra.get(node, 0) + 1
        deployments.append((seeds, extra))
    deployments.append((seeds, allocation))  # duplicate inside the batch

    serial = MonteCarloEstimator(graph, num_samples=NUM_WORLDS, seed=seed)
    expected = [
        serial.expected_benefit(seeds_, alloc_) for seeds_, alloc_ in deployments
    ]

    fake = ShufflingFakePool(order_seed)
    streaming = MonteCarloEstimator(
        graph, num_samples=NUM_WORLDS, seed=seed, shard_size=7, pool=fake,
    )
    assert streaming.expected_benefits(deployments) == expected
    # and the memo now serves the same numbers one by one
    assert [
        streaming.expected_benefit(seeds_, alloc_)
        for seeds_, alloc_ in deployments
    ] == expected


def test_out_of_order_blocks_fold_in_block_order(two_hop_path):
    """Directly exercise the executor: reversed completion, correct fold."""
    engine = CompiledCascadeEngine(two_hop_path.compiled(), 12, seed=3, shard_size=3)
    serial_counts, _ = engine.run(["a"], {"a": 1, "b": 1})

    class ReversingPool(ShufflingFakePool):
        def imap_unordered(self, tasks):
            results = [
                parallel.evaluate_block_in_state(self._states[task[0]], task)
                for task in tasks
            ]
            return iter(list(reversed(results)))

    pool = ReversingPool(order_seed=0)
    executor = ShardExecutor(
        engine.sampler, num_worlds=12, shard_size=3, pool=pool
    )
    seed_indices = engine.compiled.indices_of(["a"])
    coupon_items = [
        (engine.compiled.index["a"], 1), (engine.compiled.index["b"], 1)
    ]
    pending = executor.submit(seed_indices, coupon_items)
    np.testing.assert_array_equal(pending.result(), serial_counts)
    assert pending.done
    assert executor.completed == 1
