"""Property tests: worker count and pool reuse never change any estimate.

The multiprocess shard executor reduces integer per-block activation counts
in deterministic block order, so for any random graph, deployment and seed
the parallel estimator must return *exactly* the serial estimator's numbers —
not approximately.  The pool is persistent, so these properties also cover
reuse: successive estimates through the same pool must keep matching fresh
serial estimators.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.investment import InvestmentDeployment
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.economics.scenario import Scenario
from repro.graph.social_graph import SocialGraph

NUM_SAMPLES = 20


@st.composite
def instance(draw):
    """Random attributed graph plus a random deployment."""
    num_nodes = draw(st.integers(min_value=2, max_value=10))
    nodes = list(range(num_nodes))
    graph = SocialGraph()
    for node in nodes:
        graph.add_node(
            node,
            benefit=draw(st.floats(min_value=0.0, max_value=5.0)),
            sc_cost=1.0,
            seed_cost=1.0,
        )
    possible = [(u, v) for u in nodes for v in nodes if u != v]
    chosen = draw(
        st.lists(
            st.sampled_from(possible), max_size=min(20, len(possible)), unique=True
        )
    )
    for source, target in chosen:
        graph.add_edge(source, target, draw(st.floats(min_value=0.0, max_value=1.0)))
    seeds = draw(st.lists(st.sampled_from(nodes), min_size=1, max_size=3, unique=True))
    allocation = {}
    for node in nodes:
        degree = graph.out_degree(node)
        if degree:
            allocation[node] = draw(st.integers(min_value=0, max_value=degree))
    return graph, seeds, allocation


@settings(max_examples=6, deadline=None)
@given(instance(), st.integers(min_value=0, max_value=2**31 - 1))
def test_worker_count_never_changes_estimates(data, seed):
    graph, seeds, allocation = data
    serial = MonteCarloEstimator(graph, num_samples=NUM_SAMPLES, seed=seed)
    with MonteCarloEstimator(
        graph, num_samples=NUM_SAMPLES, seed=seed, shard_size=6, workers=2
    ) as parallel:
        assert parallel.workers == 2
        assert parallel.expected_benefit(seeds, allocation) == (
            serial.expected_benefit(seeds, allocation)
        )
        assert parallel.activation_probabilities(seeds, allocation) == (
            serial.activation_probabilities(seeds, allocation)
        )


def test_pool_reuse_across_successive_estimates_is_safe(two_hop_path):
    """One persistent pool, many estimate calls — all bit-identical to serial."""
    graph = two_hop_path
    deployments = [
        (["a"], {}),
        (["a"], {"a": 1}),
        (["a"], {"a": 1, "b": 1}),
        (["b"], {"b": 1}),
        (["a", "b"], {"a": 1}),
    ]
    serial = MonteCarloEstimator(graph, num_samples=50, seed=9)
    with MonteCarloEstimator(
        graph, num_samples=50, seed=9, shard_size=8, workers=2
    ) as parallel:
        for _ in range(2):  # second sweep: memo cleared, pool re-exercised
            for seeds, allocation in deployments:
                assert parallel.expected_benefit(seeds, allocation) == (
                    serial.expected_benefit(seeds, allocation)
                )
            parallel.clear_cache()


def test_close_is_idempotent_and_serial_estimators_need_no_pool(two_hop_path):
    estimator = MonteCarloEstimator(two_hop_path, num_samples=10, seed=1)
    estimator.close()
    estimator.close()
    with MonteCarloEstimator(
        two_hop_path, num_samples=10, seed=1, workers=2
    ) as parallel:
        parallel.expected_benefit(["a"], {"a": 1})
    parallel.close()  # idempotent after __exit__


@pytest.mark.parametrize("workers", [2, 3])
def test_worker_count_never_changes_selected_deployment(workers):
    """The ID phase selects the same investments for every worker count."""
    from repro.experiments.scalability import synthetic_scenario

    scenario = synthetic_scenario(60, budget=40.0, seed=13)
    def run(worker_count):
        estimator = MonteCarloEstimator(
            scenario.graph, num_samples=NUM_SAMPLES, seed=13,
            shard_size=7, workers=worker_count,
        )
        try:
            return InvestmentDeployment(
                scenario, estimator, candidate_limit=8, max_pivot_candidates=15
            ).run()
        finally:
            estimator.close()

    serial = run(1)
    parallel = run(workers)
    assert parallel.deployment.seeds == serial.deployment.seeds
    assert parallel.deployment.allocation == serial.deployment.allocation
    assert parallel.iterations == serial.iterations
