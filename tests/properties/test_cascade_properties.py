"""Property-based tests (hypothesis) for the SC-constrained cascade."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.diffusion.sc_cascade import reachable_with_coupons, simulate_sc_cascade
from repro.graph.social_graph import SocialGraph


@st.composite
def random_graph_and_allocation(draw, max_nodes=8):
    """A small random digraph with unit economics, an allocation and seeds."""
    num_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    nodes = list(range(num_nodes))
    graph = SocialGraph()
    for node in nodes:
        graph.add_node(node, benefit=1.0, sc_cost=1.0, seed_cost=1.0)
    possible_edges = [(u, v) for u in nodes for v in nodes if u != v]
    chosen = draw(
        st.lists(st.sampled_from(possible_edges), max_size=min(14, len(possible_edges)),
                 unique=True)
    )
    for source, target in chosen:
        probability = draw(st.floats(min_value=0.0, max_value=1.0))
        graph.add_edge(source, target, probability)
    allocation = {}
    for node in nodes:
        degree = graph.out_degree(node)
        if degree:
            allocation[node] = draw(st.integers(min_value=0, max_value=degree))
    seeds = draw(st.lists(st.sampled_from(nodes), min_size=1, max_size=3, unique=True))
    rng_seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return graph, seeds, allocation, rng_seed


@settings(max_examples=40, deadline=None)
@given(random_graph_and_allocation())
def test_seeds_always_in_activated_set(data):
    graph, seeds, allocation, rng_seed = data
    result = simulate_sc_cascade(graph, seeds, allocation, rng=rng_seed)
    assert set(seeds) <= result.activated


@settings(max_examples=40, deadline=None)
@given(random_graph_and_allocation())
def test_activated_within_coupon_reachable_closure(data):
    graph, seeds, allocation, rng_seed = data
    result = simulate_sc_cascade(graph, seeds, allocation, rng=rng_seed)
    assert result.activated <= reachable_with_coupons(graph, seeds, allocation)


@settings(max_examples=40, deadline=None)
@given(random_graph_and_allocation())
def test_redemptions_respect_allocation(data):
    graph, seeds, allocation, rng_seed = data
    result = simulate_sc_cascade(graph, seeds, allocation, rng=rng_seed)
    for node, used in result.coupons_used.items():
        assert used <= allocation.get(node, 0)
    # Every activated non-seed was redeemed through exactly one edge.
    non_seeds = result.activated - set(seeds)
    assert len(result.redemptions) == len(non_seeds)
    assert {target for _, target in result.redemptions} == non_seeds


@settings(max_examples=40, deadline=None)
@given(random_graph_and_allocation())
def test_simulation_deterministic_for_same_rng_seed(data):
    graph, seeds, allocation, rng_seed = data
    first = simulate_sc_cascade(graph, seeds, allocation, rng=rng_seed)
    second = simulate_sc_cascade(graph, seeds, allocation, rng=rng_seed)
    assert first.activated == second.activated
    assert first.redemptions == second.redemptions


@settings(max_examples=30, deadline=None)
@given(random_graph_and_allocation())
def test_monotone_in_allocation_per_world(data):
    """With a fixed live-edge world, more coupons never shrink the spread."""
    graph, seeds, allocation, rng_seed = data
    from repro.diffusion.live_edge import cascade_in_world, sample_worlds

    world = sample_worlds(graph, 1, rng=rng_seed)[0]
    smaller = cascade_in_world(graph, world, seeds, allocation)
    bigger_allocation = {
        node: graph.out_degree(node) for node in graph.nodes() if graph.out_degree(node)
    }
    bigger = cascade_in_world(graph, world, seeds, bigger_allocation)
    assert smaller <= bigger
