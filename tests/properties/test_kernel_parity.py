"""Parity suite: the native cascade kernel vs the interpreted oracle.

The native kernels (:mod:`repro.diffusion.kernels`) promise *bit-identity*
with the interpreted cascade loops in :mod:`repro.diffusion.engine` — same
activation queues, same counts, same coupon-limited flags, same benefits —
for any graph, deployment, shard size and worker count.  These tests pin
that contract at every level the kernel dispatches through:

* the engine's ``run`` and instrumented per-world cascades (hypothesis,
  across shard sizes);
* the multiprocess shard executor (kernel-tagged worker tasks);
* the delta engine's snapshot/splice paths, including a full ``S3CA.run()``
  deployment-identity check with ``snapshot_passes == 1`` still holding;
* graceful degradation: with every native backend monkeypatched away the
  engine warns (when the kernel was requested explicitly), falls back to
  the interpreted loop, and still produces identical results.
"""

import warnings

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.s3ca import S3CA
from repro.diffusion import kernels
from repro.diffusion.engine import CompiledCascadeEngine
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.experiments.scalability import synthetic_scenario
from repro.graph.social_graph import SocialGraph

NUM_SAMPLES = 25

requires_native = pytest.mark.skipif(
    kernels.load_kernel() is None,
    reason="no native kernel backend resolves in this environment",
)


@st.composite
def instance(draw):
    """Random attributed graph plus a random deployment."""
    num_nodes = draw(st.integers(min_value=2, max_value=12))
    nodes = list(range(num_nodes))
    graph = SocialGraph()
    for node in nodes:
        graph.add_node(
            node,
            benefit=draw(st.floats(min_value=0.0, max_value=5.0)),
            sc_cost=1.0,
            seed_cost=1.0,
        )
    possible = [(u, v) for u in nodes for v in nodes if u != v]
    chosen = draw(
        st.lists(
            st.sampled_from(possible), max_size=min(30, len(possible)), unique=True
        )
    )
    for source, target in chosen:
        graph.add_edge(source, target, draw(st.floats(min_value=0.0, max_value=1.0)))
    seeds = draw(st.lists(st.sampled_from(nodes), min_size=1, max_size=3, unique=True))
    allocation = {}
    for node in nodes:
        degree = graph.out_degree(node)
        if degree:
            allocation[node] = draw(st.integers(min_value=0, max_value=degree))
    return graph, seeds, allocation


def _engine_pair(graph, seed, shard_size):
    compiled = graph.compiled()
    kernel_engine = CompiledCascadeEngine(
        compiled, NUM_SAMPLES, seed=seed, shard_size=shard_size, use_kernel=True
    )
    oracle_engine = CompiledCascadeEngine(
        compiled, NUM_SAMPLES, seed=seed, shard_size=shard_size, use_kernel=False
    )
    assert not oracle_engine.kernel_active
    return kernel_engine, oracle_engine


@requires_native
@settings(max_examples=10, deadline=None)
@given(instance(), st.integers(min_value=0, max_value=2**31 - 1))
@pytest.mark.parametrize("shard_size", [1, 7, NUM_SAMPLES])
def test_kernel_run_and_instrumented_match_oracle(shard_size, data, seed):
    graph, seeds, allocation = data
    kernel_engine, oracle_engine = _engine_pair(graph, seed, shard_size)
    assert kernel_engine.kernel_active

    counts_k, benefit_k = kernel_engine.run(seeds, allocation)
    counts_o, benefit_o = oracle_engine.run(seeds, allocation)
    assert (counts_k == counts_o).all()
    assert benefit_k == benefit_o

    compiled = kernel_engine.compiled
    seed_indices = compiled.indices_of(sorted(seeds, key=str))
    dense = [0] * compiled.num_nodes
    for node, count in allocation.items():
        dense[compiled.index[node]] = count

    batched = list(
        kernel_engine.cascade_worlds_instrumented(
            range(NUM_SAMPLES), seed_indices, dense
        )
    )
    for world_index, (queue_k, limited_k) in enumerate(batched):
        queue_o, limited_o = oracle_engine.cascade_world_instrumented(
            world_index, seed_indices, dense
        )
        assert queue_k == queue_o
        assert limited_k == limited_o
        # The single-world entry point dispatches to the kernel too.
        single = kernel_engine.cascade_world_instrumented(
            world_index, seed_indices, dense
        )
        assert single == (queue_o, limited_o)


@requires_native
def test_kernel_parity_on_worker_pool(two_hop_path):
    """Kernel-tagged worker tasks == interpreted workers == serial oracle."""
    graph = two_hop_path
    deployments = [
        (["a"], {"a": 1}),
        (["a"], {"a": 1, "b": 1}),
        (["a", "b"], {"a": 1}),
    ]
    serial = MonteCarloEstimator(
        graph, num_samples=50, seed=9, use_kernel=False
    )
    with MonteCarloEstimator(
        graph, num_samples=50, seed=9, shard_size=10, workers=2, use_kernel=True
    ) as kernel_pool, MonteCarloEstimator(
        graph, num_samples=50, seed=9, shard_size=10, workers=2, use_kernel=False
    ) as oracle_pool:
        for seeds, allocation in deployments:
            expected = serial.expected_benefit(seeds, allocation)
            assert kernel_pool.expected_benefit(seeds, allocation) == expected
            assert oracle_pool.expected_benefit(seeds, allocation) == expected
            assert kernel_pool.activation_probabilities(seeds, allocation) == (
                serial.activation_probabilities(seeds, allocation)
            )


@requires_native
@pytest.mark.parametrize("shard_size", [7, None])
def test_delta_snapshot_and_splice_paths_match_oracle(shard_size):
    """The delta engine's snapshot, eval and splice advance on the kernel
    produce exactly the interpreted engine's benefits and memoised bases."""
    scenario = synthetic_scenario(40, budget=80.0, seed=5)
    graph = scenario.graph
    nodes = sorted(graph.nodes(), key=str)
    seeds = nodes[:2]
    base_allocation = {
        node: 1 for node in nodes[:8] if graph.out_degree(node)
    }
    candidates = [node for node in nodes if graph.out_degree(node)][:6]

    results = {}
    for use_kernel in (True, False):
        estimator = MonteCarloEstimator(
            graph, num_samples=NUM_SAMPLES, seed=11,
            shard_size=shard_size, use_kernel=use_kernel,
        )
        assert estimator.kernel_active is use_kernel
        trace = [estimator.snapshot_base(seeds, base_allocation)]
        allocation = dict(base_allocation)
        for node in candidates:
            new_allocation = dict(allocation)
            new_allocation[node] = new_allocation.get(node, 0) + 1
            outcome = estimator.delta_extra_coupon(
                seeds, allocation, node, seeds, new_allocation
            )
            trace.append(outcome.benefit)
            # Splice-advance onto the evaluated deployment, as the greedy
            # accept path does.
            trace.append(
                estimator.advance_base(outcome, node, seeds, new_allocation)
            )
            allocation = new_allocation
        # One pivot add through the seed-accept splice path.
        pivot = next(node for node in nodes if node not in seeds)
        trace.append(
            estimator.advance_base_new_seed(
                pivot, seeds + [pivot], allocation
            )
        )
        results[use_kernel] = (
            trace, estimator.delta_snapshot_passes, estimator.delta_spliced_advances
        )
    assert results[True] == results[False]
    assert results[True][1] == 1  # advances spliced, never re-snapshotted


@requires_native
def test_full_s3ca_deployment_identical_with_and_without_kernel():
    scenario = synthetic_scenario(60, budget=50.0, seed=2019)
    solved = {}
    for use_kernel in (True, False):
        algorithm = S3CA(
            scenario, num_samples=NUM_SAMPLES, seed=2019,
            candidate_limit=8, max_pivot_candidates=15,
            use_kernel=use_kernel,
        )
        assert algorithm.estimator.kernel_active is use_kernel
        result = algorithm.solve()
        assert algorithm.estimator.delta_snapshot_passes == 1
        solved[use_kernel] = (
            result.seeds,
            result.allocation,
            result.expected_benefit,
            result.redemption_rate,
            result.num_maneuvers,
        )
    assert solved[True] == solved[False]


# ----------------------------------------------------------------------
# graceful degradation with no native backend
# ----------------------------------------------------------------------


@pytest.fixture
def no_native_backend(monkeypatch):
    """Make every native backend unresolvable, as if numba were uninstalled
    and no C compiler existed; restores the real resolution afterwards."""

    def raise_import_error():
        raise ImportError("numba is not installed")

    monkeypatch.setattr(kernels, "_import_numba", raise_import_error)
    monkeypatch.setattr(kernels, "_build_cc_library", lambda: (None, 0.0))
    kernels.reset_kernel_cache()
    yield
    kernels.reset_kernel_cache()


def test_engine_falls_back_with_warning_when_no_backend(no_native_backend, two_hop_path):
    compiled = two_hop_path.compiled()
    with pytest.warns(UserWarning, match="falling back to the interpreted"):
        engine = CompiledCascadeEngine(
            compiled, NUM_SAMPLES, seed=3, use_kernel=True
        )
    assert not engine.kernel_active
    assert engine.kernel_backend is None
    oracle = CompiledCascadeEngine(compiled, NUM_SAMPLES, seed=3, use_kernel=False)
    counts_f, benefit_f = engine.run(["a"], {"a": 1, "b": 1})
    counts_o, benefit_o = oracle.run(["a"], {"a": 1, "b": 1})
    assert (counts_f == counts_o).all()
    assert benefit_f == benefit_o


def test_auto_mode_falls_back_silently_when_no_backend(no_native_backend, two_hop_path):
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        engine = CompiledCascadeEngine(
            two_hop_path.compiled(), NUM_SAMPLES, seed=3
        )
    assert not engine.kernel_active
    assert engine.kernel_compile_seconds == 0.0


def test_disable_env_forces_interpreted_path(monkeypatch, two_hop_path):
    monkeypatch.setenv(kernels.DISABLE_ENV, "1")
    kernels.reset_kernel_cache()
    try:
        assert kernels.native_disabled()
        assert kernels.load_kernel() is None
        engine = CompiledCascadeEngine(two_hop_path.compiled(), NUM_SAMPLES, seed=3)
        assert not engine.kernel_active
    finally:
        monkeypatch.delenv(kernels.DISABLE_ENV)
        kernels.reset_kernel_cache()
