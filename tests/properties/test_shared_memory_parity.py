"""Parity suite: zero-copy shared-memory transport vs private copies.

The shared-memory store only changes *where bytes live* — the compiled
graph's CSR arrays move into one mapped segment, world blocks are published
once machine-wide — so every estimate must be bit-identical to the private
copy path for any graph, deployment, shard size, worker count and kernel
setting.  Hypothesis drives random instances through the engine across
{shared on, off} × {kernel on, off} × shard sizes; the pool and full-S3CA
legs pin the multiprocess and end-to-end deployments.
"""

import gc

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.s3ca import S3CA
from repro.diffusion import kernels
from repro.diffusion.engine import CompiledCascadeEngine
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.experiments.scalability import synthetic_scenario
from repro.graph.social_graph import SocialGraph
from repro.utils import shm

NUM_SAMPLES = 20

KERNEL_SETTINGS = (
    (False, True) if kernels.load_kernel() is not None else (False,)
)

requires_shm = pytest.mark.skipif(
    not shm.shared_memory_available(),
    reason="POSIX shared memory is unavailable on this platform",
)


@st.composite
def instance(draw):
    """Random attributed graph plus a random deployment."""
    num_nodes = draw(st.integers(min_value=2, max_value=10))
    nodes = list(range(num_nodes))
    graph = SocialGraph()
    for node in nodes:
        graph.add_node(
            node,
            benefit=draw(st.floats(min_value=0.0, max_value=5.0)),
            sc_cost=1.0,
            seed_cost=1.0,
        )
    possible = [(u, v) for u in nodes for v in nodes if u != v]
    chosen = draw(
        st.lists(
            st.sampled_from(possible), max_size=min(24, len(possible)), unique=True
        )
    )
    for source, target in chosen:
        graph.add_edge(source, target, draw(st.floats(min_value=0.0, max_value=1.0)))
    seeds = draw(st.lists(st.sampled_from(nodes), min_size=1, max_size=3, unique=True))
    allocation = {}
    for node in nodes:
        degree = graph.out_degree(node)
        if degree:
            allocation[node] = draw(st.integers(min_value=0, max_value=degree))
    return graph, seeds, allocation


@requires_shm
@settings(max_examples=8, deadline=None)
@given(instance(), st.integers(min_value=0, max_value=2**31 - 1))
@pytest.mark.parametrize("shard_size", [1, 7, NUM_SAMPLES])
def test_shared_memory_engine_matches_private_copies(shard_size, data, seed):
    graph, seeds, allocation = data
    compiled = graph.compiled()
    reference = CompiledCascadeEngine(
        compiled, NUM_SAMPLES, seed=seed, shard_size=shard_size,
        shared_memory=False, use_kernel=False,
    )
    counts_ref, benefit_ref = reference.run(seeds, allocation)
    for use_kernel in KERNEL_SETTINGS:
        engine = CompiledCascadeEngine(
            compiled, NUM_SAMPLES, seed=seed, shard_size=shard_size,
            shared_memory=True, use_kernel=use_kernel,
        )
        assert engine.shared_memory
        counts, benefit = engine.run(seeds, allocation)
        assert np.array_equal(counts, counts_ref)
        assert benefit == benefit_ref
        engine.close()
        del engine
    gc.collect()


@requires_shm
@pytest.mark.parametrize("use_kernel", KERNEL_SETTINGS)
def test_pool_parity_shared_vs_private_transport(two_hop_path, use_kernel):
    """workers=2 × {shm on, off} × kernel setting == the serial reference."""
    graph = two_hop_path
    deployments = [
        (["a"], {"a": 1}),
        (["a"], {"a": 1, "b": 1}),
        (["a", "b"], {"a": 1}),
    ]
    serial = MonteCarloEstimator(graph, num_samples=40, seed=9, shared_memory=False)
    with MonteCarloEstimator(
        graph, num_samples=40, seed=9, shard_size=8, workers=2,
        shared_memory=True, use_kernel=use_kernel,
    ) as shared_pool, MonteCarloEstimator(
        graph, num_samples=40, seed=9, shard_size=8, workers=2,
        shared_memory=False, use_kernel=use_kernel,
    ) as private_pool:
        assert shared_pool.shared_memory_active
        assert not private_pool.shared_memory_active
        for seeds, allocation in deployments:
            expected = serial.expected_benefit(seeds, allocation)
            assert shared_pool.expected_benefit(seeds, allocation) == expected
            assert private_pool.expected_benefit(seeds, allocation) == expected
            assert shared_pool.activation_probabilities(seeds, allocation) == (
                serial.activation_probabilities(seeds, allocation)
            )
    gc.collect()


@requires_shm
def test_full_s3ca_deployment_identical_with_and_without_shared_memory():
    scenario = synthetic_scenario(50, budget=45.0, seed=2019)
    solved = {}
    for shared_memory in (True, False):
        algorithm = S3CA(
            scenario, num_samples=NUM_SAMPLES, seed=2019,
            candidate_limit=8, max_pivot_candidates=12,
            shared_memory=shared_memory,
        )
        assert algorithm.estimator.shared_memory_active is shared_memory
        result = algorithm.solve()
        algorithm.estimator.close()
        solved[shared_memory] = (
            result.seeds,
            result.allocation,
            result.expected_benefit,
            result.redemption_rate,
            result.num_maneuvers,
        )
        del algorithm
    gc.collect()
    assert solved[True] == solved[False]


@requires_shm
def test_delta_splice_paths_identical_on_shared_transport():
    """Snapshot/splice advances read shared blocks bit-identically."""
    scenario = synthetic_scenario(30, budget=60.0, seed=5)
    graph = scenario.graph
    nodes = sorted(graph.nodes(), key=str)
    seeds = nodes[:2]
    base_allocation = {node: 1 for node in nodes[:6] if graph.out_degree(node)}
    candidates = [node for node in nodes if graph.out_degree(node)][:4]
    traces = {}
    for shared_memory in (True, False):
        estimator = MonteCarloEstimator(
            graph, num_samples=NUM_SAMPLES, seed=11,
            shard_size=7, shared_memory=shared_memory,
        )
        trace = [estimator.snapshot_base(seeds, base_allocation)]
        allocation = dict(base_allocation)
        for node in candidates:
            new_allocation = dict(allocation)
            new_allocation[node] = new_allocation.get(node, 0) + 1
            outcome = estimator.delta_extra_coupon(
                seeds, allocation, node, seeds, new_allocation
            )
            trace.append(outcome.benefit)
            trace.append(estimator.advance_base(outcome, node, seeds, new_allocation))
            allocation = new_allocation
        traces[shared_memory] = (trace, estimator.delta_snapshot_passes)
        estimator.close()
        del estimator
    gc.collect()
    assert traces[True] == traces[False]
