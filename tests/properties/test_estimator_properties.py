"""Property-based consistency tests between the two benefit estimators.

On small random instances the Monte-Carlo estimator (with many shared worlds)
must agree with the exact world-enumeration estimator, and both must respect
the structural invariants of the cascade: monotonicity in seeds and in the
allocation, and benefits bounded by the total benefit of the coupon-reachable
closure.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.diffusion.exact import ExactEstimator
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.diffusion.sc_cascade import reachable_with_coupons
from repro.graph.social_graph import SocialGraph


@st.composite
def small_instance(draw):
    """A random graph with at most 8 edges so exact enumeration stays cheap."""
    num_nodes = draw(st.integers(min_value=2, max_value=6))
    nodes = list(range(num_nodes))
    graph = SocialGraph()
    for node in nodes:
        graph.add_node(
            node,
            benefit=draw(st.floats(min_value=0.0, max_value=5.0)),
            sc_cost=1.0,
            seed_cost=1.0,
        )
    possible = [(u, v) for u in nodes for v in nodes if u != v]
    chosen = draw(
        st.lists(st.sampled_from(possible), max_size=min(8, len(possible)), unique=True)
    )
    for source, target in chosen:
        graph.add_edge(source, target, draw(st.floats(min_value=0.0, max_value=1.0)))
    seeds = draw(st.lists(st.sampled_from(nodes), min_size=1, max_size=2, unique=True))
    allocation = {}
    for node in nodes:
        degree = graph.out_degree(node)
        if degree:
            allocation[node] = draw(st.integers(min_value=0, max_value=degree))
    return graph, seeds, allocation


@settings(max_examples=25, deadline=None)
@given(small_instance())
def test_monte_carlo_converges_to_exact(data):
    graph, seeds, allocation = data
    exact = ExactEstimator(graph).expected_benefit(seeds, allocation)
    monte_carlo = MonteCarloEstimator(graph, num_samples=3000, seed=1).expected_benefit(
        seeds, allocation
    )
    assert monte_carlo == pytest.approx(exact, abs=0.35)


@settings(max_examples=30, deadline=None)
@given(small_instance())
def test_exact_benefit_monotone_in_seeds(data):
    graph, seeds, allocation = data
    estimator = ExactEstimator(graph)
    smaller = estimator.expected_benefit(seeds[:1], allocation)
    larger = estimator.expected_benefit(seeds, allocation)
    assert larger >= smaller - 1e-9


@settings(max_examples=30, deadline=None)
@given(small_instance())
def test_exact_benefit_monotone_in_allocation(data):
    graph, seeds, allocation = data
    estimator = ExactEstimator(graph)
    base = estimator.expected_benefit(seeds, allocation)
    saturated = {
        node: graph.out_degree(node) for node in graph.nodes() if graph.out_degree(node)
    }
    assert estimator.expected_benefit(seeds, saturated) >= base - 1e-9


@settings(max_examples=30, deadline=None)
@given(small_instance())
def test_exact_benefit_bounded_by_reachable_closure(data):
    graph, seeds, allocation = data
    estimator = ExactEstimator(graph)
    benefit = estimator.expected_benefit(seeds, allocation)
    closure = reachable_with_coupons(graph, seeds, allocation)
    upper = sum(graph.benefit(node) for node in closure)
    lower = sum(graph.benefit(node) for node in seeds if node in graph)
    assert lower - 1e-9 <= benefit <= upper + 1e-9


@settings(max_examples=25, deadline=None)
@given(small_instance())
def test_activation_probabilities_bounded_and_consistent(data):
    graph, seeds, allocation = data
    estimator = ExactEstimator(graph)
    probabilities = estimator.activation_probabilities(seeds, allocation)
    for node, probability in probabilities.items():
        assert -1e-9 <= probability <= 1.0 + 1e-9
    for seed in seeds:
        assert probabilities[seed] == pytest.approx(1.0)
    weighted = sum(graph.benefit(n) * p for n, p in probabilities.items())
    assert weighted == pytest.approx(estimator.expected_benefit(seeds, allocation))
