"""Parity suite: the CSR RR-set sampler vs the dict-adjacency oracle.

The CSR backend of :class:`~repro.diffusion.rr_sets.RRSetSampler` promises
*bit-identity* with the original dict-adjacency reverse BFS: because numpy's
``Generator`` fills a size-``k`` request with exactly the ``k`` doubles that
``k`` scalar calls would produce, and the reverse CSR preserves each node's
``in_neighbors`` iteration order, both backends consume the RNG stream
identically — the same targets are drawn and the same coins accepted, for any
graph and seed.  These tests pin that contract at the sampler level (sets,
roots, flat-array shape), at the coverage level, and through
:class:`~repro.diffusion.rr_sets.RRBenefitEstimator`'s probability and
benefit surfaces, including the vectorized screening bound the two-tier
estimator runs on.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.diffusion.rr_sets import RRBenefitEstimator, RRSetSampler
from repro.graph.social_graph import SocialGraph

NUM_SETS = 40


@st.composite
def graph_instance(draw):
    """Random attributed digraph (possibly sparse, possibly disconnected)."""
    num_nodes = draw(st.integers(min_value=1, max_value=12))
    nodes = list(range(num_nodes))
    graph = SocialGraph()
    for node in nodes:
        graph.add_node(
            node,
            benefit=draw(st.floats(min_value=0.0, max_value=5.0)),
            sc_cost=1.0,
            seed_cost=1.0,
        )
    possible = [(u, v) for u in nodes for v in nodes if u != v]
    chosen = draw(
        st.lists(
            st.sampled_from(possible), max_size=min(30, len(possible)), unique=True
        )
        if possible
        else st.just([])
    )
    for source, target in chosen:
        graph.add_edge(source, target, draw(st.floats(min_value=0.0, max_value=1.0)))
    return graph


def _sampler_pair(graph, seed):
    csr = RRSetSampler(graph, num_sets=NUM_SETS, seed=seed, backend="csr")
    oracle = RRSetSampler(graph, num_sets=NUM_SETS, seed=seed, backend="dict")
    return csr, oracle


@settings(max_examples=30, deadline=None)
@given(graph_instance(), st.integers(min_value=0, max_value=2**31 - 1))
def test_csr_sampler_bit_identical_to_dict_oracle(graph, seed):
    csr, oracle = _sampler_pair(graph, seed)
    assert csr.roots == oracle.roots
    assert (csr.root_index == oracle.root_index).all()
    assert csr.rr_sets == oracle.rr_sets
    # Same per-set sizes, so the flat storage agrees structurally too.
    assert (csr.rr_offsets == oracle.rr_offsets).all()


@settings(max_examples=20, deadline=None)
@given(
    graph_instance(),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.data(),
)
def test_coverage_and_spread_match_across_backends(graph, seed, data):
    csr, oracle = _sampler_pair(graph, seed)
    nodes = list(graph.nodes())
    seeds = data.draw(
        st.lists(st.sampled_from(nodes), min_size=1, max_size=3, unique=True)
    )
    assert csr.coverage(seeds) == oracle.coverage(seeds)
    assert csr.expected_spread(seeds) == oracle.expected_spread(seeds)
    indices = [csr.index_of[node] for node in seeds]
    assert (csr.hit_mask(indices) == oracle.hit_mask(indices)).all()
    assert (csr.hit_root_counts(indices) == oracle.hit_root_counts(indices)).all()


@settings(max_examples=20, deadline=None)
@given(
    graph_instance(),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.data(),
)
def test_rr_estimator_probabilities_and_bounds_match(graph, seed, data):
    csr = RRBenefitEstimator(graph, num_sets=NUM_SETS, seed=seed, backend="csr")
    oracle = RRBenefitEstimator(graph, num_sets=NUM_SETS, seed=seed, backend="dict")
    nodes = list(graph.nodes())
    seeds = data.draw(
        st.lists(st.sampled_from(nodes), min_size=1, max_size=3, unique=True)
    )
    assert csr.activation_probabilities(seeds, {}) == (
        oracle.activation_probabilities(seeds, {})
    )
    assert csr.expected_benefit(seeds, {}) == oracle.expected_benefit(seeds, {})
    # The vectorized screening score agrees with the per-slot benefit up to
    # float summation order — the tolerance the tier's >=-band absorbs.
    assert csr.benefit_bound(seeds) == pytest.approx(
        csr.expected_benefit(seeds, {}), rel=1e-9, abs=1e-9
    )
    assert csr.benefit_bounds([(seeds, {}), (seeds, {"ignored": 3})])[0] == (
        csr.benefit_bounds([(seeds, {})])[0]
    )


def test_greedy_seeds_identical_across_backends():
    rng = np.random.default_rng(7)
    graph = SocialGraph()
    for node in range(30):
        graph.add_node(node, benefit=1.0, sc_cost=1.0, seed_cost=1.0)
    for _ in range(120):
        source, target = rng.integers(0, 30, size=2)
        if source != target:
            graph.add_edge(int(source), int(target), float(rng.random()))
    csr, oracle = _sampler_pair(graph, seed=13)
    assert csr.greedy_seeds(5) == oracle.greedy_seeds(5)
