"""Property-based tests for the analytic expected SC cost model."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.allocation import expected_sc_cost, node_expected_sc_cost
from repro.graph.social_graph import SocialGraph


@st.composite
def star_with_probabilities(draw):
    """A single coupon holder with up to six ranked friends."""
    num_friends = draw(st.integers(min_value=1, max_value=6))
    probabilities = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=num_friends,
            max_size=num_friends,
        )
    )
    sc_costs = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0),
            min_size=num_friends,
            max_size=num_friends,
        )
    )
    graph = SocialGraph()
    graph.add_node("hub", sc_cost=1.0, benefit=1.0)
    for index, (probability, cost) in enumerate(zip(probabilities, sc_costs)):
        leaf = f"leaf{index}"
        graph.add_edge("hub", leaf, probability)
        graph.add_node(leaf, sc_cost=cost, benefit=1.0)
    coupons = draw(st.integers(min_value=0, max_value=num_friends))
    return graph, coupons


@settings(max_examples=60, deadline=None)
@given(star_with_probabilities())
def test_node_cost_non_negative_and_bounded(data):
    graph, coupons = data
    cost = node_expected_sc_cost(graph, "hub", coupons)
    assert cost >= 0.0
    # Upper bound: every friend redeems with certainty.
    upper = sum(graph.sc_cost(leaf) for leaf in graph.out_neighbors("hub"))
    assert cost <= upper + 1e-9


@settings(max_examples=60, deadline=None)
@given(star_with_probabilities())
def test_node_cost_monotone_in_coupons(data):
    graph, _ = data
    degree = graph.out_degree("hub")
    costs = [node_expected_sc_cost(graph, "hub", k) for k in range(degree + 1)]
    for smaller, larger in zip(costs, costs[1:]):
        assert larger >= smaller - 1e-12


@settings(max_examples=40, deadline=None)
@given(star_with_probabilities(), star_with_probabilities())
def test_total_cost_is_modular_across_holders(first, second):
    """Csc is additive over coupon holders (Lemma 1: the cost is modular)."""
    graph = SocialGraph()
    for prefix, (source_graph, _) in (("a", first), ("b", second)):
        for node in source_graph.nodes():
            graph.add_node(
                f"{prefix}{node}",
                sc_cost=source_graph.sc_cost(node),
                benefit=1.0,
            )
        for u, v, p in source_graph.edges():
            graph.add_edge(f"{prefix}{u}", f"{prefix}{v}", p)
    allocation_a = {"ahub": first[1]}
    allocation_b = {"bhub": second[1]}
    combined = {**allocation_a, **allocation_b}
    separate = expected_sc_cost(graph, allocation_a) + expected_sc_cost(
        graph, allocation_b
    )
    assert expected_sc_cost(graph, combined) == abs_approx(separate)


def abs_approx(value, tolerance=1e-9):
    import pytest

    return pytest.approx(value, abs=tolerance)


@settings(max_examples=40, deadline=None)
@given(star_with_probabilities())
def test_full_allocation_cost_equals_sum_of_probability_weighted_costs(data):
    """With k = out-degree every friend has a reserved coupon."""
    graph, _ = data
    degree = graph.out_degree("hub")
    expected = sum(
        graph.sc_cost(leaf) * probability
        for leaf, probability in graph.out_neighbors("hub").items()
    )
    assert node_expected_sc_cost(graph, "hub", degree) == abs_approx(expected)
