"""Property-based tests for algorithm-level invariants.

Every algorithm in the library must return a deployment that

* respects the investment budget (constraint (1b)),
* never allocates more coupons to a user than she has friends, and
* never allocates coupons to users that cannot possibly be reached.

These are checked over randomly generated small scenarios.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.baselines.coupon_wrappers import make_im_l, make_im_u
from repro.core.s3ca import S3CA
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.economics.scenario import Scenario
from repro.graph.social_graph import SocialGraph


@st.composite
def random_scenario(draw):
    """A random scenario with 4-8 users and heterogeneous economics."""
    num_nodes = draw(st.integers(min_value=4, max_value=8))
    nodes = list(range(num_nodes))
    graph = SocialGraph()
    for node in nodes:
        graph.add_node(
            node,
            benefit=draw(st.floats(min_value=0.5, max_value=10.0)),
            seed_cost=draw(st.floats(min_value=0.5, max_value=5.0)),
            sc_cost=draw(st.floats(min_value=0.1, max_value=2.0)),
        )
    possible = [(u, v) for u in nodes for v in nodes if u != v]
    for source, target in draw(
        st.lists(st.sampled_from(possible), min_size=2, max_size=12, unique=True)
    ):
        graph.add_edge(
            source, target, draw(st.floats(min_value=0.05, max_value=0.95))
        )
    budget = draw(st.floats(min_value=2.0, max_value=15.0))
    return Scenario(graph=graph, budget_limit=budget)


def check_deployment_invariants(scenario, deployment):
    assert deployment.total_cost() <= scenario.budget_limit + 1e-6
    for node, coupons in deployment.allocation.items():
        assert 0 < coupons <= scenario.graph.out_degree(node)
    assert deployment.seeds <= set(scenario.graph.nodes())


@settings(max_examples=15, deadline=None)
@given(random_scenario(), st.integers(min_value=0, max_value=1000))
def test_s3ca_output_invariants(scenario, seed):
    estimator = MonteCarloEstimator(scenario.graph, num_samples=30, seed=seed)
    result = S3CA(
        scenario, estimator=estimator, candidate_limit=4, max_pivot_candidates=8,
        max_paths_per_seed=10,
    ).solve()
    check_deployment_invariants(scenario, result.deployment)
    assert result.redemption_rate >= 0.0
    assert result.expected_benefit >= 0.0


@settings(max_examples=10, deadline=None)
@given(random_scenario(), st.integers(min_value=0, max_value=1000))
def test_im_wrappers_output_invariants(scenario, seed):
    estimator = MonteCarloEstimator(scenario.graph, num_samples=20, seed=seed)
    for factory in (make_im_u, make_im_l):
        deployment = factory(scenario, estimator=estimator).select()
        check_deployment_invariants(scenario, deployment)


@settings(max_examples=10, deadline=None)
@given(random_scenario(), st.integers(min_value=0, max_value=1000))
def test_s3ca_deterministic_given_seed(scenario, seed):
    def run():
        estimator = MonteCarloEstimator(scenario.graph, num_samples=25, seed=seed)
        return S3CA(
            scenario, estimator=estimator, candidate_limit=3,
            max_pivot_candidates=6, max_paths_per_seed=8,
        ).solve()

    first = run()
    second = run()
    assert first.seeds == second.seeds
    assert first.allocation == second.allocation
