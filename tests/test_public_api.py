"""Tests for the package-level public API surface."""

import pytest

import repro


def test_version_string():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"


def test_headline_classes_importable_from_top_level():
    assert repro.S3CA is not None
    assert repro.SocialGraph is not None
    assert repro.Scenario is not None
    assert repro.MonteCarloEstimator is not None
    assert repro.LimitedCouponStrategy is not None


def test_quickstart_flow_from_readme():
    scenario = repro.toy_scenario()
    estimator = repro.MonteCarloEstimator(scenario.graph, num_samples=50, seed=7)
    result = repro.S3CA(scenario, estimator=estimator).solve()
    assert result.redemption_rate > 0
    assert set(result.allocation) <= set(scenario.graph.nodes())


def test_named_dataset_export():
    scenario = repro.named_dataset("facebook", scale=0.1, seed=1)
    assert scenario.num_nodes >= 20


def test_exception_hierarchy_exposed():
    assert issubclass(repro.ReproError, Exception)
    from repro.exceptions import AllocationError, BudgetError, GraphError

    for exc in (AllocationError, BudgetError, GraphError):
        assert issubclass(exc, repro.ReproError)
