"""Soak test: one pool, many estimators, long greedy runs, no leaks.

A long randomized S3CA-style workload — three different scenarios, each with
enough budget to drive many accept/reject cycles through the ID phase — runs
every estimator on **one** shared worker pool.  The assertions:

* **no pool / process / FD leak** — the pool's worker-process count stays
  constant across all estimators, the live executor count returns to zero as
  each estimator closes, and (on Linux) the open-file-descriptor count of the
  parent is the same after the whole soak as before it;
* **benefit-trace identity** — every intermediate deployment of every ID run
  (the benefit trace) is bit-identical to the eager serial reference path,
  i.e. the streaming pool + snapshot splicing changed nothing but speed.
"""

import gc
import multiprocessing
import os

import pytest

from repro.utils import shm as _shm

from repro.core.investment import InvestmentDeployment
from repro.diffusion.factory import make_estimator
from repro.diffusion.parallel import (
    SharedShardPool,
    live_executor_count,
    live_pool_count,
)
from repro.experiments.scalability import synthetic_scenario

NUM_SAMPLES = 20
SCENARIOS = [(50, 3), (60, 5), (70, 9)]  # (num_nodes, scenario seed)


def _fd_count():
    try:
        return len(os.listdir("/proc/self/fd"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return None


def _run_id_phase(scenario, estimator, incremental):
    result = InvestmentDeployment(
        scenario,
        estimator,
        candidate_limit=5,
        max_pivot_candidates=12,
        incremental=incremental,
    ).run()
    return [
        (
            tuple(sorted(snapshot.seeds, key=str)),
            tuple(sorted(snapshot.allocation.as_dict().items(), key=str)),
            snapshot.expected_benefit(estimator),
        )
        for snapshot in result.snapshots
    ]


def test_soak_shared_pool_many_estimators_no_leaks_and_trace_identity():
    scenarios = [
        synthetic_scenario(size, budget=2.0 * size, seed=seed)
        for size, seed in SCENARIOS
    ]
    pools_before = live_pool_count()
    children_before = len(multiprocessing.active_children())

    with SharedShardPool(2) as pool:
        worker_count = len(multiprocessing.active_children()) - children_before
        assert worker_count == 2
        # Warm the one-time global shared-memory machinery (the resource
        # tracker starts its pipe on the first segment of the process) so
        # the FD baseline below measures per-estimator cost only.
        if _shm.shared_memory_available():
            _shm.release_owned(_shm.create_segment(None, 1))
        fd_after_pool = _fd_count()
        traces = []
        for lap, scenario in enumerate(scenarios):
            estimator = make_estimator(
                scenario, num_samples=NUM_SAMPLES, seed=11,
                shard_size=6, pool=pool,
            )
            traces.append(_run_id_phase(scenario, estimator, incremental=True))
            estimator.close()
            # A closed estimator may pin its zero-copy graph mapping until
            # collected; the leak contract is that *collection* releases
            # everything, so drop the reference before counting.
            del estimator
            # Pool reuse, not pool churn: worker count and live-object
            # registries are flat after every lap.
            assert live_pool_count() == pools_before + 1
            assert live_executor_count() == 0
            assert (
                len(multiprocessing.active_children()) - children_before
                == worker_count
            )
        if fd_after_pool is not None:
            # No FD creep across three estimator lifecycles on one pool.
            gc.collect()
            assert _fd_count() == fd_after_pool

    assert live_pool_count() == pools_before
    assert len(multiprocessing.active_children()) == children_before

    # The whole soak was also *correct*: every trace equals the eager serial
    # reference (no pool, no delta engine, no splicing).
    for scenario, trace in zip(scenarios, traces):
        estimator = make_estimator(
            scenario, num_samples=NUM_SAMPLES, seed=11, incremental=False
        )
        assert trace == _run_id_phase(scenario, estimator, incremental=False)


def test_soak_interleaved_estimators_on_one_pool(two_hop_path):
    """Two live estimators interleaving evaluations on one pool stay exact."""
    serial = make_estimator(two_hop_path, num_samples=30, seed=2)
    with SharedShardPool(2) as pool:
        first = make_estimator(
            two_hop_path, num_samples=30, seed=2, shard_size=7, pool=pool
        )
        second = make_estimator(
            two_hop_path, num_samples=30, seed=2, shard_size=5, pool=pool
        )
        deployments = [
            (["a"], {}), (["a"], {"a": 1}), (["b"], {"b": 1}),
            (["a", "b"], {"a": 1, "b": 1}),
        ]
        for _ in range(3):
            for seeds, allocation in deployments:
                expected = serial.expected_benefit(seeds, allocation)
                assert first.expected_benefit(seeds, allocation) == expected
                assert second.expected_benefit(seeds, allocation) == expected
            first.clear_cache()
            second.clear_cache()
        first.close()
        second.close()
