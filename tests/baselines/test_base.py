"""Tests for the shared baseline result record."""

import pytest

from repro.baselines.base import AlgorithmResult
from repro.core.deployment import Deployment
from repro.diffusion.exact import ExactEstimator


def test_from_deployment_prices_consistently(two_hop_path):
    estimator = ExactEstimator(two_hop_path)
    deployment = Deployment(two_hop_path, seeds=["a"], allocation={"a": 1})
    result = AlgorithmResult.from_deployment("demo", deployment, estimator, extra=1.0)
    assert result.name == "demo"
    assert result.total_cost == pytest.approx(deployment.total_cost())
    assert result.expected_benefit == pytest.approx(
        deployment.expected_benefit(estimator)
    )
    assert result.redemption_rate == pytest.approx(
        result.expected_benefit / result.total_cost
    )
    assert result.extras == {"extra": 1.0}
    assert result.seeds == {"a"}
    assert result.allocation == {"a": 1}


def test_seed_sc_rate_conventions(two_hop_path):
    estimator = ExactEstimator(two_hop_path)
    seeds_only = AlgorithmResult.from_deployment(
        "x", Deployment(two_hop_path, seeds=["a"]), estimator
    )
    assert seeds_only.seed_sc_rate == float("inf")
    empty = AlgorithmResult.from_deployment("y", Deployment(two_hop_path), estimator)
    assert empty.seed_sc_rate == 0.0
    assert empty.redemption_rate == 0.0
