"""Tests for the PM baseline."""

import pytest

from repro.baselines.profit_max import GreedyProfitMaximization
from repro.diffusion.exact import ExactEstimator
from repro.economics.scenario import Scenario
from repro.graph.social_graph import SocialGraph


def pm_graph():
    """An influential-but-expensive hub versus a cheap moderately good seed."""
    graph = SocialGraph()
    graph.add_edge("expensive", "a", 0.9)
    graph.add_edge("expensive", "b", 0.9)
    graph.add_edge("expensive", "c", 0.9)
    graph.add_edge("cheap", "d", 0.8)
    graph.add_edge("cheap", "e", 0.7)
    for node in graph.nodes():
        graph.add_node(node, benefit=1.0, sc_cost=1.0)
    graph.add_node("expensive", benefit=1.0, seed_cost=100.0, sc_cost=1.0)
    graph.add_node("cheap", benefit=1.0, seed_cost=0.5, sc_cost=1.0)
    for node in ("a", "b", "c", "d", "e"):
        graph.add_node(node, seed_cost=50.0)
    return graph


def test_profit_prefers_cheap_seed_over_influential_expensive_one():
    graph = pm_graph()
    algorithm = GreedyProfitMaximization(
        Scenario(graph, 200.0), estimator=ExactEstimator(graph)
    )
    ranking = algorithm.ranked_seeds(limit=1)
    assert ranking == ["cheap"]


def test_profit_computation():
    graph = pm_graph()
    algorithm = GreedyProfitMaximization(
        Scenario(graph, 200.0), estimator=ExactEstimator(graph)
    )
    # cheap's IC spread benefit: 1 + 0.8 + 0.7 = 2.5; profit = 2.5 - 0.5.
    assert algorithm.profit(["cheap"]) == pytest.approx(2.0)


def test_ranking_stops_when_marginal_profit_non_positive():
    graph = pm_graph()
    algorithm = GreedyProfitMaximization(
        Scenario(graph, 500.0), estimator=ExactEstimator(graph)
    )
    ranking = algorithm.ranked_seeds()
    # The expensive hub (cost 100 > benefit gain ~3.7) and the leaf users
    # (cost 50 > gain 1) must never be selected.
    assert "expensive" not in ranking
    assert ranking == ["cheap"]


def test_select_is_budget_feasible_on_seed_cost():
    graph = pm_graph()
    algorithm = GreedyProfitMaximization(
        Scenario(graph, 0.6), estimator=ExactEstimator(graph)
    )
    deployment = algorithm.select()
    assert deployment.seed_cost() <= 0.6 + 1e-9


def test_run_produces_named_result():
    graph = pm_graph()
    result = GreedyProfitMaximization(
        Scenario(graph, 200.0), estimator=ExactEstimator(graph)
    ).run()
    assert result.name == "PM"
    assert result.expected_benefit > 0
