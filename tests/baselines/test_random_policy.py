"""Tests for the random baseline."""

import pytest

from repro.baselines.random_policy import RandomPolicy
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.experiments.datasets import toy_scenario


def test_random_policy_is_budget_feasible():
    scenario = toy_scenario()
    estimator = MonteCarloEstimator(scenario.graph, num_samples=40, seed=1)
    result = RandomPolicy(scenario, estimator=estimator, seed=1).run()
    assert result.total_cost <= scenario.budget_limit + 1e-9


def test_random_policy_deterministic_given_seed():
    scenario = toy_scenario()
    estimator = MonteCarloEstimator(scenario.graph, num_samples=40, seed=1)
    first = RandomPolicy(scenario, estimator=estimator, seed=9).run()
    second = RandomPolicy(scenario, estimator=estimator, seed=9).run()
    assert first.seeds == second.seeds
    assert first.allocation == second.allocation


def test_random_policy_allocation_bounds():
    scenario = toy_scenario()
    estimator = MonteCarloEstimator(scenario.graph, num_samples=40, seed=1)
    deployment = RandomPolicy(scenario, estimator=estimator, seed=3).select()
    for node, count in deployment.allocation.items():
        assert 0 < count <= scenario.graph.out_degree(node)


def test_invalid_seed_budget_fraction_rejected():
    scenario = toy_scenario()
    with pytest.raises(ValueError):
        RandomPolicy(scenario, seed_budget_fraction=1.5, num_samples=10)
