"""Tests for the IM-S two-stage heuristic."""

import pytest

from repro.baselines.im_s import IMShortestPath
from repro.diffusion.exact import ExactEstimator
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.economics.scenario import Scenario
from repro.graph.social_graph import SocialGraph


def bridge_graph():
    """Two hubs joined by a two-hop bridge of differing influence."""
    graph = SocialGraph()
    graph.add_edge("h1", "a", 0.9)
    graph.add_edge("h1", "bridge1", 0.8)
    graph.add_edge("bridge1", "bridge2", 0.7)
    graph.add_edge("bridge2", "h2", 0.9)
    graph.add_edge("h2", "b", 0.9)
    for node in graph.nodes():
        graph.add_node(node, benefit=2.0, sc_cost=1.0,
                       seed_cost=2.0 if node in {"h1", "h2"} else 20.0)
    return graph


def test_shortest_path_prefers_high_probability_edges():
    graph = bridge_graph()
    scenario = Scenario(graph, 20.0)
    algorithm = IMShortestPath(scenario, estimator=ExactEstimator(graph))
    path = algorithm._shortest_path("h1", "h2")
    assert path[0] == "h1" and path[-1] == "h2"
    assert "bridge1" in path and "bridge2" in path


def test_shortest_path_unreachable_returns_empty():
    graph = bridge_graph()
    scenario = Scenario(graph, 20.0)
    algorithm = IMShortestPath(scenario, estimator=ExactEstimator(graph))
    assert algorithm._shortest_path("a", "h1") == []


def test_select_budget_feasible_and_allocates_along_paths():
    graph = bridge_graph()
    scenario = Scenario(graph, 12.0)
    algorithm = IMShortestPath(scenario, estimator=ExactEstimator(graph))
    deployment = algorithm.select()
    assert deployment.total_cost() <= 12.0 + 1e-9
    assert deployment.seeds
    # Coupons go only to seeds and users on the connecting paths.
    allowed = {"h1", "h2", "bridge1", "bridge2"}
    assert set(deployment.allocation.nodes()) <= allowed


def test_run_result_named_im_s():
    graph = bridge_graph()
    scenario = Scenario(graph, 12.0)
    result = IMShortestPath(
        scenario, estimator=MonteCarloEstimator(graph, num_samples=50, seed=1)
    ).run()
    assert result.name == "IM-S"
    assert result.total_cost <= 12.0 + 1e-9


def test_single_seed_budget_still_works():
    graph = bridge_graph()
    scenario = Scenario(graph, 4.5)  # only one hub affordable in the half-budget
    result = IMShortestPath(scenario, estimator=ExactEstimator(graph)).run()
    assert len(result.seeds) >= 1
    assert result.total_cost <= 4.5 + 1e-9
