"""Tests for the IM baselines (greedy CELF and degree heuristic)."""

import pytest

from repro.baselines.influence_max import DegreeHeuristic, GreedyInfluenceMaximization
from repro.diffusion.exact import ExactEstimator
from repro.economics.scenario import Scenario
from repro.graph.social_graph import SocialGraph


def im_graph():
    """A hub that clearly dominates the spread plus a weak satellite."""
    graph = SocialGraph()
    graph.add_edge("hub", "a", 0.9)
    graph.add_edge("hub", "b", 0.9)
    graph.add_edge("hub", "c", 0.9)
    graph.add_edge("weak", "d", 0.1)
    for node in graph.nodes():
        graph.add_node(node, benefit=1.0, sc_cost=1.0, seed_cost=1.0)
    return graph


def scenario(graph, budget=10.0):
    return Scenario(graph=graph, budget_limit=budget)


def test_greedy_ranks_hub_first():
    graph = im_graph()
    algorithm = GreedyInfluenceMaximization(
        scenario(graph), estimator=ExactEstimator(graph)
    )
    ranking = algorithm.ranked_seeds(limit=2)
    assert ranking[0] == "hub"


def test_greedy_ranking_respects_limit():
    graph = im_graph()
    algorithm = GreedyInfluenceMaximization(
        scenario(graph), estimator=ExactEstimator(graph)
    )
    assert len(algorithm.ranked_seeds(limit=3)) == 3


def test_greedy_spread_monotone_in_seed_count():
    graph = im_graph()
    algorithm = GreedyInfluenceMaximization(
        scenario(graph), estimator=ExactEstimator(graph)
    )
    ranking = algorithm.ranked_seeds(limit=3)
    spreads = [algorithm.spread(ranking[: k + 1]) for k in range(3)]
    assert spreads == sorted(spreads)


def test_select_returns_feasible_seed_costs():
    graph = im_graph()
    budget = 2.0
    algorithm = GreedyInfluenceMaximization(
        scenario(graph, budget), estimator=ExactEstimator(graph)
    )
    deployment = algorithm.select()
    assert deployment.seed_cost() <= budget + 1e-9
    assert deployment.seeds


def test_run_produces_algorithm_result():
    graph = im_graph()
    algorithm = GreedyInfluenceMaximization(
        scenario(graph), estimator=ExactEstimator(graph)
    )
    result = algorithm.run()
    assert result.name == "IM"
    assert result.expected_benefit > 0
    assert result.total_cost > 0
    assert result.redemption_rate == pytest.approx(
        result.expected_benefit / result.total_cost
    )


def test_degree_heuristic_ranking():
    graph = im_graph()
    heuristic = DegreeHeuristic(scenario(graph), estimator=ExactEstimator(graph))
    ranking = heuristic.ranked_seeds()
    assert ranking[0] == "hub"
    assert set(ranking) == set(graph.nodes())


def test_degree_heuristic_select_feasible():
    graph = im_graph()
    heuristic = DegreeHeuristic(scenario(graph, 3.0), estimator=ExactEstimator(graph))
    deployment = heuristic.select()
    assert deployment.seed_cost() <= 3.0 + 1e-9


def test_greedy_matches_degree_on_obvious_instance():
    graph = im_graph()
    exact = ExactEstimator(graph)
    greedy_first = GreedyInfluenceMaximization(
        scenario(graph), estimator=exact
    ).ranked_seeds(limit=1)
    degree_first = DegreeHeuristic(scenario(graph), estimator=exact).ranked_seeds(
        limit=1
    )
    assert greedy_first == degree_first == ["hub"]
