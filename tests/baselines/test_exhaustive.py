"""Tests for the exhaustive optimal search."""

import pytest

from repro.baselines.exhaustive import ExhaustiveSearch
from repro.core.deployment import Deployment
from repro.core.s3ca import S3CA
from repro.diffusion.exact import ExactEstimator
from repro.economics.scenario import Scenario
from repro.graph.social_graph import SocialGraph


def tiny_graph():
    graph = SocialGraph()
    graph.add_edge("s", "a", 0.8)
    graph.add_edge("s", "b", 0.4)
    graph.add_edge("a", "c", 0.6)
    for node in graph.nodes():
        graph.add_node(node, benefit=2.0, sc_cost=1.0,
                       seed_cost=1.0 if node == "s" else 5.0)
    return graph


def test_exhaustive_finds_feasible_optimum():
    graph = tiny_graph()
    scenario = Scenario(graph, budget_limit=4.0)
    estimator = ExactEstimator(graph)
    result = ExhaustiveSearch(scenario, estimator=estimator, max_seeds=1).run()
    assert result.total_cost <= 4.0 + 1e-9
    assert result.redemption_rate > 0


def test_exhaustive_at_least_as_good_as_any_manual_deployment():
    graph = tiny_graph()
    scenario = Scenario(graph, budget_limit=4.0)
    estimator = ExactEstimator(graph)
    optimal = ExhaustiveSearch(scenario, estimator=estimator, max_seeds=1).run()
    manual = Deployment(graph, seeds=["s"], allocation={"s": 1})
    assert optimal.redemption_rate >= manual.redemption_rate(estimator) - 1e-9


def test_exhaustive_upper_bounds_s3ca_on_tiny_instance():
    graph = tiny_graph()
    scenario = Scenario(graph, budget_limit=4.0)
    estimator = ExactEstimator(graph)
    optimal = ExhaustiveSearch(
        scenario, estimator=estimator, max_seeds=2, max_total_coupons=4
    ).run()
    s3ca = S3CA(scenario, estimator=estimator).solve()
    assert optimal.redemption_rate >= s3ca.redemption_rate - 1e-6


def test_candidate_seeds_restriction():
    graph = tiny_graph()
    scenario = Scenario(graph, budget_limit=10.0)
    estimator = ExactEstimator(graph)
    result = ExhaustiveSearch(
        scenario, estimator=estimator, candidate_seeds=["s"], max_seeds=2
    ).run()
    assert result.seeds == {"s"}


def test_no_affordable_seed_gives_empty_deployment():
    graph = tiny_graph()
    for node in graph.nodes():
        graph.add_node(node, seed_cost=100.0)
    scenario = Scenario(graph, budget_limit=5.0)
    estimator = ExactEstimator(graph)
    result = ExhaustiveSearch(scenario, estimator=estimator).run()
    assert result.deployment.is_empty()
    assert result.redemption_rate == 0.0
