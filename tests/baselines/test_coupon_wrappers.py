"""Tests for the IM-U / IM-L / PM-U / PM-L wrappers."""

import pytest

from repro.baselines.coupon_wrappers import (
    CouponStrategyBaseline,
    make_im_l,
    make_im_u,
    make_pm_l,
    make_pm_u,
)
from repro.baselines.influence_max import GreedyInfluenceMaximization
from repro.diffusion.exact import ExactEstimator
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.economics.coupons import LimitedCouponStrategy
from repro.economics.scenario import Scenario
from repro.graph.social_graph import SocialGraph


def wrapper_graph():
    graph = SocialGraph()
    graph.add_edge("hub", "a", 0.9)
    graph.add_edge("hub", "b", 0.8)
    graph.add_edge("a", "c", 0.7)
    graph.add_edge("b", "d", 0.6)
    for node in graph.nodes():
        graph.add_node(node, benefit=2.0, sc_cost=1.0,
                       seed_cost=2.0 if node == "hub" else 10.0)
    return graph


@pytest.fixture
def wrapper_scenario():
    return Scenario(graph=wrapper_graph(), budget_limit=8.0)


def test_factories_produce_named_baselines(wrapper_scenario):
    estimator = MonteCarloEstimator(wrapper_scenario.graph, num_samples=50, seed=1)
    assert make_im_u(wrapper_scenario, estimator=estimator).name == "IM-U"
    assert make_im_l(wrapper_scenario, estimator=estimator).name == "IM-L"
    assert make_pm_u(wrapper_scenario, estimator=estimator).name == "PM-U"
    assert make_pm_l(wrapper_scenario, estimator=estimator).name == "PM-L"


def test_wrapper_respects_budget(wrapper_scenario):
    estimator = ExactEstimator(wrapper_scenario.graph)
    for factory in (make_im_u, make_im_l, make_pm_u, make_pm_l):
        result = factory(wrapper_scenario, estimator=estimator).run()
        assert result.total_cost <= wrapper_scenario.budget_limit + 1e-9


def test_wrapper_selects_hub_and_spreads_coupons(wrapper_scenario):
    estimator = ExactEstimator(wrapper_scenario.graph)
    result = make_im_u(wrapper_scenario, estimator=estimator).run()
    assert "hub" in result.seeds
    assert result.deployment.total_coupons >= 1


def test_limited_strategy_caps_per_user_allocation(wrapper_scenario):
    estimator = ExactEstimator(wrapper_scenario.graph)
    baseline = make_im_l(wrapper_scenario, coupons_per_user=1, estimator=estimator)
    deployment = baseline.select()
    assert all(count <= 1 for count in deployment.allocation.as_dict().values())


def test_allocation_never_exceeds_out_degree(wrapper_scenario):
    estimator = ExactEstimator(wrapper_scenario.graph)
    for factory in (make_im_u, make_im_l):
        deployment = factory(wrapper_scenario, estimator=estimator).select()
        for node, count in deployment.allocation.items():
            assert count <= wrapper_scenario.graph.out_degree(node)


def test_fallback_to_cheapest_seed_when_coupons_do_not_fit():
    graph = wrapper_graph()
    # Budget only fits the hub's seed cost, not its unlimited coupons.
    scenario = Scenario(graph=graph, budget_limit=2.2)
    estimator = ExactEstimator(graph)
    result = make_im_u(scenario, estimator=estimator).run()
    assert result.total_cost <= 2.2 + 1e-9
    assert result.seeds  # still selects a seed


def test_custom_selector_and_strategy_composition(wrapper_scenario):
    estimator = ExactEstimator(wrapper_scenario.graph)
    selector = GreedyInfluenceMaximization(wrapper_scenario, estimator=estimator)
    wrapper = CouponStrategyBaseline(
        wrapper_scenario,
        selector,
        LimitedCouponStrategy(2),
        name="custom",
        estimator=estimator,
    )
    result = wrapper.run()
    assert result.name == "custom"
    assert result.total_cost <= wrapper_scenario.budget_limit + 1e-9
