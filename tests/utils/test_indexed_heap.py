"""Tests for the indexed max-heap used by the greedy phases."""

import pytest

from repro.utils.indexed_heap import IndexedMaxHeap


def test_push_and_pop_in_priority_order():
    heap = IndexedMaxHeap()
    heap.push("a", 1.0)
    heap.push("b", 3.0)
    heap.push("c", 2.0)
    assert heap.pop() == ("b", 3.0)
    assert heap.pop() == ("c", 2.0)
    assert heap.pop() == ("a", 1.0)


def test_len_and_contains():
    heap = IndexedMaxHeap()
    assert len(heap) == 0
    heap.push("x", 5.0)
    assert len(heap) == 1
    assert "x" in heap
    assert "y" not in heap


def test_peek_does_not_remove():
    heap = IndexedMaxHeap()
    heap.push("x", 5.0)
    heap.push("y", 7.0)
    assert heap.peek() == ("y", 7.0)
    assert len(heap) == 2


def test_pop_empty_raises():
    heap = IndexedMaxHeap()
    with pytest.raises(IndexError):
        heap.pop()
    with pytest.raises(IndexError):
        heap.peek()


def test_push_existing_key_updates_priority():
    heap = IndexedMaxHeap()
    heap.push("a", 1.0)
    heap.push("b", 2.0)
    heap.push("a", 10.0)
    assert len(heap) == 2
    assert heap.pop() == ("a", 10.0)


def test_update_increases_and_decreases():
    heap = IndexedMaxHeap()
    for key, priority in [("a", 1.0), ("b", 2.0), ("c", 3.0)]:
        heap.push(key, priority)
    heap.update("a", 5.0)
    heap.update("c", 0.5)
    assert [heap.pop()[0] for _ in range(3)] == ["a", "b", "c"]


def test_remove_returns_priority_and_keeps_heap_valid():
    heap = IndexedMaxHeap()
    for key, priority in [("a", 1.0), ("b", 4.0), ("c", 3.0), ("d", 2.0)]:
        heap.push(key, priority)
    assert heap.remove("b") == 4.0
    assert "b" not in heap
    assert [heap.pop()[0] for _ in range(3)] == ["c", "d", "a"]


def test_priority_and_get():
    heap = IndexedMaxHeap()
    heap.push("a", 1.5)
    assert heap.priority("a") == 1.5
    assert heap.get("a") == 1.5
    assert heap.get("missing") is None
    assert heap.get("missing", -1.0) == -1.0


def test_ties_broken_by_insertion_order():
    heap = IndexedMaxHeap()
    heap.push("first", 2.0)
    heap.push("second", 2.0)
    heap.push("third", 2.0)
    assert [heap.pop()[0] for _ in range(3)] == ["first", "second", "third"]


def test_many_items_sorted():
    heap = IndexedMaxHeap()
    values = [(f"k{i}", float((i * 37) % 101)) for i in range(100)]
    for key, priority in values:
        heap.push(key, priority)
    popped = [heap.pop()[1] for _ in range(len(values))]
    assert popped == sorted((p for _, p in values), reverse=True)


def test_iteration_yields_keys():
    heap = IndexedMaxHeap()
    heap.push("a", 1.0)
    heap.push("b", 2.0)
    assert set(iter(heap)) == {"a", "b"}
