"""Tests for the shared argument-validation helpers."""

import math

import pytest

from repro.utils.validation import (
    require_non_negative,
    require_positive,
    require_probability,
)


@pytest.mark.parametrize("value", [1, 0.5, 1e-9, 10**6])
def test_require_positive_accepts(value):
    assert require_positive(value, "x") == value


@pytest.mark.parametrize("value", [0, -1, -0.5])
def test_require_positive_rejects_non_positive(value):
    with pytest.raises(ValueError):
        require_positive(value, "x")


@pytest.mark.parametrize("value", [float("nan"), float("inf"), -float("inf")])
def test_require_positive_rejects_non_finite(value):
    with pytest.raises(ValueError):
        require_positive(value, "x")


def test_require_positive_rejects_non_numeric():
    with pytest.raises(TypeError):
        require_positive("3", "x")
    with pytest.raises(TypeError):
        require_positive(True, "x")


@pytest.mark.parametrize("value", [0, 0.0, 2.5])
def test_require_non_negative_accepts(value):
    assert require_non_negative(value, "x") == value


def test_require_non_negative_rejects_negative():
    with pytest.raises(ValueError):
        require_non_negative(-0.001, "x")


@pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
def test_require_probability_accepts(value):
    assert require_probability(value, "p") == value


@pytest.mark.parametrize("value", [-0.1, 1.1, math.inf])
def test_require_probability_rejects_out_of_range(value):
    with pytest.raises(ValueError):
        require_probability(value, "p")


def test_error_message_contains_name():
    with pytest.raises(ValueError, match="budget"):
        require_positive(-1, "budget")
