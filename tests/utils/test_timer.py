"""Tests for the wall-clock Timer helper."""

import time

import pytest

from repro.utils.timer import Timer


def test_context_manager_measures_elapsed():
    with Timer() as timer:
        time.sleep(0.01)
    assert timer.elapsed >= 0.005


def test_stop_before_start_raises():
    timer = Timer()
    with pytest.raises(RuntimeError):
        timer.stop()


def test_elapsed_while_running_is_positive():
    timer = Timer()
    timer.start()
    time.sleep(0.005)
    assert timer.elapsed > 0
    timer.stop()


def test_restart_overwrites_previous_measurement():
    timer = Timer()
    timer.start()
    time.sleep(0.01)
    first = timer.stop()
    timer.start()
    second = timer.stop()
    assert second <= first
