"""Tests for the deterministic RNG plumbing."""

import numpy as np

from repro.utils.rng import RandomSource, spawn_rng


def test_spawn_rng_from_int_is_deterministic():
    first = spawn_rng(42).random(5)
    second = spawn_rng(42).random(5)
    assert np.allclose(first, second)


def test_spawn_rng_passthrough_generator():
    generator = np.random.default_rng(1)
    assert spawn_rng(generator) is generator


def test_spawn_rng_none_gives_generator():
    assert isinstance(spawn_rng(None), np.random.Generator)


def test_random_source_children_are_reproducible():
    source_a = RandomSource(7)
    source_b = RandomSource(7)
    assert np.allclose(
        source_a.child("cascade").random(4), source_b.child("cascade").random(4)
    )


def test_random_source_children_are_independent_by_name():
    source = RandomSource(7)
    first = source.child("one").random(4)
    second = source.child("two").random(4)
    assert not np.allclose(first, second)


def test_random_source_child_is_cached():
    source = RandomSource(3)
    assert source.child("x") is source.child("x")


def test_random_source_integers_in_range():
    source = RandomSource(11)
    for _ in range(20):
        value = source.integers(0, 5)
        assert 0 <= value < 5


def test_random_source_from_generator():
    source = RandomSource(np.random.default_rng(5))
    child = source.child("anything")
    assert isinstance(child, np.random.Generator)
