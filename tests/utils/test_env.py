"""Tests for the shared environment-variable parsing helpers.

The original bug these pin down: ``REPRO_NO_NATIVE_KERNEL=0`` used to
*disable* the native kernel, because the check was ``var in os.environ``
rather than a parse of the value.  Every boolean ``REPRO_*`` knob now goes
through :func:`repro.utils.env.parse_flag`, so ``0``/``""``/``false``/``no``
mean *unset*.
"""

import logging

import pytest

from repro.utils.env import env_flag, env_int, env_str, parse_flag


class TestParseFlag:
    @pytest.mark.parametrize("raw", ["", "0", "false", "no", "off",
                                     "False", "NO", "Off", " 0 ", "  "])
    def test_falsy_spellings_are_false(self, raw):
        assert parse_flag(raw) is False
        # Falsy beats any default: an explicit "0" means off.
        assert parse_flag(raw, default=True) is False

    @pytest.mark.parametrize("raw", ["1", "true", "yes", "on",
                                     "True", "YES", "On", " 1 "])
    def test_truthy_spellings_are_true(self, raw):
        assert parse_flag(raw) is True
        assert parse_flag(raw, default=False) is True

    def test_unset_takes_the_default(self):
        assert parse_flag(None) is False
        assert parse_flag(None, default=True) is True

    def test_unrecognised_nonempty_means_true(self, caplog):
        # Backwards compatible with the old "any value = set" behaviour,
        # but now it leaves a trace for debugging.
        with caplog.at_level(logging.DEBUG, logger="repro.utils.env"):
            assert parse_flag("banana", name="REPRO_TEST_FLAG") is True
        assert any(
            "REPRO_TEST_FLAG" in record.getMessage() for record in caplog.records
        )


class TestEnvFlag:
    def test_reads_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "1")
        assert env_flag("REPRO_TEST_KNOB") is True
        monkeypatch.setenv("REPRO_TEST_KNOB", "0")
        assert env_flag("REPRO_TEST_KNOB") is False
        monkeypatch.delenv("REPRO_TEST_KNOB")
        assert env_flag("REPRO_TEST_KNOB") is False
        assert env_flag("REPRO_TEST_KNOB", default=True) is True


class TestEnvInt:
    def test_parses_and_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", "42")
        assert env_int("REPRO_TEST_INT") == 42
        monkeypatch.setenv("REPRO_TEST_INT", "  7 ")
        assert env_int("REPRO_TEST_INT") == 7
        monkeypatch.setenv("REPRO_TEST_INT", "")
        assert env_int("REPRO_TEST_INT", default=5) == 5
        monkeypatch.delenv("REPRO_TEST_INT")
        assert env_int("REPRO_TEST_INT") is None
        assert env_int("REPRO_TEST_INT", default=9) == 9

    def test_garbage_raises_with_the_variable_name(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", "many")
        with pytest.raises(ValueError, match="REPRO_TEST_INT"):
            env_int("REPRO_TEST_INT")


class TestEnvStr:
    def test_empty_means_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_STR", "hello")
        assert env_str("REPRO_TEST_STR") == "hello"
        monkeypatch.setenv("REPRO_TEST_STR", "")
        assert env_str("REPRO_TEST_STR", default="fallback") == "fallback"
        monkeypatch.delenv("REPRO_TEST_STR")
        assert env_str("REPRO_TEST_STR") is None


class TestKernelKnob:
    """REPRO_NO_NATIVE_KERNEL honours boolean spellings (the original bug)."""

    @pytest.fixture(autouse=True)
    def _fresh_kernel_cache(self):
        from repro.diffusion.kernels import reset_kernel_cache

        reset_kernel_cache()
        yield
        reset_kernel_cache()

    @pytest.mark.parametrize("raw", ["0", "", "false", "no", "off"])
    def test_falsy_value_does_not_disable(self, monkeypatch, raw):
        from repro.diffusion.kernels import DISABLE_ENV, native_disabled

        monkeypatch.setenv(DISABLE_ENV, raw)
        assert native_disabled() is False

    @pytest.mark.parametrize("raw", ["1", "true", "yes", "on"])
    def test_truthy_value_disables(self, monkeypatch, raw):
        from repro.diffusion.kernels import DISABLE_ENV, native_disabled

        monkeypatch.setenv(DISABLE_ENV, raw)
        assert native_disabled() is True

    def test_zero_still_loads_the_native_kernel(self, monkeypatch):
        """The acceptance case: =0 must run the native kernel, not disable it."""
        from repro.diffusion.kernels import DISABLE_ENV, load_kernel

        monkeypatch.setenv(DISABLE_ENV, "0")
        kernel = load_kernel()
        if kernel is None:
            pytest.skip("no native backend available in this environment")
        assert kernel.backend in ("numba", "cc")

    def test_one_disables_the_native_kernel(self, monkeypatch):
        from repro.diffusion.kernels import DISABLE_ENV, load_kernel

        monkeypatch.setenv(DISABLE_ENV, "1")
        assert load_kernel() is None
