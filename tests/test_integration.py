"""End-to-end integration tests across the whole pipeline.

These tests run the complete comparison the paper's evaluation performs —
every baseline plus S3CA, sharing a single Monte-Carlo estimator — on small
scenarios, and check the headline claims that should hold at any scale:
budget feasibility for every algorithm and S3CA winning (or tying) the
redemption rate.
"""

import pytest

from repro.baselines.coupon_wrappers import make_im_l, make_im_u, make_pm_l, make_pm_u
from repro.baselines.im_s import IMShortestPath
from repro.baselines.random_policy import RandomPolicy
from repro.core.s3ca import S3CA
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.experiments.datasets import build_scenario, toy_scenario


@pytest.fixture(scope="module")
def small_facebook():
    return build_scenario("facebook", scale=0.1, seed=3)


@pytest.fixture(scope="module")
def shared_estimator(small_facebook):
    return MonteCarloEstimator(small_facebook.graph, num_samples=40, seed=3)


@pytest.fixture(scope="module")
def all_results(small_facebook, shared_estimator):
    scenario, estimator = small_facebook, shared_estimator
    results = {}
    for name, algorithm in {
        "IM-U": make_im_u(scenario, estimator=estimator),
        "IM-L": make_im_l(scenario, estimator=estimator),
        "PM-U": make_pm_u(scenario, estimator=estimator),
        "PM-L": make_pm_l(scenario, estimator=estimator),
        "IM-S": IMShortestPath(scenario, estimator=estimator),
        "Random": RandomPolicy(scenario, estimator=estimator, seed=3),
    }.items():
        results[name] = algorithm.run()
    results["S3CA"] = S3CA(
        scenario, estimator=estimator, candidate_limit=6, max_pivot_candidates=15,
        max_paths_per_seed=30,
    ).solve()
    return results


def test_every_algorithm_respects_budget(small_facebook, all_results):
    for name, result in all_results.items():
        total_cost = (
            result.total_cost if hasattr(result, "total_cost") else None
        )
        assert total_cost is not None
        assert total_cost <= small_facebook.budget_limit + 1e-6, name


def test_s3ca_wins_redemption_rate(all_results):
    s3ca_rate = all_results["S3CA"].redemption_rate
    for name, result in all_results.items():
        if name == "S3CA":
            continue
        assert s3ca_rate >= result.redemption_rate - 1e-6, (
            f"S3CA ({s3ca_rate:.4f}) lost to {name} ({result.redemption_rate:.4f})"
        )


def test_s3ca_beats_random_strictly(all_results):
    assert all_results["S3CA"].redemption_rate > all_results["Random"].redemption_rate


def test_all_allocations_within_degree_bounds(small_facebook, all_results):
    graph = small_facebook.graph
    for name, result in all_results.items():
        allocation = (
            result.allocation if isinstance(result.allocation, dict)
            else result.allocation
        )
        for node, coupons in allocation.items():
            assert 0 < coupons <= graph.out_degree(node), name


def test_toy_scenario_full_pipeline_repeatable():
    scenario = toy_scenario()
    first = S3CA(scenario, num_samples=60, seed=5).solve()
    second = S3CA(scenario, num_samples=60, seed=5).solve()
    assert first.seeds == second.seeds
    assert first.redemption_rate == pytest.approx(second.redemption_rate)
