"""Tests for the transport-free campaign service core.

These drive :class:`~repro.server.service.CampaignService` directly (no HTTP
framework needed) and pin the two properties the server exists for:

* **warm starts** — the second solve of a registered scenario reuses the
  resident estimator: no graph compile, no estimator build, no kernel
  warm-up, and bit-identical results;
* **what-if fidelity** — a what-if answered from resident state (delta
  snapshot/splice or warm pass) is bit-identical to evaluating the modified
  deployment on a freshly built estimator with the same seed.
"""

import threading
import time

import pytest

pytest.importorskip("pydantic", reason="server tests need the 'server' extra")

from repro.diffusion.factory import make_estimator
from repro.experiments.config import ServerConfig
from repro.server.errors import (
    InvalidRequest,
    JobQueueFull,
    NoCompletedSolve,
    UnknownJob,
    UnknownScenario,
)
from repro.server.jobs import JobManager
from repro.server.schemas import (
    RegisterScenarioRequest,
    SolveRequest,
    WhatIfRequest,
)
from repro.server.service import CampaignService

TINY = dict(dataset="facebook", scale=0.08)
TINY_CONFIG = ServerConfig(num_samples=15, seed=3, job_workers=2)
TINY_SOLVE = SolveRequest(candidate_limit=3, pivot_limit=6)


@pytest.fixture
def service():
    svc = CampaignService(TINY_CONFIG)
    yield svc
    svc.close()


def _solved(service, scenario_id, request=TINY_SOLVE):
    job = service.enqueue_solve(scenario_id, request)
    done = service.jobs.wait(job.job_id, timeout=120)
    assert done.status == "done", done.error
    return done.result


class TestRegistration:
    def test_register_and_info(self, service):
        info, reused = service.register_scenario(RegisterScenarioRequest(**TINY))
        assert not reused
        assert info["scenario_id"].startswith("s-")
        assert info["nodes"] > 0 and info["edges"] > 0
        assert service.scenario_info(info["scenario_id"])["label"]
        assert len(service.list_scenarios()) == 1

    def test_same_inputs_deduplicate(self, service):
        info1, reused1 = service.register_scenario(RegisterScenarioRequest(**TINY))
        info2, reused2 = service.register_scenario(RegisterScenarioRequest(**TINY))
        assert not reused1 and reused2
        assert info1["scenario_id"] == info2["scenario_id"]
        assert len(service.list_scenarios()) == 1

    def test_different_inputs_do_not(self, service):
        info1, _ = service.register_scenario(RegisterScenarioRequest(**TINY))
        info2, reused = service.register_scenario(
            RegisterScenarioRequest(dataset="facebook", scale=0.08, seed=99)
        )
        assert not reused
        assert info1["scenario_id"] != info2["scenario_id"]

    def test_unknown_scenario_raises(self, service):
        with pytest.raises(UnknownScenario):
            service.scenario_info("s-missing")

    def test_validation_requires_one_source(self):
        with pytest.raises(ValueError):
            RegisterScenarioRequest()
        with pytest.raises(ValueError):
            RegisterScenarioRequest(dataset="facebook", snap_path="/tmp/x.txt")

    def test_snap_registration_through_the_csr_cache(self, service, tmp_path):
        edges = tmp_path / "toy.txt"
        edges.write_text(
            "# toy graph\n0 1\n1 2\n2 3\n3 0\n0 2\n1 3\n4 0\n4 1\n"
        )
        request = RegisterScenarioRequest(snap_path=str(edges), budget=30.0)
        info, reused = service.register_scenario(request)
        assert not reused
        assert info["nodes"] == 5
        # Same file bytes → same fingerprint → dedupe.
        _, reused2 = service.register_scenario(request)
        assert reused2

    def test_snap_registration_missing_file(self, service):
        with pytest.raises(InvalidRequest):
            service.register_scenario(
                RegisterScenarioRequest(snap_path="/nonexistent/edges.txt")
            )


class TestWarmStarts:
    def test_second_solve_skips_compile_and_warmup(self, service):
        info, _ = service.register_scenario(RegisterScenarioRequest(**TINY))
        sid = info["scenario_id"]

        first = _solved(service, sid)
        assert first["resident"]["estimator_reused"] is False
        assert first["timings"]["graph_compile_seconds"] >= 0.0
        assert first["resident"]["graph_compiles"] == 1
        assert first["resident"]["estimator_builds"] == 1

        second = _solved(service, sid)
        assert second["resident"]["estimator_reused"] is True
        # The one-time costs are not re-paid: the timings record zero and
        # the counters do not move.
        assert second["timings"]["graph_compile_seconds"] == 0.0
        assert second["timings"]["estimator_build_seconds"] == 0.0
        assert second["timings"]["kernel_compile_seconds"] == 0.0
        assert second["resident"]["graph_compiles"] == 1
        assert second["resident"]["estimator_builds"] == 1
        assert second["resident"]["kernel_warmups"] <= 1

        # Warm and cold solves are the same solve.
        assert first["expected_benefit"] == second["expected_benefit"]
        assert first["seeds"] == second["seeds"]
        assert first["allocation"] == second["allocation"]

    def test_solve_results_carry_phase_timings(self, service):
        info, _ = service.register_scenario(RegisterScenarioRequest(**TINY))
        result = _solved(service, info["scenario_id"])
        assert "investment_deployment" in result["timings"]["phase_seconds"]
        assert result["timings"]["solve_seconds"] > 0.0


class TestWhatIf:
    def _base(self, service):
        info, _ = service.register_scenario(RegisterScenarioRequest(**TINY))
        sid = info["scenario_id"]
        result = _solved(service, sid)
        return sid, result

    def _fresh_benefit(self, service, sid, seeds, allocation):
        """Evaluate a deployment on a brand-new estimator with the same RNG."""
        entry = service.registry.get(sid)
        estimator = make_estimator(
            entry.scenario,
            "mc-compiled",
            num_samples=entry.num_samples,
            seed=entry.seed,
        )
        try:
            return estimator.expected_benefit(seeds, allocation)
        finally:
            estimator.close()

    @staticmethod
    def _ids(entry, raw_seeds):
        graph = entry.scenario.graph
        return {node if node in graph else int(node) for node in raw_seeds}

    def test_whatif_before_any_solve_is_rejected(self, service):
        info, _ = service.register_scenario(RegisterScenarioRequest(**TINY))
        with pytest.raises(NoCompletedSolve):
            service.whatif(info["scenario_id"], WhatIfRequest(budget_delta=10.0))

    def test_extra_coupons_answered_by_delta_splice(self, service):
        sid, result = self._base(service)
        target = result["seeds"][0]
        answer = service.whatif(sid, WhatIfRequest(extra_coupons={target: 2}))
        assert answer["answered_by"] == "delta-splice"

        entry = service.registry.get(sid)
        seeds = self._ids(entry, result["seeds"])
        allocation = {
            (node if node in entry.scenario.graph else int(node)): count
            for node, count in result["allocation"].items()
        }
        node = target if target in entry.scenario.graph else int(target)
        allocation[node] = allocation.get(node, 0) + 2
        cold = self._fresh_benefit(service, sid, seeds, allocation)
        # Bit-identical, not approximately equal: the delta snapshot/splice
        # path must agree with a cold evaluation to the last ulp.
        assert answer["modified"]["expected_benefit"] == cold

    def test_extra_coupons_on_a_non_seed_node(self, service):
        sid, result = self._base(service)
        entry = service.registry.get(sid)
        graph = entry.scenario.graph
        seeds = self._ids(entry, result["seeds"])
        outsider = next(node for node in graph.nodes() if node not in seeds)
        answer = service.whatif(
            sid, WhatIfRequest(extra_coupons={str(outsider): 1})
        )
        allocation = {
            (node if node in graph else int(node)): count
            for node, count in result["allocation"].items()
        }
        allocation[outsider] = allocation.get(outsider, 0) + 1
        cold = self._fresh_benefit(service, sid, seeds, allocation)
        assert answer["modified"]["expected_benefit"] == cold

    def test_drop_seed_answered_from_warm_state(self, service):
        sid, result = self._base(service)
        victim = result["seeds"][0]
        answer = service.whatif(sid, WhatIfRequest(drop_seeds=[victim]))
        assert answer["answered_by"] == "warm-pass"

        entry = service.registry.get(sid)
        graph = entry.scenario.graph
        seeds = self._ids(entry, result["seeds"])
        node = victim if victim in graph else int(victim)
        allocation = {
            (key if key in graph else int(key)): count
            for key, count in result["allocation"].items()
        }
        cold = self._fresh_benefit(service, sid, seeds - {node}, allocation)
        assert answer["modified"]["expected_benefit"] == cold

    def test_budget_delta_reports_feasibility(self, service):
        sid, result = self._base(service)
        budget = service.registry.get(sid).scenario.budget_limit
        # Shrink the budget to half the deployment's cost (still positive).
        shrunk = service.whatif(
            sid, WhatIfRequest(budget_delta=result["total_cost"] / 2 - budget)
        )
        grown = service.whatif(sid, WhatIfRequest(budget_delta=100.0))
        assert shrunk["modified"]["feasible"] is False
        assert grown["modified"]["feasible"] is True
        # No deployment change: the benefit is the base benefit, bit-for-bit.
        assert (
            grown["modified"]["expected_benefit"]
            == result["expected_benefit"]
        )

    def test_whatif_does_not_corrupt_later_solves(self, service):
        """Delta splices advance the snapshot; solves must not notice."""
        sid, first = self._base(service)
        service.whatif(sid, WhatIfRequest(extra_coupons={first["seeds"][0]: 2}))
        second = _solved(service, sid)
        assert second["expected_benefit"] == first["expected_benefit"]
        assert second["allocation"] == first["allocation"]

    def test_unknown_nodes_and_bad_drops_are_rejected(self, service):
        sid, result = self._base(service)
        with pytest.raises(InvalidRequest):
            service.whatif(sid, WhatIfRequest(extra_coupons={"999999": 1}))
        entry = service.registry.get(sid)
        non_seed = next(
            node
            for node in entry.scenario.graph.nodes()
            if str(node) not in result["seeds"]
        )
        with pytest.raises(InvalidRequest):
            service.whatif(sid, WhatIfRequest(drop_seeds=[str(non_seed)]))

    def test_empty_whatif_is_rejected_at_validation(self):
        with pytest.raises(ValueError):
            WhatIfRequest()
        with pytest.raises(ValueError):
            WhatIfRequest(extra_coupons={"1": 0})


class TestJobManager:
    def test_queue_bound_rejects_excess(self):
        manager = JobManager(workers=1, max_queued=2)
        try:
            release = threading.Event()
            manager.submit("solve", "s-1", release.wait)  # occupies the worker
            time.sleep(0.05)
            manager.submit("solve", "s-1", lambda: {})
            manager.submit("solve", "s-1", lambda: {})
            with pytest.raises(JobQueueFull):
                manager.submit("solve", "s-1", lambda: {})
            release.set()
        finally:
            manager.close()

    def test_failed_jobs_record_the_error(self):
        def boom():
            raise RuntimeError("estimator exploded")

        with JobManager(workers=1, max_queued=4) as manager:
            job = manager.submit("solve", "s-1", boom)
            done = manager.wait(job.job_id, timeout=10)
            assert done.status == "failed"
            assert "RuntimeError" in done.error
            assert "estimator exploded" in done.error
            assert done.as_dict()["run_seconds"] is not None

    def test_unknown_job_raises(self):
        with JobManager(workers=1, max_queued=4) as manager:
            with pytest.raises(UnknownJob):
                manager.get("solve-999999")

    def test_close_cancels_queued_jobs(self):
        manager = JobManager(workers=1, max_queued=8)
        release = threading.Event()
        manager.submit("solve", "s-1", release.wait)
        time.sleep(0.05)
        queued = manager.submit("solve", "s-1", lambda: {})
        release.set()
        manager.close()
        assert queued.status in ("cancelled", "done")
        with pytest.raises(JobQueueFull):
            manager.submit("solve", "s-1", lambda: {})


class TestLifecycle:
    def test_health_and_close(self):
        service = CampaignService(TINY_CONFIG)
        health = service.health()
        assert health["status"] == "ok"
        assert health["scenarios"] == 0
        service.close()
        assert service.closed
        service.close()  # idempotent

    def test_close_releases_resident_estimators(self):
        service = CampaignService(TINY_CONFIG)
        info, _ = service.register_scenario(RegisterScenarioRequest(**TINY))
        _solved(service, info["scenario_id"])
        entry = service.registry.get(info["scenario_id"])
        assert entry.estimator is not None
        service.close()
        assert entry.estimator is None
