"""Tests for the graph-events endpoint of the campaign service.

Pins the dynamic-graph contract end to end through the server:

* **mutation fidelity** — a what-if answered after ``apply_events`` is
  bit-identical to a cold evaluation of the same deployment on the mutated
  scenario;
* **no cold resolve** — the resident estimator reconciles in place: the
  ``graph_compiles`` / ``estimator_builds`` counters stay at 1 and only the
  dirty worlds re-simulate (``reconciled_worlds < num_worlds``);
* **safety** — events are refused with 409 while a solve is in flight, and
  malformed batches land in the 422 taxonomy.
"""

import pytest

pytest.importorskip("pydantic", reason="server tests need the 'server' extra")

from pydantic import ValidationError

from repro.experiments.config import ServerConfig
from repro.server.errors import InvalidRequest, SolveInFlight, UnknownScenario
from repro.server.schemas import (
    GraphEventModel,
    GraphEventsRequest,
    RegisterScenarioRequest,
    SolveRequest,
    WhatIfRequest,
)
from repro.server.service import CampaignService

TINY = dict(dataset="facebook", scale=0.08)
TINY_CONFIG = ServerConfig(num_samples=15, seed=3, job_workers=2)
TINY_SOLVE = SolveRequest(candidate_limit=3, pivot_limit=6)


@pytest.fixture
def service():
    svc = CampaignService(TINY_CONFIG)
    yield svc
    svc.close()


def _solved(service, scenario_id, request=TINY_SOLVE):
    job = service.enqueue_solve(scenario_id, request)
    done = service.jobs.wait(job.job_id, timeout=120)
    assert done.status == "done", done.error
    return done.result


def _registered(service):
    info, _ = service.register_scenario(RegisterScenarioRequest(**TINY))
    return info["scenario_id"]


def _events_request(graph):
    """A batch touching a handful of the scenario's edges."""
    edges = sorted(graph.edges(), key=lambda e: (str(e[0]), str(e[1])))
    (s0, t0, _), (s1, t1, p1) = edges[0], edges[1]
    return GraphEventsRequest(
        events=[
            {"type": "edge_drop", "source": str(s0), "target": str(t0)},
            {
                "type": "edge_reweight",
                "source": str(s1),
                "target": str(t1),
                "probability": min(1.0, p1 + 0.1),
            },
            {"type": "node_add", "node": "joiner", "benefit": 3.0},
            {
                "type": "edge_add",
                "source": str(next(iter(graph.nodes()))),
                "target": "joiner",
                "probability": 0.4,
            },
        ]
    )


class TestEventsReconcile:
    def test_events_then_whatif_matches_cold_mutated_scenario(self, service):
        sid = _registered(service)
        result = _solved(service, sid)
        entry = service.registry.get(sid)
        graph = entry.scenario.graph

        answer = service.apply_events(sid, _events_request(graph))
        assert answer["events"] == 4
        assert answer["events_applied"] == 1
        reconcile = answer["reconcile"]
        assert reconcile["reconciled_worlds"] < reconcile["num_worlds"]
        assert reconcile["reconcile_passes"] >= 1
        # No cold resolve happened: the one-time builds did not re-run.
        assert answer["resident"]["graph_compiles"] == 1
        assert answer["resident"]["estimator_builds"] == 1

        # A what-if on the mutated scenario equals a cold evaluation of the
        # same modified deployment on the mutated graph, bit for bit.
        target = result["seeds"][0]
        whatif = service.whatif(sid, WhatIfRequest(extra_coupons={target: 2}))
        node = target if target in graph else int(target)
        seeds = {
            (raw if raw in graph else int(raw)) for raw in result["seeds"]
        }
        allocation = {
            (raw if raw in graph else int(raw)): count
            for raw, count in result["allocation"].items()
        }
        allocation[node] = allocation.get(node, 0) + 2
        # The cold reference shares the evolved draw-position universe (the
        # resident engine's compiled snapshot + sampler) but carries no
        # reconcile or splice history whatsoever — a from-scratch
        # instrumented pass on the mutated scenario.
        cold_benefit = _evolved_cold_benefit(entry.estimator, seeds, allocation)
        assert whatif["modified"]["expected_benefit"] == cold_benefit

    def test_solved_benefit_is_restated_on_the_new_graph(self, service):
        sid = _registered(service)
        result = _solved(service, sid)
        entry = service.registry.get(sid)
        answer = service.apply_events(sid, _events_request(entry.scenario.graph))
        assert answer["solve_benefit"] is not None
        assert entry.last_solve.expected_benefit == answer["solve_benefit"]
        # The what-if base now quotes the evolved graph's benefit.
        grown = service.whatif(sid, WhatIfRequest(budget_delta=100.0))
        assert grown["base"]["expected_benefit"] == answer["solve_benefit"]
        assert result["scenario_id"] == sid

    def test_events_before_any_solve_evolve_the_graph_only(self, service):
        sid = _registered(service)
        entry = service.registry.get(sid)
        graph = entry.scenario.graph
        dropped = min(graph.edges(), key=lambda e: (str(e[0]), str(e[1])))
        answer = service.apply_events(sid, _events_request(graph))
        assert "reconcile" not in answer
        assert answer["resident"]["estimator_reused"] is False
        assert answer["graph"]["nodes"] == graph.num_nodes
        assert "joiner" in graph
        assert not graph.has_edge(dropped[0], dropped[1])
        # The first solve then compiles the evolved graph, once.
        solved = _solved(service, sid)
        assert solved["resident"]["graph_compiles"] == 1

    def test_counters_survive_repeated_batches(self, service):
        sid = _registered(service)
        _solved(service, sid)
        entry = service.registry.get(sid)
        for expected in (1, 2):
            answer = service.apply_events(
                sid, _events_request(entry.scenario.graph)
            )
            assert answer["events_applied"] == expected
            assert answer["resident"]["estimator_builds"] == 1
        assert entry.events_applied == 2


def _evolved_cold_benefit(resident_estimator, seeds, allocation):
    """Cold evaluation on the evolved compiled graph + evolved sampler."""
    from repro.diffusion.engine import CompiledCascadeEngine
    from repro.diffusion.delta import DeltaCascadeEngine

    engine = CompiledCascadeEngine(
        resident_estimator._engine.compiled,
        resident_estimator.num_samples,
        seed=0,
        use_kernel=False,
        shared_memory=False,
        sampler=resident_estimator._engine.sampler,
    )
    try:
        delta = DeltaCascadeEngine(engine)
        _, benefit = delta.snapshot(sorted(seeds, key=str), allocation)
        return benefit
    finally:
        engine.close()


class TestEventsSafety:
    def test_events_during_in_flight_solve_are_409(self, service):
        sid = _registered(service)
        _solved(service, sid)
        entry = service.registry.get(sid)
        entry.solves_in_flight += 1  # simulate a queued/running solve
        try:
            with pytest.raises(SolveInFlight) as excinfo:
                service.apply_events(
                    sid, _events_request(entry.scenario.graph)
                )
            assert excinfo.value.status == 409
        finally:
            entry.solves_in_flight -= 1
        # Once the solve drains, the same batch is accepted.
        answer = service.apply_events(sid, _events_request(entry.scenario.graph))
        assert answer["events_applied"] == 1

    def test_in_flight_counter_tracks_solves(self, service):
        sid = _registered(service)
        entry = service.registry.get(sid)
        assert entry.solves_in_flight == 0
        _solved(service, sid)
        assert entry.solves_in_flight == 0  # decremented on completion

    def test_unknown_scenario_is_404(self, service):
        request = GraphEventsRequest(
            events=[{"type": "edge_drop", "source": "0", "target": "1"}]
        )
        with pytest.raises(UnknownScenario):
            service.apply_events("s-missing", request)

    def test_unknown_nodes_in_destructive_events_are_422(self, service):
        sid = _registered(service)
        entry = service.registry.get(sid)
        for events in (
            [{"type": "edge_drop", "source": "999999", "target": "0"}],
            [
                {
                    "type": "edge_reweight",
                    "source": "0",
                    "target": "999999",
                    "probability": 0.5,
                }
            ],
            [{"type": "node_retire", "node": "999999"}],
        ):
            with pytest.raises(InvalidRequest) as excinfo:
                service.apply_events(sid, GraphEventsRequest(events=events))
            assert excinfo.value.status == 422
        assert entry.events_applied == 0


class TestEventsValidation:
    def test_event_type_taxonomy(self):
        with pytest.raises(ValidationError):
            GraphEventModel(type="edge_warp", source="0", target="1")
        with pytest.raises(ValidationError):
            GraphEventModel(type="edge_add", source="0", target="1")  # no prob
        with pytest.raises(ValidationError):
            GraphEventModel(
                type="edge_add", source="0", target="1", probability=1.5
            )
        with pytest.raises(ValidationError):
            GraphEventModel(
                type="edge_add", source="7", target="7", probability=0.5
            )
        with pytest.raises(ValidationError):
            GraphEventModel(type="edge_drop", source="0")  # no target
        with pytest.raises(ValidationError):
            GraphEventModel(
                type="edge_drop", source="0", target="1", probability=0.5
            )
        with pytest.raises(ValidationError):
            GraphEventModel(type="node_add")  # no node
        with pytest.raises(ValidationError):
            GraphEventModel(type="node_retire", node="3", benefit=1.0)
        with pytest.raises(ValidationError):
            GraphEventModel(type="node_add", node="3", source="0")

    def test_empty_batch_is_rejected(self):
        with pytest.raises(ValidationError):
            GraphEventsRequest(events=[])

    def test_wellformed_events_validate(self):
        request = GraphEventsRequest(
            events=[
                {"type": "edge_add", "source": "a", "target": "b",
                 "probability": 0.5},
                {"type": "edge_drop", "source": "a", "target": "b"},
                {"type": "edge_reweight", "source": "a", "target": "b",
                 "probability": 1.0},
                {"type": "node_add", "node": "c", "benefit": 2.0,
                 "seed_cost": 1.0, "sc_cost": 0.5},
                {"type": "node_retire", "node": "c"},
            ]
        )
        assert len(request.events) == 5
