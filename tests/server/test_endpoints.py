"""HTTP-level tests of the campaign server endpoints.

Run against whichever framework is importable: FastAPI through its
``TestClient`` (the CI ``server`` extra) or the Flask fallback through
``test_client()``.  A tiny shim gives both the same ``get_json``/``post``
surface, so every assertion below exercises the real route table, status
mapping and JSON bodies of the app the chosen framework serves.
"""

import pytest

pytest.importorskip("pydantic", reason="server tests need the 'server' extra")

from repro.experiments.config import ServerConfig
from repro.server.app import available_framework, create_app
from repro.server.service import CampaignService

FRAMEWORK = available_framework()
if FRAMEWORK is None:  # pragma: no cover - neither fastapi nor flask present
    pytest.skip("no HTTP framework available", allow_module_level=True)

TINY = {"dataset": "facebook", "scale": 0.08}
TINY_SOLVE = {"candidate_limit": 3, "pivot_limit": 6}


class _Client:
    """Uniform json-in/json-out client over FastAPI and Flask test clients."""

    def __init__(self, app):
        self.framework = app.repro_framework
        if self.framework == "fastapi":
            from fastapi.testclient import TestClient

            self._client = TestClient(app, raise_server_exceptions=False)
        else:
            self._client = app.test_client()

    def get(self, path):
        response = self._client.get(path)
        return self._normalise(response)

    def post(self, path, json=None):
        response = self._client.post(path, json=json if json is not None else {})
        return self._normalise(response)

    def _normalise(self, response):
        if self.framework == "fastapi":
            return response.status_code, response.json()
        return response.status_code, response.get_json()


@pytest.fixture(scope="module")
def service():
    svc = CampaignService(ServerConfig(num_samples=15, seed=3, job_workers=2))
    yield svc
    svc.close()


@pytest.fixture(scope="module")
def client(service):
    return _Client(create_app(service=service))


@pytest.fixture(scope="module")
def scenario_id(client):
    status, body = client.post("/scenarios", json=TINY)
    assert status in (200, 201)
    return body["scenario_id"]


def _solve_and_wait(client, service, scenario_id):
    status, body = client.post(f"/scenarios/{scenario_id}/solve", json=TINY_SOLVE)
    assert status == 202
    job = service.jobs.wait(body["job_id"], timeout=120)
    assert job.status == "done", job.error
    status, body = client.get(f"/jobs/{body['job_id']}")
    assert status == 200
    return body


def test_health(client):
    status, body = client.get("/health")
    assert status == 200
    assert body["status"] == "ok"
    assert body["job_workers"] == 2


def test_register_then_dedupe(client, scenario_id):
    status, body = client.post("/scenarios", json=TINY)
    assert status == 200  # second registration of the same inputs: reused
    assert body["scenario_id"] == scenario_id
    assert body["reused"] is True

    status, body = client.get("/scenarios")
    assert status == 200
    assert any(s["scenario_id"] == scenario_id for s in body["scenarios"])

    status, body = client.get(f"/scenarios/{scenario_id}")
    assert status == 200
    assert body["nodes"] > 0


def test_register_validation_maps_to_422(client):
    status, body = client.post("/scenarios", json={})
    assert status == 422
    assert body["error"] == "InvalidRequest"
    status, _ = client.post(
        "/scenarios", json={"dataset": "facebook", "scale": -1.0}
    )
    assert status == 422


def test_whatif_before_solve_is_409(client, scenario_id):
    status, body = client.post(
        f"/scenarios/{scenario_id}/whatif", json={"budget_delta": 5.0}
    )
    assert status == 409
    assert body["error"] == "NoCompletedSolve"


def test_solve_poll_and_warm_restart(client, service, scenario_id):
    first = _solve_and_wait(client, service, scenario_id)
    assert first["status"] == "done"
    result = first["result"]
    assert result["expected_benefit"] > 0
    assert result["resident"]["estimator_reused"] is False

    second = _solve_and_wait(client, service, scenario_id)
    warm = second["result"]
    # The acceptance property over the wire: the second solve of a
    # registered scenario skips graph compile and kernel warm-up.
    assert warm["resident"]["estimator_reused"] is True
    assert warm["timings"]["graph_compile_seconds"] == 0.0
    assert warm["timings"]["kernel_compile_seconds"] == 0.0
    assert warm["resident"]["graph_compiles"] == 1
    assert warm["expected_benefit"] == result["expected_benefit"]


def test_whatif_over_http(client, service, scenario_id):
    solved = _solve_and_wait(client, service, scenario_id)
    seeds = solved["result"]["seeds"]
    status, body = client.post(
        f"/scenarios/{scenario_id}/whatif",
        json={"extra_coupons": {seeds[0]: 1}},
    )
    assert status == 200
    assert body["answered_by"] == "delta-splice"
    assert body["modified"]["total_coupons"] == body["base"]["total_coupons"] + 1

    status, body = client.post(
        f"/scenarios/{scenario_id}/whatif", json={"drop_seeds": [seeds[0]]}
    )
    assert status == 200
    assert body["answered_by"] == "warm-pass"
    assert seeds[0] not in body["modified"]["seeds"]


def test_whatif_validation_maps_to_422(client, service, scenario_id):
    _solve_and_wait(client, service, scenario_id)
    status, body = client.post(f"/scenarios/{scenario_id}/whatif", json={})
    assert status == 422
    status, body = client.post(
        f"/scenarios/{scenario_id}/whatif",
        json={"extra_coupons": {"999999": 1}},
    )
    assert status == 422
    assert "unknown node" in body["detail"]


def test_unknown_ids_map_to_404(client):
    assert client.get("/scenarios/s-missing")[0] == 404
    assert client.get("/jobs/solve-999999")[0] == 404
    assert client.post("/scenarios/s-missing/solve", json={})[0] == 404
    assert client.post("/scenarios/s-missing/whatif", json={"budget_delta": 1})[0] == 404


def test_queue_full_maps_to_503():
    import threading

    service = CampaignService(
        ServerConfig(num_samples=15, seed=3, job_workers=1, max_queued_jobs=1)
    )
    try:
        client = _Client(create_app(service=service))
        status, body = client.post("/scenarios", json=TINY)
        sid = body["scenario_id"]
        release = threading.Event()
        service.jobs.submit("block", sid, release.wait)  # occupy the worker
        import time

        time.sleep(0.05)
        assert client.post(f"/scenarios/{sid}/solve", json=TINY_SOLVE)[0] == 202
        status, body = client.post(f"/scenarios/{sid}/solve", json=TINY_SOLVE)
        assert status == 503
        assert body["error"] == "JobQueueFull"
        release.set()
    finally:
        service.close()
