"""Tests for the SC-constrained independent cascade."""

import numpy as np
import pytest

from repro.diffusion.sc_cascade import (
    CascadeResult,
    reachable_with_coupons,
    simulate_sc_cascade,
    validate_allocation,
)
from repro.exceptions import AllocationError
from repro.graph.generators import path_graph, star_graph
from repro.graph.social_graph import SocialGraph


def certain_graph():
    """A path a -> b -> c with probability 1 everywhere."""
    graph = SocialGraph()
    graph.add_edge("a", "b", 1.0)
    graph.add_edge("b", "c", 1.0)
    for node in graph.nodes():
        graph.add_node(node, benefit=1.0, sc_cost=1.0, seed_cost=1.0)
    return graph


def test_seeds_always_activated():
    graph = certain_graph()
    result = simulate_sc_cascade(graph, ["a"], {}, rng=0)
    assert result.activated == {"a"}
    assert result.num_redemptions == 0


def test_propagation_requires_coupons():
    graph = certain_graph()
    no_coupons = simulate_sc_cascade(graph, ["a"], {}, rng=0)
    with_coupons = simulate_sc_cascade(graph, ["a"], {"a": 1, "b": 1}, rng=0)
    assert no_coupons.activated == {"a"}
    assert with_coupons.activated == {"a", "b", "c"}
    assert with_coupons.redemptions == [("a", "b"), ("b", "c")]


def test_chain_breaks_without_intermediate_coupon():
    graph = certain_graph()
    result = simulate_sc_cascade(graph, ["a"], {"a": 1}, rng=0)
    assert result.activated == {"a", "b"}


def test_coupon_constraint_limits_activations():
    graph = star_graph(5, probability=1.0)
    for node in graph.nodes():
        graph.add_node(node, benefit=1.0, sc_cost=1.0)
    result = simulate_sc_cascade(graph, [0], {0: 2}, rng=0)
    assert len(result.activated) == 3  # hub + exactly two leaves
    assert result.coupons_used[0] == 2


def test_highest_probability_neighbors_served_first():
    graph = SocialGraph()
    graph.add_edge("s", "low", 0.4)
    graph.add_edge("s", "high", 0.9)
    for node in graph.nodes():
        graph.add_node(node, benefit=1.0, sc_cost=1.0)
    # With deterministic outcomes for every edge and one coupon, the coupon
    # must go to the higher-probability neighbour.
    outcomes = {("s", "high"): True, ("s", "low"): True}
    result = simulate_sc_cascade(graph, ["s"], {"s": 1}, edge_outcomes=outcomes)
    assert result.activated == {"s", "high"}


def test_failed_high_probability_attempt_frees_coupon_for_next():
    graph = SocialGraph()
    graph.add_edge("s", "high", 0.9)
    graph.add_edge("s", "low", 0.4)
    for node in graph.nodes():
        graph.add_node(node, benefit=1.0, sc_cost=1.0)
    outcomes = {("s", "high"): False, ("s", "low"): True}
    result = simulate_sc_cascade(graph, ["s"], {"s": 1}, edge_outcomes=outcomes)
    assert result.activated == {"s", "low"}


def test_already_active_neighbor_does_not_consume_coupon():
    graph = SocialGraph()
    graph.add_edge("a", "b", 1.0)
    graph.add_edge("b", "a", 1.0)
    graph.add_edge("b", "c", 1.0)
    for node in graph.nodes():
        graph.add_node(node, benefit=1.0, sc_cost=1.0)
    result = simulate_sc_cascade(graph, ["a"], {"a": 1, "b": 1}, rng=0)
    # b's single coupon must go to c because a is already active.
    assert result.activated == {"a", "b", "c"}


def test_unknown_seed_is_ignored():
    graph = certain_graph()
    result = simulate_sc_cascade(graph, ["a", "ghost"], {}, rng=0)
    assert result.activated == {"a"}


def test_deterministic_with_seeded_rng():
    graph = path_graph(6, probability=0.5)
    for node in graph.nodes():
        graph.add_node(node, benefit=1.0, sc_cost=1.0)
    allocation = {node: 1 for node in graph.nodes() if graph.out_degree(node) > 0}
    first = simulate_sc_cascade(graph, [0], allocation, rng=42)
    second = simulate_sc_cascade(graph, [0], allocation, rng=42)
    assert first.activated == second.activated


def test_validate_allocation_rejects_bad_entries(two_hop_path):
    with pytest.raises(AllocationError):
        validate_allocation(two_hop_path, {"zzz": 1})
    with pytest.raises(AllocationError):
        validate_allocation(two_hop_path, {"a": -1})
    with pytest.raises(AllocationError):
        validate_allocation(two_hop_path, {"a": 5})
    with pytest.raises(AllocationError):
        validate_allocation(two_hop_path, {"a": 1.5})
    validate_allocation(two_hop_path, {"a": 1, "b": np.int64(1)})


def test_cascade_result_totals(two_hop_path):
    result = CascadeResult(activated={"a", "b"}, redemptions=[("a", "b")])
    assert result.total_benefit(two_hop_path) == 2.0
    assert result.total_sc_cost(two_hop_path) == 1.0


def test_reachable_with_coupons(two_hop_path):
    assert reachable_with_coupons(two_hop_path, ["a"], {}) == {"a"}
    assert reachable_with_coupons(two_hop_path, ["a"], {"a": 1}) == {"a", "b"}
    assert reachable_with_coupons(two_hop_path, ["a"], {"a": 1, "b": 1}) == {
        "a",
        "b",
        "c",
    }
