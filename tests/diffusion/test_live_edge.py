"""Tests for live-edge world sampling and deterministic cascades."""

from repro.diffusion.live_edge import LiveEdgeWorld, cascade_in_world, sample_worlds
from repro.graph.generators import path_graph, star_graph
from repro.graph.social_graph import SocialGraph


def test_sample_worlds_count_and_determinism():
    graph = path_graph(5, probability=0.5)
    first = sample_worlds(graph, 10, rng=3)
    second = sample_worlds(graph, 10, rng=3)
    assert len(first) == 10
    assert [w.live_edges for w in first] == [w.live_edges for w in second]


def test_probability_one_edges_always_live():
    graph = path_graph(4, probability=1.0)
    for world in sample_worlds(graph, 5, rng=0):
        assert len(world.live_edges) == 3


def test_probability_zero_edges_never_live():
    graph = path_graph(4, probability=0.0)
    for world in sample_worlds(graph, 5, rng=0):
        assert len(world.live_edges) == 0


def test_world_is_live_and_outcomes_view():
    world = LiveEdgeWorld(frozenset({("a", "b")}))
    assert world.is_live("a", "b")
    assert not world.is_live("b", "a")
    assert world.as_outcomes() == {("a", "b"): True}


def test_cascade_in_world_respects_allocation():
    graph = star_graph(3, probability=0.5)
    world = LiveEdgeWorld(frozenset({(0, 1), (0, 2), (0, 3)}))
    activated = cascade_in_world(graph, world, [0], {0: 2})
    assert len(activated) == 3  # hub plus exactly two leaves
    assert 0 in activated


def test_cascade_in_world_skips_dead_edges():
    graph = path_graph(4, probability=0.5)
    world = LiveEdgeWorld(frozenset({(0, 1)}))
    activated = cascade_in_world(graph, world, [0], {0: 1, 1: 1, 2: 1})
    assert activated == {0, 1}


def test_cascade_in_world_without_coupons_is_just_seeds():
    graph = path_graph(3, probability=1.0)
    world = LiveEdgeWorld(frozenset({(0, 1), (1, 2)}))
    assert cascade_in_world(graph, world, [0], {}) == {0}


def test_cascade_in_world_multiple_seeds():
    graph = SocialGraph()
    graph.add_edge("a", "x", 0.5)
    graph.add_edge("b", "y", 0.5)
    world = LiveEdgeWorld(frozenset({("a", "x"), ("b", "y")}))
    activated = cascade_in_world(graph, world, ["a", "b"], {"a": 1, "b": 1})
    assert activated == {"a", "b", "x", "y"}
