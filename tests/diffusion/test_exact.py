"""Tests for the exact world-enumeration estimator."""

import pytest

from repro.diffusion.exact import ExactEstimator
from repro.exceptions import EstimationError
from repro.graph.generators import erdos_renyi_graph, path_graph, star_graph
from repro.graph.social_graph import SocialGraph


def unit(graph):
    for node in graph.nodes():
        graph.add_node(node, benefit=1.0, sc_cost=1.0, seed_cost=1.0)
    return graph


def test_single_edge_expected_benefit():
    graph = unit(path_graph(2, probability=0.3))
    estimator = ExactEstimator(graph)
    # Seed 0 is always active; node 1 activates with probability 0.3.
    assert estimator.expected_benefit([0], {0: 1}) == pytest.approx(1.3)


def test_two_hop_chain():
    graph = unit(path_graph(3, probability=0.5))
    estimator = ExactEstimator(graph)
    # 1 + 0.5 + 0.25
    assert estimator.expected_benefit([0], {0: 1, 1: 1}) == pytest.approx(1.75)


def test_coupon_constraint_with_ranked_neighbors():
    """The Example-1 structure: one coupon over two neighbours (0.6, 0.4)."""
    graph = SocialGraph()
    graph.add_edge("v1", "v2", 0.6)
    graph.add_edge("v1", "v3", 0.4)
    unit(graph)
    estimator = ExactEstimator(graph)
    # One coupon: v2 with 0.6, else v3 with 0.4 -> 1 + 0.6 + 0.4*0.4 = 1.76
    assert estimator.expected_benefit(["v1"], {"v1": 1}) == pytest.approx(1.76)
    # Two coupons: 1 + 0.6 + 0.4 = 2.0
    assert estimator.expected_benefit(["v1"], {"v1": 2}) == pytest.approx(2.0)


def test_activation_probabilities_match_hand_calculation():
    graph = unit(star_graph(2, probability=0.5))
    estimator = ExactEstimator(graph)
    probabilities = estimator.activation_probabilities([0], {0: 1})
    assert probabilities[0] == pytest.approx(1.0)
    # Leaf 1 (ranked first by id) activates with 0.5; leaf 2 only if leaf 1's
    # edge is dead: 0.5 * 0.5.
    assert probabilities[1] == pytest.approx(0.5)
    assert probabilities[2] == pytest.approx(0.25)


def test_benefit_weighted_by_node_benefit():
    graph = path_graph(2, probability=0.5)
    graph.add_node(0, benefit=2.0, sc_cost=1.0)
    graph.add_node(1, benefit=10.0, sc_cost=1.0)
    estimator = ExactEstimator(graph)
    assert estimator.expected_benefit([0], {0: 1}) == pytest.approx(7.0)


def test_too_many_edges_rejected():
    graph = unit(erdos_renyi_graph(15, 0.4, seed=1))
    assert graph.num_edges > 20
    with pytest.raises(EstimationError):
        ExactEstimator(graph, max_edges=20)


def test_caching_gives_identical_values():
    graph = unit(star_graph(3, probability=0.5))
    estimator = ExactEstimator(graph)
    first = estimator.expected_benefit([0], {0: 2})
    second = estimator.expected_benefit([0], {0: 2})
    assert first == second


def test_no_seeds_no_benefit():
    graph = unit(path_graph(3, probability=0.5))
    estimator = ExactEstimator(graph)
    assert estimator.expected_benefit([], {}) == 0.0
