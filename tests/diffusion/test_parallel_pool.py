"""Shared-pool ownership semantics, lifecycle guards and leak safety.

The contract being locked down:

* an estimator (or engine, or executor) built **on an injected pool** never
  closes that pool — closing the estimator only unregisters its sampler;
* an estimator that had to create its own pool owns it, and closing the
  estimator tears the pool down;
* a leaked pool cannot outlive the interpreter: the ``weakref.finalize``
  guard (Python runs outstanding finalizers via ``atexit``) terminates the
  workers at program exit, so forgetting ``close()`` cannot hang the process.
"""

import multiprocessing
import os
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.diffusion.parallel import (
    SharedShardPool,
    live_executor_count,
    live_pool_count,
)
from repro.exceptions import EstimationError


def _worker_children():
    return [child for child in multiprocessing.active_children()]


def test_estimator_never_closes_an_injected_pool(two_hop_path):
    serial = MonteCarloEstimator(two_hop_path, num_samples=20, seed=4)
    expected = serial.expected_benefit(["a"], {"a": 1})
    with SharedShardPool(2) as pool:
        first = MonteCarloEstimator(
            two_hop_path, num_samples=20, seed=4, shard_size=5, pool=pool
        )
        second = MonteCarloEstimator(
            two_hop_path, num_samples=20, seed=4, shard_size=5, pool=pool
        )
        assert first.expected_benefit(["a"], {"a": 1}) == expected
        first.close()
        assert not pool.closed
        # the pool must keep serving the other estimator
        assert second.expected_benefit(["a"], {"a": 1}) == expected
        second.close()
        assert not pool.closed
    assert pool.closed


def test_estimator_owned_pool_is_closed_with_the_estimator(two_hop_path):
    baseline = len(_worker_children())
    estimator = MonteCarloEstimator(
        two_hop_path, num_samples=20, seed=4, shard_size=5, workers=2
    )
    estimator.expected_benefit(["a"], {"a": 1})
    assert len(_worker_children()) > baseline
    estimator.close()
    assert len(_worker_children()) == baseline


def test_closed_pool_refuses_new_work(two_hop_path):
    pool = SharedShardPool(2)
    estimator = MonteCarloEstimator(
        two_hop_path, num_samples=20, seed=4, shard_size=5, pool=pool
    )
    estimator.expected_benefit(["a"], {"a": 1})
    pool.close()
    estimator.clear_cache()
    with pytest.raises(EstimationError):
        estimator.expected_benefit(["a"], {"a": 1})
    # closing the estimator after the pool died is still safe
    estimator.close()
    pool.close()  # idempotent


def test_register_is_idempotent_and_release_forgets(two_hop_path):
    with SharedShardPool(2) as pool:
        estimator = MonteCarloEstimator(
            two_hop_path, num_samples=20, seed=4, shard_size=5, pool=pool
        )
        estimator.expected_benefit(["a"], {"a": 1})
        sampler = estimator._engine.sampler
        token = pool.register(sampler)
        assert pool.register(sampler) == token  # no re-broadcast
        estimator.close()  # releases the token
        assert pool.register(sampler) != token  # re-registered fresh


def test_live_counters_track_open_pools_and_executors(two_hop_path):
    pools_before = live_pool_count()
    executors_before = live_executor_count()
    with SharedShardPool(2) as pool:
        assert live_pool_count() == pools_before + 1
        estimator = MonteCarloEstimator(
            two_hop_path, num_samples=20, seed=4, shard_size=5, pool=pool
        )
        estimator.expected_benefit(["a"], {"a": 1})
        assert live_executor_count() == executors_before + 1
        estimator.close()
        assert live_executor_count() == executors_before
    assert live_pool_count() == pools_before


def test_forgotten_pool_is_reclaimed_at_interpreter_exit(tmp_path):
    """Regression: a never-closed pool must not hang the process at exit."""
    script = textwrap.dedent(
        """
        from repro.diffusion.monte_carlo import MonteCarloEstimator
        from repro.diffusion.parallel import SharedShardPool
        from repro.graph.social_graph import SocialGraph

        graph = SocialGraph()
        graph.add_edge("a", "b", 0.5)
        for node in graph.nodes():
            graph.add_node(node, benefit=1.0, seed_cost=1.0, sc_cost=1.0)

        pool = SharedShardPool(2)
        estimator = MonteCarloEstimator(
            graph, num_samples=12, seed=1, shard_size=4, pool=pool
        )
        print(estimator.expected_benefit(["a"], {"a": 1}))
        # neither estimator.close() nor pool.close(): the finalizer must
        # reclaim the workers at exit.
        """
    )
    path = tmp_path / "leak_pool.py"
    path.write_text(script, encoding="utf-8")
    # The child needs `repro` importable without a pip install: pyproject's
    # `pythonpath = ["src"]` only applies inside pytest, so prepend the
    # package source explicitly.
    src_dir = str(pathlib.Path(__file__).resolve().parents[2] / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True, text=True, timeout=120, env=env,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()  # the estimate was printed
