"""Tests for the RR-set influence estimator."""

import pytest

from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.diffusion.independent_cascade import saturated_allocation
from repro.diffusion.rr_sets import RRSetSampler, estimate_spread_rr
from repro.exceptions import EstimationError
from repro.graph.generators import erdos_renyi_graph, path_graph, star_graph
from repro.graph.social_graph import SocialGraph


def unit(graph):
    for node in graph.nodes():
        graph.add_node(node, benefit=1.0, sc_cost=1.0, seed_cost=1.0)
    return graph


def test_invalid_parameters():
    graph = unit(path_graph(3))
    with pytest.raises(EstimationError):
        RRSetSampler(graph, num_sets=0)
    with pytest.raises(EstimationError):
        RRSetSampler(SocialGraph(), num_sets=10)


def test_deterministic_given_seed():
    graph = unit(erdos_renyi_graph(30, 0.1, seed=1))
    first = RRSetSampler(graph, num_sets=50, seed=3)
    second = RRSetSampler(graph, num_sets=50, seed=3)
    assert first.rr_sets == second.rr_sets


def test_spread_bounds():
    graph = unit(star_graph(5, probability=0.5))
    sampler = RRSetSampler(graph, num_sets=500, seed=2)
    spread = sampler.expected_spread([0])
    assert 1.0 <= spread <= graph.num_nodes
    assert sampler.expected_spread([]) == 0.0


def test_spread_monotone_in_seeds():
    graph = unit(erdos_renyi_graph(40, 0.08, seed=4))
    sampler = RRSetSampler(graph, num_sets=300, seed=4)
    single = sampler.expected_spread([0])
    double = sampler.expected_spread([0, 1])
    assert double >= single


def test_agrees_with_monte_carlo_on_small_graph():
    graph = unit(star_graph(4, probability=0.5))
    rr_estimate = estimate_spread_rr(graph, [0], num_sets=4000, seed=5)
    mc = MonteCarloEstimator(graph, num_samples=4000, seed=5)
    mc_estimate = mc.expected_spread([0], saturated_allocation(graph))
    assert rr_estimate == pytest.approx(mc_estimate, rel=0.15)


def test_greedy_seeds_pick_the_hub():
    graph = unit(star_graph(6, probability=0.9))
    sampler = RRSetSampler(graph, num_sets=400, seed=6)
    assert sampler.greedy_seeds(1) == [0]


def test_greedy_seeds_respect_k_and_stop_at_zero_gain():
    graph = unit(path_graph(4, probability=1.0))
    sampler = RRSetSampler(graph, num_sets=200, seed=7)
    seeds = sampler.greedy_seeds(10)
    # Node 0 covers every RR set (probability-1 chain), so one seed suffices.
    assert seeds[0] == 0
    assert len(seeds) <= 4
    assert sampler.greedy_seeds(0) == []


def test_coverage_counts():
    graph = unit(path_graph(3, probability=1.0))
    sampler = RRSetSampler(graph, num_sets=100, seed=8)
    assert sampler.coverage([0]) == 100  # 0 reaches every node with certainty
