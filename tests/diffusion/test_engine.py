"""Bit-parity tests: compiled cascade engine vs the dict-path reference.

The engine must reproduce the dict path's live-edge worlds and cascades
exactly for a fixed seed (common random numbers included): identical
activation probabilities, and expected benefits equal up to floating-point
summation order.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.diffusion.engine import CompiledCascadeEngine
from repro.diffusion.live_edge import cascade_in_world, sample_worlds
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.graph.csr import CompiledGraph
from repro.graph.generators import ppgg_like_graph, star_graph
from repro.graph.social_graph import SocialGraph


@st.composite
def instance(draw):
    """Random attributed graph plus a random deployment."""
    num_nodes = draw(st.integers(min_value=2, max_value=10))
    nodes = list(range(num_nodes))
    graph = SocialGraph()
    for node in nodes:
        graph.add_node(
            node,
            benefit=draw(st.floats(min_value=0.0, max_value=5.0)),
            sc_cost=1.0,
            seed_cost=1.0,
        )
    possible = [(u, v) for u in nodes for v in nodes if u != v]
    chosen = draw(
        st.lists(
            st.sampled_from(possible), max_size=min(25, len(possible)), unique=True
        )
    )
    for source, target in chosen:
        graph.add_edge(
            source, target, draw(st.floats(min_value=0.0, max_value=1.0))
        )
    seeds = draw(st.lists(st.sampled_from(nodes), min_size=1, max_size=3, unique=True))
    allocation = {}
    for node in nodes:
        degree = graph.out_degree(node)
        if degree:
            allocation[node] = draw(st.integers(min_value=0, max_value=degree))
    return graph, seeds, allocation


@settings(max_examples=40, deadline=None)
@given(instance(), st.integers(min_value=0, max_value=2**31 - 1))
def test_activation_probabilities_bit_parity_with_dict_backend(data, seed):
    graph, seeds, allocation = data
    dict_estimator = MonteCarloEstimator(
        graph, num_samples=25, seed=seed, backend="dict"
    )
    engine = CompiledCascadeEngine(graph, 25, seed=seed)
    assert engine.activation_probabilities(
        seeds, allocation
    ) == dict_estimator.activation_probabilities(seeds, allocation)


@settings(max_examples=40, deadline=None)
@given(instance(), st.integers(min_value=0, max_value=2**31 - 1))
def test_expected_benefit_parity_with_dict_backend(data, seed):
    graph, seeds, allocation = data
    dict_estimator = MonteCarloEstimator(
        graph, num_samples=25, seed=seed, backend="dict"
    )
    engine = CompiledCascadeEngine(graph, 25, seed=seed)
    assert engine.expected_benefit(seeds, allocation) == pytest.approx(
        dict_estimator.expected_benefit(seeds, allocation), rel=1e-12, abs=1e-12
    )


def test_per_world_cascades_match_dict_worlds_exactly():
    """World *w* of the engine is bit-for-bit world *w* of sample_worlds."""
    graph = ppgg_like_graph(
        num_nodes=60, avg_out_degree=5.0, power_law_exponent=1.7,
        clustering=0.3, seed=3,
    )
    for node in graph.nodes():
        graph.add_node(node, benefit=1.0, seed_cost=1.0, sc_cost=1.0)
    num_worlds, seed = 20, 77
    worlds = sample_worlds(graph, num_worlds, seed)
    compiled = CompiledGraph.from_social_graph(graph)
    engine = CompiledCascadeEngine(compiled, num_worlds, seed)

    nodes = list(graph.nodes())
    seeds = nodes[:3]
    allocation = {node: min(graph.out_degree(node), 2) for node in nodes[:10]}
    seed_indices = compiled.indices_of(seeds)
    coupons = compiled.allocation_vector(allocation).tolist()
    for world_index, world in enumerate(worlds):
        expected = cascade_in_world(graph, world, seeds, allocation)
        actual = {
            compiled.node_of(i)
            for i in engine.cascade_world(world_index, seed_indices, coupons)
        }
        assert actual == expected


def test_seeds_outside_graph_are_skipped():
    graph = star_graph(4, probability=1.0)
    for node in graph.nodes():
        graph.add_node(node, benefit=1.0, seed_cost=1.0, sc_cost=1.0)
    engine = CompiledCascadeEngine(graph, 10, seed=0)
    assert engine.activation_probabilities(["ghost"], {}) == {}
    assert engine.expected_benefit(["ghost"], {}) == 0.0
    probabilities = engine.activation_probabilities(["ghost", 0], {0: 3})
    assert probabilities[0] == 1.0


def test_rejects_nonpositive_world_count():
    from repro.exceptions import EstimationError

    with pytest.raises(EstimationError):
        CompiledCascadeEngine(star_graph(3), 0)


def test_benefit_and_counts_come_from_the_same_pass():
    graph = star_graph(6, probability=0.5)
    for node in graph.nodes():
        graph.add_node(node, benefit=2.0, seed_cost=1.0, sc_cost=1.0)
    engine = CompiledCascadeEngine(graph, 200, seed=9)
    counts, benefit = engine.run([0], {0: 5})
    assert benefit == pytest.approx(2.0 * counts.sum() / 200)
