"""Reconciliation bit-identity: events + reconcile ≡ cold pass on the new graph.

After :meth:`MonteCarloEstimator.ingest_events` the delta snapshot must be,
piece for piece, what a cold instrumented pass of the same deployment on the
evolved graph produces — while the ``reconciled_worlds`` counter proves that
only the worlds whose live-edge draws touch a changed edge were re-simulated,
and ``snapshot_passes`` proves the clean worlds were never run at all.

The cold reference shares the evolved engine's compiled snapshot and layered
sampler (surviving edges keep their persistent draw positions, so a fresh
sampler with the same seed would *not* agree — position persistence is the
whole mechanism), and is otherwise a brand-new engine with no reconcile
history.
"""

import numpy as np
import pytest

from repro.diffusion.delta import DeltaCascadeEngine
from repro.diffusion.engine import CompiledCascadeEngine
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.exceptions import EstimationError
from repro.graph.attributes import NodeAttributes
from repro.graph.events import (
    EdgeAdd,
    EdgeDrop,
    EdgeReweight,
    GraphEventBatch,
    NodeAdd,
    NodeRetire,
)
from repro.graph.social_graph import SocialGraph

NUM_WORLDS = 30


def build_graph(num_nodes=14, num_edges=45, seed=5):
    rng = np.random.default_rng(seed)
    graph = SocialGraph()
    for node in range(num_nodes):
        graph.add_node(
            node,
            benefit=float(rng.integers(1, 6)),
            seed_cost=1.0,
            sc_cost=1.0,
        )
    added = 0
    while added < num_edges:
        source, target = (int(v) for v in rng.integers(0, num_nodes, size=2))
        if source == target or graph.has_edge(source, target):
            continue
        graph.add_edge(source, target, float(rng.uniform(0.05, 0.5)))
        added += 1
    return graph


SEEDS = [0, 3]
ALLOC = {0: 2, 3: 1, 7: 1}

def small_batch(graph):
    # One low-probability reweight of a real edge: only worlds where this one
    # draw lands under max(p_old, p_new) are dirty — the <10%-of-edges case
    # the acceptance criteria pin.
    source, target, _ = min(graph.edges(), key=lambda e: (str(e[0]), str(e[1])))
    return GraphEventBatch([EdgeReweight(source, target, 0.12)])

CHURN_BATCH = GraphEventBatch(
    [
        EdgeDrop(1, 2),
        EdgeReweight(2, 3, 0.4),
        EdgeAdd(4, 13, 0.3),
        NodeAdd("fresh", NodeAttributes(benefit=4.0, seed_cost=1.0, sc_cost=1.0)),
        EdgeAdd(5, "fresh", 0.45),
        NodeRetire(11),
    ]
)


def _warm_estimator(graph, **kwargs):
    kwargs.setdefault("use_kernel", False)
    kwargs.setdefault("shared_memory", False)
    return MonteCarloEstimator(
        graph, num_samples=NUM_WORLDS, seed=17, incremental=True, **kwargs
    )


def _cold_delta(warm_estimator, seeds, allocation, use_kernel=False):
    """Fresh snapshot of ``seeds``/``allocation`` on the evolved graph.

    Shares the evolved compiled snapshot and sampler (persistent draw
    positions), nothing else — no splice or reconcile history.
    """
    engine = CompiledCascadeEngine(
        warm_estimator._engine.compiled,
        NUM_WORLDS,
        seed=0,
        use_kernel=use_kernel,
        shared_memory=False,
        sampler=warm_estimator._engine.sampler,
    )
    delta = DeltaCascadeEngine(engine)
    delta.snapshot(seeds, allocation)
    return engine, delta


def _assert_snapshot_state_identical(reconciled, fresh):
    np.testing.assert_array_equal(reconciled.base_counts, fresh.base_counts)
    assert reconciled.base_benefit == fresh.base_benefit
    assert reconciled._base_queues == fresh._base_queues
    assert reconciled._base_limited == fresh._base_limited
    assert reconciled._active_worlds == fresh._active_worlds
    assert reconciled._limited_worlds == fresh._limited_worlds
    assert reconciled._base_coupons == fresh._base_coupons
    assert reconciled._base_seed_indices == fresh._base_seed_indices


@pytest.mark.parametrize("kind", ["small", "churn"])
def test_reconcile_bit_identical_to_cold_snapshot(kind):
    graph = build_graph()
    batch = small_batch(graph) if kind == "small" else CHURN_BATCH
    estimator = _warm_estimator(graph)
    try:
        estimator.snapshot_base(SEEDS, ALLOC)
        outcome = estimator.ingest_events(batch)
        assert outcome.reconciled
        assert outcome.base_benefit is not None

        cold_engine, cold = _cold_delta(estimator, SEEDS, ALLOC)
        try:
            _assert_snapshot_state_identical(estimator._delta, cold)
            assert outcome.base_benefit == cold.base_benefit
        finally:
            cold_engine.close()
    finally:
        estimator.close()


def test_only_dirty_worlds_resimulated_and_counted():
    graph = build_graph()
    estimator = _warm_estimator(graph)
    try:
        estimator.snapshot_base(SEEDS, ALLOC)
        passes_before = estimator.delta_snapshot_passes
        outcome = estimator.ingest_events(small_batch(graph))

        # The one reweighted low-probability edge dirties only the worlds
        # whose single persistent draw lands under max(p_old, p_new).
        assert 0 < outcome.dirty_worlds < NUM_WORLDS
        assert outcome.touched_edges == 1
        assert estimator.delta_reconciled_worlds == outcome.dirty_worlds
        assert estimator.delta_reconcile_passes == 1
        # Clean worlds were never re-simulated: no snapshot pass happened.
        assert estimator.delta_snapshot_passes == passes_before
    finally:
        estimator.close()


def test_attribute_only_batch_touches_no_world():
    graph = build_graph()
    estimator = _warm_estimator(graph)
    try:
        before = estimator.snapshot_base(SEEDS, ALLOC)
        counts_before = estimator._delta.base_counts.copy()
        outcome = estimator.ingest_events(
            GraphEventBatch([NodeAdd(2, NodeAttributes(benefit=50.0))])
        )
        assert outcome.touched_edges == 0
        assert outcome.dirty_worlds == 0
        assert outcome.reconciled
        # Same cascades, different valuation.
        np.testing.assert_array_equal(estimator._delta.base_counts, counts_before)
        expected = float(
            counts_before @ estimator._engine.compiled.benefits
        ) / NUM_WORLDS
        assert outcome.base_benefit == expected
        assert (outcome.base_benefit > before) == (counts_before[2] > 0)
    finally:
        estimator.close()


def test_kernel_and_oracle_agree_after_reconcile():
    graph_a = build_graph()
    graph_b = build_graph()
    oracle = _warm_estimator(graph_a, use_kernel=False)
    kernel = _warm_estimator(graph_b, use_kernel=None)
    try:
        assert oracle.snapshot_base(SEEDS, ALLOC) == kernel.snapshot_base(
            SEEDS, ALLOC
        )
        out_a = oracle.ingest_events(CHURN_BATCH)
        out_b = kernel.ingest_events(CHURN_BATCH)
        assert out_a.dirty_worlds == out_b.dirty_worlds
        assert out_a.base_benefit == out_b.base_benefit
        _assert_snapshot_state_identical(oracle._delta, kernel._delta)
    finally:
        oracle.close()
        kernel.close()


def test_reconcile_with_workers_matches_serial():
    serial_graph = build_graph()
    pooled_graph = build_graph()
    serial = _warm_estimator(serial_graph)
    pooled = MonteCarloEstimator(
        pooled_graph,
        num_samples=NUM_WORLDS,
        seed=17,
        incremental=True,
        use_kernel=False,
        workers=2,
        shard_size=8,
    )
    try:
        assert serial.snapshot_base(SEEDS, ALLOC) == pooled.snapshot_base(
            SEEDS, ALLOC
        )
        out_serial = serial.ingest_events(CHURN_BATCH)
        out_pooled = pooled.ingest_events(CHURN_BATCH)
        assert out_serial.base_benefit == out_pooled.base_benefit
        _assert_snapshot_state_identical(serial._delta, pooled._delta)
        # The evolved estimator keeps answering warm queries identically.
        follow_up = {**ALLOC, 5: ALLOC.get(5, 0) + 1}
        assert serial.expected_benefit(set(SEEDS), follow_up) == (
            pooled.expected_benefit(set(SEEDS), follow_up)
        )
    finally:
        serial.close()
        pooled.close()


def test_newly_resolving_seed_falls_back_to_fresh_snapshot():
    graph = build_graph()
    estimator = _warm_estimator(graph)
    try:
        # "ghost" does not exist yet: the snapshot silently skips it (same
        # contract as indices_of), so when the batch brings it into being the
        # deployment resolves differently and the remap splice is invalid.
        estimator.snapshot_base([0, "ghost"], {0: 2})
        passes_before = estimator.delta_snapshot_passes
        outcome = estimator.ingest_events(
            GraphEventBatch(
                [
                    NodeAdd("ghost", NodeAttributes(benefit=2.0, seed_cost=1.0)),
                    EdgeAdd("ghost", 4, 0.5),
                ]
            )
        )
        assert not outcome.reconciled
        assert estimator.delta_snapshot_passes == passes_before + 1
        assert estimator.delta_reconcile_passes == 0

        cold_engine, cold = _cold_delta(estimator, [0, "ghost"], {0: 2})
        try:
            _assert_snapshot_state_identical(estimator._delta, cold)
            assert outcome.base_benefit == cold.base_benefit
        finally:
            cold_engine.close()
    finally:
        estimator.close()


def test_retiring_a_base_seed_is_rejected():
    graph = build_graph()
    estimator = _warm_estimator(graph)
    try:
        estimator.snapshot_base(SEEDS, ALLOC)
        with pytest.raises(EstimationError):
            estimator.ingest_events(GraphEventBatch([NodeRetire(SEEDS[0])]))
    finally:
        estimator.close()


def test_events_without_snapshot_still_evolve_the_engine():
    graph = build_graph()
    estimator = _warm_estimator(graph)
    try:
        outcome = estimator.ingest_events(CHURN_BATCH)
        assert not outcome.reconciled
        assert outcome.base_benefit is None
        # Later evaluation runs on the evolved graph and matches a cold
        # snapshot of the same deployment.
        benefit = estimator.snapshot_base(SEEDS, ALLOC)
        cold_engine, cold = _cold_delta(estimator, SEEDS, ALLOC)
        try:
            assert benefit == cold.base_benefit
        finally:
            cold_engine.close()
    finally:
        estimator.close()


def test_chained_reconciles_stay_identical():
    """Two event batches in sequence: reconcile-of-a-reconcile."""
    graph = build_graph()
    estimator = _warm_estimator(graph)
    try:
        estimator.snapshot_base(SEEDS, ALLOC)
        estimator.ingest_events(small_batch(graph))
        outcome = estimator.ingest_events(CHURN_BATCH)
        assert estimator.delta_reconcile_passes == 2

        cold_engine, cold = _cold_delta(estimator, SEEDS, ALLOC)
        try:
            _assert_snapshot_state_identical(estimator._delta, cold)
            assert outcome.base_benefit == cold.base_benefit
        finally:
            cold_engine.close()
    finally:
        estimator.close()


def test_clean_shards_chain_shared_blocks_across_versions():
    """A rank-stable edge batch republishes clean worlds' blocks verbatim.

    Block chaining needs: a shared-memory store, no reweights (rank-stable
    rows), no node churn (same offsets geometry), and at least one shard
    with no dirty world.  The dropped edge here has the lowest probability
    in the graph, so most worlds never drew it live.
    """
    graph = build_graph()
    source, target, _ = min(graph.edges(), key=lambda e: e[2])
    estimator = MonteCarloEstimator(
        graph,
        num_samples=NUM_WORLDS,
        seed=17,
        incremental=True,
        use_kernel=False,
        shard_size=5,
        shared_memory=True,
    )
    try:
        estimator.snapshot_base(SEEDS, ALLOC)
        outcome = estimator.ingest_events(
            GraphEventBatch([EdgeDrop(source, target)])
        )
        assert outcome.chained_blocks > 0
        assert outcome.dirty_worlds < NUM_WORLDS

        cold_engine, cold = _cold_delta(estimator, SEEDS, ALLOC)
        try:
            _assert_snapshot_state_identical(estimator._delta, cold)
        finally:
            cold_engine.close()
    finally:
        estimator.close()


def test_whatif_splices_stay_exact_after_reconcile():
    """The reconciled snapshot keeps supporting delta coupon splices."""
    graph = build_graph()
    estimator = _warm_estimator(graph)
    try:
        estimator.snapshot_base(SEEDS, ALLOC)
        estimator.ingest_events(CHURN_BATCH)
        richer = {**ALLOC, 5: ALLOC.get(5, 0) + 1}
        outcome = estimator.delta_extra_coupon(
            set(SEEDS), ALLOC, 5, set(SEEDS), richer
        )
        cold = estimator.expected_benefit(set(SEEDS), richer)
        assert outcome.benefit == cold
    finally:
        estimator.close()
