"""Parity suite: sharded world sampling vs the monolithic resident path.

The sharding layer's whole contract is *bit-identity*: for any ``shard_size``
the engine must produce exactly the worlds — and therefore exactly the
activation counts and expected benefits — of the monolithic path, because
every shard block is regenerated from the same frozen RNG state at the same
stream offset.  These tests pin that contract at every level: the sampler,
the engine's world accessor and ``run``, the estimator (benefit and
probability caches), and the delta-evaluation snapshot path.
"""

import numpy as np
import pytest

from repro.diffusion.engine import CompiledCascadeEngine, WorldSampler
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.exceptions import EstimationError
from repro.graph.generators import ppgg_like_graph

NUM_SAMPLES = 40
SHARD_SIZES = [1, 7, NUM_SAMPLES, NUM_SAMPLES + 13]
SEEDS = [11, 2019]


@pytest.fixture(scope="module")
def graph():
    graph = ppgg_like_graph(
        num_nodes=70, avg_out_degree=5.0, power_law_exponent=1.7,
        clustering=0.3, seed=3,
    )
    for position, node in enumerate(graph.nodes()):
        graph.add_node(
            node, benefit=1.0 + (position % 5), seed_cost=1.0, sc_cost=1.0
        )
    return graph


@pytest.fixture(scope="module")
def deployment(graph):
    nodes = list(graph.nodes())
    seeds = nodes[:3]
    allocation = {
        node: min(graph.out_degree(node), 2) for node in nodes[:15]
        if graph.out_degree(node)
    }
    return seeds, allocation


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shard_size", SHARD_SIZES)
def test_run_bit_identical_across_shard_sizes(graph, deployment, shard_size, seed):
    seeds, allocation = deployment
    monolithic = CompiledCascadeEngine(graph.compiled(), NUM_SAMPLES, seed=seed)
    sharded = CompiledCascadeEngine(
        graph.compiled(), NUM_SAMPLES, seed=seed, shard_size=shard_size
    )
    counts_mono, benefit_mono = monolithic.run(seeds, allocation)
    counts_shard, benefit_shard = sharded.run(seeds, allocation)
    assert (counts_mono == counts_shard).all()
    assert benefit_mono == benefit_shard  # same ints, same expression: exact


@pytest.mark.parametrize("shard_size", [1, 7])
def test_world_accessor_matches_resident_worlds(graph, shard_size):
    monolithic = CompiledCascadeEngine(graph.compiled(), NUM_SAMPLES, seed=11)
    sharded = CompiledCascadeEngine(
        graph.compiled(), NUM_SAMPLES, seed=11, shard_size=shard_size
    )
    assert sharded.is_sharded and not monolithic.is_sharded
    # Access out of order on purpose: blocks must regenerate correctly after
    # eviction from the bounded cache.
    for world_index in list(range(NUM_SAMPLES)) + [0, NUM_SAMPLES - 1, 3]:
        assert sharded.world(world_index) == monolithic.world(world_index)


def test_sampler_blocks_agree_with_sequential_draw(graph):
    compiled = graph.compiled()
    sampler = WorldSampler(compiled, seed=7)
    full = sampler.draw_block(0, NUM_SAMPLES)
    for start, count in [(0, 5), (3, 9), (17, 23), (NUM_SAMPLES - 1, 1)]:
        block = sampler.draw_block(start, count)
        assert block.count == count
        for slot in range(count):
            # world_local rebases offsets per world, so views from blocks with
            # different layouts are directly comparable.
            assert block.world_local(slot) == full.world_local(start + slot)


@pytest.mark.parametrize("shard_size", SHARD_SIZES)
def test_estimator_bit_identical_across_shard_sizes(graph, deployment, shard_size):
    seeds, allocation = deployment
    monolithic = MonteCarloEstimator(graph, num_samples=NUM_SAMPLES, seed=11)
    sharded = MonteCarloEstimator(
        graph, num_samples=NUM_SAMPLES, seed=11, shard_size=shard_size
    )
    assert sharded.expected_benefit(seeds, allocation) == (
        monolithic.expected_benefit(seeds, allocation)
    )
    assert sharded.activation_probabilities(seeds, allocation) == (
        monolithic.activation_probabilities(seeds, allocation)
    )


@pytest.mark.parametrize("shard_size", SHARD_SIZES)
def test_delta_snapshot_path_bit_identical_under_sharding(
    graph, deployment, shard_size
):
    """snapshot_base + delta queries match the monolithic delta engine exactly."""
    seeds, allocation = deployment
    nodes = list(graph.nodes())
    monolithic = MonteCarloEstimator(graph, num_samples=NUM_SAMPLES, seed=11)
    sharded = MonteCarloEstimator(
        graph, num_samples=NUM_SAMPLES, seed=11, shard_size=shard_size
    )
    assert sharded.snapshot_base(seeds, allocation) == (
        monolithic.snapshot_base(seeds, allocation)
    )

    # +1 coupon on an allocated node.
    holder = next(iter(allocation))
    raised = dict(allocation)
    raised[holder] += 1
    out_mono = monolithic.delta_extra_coupon(seeds, allocation, holder, seeds, raised)
    out_shard = sharded.delta_extra_coupon(seeds, allocation, holder, seeds, raised)
    assert out_shard.exact and out_mono.exact
    assert out_shard.benefit == out_mono.benefit
    assert out_shard.dirty_worlds == out_mono.dirty_worlds
    assert out_shard.touched == out_mono.touched

    # New seed with a first coupon (exercises the live-out-edge world scan).
    newcomer = next(n for n in nodes[20:] if n not in seeds)
    new_seeds = seeds + [newcomer]
    new_allocation = dict(allocation)
    new_allocation[newcomer] = 1
    out_mono = monolithic.delta_new_seed(
        seeds, allocation, newcomer, new_seeds, new_allocation
    )
    out_shard = sharded.delta_new_seed(
        seeds, allocation, newcomer, new_seeds, new_allocation
    )
    assert out_shard.exact and out_mono.exact
    assert out_shard.benefit == out_mono.benefit
    assert out_shard.dirty_worlds == out_mono.dirty_worlds

    # And both match a from-scratch full pass on the new deployment.
    reference = MonteCarloEstimator(
        graph, num_samples=NUM_SAMPLES, seed=11, incremental=False
    )
    assert out_shard.benefit == reference.expected_benefit(new_seeds, new_allocation)


def test_shard_size_larger_than_worlds_is_monolithic(graph):
    engine = CompiledCascadeEngine(
        graph.compiled(), NUM_SAMPLES, seed=11, shard_size=NUM_SAMPLES + 13
    )
    assert not engine.is_sharded
    assert engine.shard_size == NUM_SAMPLES


def test_rejects_bad_shard_size_and_workers(graph):
    with pytest.raises(EstimationError):
        CompiledCascadeEngine(graph.compiled(), 10, seed=1, shard_size=0)
    with pytest.raises(EstimationError):
        CompiledCascadeEngine(graph.compiled(), 10, seed=1, workers=0)


def test_generator_seed_preserves_stream_consumption(graph):
    """A caller-owned generator is advanced exactly as the old path drew it."""
    compiled = graph.compiled()
    shared = np.random.default_rng(3)
    engine = CompiledCascadeEngine(compiled, 10, seed=shared, shard_size=4)
    reference = np.random.default_rng(3)
    for _ in range(10):
        reference.random(compiled.num_edges)
    assert shared.random() == reference.random()
    # And the worlds themselves match an int-seeded engine.
    int_seeded = CompiledCascadeEngine(compiled, 10, seed=3, shard_size=4)
    for world_index in range(10):
        assert engine.world(world_index) == int_seeded.world(world_index)
