"""Tests for the plain IC convenience layer."""

from repro.diffusion.independent_cascade import (
    activated_union,
    expected_spread_monte_carlo,
    saturated_allocation,
    simulate_independent_cascade,
)
from repro.graph.generators import path_graph, star_graph
from repro.graph.social_graph import SocialGraph


def test_saturated_allocation_matches_out_degree():
    graph = star_graph(4)
    allocation = saturated_allocation(graph)
    assert allocation[0] == 4
    assert allocation[1] == 0


def test_ic_reaches_everything_with_probability_one():
    graph = path_graph(5, probability=1.0)
    result = simulate_independent_cascade(graph, [0], rng=0)
    assert result.activated == set(range(5))


def test_ic_stops_at_probability_zero():
    graph = SocialGraph()
    graph.add_edge("a", "b", 0.0)
    result = simulate_independent_cascade(graph, ["a"], rng=0)
    assert result.activated == {"a"}


def test_expected_spread_monte_carlo_bounds():
    graph = path_graph(4, probability=0.5)
    spread = expected_spread_monte_carlo(graph, [0], samples=200, rng=1)
    assert 1.0 <= spread <= 4.0
    # First hop alone contributes 0.5 in expectation.
    assert spread >= 1.4


def test_expected_spread_zero_samples():
    graph = path_graph(3)
    assert expected_spread_monte_carlo(graph, [0], samples=0) == 0.0


def test_activated_union_contains_seeds():
    graph = path_graph(4, probability=0.3)
    union = activated_union(graph, [0], samples=20, rng=2)
    assert 0 in union
    assert union <= {0, 1, 2, 3}


def test_ic_with_edge_outcomes_is_deterministic():
    graph = path_graph(4, probability=0.5)
    outcomes = {(0, 1): True, (1, 2): False, (2, 3): True}
    result = simulate_independent_cascade(graph, [0], edge_outcomes=outcomes)
    assert result.activated == {0, 1}
