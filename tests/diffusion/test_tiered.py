"""The two-tier estimator, locked down end to end.

The contract of :class:`~repro.diffusion.tiered.TieredEstimator`: screening
batches with the RR-sketch bound and MC-confirming only the frontier changes
*nothing* about what S3CA selects — the final deployments are bit-identical
to untiered runs, serial and on the worker pool alike — while the counters
prove real work was skipped (``confirmed < screened`` on batches larger than
the top-k).  Accepted values always come from the Monte-Carlo tier; the
sketch only orders and prunes.
"""

import pytest

from repro.core.s3ca import S3CA
from repro.diffusion.estimator import BenefitEstimator
from repro.diffusion.factory import make_estimator
from repro.diffusion.rr_sets import RRBenefitEstimator
from repro.diffusion.tiered import TieredEstimator
from repro.exceptions import EstimationError
from repro.experiments.scalability import synthetic_scenario

NUM_SAMPLES = 25
SEED = 2019


@pytest.fixture(scope="module")
def scenario():
    """Fig. 9-style PPGG instance large enough that screening engages."""
    return synthetic_scenario(80, budget=160.0, seed=SEED)


@pytest.fixture(scope="module")
def untiered(scenario):
    """Reference solve on the plain compiled Monte-Carlo estimator."""
    result = S3CA(
        scenario, estimator_method="mc-compiled", num_samples=NUM_SAMPLES, seed=SEED
    ).solve()
    return (
        result.seeds,
        result.allocation,
        result.expected_benefit,
        result.num_maneuvers,
        result,
    )


def _solve_tiered(scenario, **kwargs):
    algorithm = S3CA(
        scenario,
        estimator_method="tiered",
        num_samples=NUM_SAMPLES,
        seed=SEED,
        **kwargs,
    )
    assert isinstance(algorithm.estimator, TieredEstimator)
    return algorithm.solve()


def _assert_identical(reference, result):
    seeds, allocation, benefit, maneuvers, _ = reference
    assert result.seeds == seeds
    assert result.allocation == allocation
    assert result.expected_benefit == benefit
    assert result.num_maneuvers == maneuvers


def test_tiered_matches_untiered_serial(scenario, untiered):
    result = _solve_tiered(scenario)
    _assert_identical(untiered, result)
    # The parity is not vacuous: the sketch really screened candidates out.
    assert result.tier_stats["screening_batches"] >= 1
    assert result.tier_stats["screened_out_candidates"] > 0


def test_tiered_matches_untiered_on_worker_pool(scenario, untiered):
    result = _solve_tiered(scenario, workers=2)
    _assert_identical(untiered, result)


def test_screening_counters_pinned(scenario, untiered):
    """Aggressive-but-safe knobs: heavy pruning, still the same deployment."""
    result = _solve_tiered(scenario, tier_top_k=16, tier_epsilon=0.5)
    _assert_identical(untiered, result)
    stats = result.tier_stats
    assert stats["screening_batches"] >= 1
    assert stats["confirmed_candidates"] < stats["screened_candidates"]
    assert stats["screened_out_candidates"] > 0
    assert (
        stats["confirmed_candidates"] + stats["screened_out_candidates"]
        == stats["screened_candidates"]
    )
    assert 0 <= stats["speculative_hits"] <= stats["speculative_evals"]


def test_no_tiering_flag_disables_screening(scenario, untiered):
    result = _solve_tiered(scenario, tiering=False)
    _assert_identical(untiered, result)
    assert result.tier_stats["screening_batches"] == 0
    assert result.tier_stats["screened_candidates"] == 0


# ----------------------------------------------------------------------
# the wrapper itself
# ----------------------------------------------------------------------


def test_factory_builds_tiered_wrapper(scenario):
    estimator = make_estimator(
        scenario, "tiered", num_samples=NUM_SAMPLES, seed=SEED
    )
    try:
        assert isinstance(estimator, TieredEstimator)
        assert isinstance(estimator.sketch, RRBenefitEstimator)
        # The incremental/delta surface is the MC tier's, via delegation.
        assert estimator.supports_incremental
        assert estimator.kernel_backend == estimator.mc.kernel_backend
        seeds = sorted(scenario.graph.nodes(), key=str)[:2]
        assert estimator.expected_benefit(seeds, {}) == (
            estimator.mc.expected_benefit(seeds, {})
        )
        assert estimator.activation_probabilities(seeds, {}) == (
            estimator.mc.activation_probabilities(seeds, {})
        )
    finally:
        estimator.close()


def test_batches_no_larger_than_top_k_pass_through(scenario):
    estimator = make_estimator(
        scenario, "tiered", num_samples=NUM_SAMPLES, seed=SEED, tier_top_k=8
    )
    try:
        nodes = sorted(scenario.graph.nodes(), key=str)
        small = [([node], {}) for node in nodes[:8]]
        direct = estimator.mc.submit_many(small)
        assert estimator.submit_many(small) == direct
        assert estimator.tier_stats["screening_batches"] == 0
    finally:
        estimator.close()


def test_screened_out_slots_never_outrank_the_frontier(scenario):
    """The calibrated sketch values sit at or below every confirmed value
    they could tie with in a caller-side argmax: the winner is MC-confirmed."""
    estimator = make_estimator(
        scenario, "tiered", num_samples=NUM_SAMPLES, seed=SEED,
        tier_top_k=8, tier_epsilon=0.0,
    )
    try:
        nodes = sorted(scenario.graph.nodes(), key=str)
        batch = [([node], {}) for node in nodes[:40]]
        values = estimator.submit_many(batch)
        stats = estimator.tier_stats
        assert stats["screened_out_candidates"] > 0
        mc_values = estimator.mc.submit_many(batch)
        best = max(range(len(batch)), key=values.__getitem__)
        # The argmax slot carries its true MC value.
        assert values[best] == mc_values[best]
    finally:
        estimator.close()


def test_knob_validation():
    scenario = synthetic_scenario(20, budget=20.0, seed=SEED)
    with pytest.raises(EstimationError):
        make_estimator(scenario, "tiered", num_samples=10, seed=1, tier_epsilon=1.5)
    with pytest.raises(EstimationError):
        make_estimator(scenario, "tiered", num_samples=10, seed=1, tier_top_k=0)


# ----------------------------------------------------------------------
# the EvaluationPlan want_probabilities extension this PR rides on
# ----------------------------------------------------------------------


def test_plan_want_probabilities(scenario):
    estimator = make_estimator(scenario, num_samples=20, seed=SEED)
    try:
        nodes = sorted(scenario.graph.nodes(), key=str)[:3]
        plan = estimator.plan()
        flagged = plan.add([nodes[0]], {}, want_probabilities=True)
        plain = plan.add([nodes[1]], {})
        with pytest.raises(RuntimeError):
            plan.probabilities(flagged)
        plan.execute()
        assert plan.probabilities(flagged) == (
            estimator.activation_probabilities([nodes[0]], {})
        )
        with pytest.raises(KeyError):
            plan.probabilities(plain)
        assert plan.benefit(plain) == estimator.expected_benefit([nodes[1]], {})
    finally:
        estimator.close()
