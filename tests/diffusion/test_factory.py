"""Tests for the unified estimator factory and the estimator backends."""

import pytest

from repro.diffusion.exact import ExactEstimator
from repro.diffusion.factory import (
    DEFAULT_ESTIMATOR_METHOD,
    ESTIMATOR_METHODS,
    make_estimator,
)
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.diffusion.rr_sets import RRBenefitEstimator
from repro.exceptions import EstimationError
from repro.experiments.datasets import toy_scenario
from repro.graph.generators import path_graph, star_graph


def unit_benefit(graph):
    for node in graph.nodes():
        graph.add_node(node, benefit=1.0, sc_cost=1.0, seed_cost=1.0)
    return graph


def test_default_method_is_compiled_monte_carlo():
    assert DEFAULT_ESTIMATOR_METHOD == "mc-compiled"
    estimator = make_estimator(toy_scenario(), num_samples=20, seed=1)
    assert isinstance(estimator, MonteCarloEstimator)
    assert estimator.backend == "compiled"


def test_method_dispatch():
    scenario = toy_scenario()
    assert make_estimator(scenario, "mc", num_samples=5).backend == "dict"
    assert isinstance(make_estimator(scenario, "exact"), ExactEstimator)
    assert isinstance(
        make_estimator(scenario, "rr", num_rr_sets=50, seed=1), RRBenefitEstimator
    )


def test_accepts_bare_graph():
    graph = unit_benefit(star_graph(4))
    estimator = make_estimator(graph, "mc", num_samples=5, seed=0)
    assert estimator.graph is graph


def test_unknown_method_and_bad_input_rejected():
    with pytest.raises(EstimationError):
        make_estimator(toy_scenario(), "quantum")
    with pytest.raises(EstimationError):
        make_estimator(42)


def test_every_advertised_method_constructs():
    scenario = toy_scenario()
    for method in ESTIMATOR_METHODS:
        estimator = make_estimator(
            scenario, method, num_samples=10, seed=3, num_rr_sets=40
        )
        assert estimator.expected_benefit(
            [next(iter(scenario.graph.nodes()))], {}
        ) >= 0.0


def test_compiled_and_dict_methods_agree_bit_for_bit():
    scenario = toy_scenario()
    compiled = make_estimator(scenario, "mc-compiled", num_samples=40, seed=11)
    reference = make_estimator(scenario, "mc", num_samples=40, seed=11)
    nodes = list(scenario.graph.nodes())
    seeds = nodes[:2]
    allocation = {
        node: min(scenario.graph.out_degree(node), 2) for node in nodes[:4]
    }
    assert compiled.activation_probabilities(
        seeds, allocation
    ) == reference.activation_probabilities(seeds, allocation)
    assert compiled.expected_benefit(seeds, allocation) == pytest.approx(
        reference.expected_benefit(seeds, allocation), rel=1e-12
    )


def test_compiled_backend_warms_both_caches_in_one_pass():
    scenario = toy_scenario()
    estimator = make_estimator(scenario, "mc-compiled", num_samples=20, seed=5)
    nodes = list(scenario.graph.nodes())
    estimator.expected_benefit(nodes[:1], {})
    evaluations = estimator.evaluations
    estimator.activation_probabilities(nodes[:1], {})  # cache hit, no new pass
    assert estimator.evaluations == evaluations


def test_rr_estimator_is_sane_on_a_deterministic_path():
    graph = unit_benefit(path_graph(3, probability=1.0))
    estimator = RRBenefitEstimator(graph, num_sets=300, seed=2)
    probabilities = estimator.activation_probabilities([0], {})
    # With every edge certain, the whole path is reached from the seed in the
    # plain-IC regime the RR argument models (allocations are ignored).
    assert probabilities[0] == 1.0
    assert probabilities[1] == 1.0
    assert probabilities[2] == 1.0
    assert estimator.expected_benefit([0], {}) == pytest.approx(3.0)
    assert estimator.activation_probabilities([], {}) == {}


def test_monte_carlo_rejects_unknown_backend():
    graph = unit_benefit(star_graph(3))
    with pytest.raises(EstimationError):
        MonteCarloEstimator(graph, num_samples=5, backend="gpu")
