"""Parity tests for the incremental delta-evaluation engine.

The contract under test is strict: for any base deployment and any
single-investment change, the delta path must reproduce the full
:meth:`CompiledCascadeEngine.run` pass **bit for bit** — identical activation
counts and an identical expected-benefit float — because the greedy loops
compare these numbers with exact float comparisons.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.delta import DeltaCascadeEngine
from repro.diffusion.engine import CompiledCascadeEngine
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.experiments.scalability import synthetic_scenario
from repro.utils.rng import spawn_rng

NUM_WORLDS = 40


@pytest.fixture(scope="module")
def scenario():
    return synthetic_scenario(120, budget=60.0, seed=5)


@pytest.fixture(scope="module")
def engine(scenario):
    return CompiledCascadeEngine(scenario.graph.compiled(), NUM_WORLDS, seed=17)


def _random_deployment(graph, rng, num_seeds=4, num_holders=8):
    nodes = list(graph.nodes())
    picks = rng.choice(len(nodes), size=num_seeds + num_holders, replace=False)
    seeds = [nodes[int(i)] for i in picks[:num_seeds]]
    allocation = {}
    for i in picks[: num_seeds + num_holders // 2]:
        node = nodes[int(i)]
        degree = graph.out_degree(node)
        if degree:
            allocation[node] = min(degree, 1 + int(i) % 3)
    return seeds, allocation


def _counts_of(delta, outcome):
    counts = delta._base_counts.copy()
    counts[outcome.delta_index] += outcome.delta_values
    return counts


def test_snapshot_matches_full_run(scenario, engine):
    delta = DeltaCascadeEngine(engine)
    rng = spawn_rng(1)
    seeds, allocation = _random_deployment(scenario.graph, rng)
    counts, benefit = delta.snapshot(seeds, allocation)
    full_counts, full_benefit = engine.run(seeds, allocation)
    assert np.array_equal(counts, full_counts)
    assert benefit == full_benefit


@pytest.mark.parametrize("trial", range(12))
def test_extra_coupon_delta_is_bit_identical(scenario, engine, trial):
    graph = scenario.graph
    delta = DeltaCascadeEngine(engine)
    rng = spawn_rng(100 + trial)
    seeds, allocation = _random_deployment(graph, rng)
    delta.snapshot(seeds, allocation)

    nodes = list(graph.nodes())
    tested = 0
    for i in rng.choice(len(nodes), size=20, replace=False):
        node = nodes[int(i)]
        degree = graph.out_degree(node)
        if degree == 0 or allocation.get(node, 0) >= degree:
            continue
        new_allocation = dict(allocation)
        new_allocation[node] = new_allocation.get(node, 0) + 1
        outcome = delta.eval_extra_coupon(node, seeds, new_allocation)
        full_counts, full_benefit = engine.run(seeds, new_allocation)
        assert outcome.exact
        assert outcome.benefit == full_benefit
        assert np.array_equal(_counts_of(delta, outcome), full_counts)
        tested += 1
    assert tested > 0


@pytest.mark.parametrize("trial", range(12))
def test_new_seed_delta_is_bit_identical(scenario, engine, trial):
    graph = scenario.graph
    delta = DeltaCascadeEngine(engine)
    rng = spawn_rng(200 + trial)
    seeds, allocation = _random_deployment(graph, rng)
    delta.snapshot(seeds, allocation)

    nodes = list(graph.nodes())
    tested = 0
    for i in rng.choice(len(nodes), size=12, replace=False):
        node = nodes[int(i)]
        if node in seeds:
            continue
        new_seeds = seeds + [node]
        outcome = delta.eval_new_seed(node, new_seeds, allocation)
        full_counts, full_benefit = engine.run(new_seeds, allocation)
        assert outcome.exact
        assert outcome.benefit == full_benefit
        assert np.array_equal(_counts_of(delta, outcome), full_counts)

        # ... and with a first coupon on the new seed, the pivot-queue shape.
        if graph.out_degree(node) > allocation.get(node, 0):
            new_allocation = dict(allocation)
            new_allocation[node] = max(allocation.get(node, 0), 1)
            outcome = delta.eval_new_seed(node, new_seeds, new_allocation)
            full_counts, full_benefit = engine.run(new_seeds, new_allocation)
            assert outcome.benefit == full_benefit
            assert np.array_equal(_counts_of(delta, outcome), full_counts)
        tested += 1
    assert tested > 0


def test_refresh_benefit_matches_fresh_evaluation(scenario, engine):
    """A still-valid outcome re-derived against the same snapshot is exact."""
    graph = scenario.graph
    delta = DeltaCascadeEngine(engine)
    rng = spawn_rng(42)
    seeds, allocation = _random_deployment(graph, rng)
    delta.snapshot(seeds, allocation)
    nodes = [n for n in graph.nodes() if graph.out_degree(n) > allocation.get(n, 0)]
    node = nodes[0]
    new_allocation = dict(allocation)
    new_allocation[node] = new_allocation.get(node, 0) + 1
    outcome = delta.eval_extra_coupon(node, seeds, new_allocation)
    assert delta.refresh_benefit(outcome) == outcome.benefit


def test_mismatched_query_falls_back_to_exact_full_pass(scenario, engine):
    """A multi-node change cannot use the snapshot but stays correct."""
    graph = scenario.graph
    delta = DeltaCascadeEngine(engine)
    rng = spawn_rng(7)
    seeds, allocation = _random_deployment(graph, rng)
    delta.snapshot(seeds, allocation)
    nodes = [n for n in graph.nodes() if graph.out_degree(n) > allocation.get(n, 0)]
    new_allocation = dict(allocation)
    for node in nodes[:2]:  # two increments at once: not a single delta
        new_allocation[node] = new_allocation.get(node, 0) + 1
    outcome = delta.eval_extra_coupon(nodes[0], seeds, new_allocation)
    _, full_benefit = engine.run(seeds, new_allocation)
    assert not outcome.exact
    assert outcome.benefit == full_benefit


def test_estimator_delta_methods_match_plain_evaluation(scenario):
    """The estimator-level delta API returns the plain-path benefits."""
    graph = scenario.graph
    plain = MonteCarloEstimator(graph, num_samples=NUM_WORLDS, seed=3,
                                incremental=False)
    incremental = MonteCarloEstimator(graph, num_samples=NUM_WORLDS, seed=3)
    assert incremental.supports_incremental and not plain.supports_incremental

    rng = spawn_rng(9)
    seeds, allocation = _random_deployment(graph, rng)
    base = incremental.snapshot_base(seeds, allocation)
    assert base == plain.expected_benefit(seeds, allocation)
    assert incremental.activation_probabilities(
        seeds, allocation
    ) == plain.activation_probabilities(seeds, allocation)

    node = next(
        n for n in graph.nodes()
        if graph.out_degree(n) > allocation.get(n, 0)
    )
    new_allocation = dict(allocation)
    new_allocation[node] = new_allocation.get(node, 0) + 1
    outcome = incremental.delta_extra_coupon(
        seeds, allocation, node, seeds, new_allocation
    )
    assert outcome.benefit == plain.expected_benefit(seeds, new_allocation)

    new_seed = next(n for n in graph.nodes() if n not in seeds)
    outcome = incremental.delta_new_seed(
        seeds, allocation, new_seed, seeds + [new_seed], allocation
    )
    assert outcome.benefit == plain.expected_benefit(seeds + [new_seed], allocation)
