"""Shared-memory transport lifecycle: no ``/dev/shm`` leaks, ever.

The zero-copy transport creates named POSIX segments (``repro-*``) for the
compiled graph and for every published world block.  These tests pin the
cleanup architecture from every direction a segment can be orphaned:

* closing / garbage-collecting an estimator removes everything it created;
* a pool run leaves nothing behind once the estimators and the pool close;
* a **SIGKILLed publisher** cannot leak — the parent engine sweeps the
  deterministic name grid of its sampler, which covers segments created by
  any process, dead or alive;
* when the platform has no shared memory the engine warns (only when it was
  forced on) and falls back to by-value transport with identical results.

Plus the zero-copy payload contract: pickling a shared estimator's sampler
ships a few hundred bytes instead of the CSR arrays.
"""

import gc
import os
import pickle
import signal
import subprocess
import sys
import warnings

import numpy as np
import pytest

from repro.diffusion.engine import CompiledCascadeEngine
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.diffusion.parallel import SharedShardPool
from repro.diffusion.world_store import SharedBlockStore, sampler_fingerprint
from repro.experiments.scalability import synthetic_scenario
from repro.graph.shared import SharedCompiledGraph, share_compiled
from repro.utils import shm

pytestmark = pytest.mark.skipif(
    not shm.shared_memory_available() or not os.path.isdir("/dev/shm"),
    reason="POSIX shared memory is not observable on this platform",
)

NUM_SAMPLES = 24


def _repro_segments():
    return sorted(
        name for name in os.listdir("/dev/shm") if name.startswith(shm.SEGMENT_PREFIX)
    )


@pytest.fixture(autouse=True)
def no_segment_leaks():
    """Every test in this module must end /dev/shm where it started."""
    before = _repro_segments()
    yield
    gc.collect()
    assert _repro_segments() == before


def test_closed_and_collected_estimator_leaves_no_segments(two_hop_path):
    estimator = MonteCarloEstimator(
        two_hop_path, num_samples=NUM_SAMPLES, seed=7, shared_memory=True
    )
    assert estimator.shared_memory_active
    estimator.expected_benefit(["a"], {"a": 1})
    assert _repro_segments()  # graph segment + published blocks exist
    estimator.close()
    del estimator
    gc.collect()
    assert not _repro_segments()


def test_unclosed_estimator_is_cleaned_by_garbage_collection(two_hop_path):
    estimator = MonteCarloEstimator(
        two_hop_path, num_samples=NUM_SAMPLES, seed=7, shared_memory=True
    )
    estimator.expected_benefit(["a"], {"b": 1})
    del estimator  # no close(): the finalizers must do the whole job
    gc.collect()
    assert not _repro_segments()


def test_pool_run_leaves_no_segments_and_matches_serial(two_hop_path):
    serial = MonteCarloEstimator(two_hop_path, num_samples=NUM_SAMPLES, seed=3)
    expected = serial.expected_benefit(["a"], {"a": 1, "b": 1})
    with SharedShardPool(2) as pool:
        estimator = MonteCarloEstimator(
            two_hop_path, num_samples=NUM_SAMPLES, seed=3, shard_size=6, pool=pool
        )
        assert estimator.shared_memory_active  # auto-on with a pool
        assert estimator.expected_benefit(["a"], {"a": 1, "b": 1}) == expected
        estimator.close()
        del estimator
    gc.collect()
    assert not _repro_segments()


def test_second_engine_attaches_instead_of_publishing(two_hop_path):
    compiled = two_hop_path.compiled()
    first = CompiledCascadeEngine(
        compiled, NUM_SAMPLES, seed=5, shard_size=6, shared_memory=True
    )
    second = CompiledCascadeEngine(
        compiled, NUM_SAMPLES, seed=5, shard_size=6, shared_memory=True
    )
    counts_first, benefit_first = first.run(["a"], {"a": 1})
    counts_second, benefit_second = second.run(["a"], {"a": 1})
    assert np.array_equal(counts_first, counts_second)
    assert benefit_first == benefit_second
    store = second.sampler.store
    assert store.attach_count > 0  # re-used the first engine's blocks
    assert store.publish_count == 0
    first.close()
    second.close()
    del first, second


def test_sigkilled_publisher_cannot_leak_the_parent_sweeps_the_grid(two_hop_path):
    """A worker that dies after publishing leaves a segment the parent removes."""
    engine = CompiledCascadeEngine(
        two_hop_path.compiled(), NUM_SAMPLES, seed=9, shard_size=6,
        shared_memory=True,
    )
    store = engine.sampler.store
    start, count = engine._store_bounds[0]
    orphan = store.data_name(start, count)
    # A child process creates the segment under the store's deterministic
    # name, then dies by SIGKILL — no atexit sweep, no finalizers, exactly
    # like a crashed pool worker.
    child = subprocess.run(
        [
            sys.executable, "-c",
            "import sys, os, signal\n"
            "sys.path.insert(0, sys.argv[1])\n"
            "from repro.utils import shm\n"
            "shm.create_segment(sys.argv[2], 64)\n"
            "os.kill(os.getpid(), signal.SIGKILL)\n",
            os.path.join(os.path.dirname(__file__), "..", "..", "src"),
            orphan,
        ],
        capture_output=True,
    )
    assert child.returncode == -signal.SIGKILL
    assert orphan in _repro_segments()
    engine.close()  # sweeps the whole (fingerprint, start, count) grid
    assert orphan not in _repro_segments()
    del engine


def test_forced_shared_memory_warns_and_falls_back_when_unavailable(
    monkeypatch, two_hop_path
):
    monkeypatch.setattr(shm, "shared_memory_available", lambda: False)
    baseline = CompiledCascadeEngine(two_hop_path.compiled(), NUM_SAMPLES, seed=2)
    with pytest.warns(UserWarning, match="falling back to by-value"):
        engine = CompiledCascadeEngine(
            two_hop_path.compiled(), NUM_SAMPLES, seed=2, shared_memory=True
        )
    assert not engine.shared_memory
    counts_f, benefit_f = engine.run(["a"], {"a": 1})
    counts_b, benefit_b = baseline.run(["a"], {"a": 1})
    assert np.array_equal(counts_f, counts_b)
    assert benefit_f == benefit_b


def test_auto_mode_stays_silent_when_unavailable(monkeypatch, two_hop_path):
    monkeypatch.setattr(shm, "shared_memory_available", lambda: False)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        engine = CompiledCascadeEngine(
            two_hop_path.compiled(), NUM_SAMPLES, seed=2, workers=1
        )
    assert not engine.shared_memory


def test_shared_graph_pickle_is_a_descriptor_not_the_arrays():
    scenario = synthetic_scenario(120, budget=100.0, seed=6)
    compiled = scenario.graph.compiled()
    by_value = len(pickle.dumps(compiled, protocol=pickle.HIGHEST_PROTOCOL))
    shared = share_compiled(compiled)
    assert isinstance(shared, SharedCompiledGraph)
    payload = pickle.dumps(shared, protocol=pickle.HIGHEST_PROTOCOL)
    assert len(payload) < by_value / 10
    # The attached clone reads the same pages, lazily.
    clone = pickle.loads(payload)
    assert clone._node_ids is None and clone._index is None
    assert np.array_equal(clone.indptr, compiled.indptr)
    assert np.array_equal(clone.probs, compiled.probs)
    assert clone.node_ids == compiled.node_ids
    del clone
    shared.release()
    del shared


def test_world_store_pickles_to_its_fingerprint(two_hop_path):
    engine = CompiledCascadeEngine(
        two_hop_path.compiled(), NUM_SAMPLES, seed=4, shared_memory=True
    )
    store = engine.sampler.store
    clone = pickle.loads(pickle.dumps(store))
    assert isinstance(clone, SharedBlockStore)
    assert clone.fingerprint == store.fingerprint
    assert clone.fingerprint == sampler_fingerprint(engine.sampler)
    engine.close()
    del engine


def test_compiled_graph_unpickles_with_lazy_index(two_hop_path):
    """``__setstate__`` must not eagerly rebuild the node index (satellite b)."""
    compiled = two_hop_path.compiled()
    assert compiled.index_of("a") == 0  # materialise on the original
    clone = pickle.loads(pickle.dumps(compiled))
    assert clone._index is None
    assert clone.index_of("b") == compiled.index_of("b")
    assert clone._index is not None
