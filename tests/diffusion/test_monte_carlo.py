"""Tests for the Monte-Carlo expected-benefit estimator."""

import pytest

from repro.diffusion.exact import ExactEstimator
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.exceptions import EstimationError
from repro.graph.generators import path_graph, star_graph
from repro.graph.social_graph import SocialGraph


def unit_benefit(graph):
    for node in graph.nodes():
        graph.add_node(node, benefit=1.0, sc_cost=1.0, seed_cost=1.0)
    return graph


def test_zero_samples_rejected():
    graph = unit_benefit(path_graph(3))
    with pytest.raises(EstimationError):
        MonteCarloEstimator(graph, num_samples=0)


def test_expected_benefit_of_seed_only_is_its_benefit():
    graph = unit_benefit(path_graph(3, probability=0.5))
    graph.add_node(0, benefit=7.0)
    estimator = MonteCarloEstimator(graph, num_samples=50, seed=1)
    assert estimator.expected_benefit([0], {}) == pytest.approx(7.0)


def test_expected_benefit_deterministic_for_fixed_seed():
    graph = unit_benefit(star_graph(5, probability=0.4))
    first = MonteCarloEstimator(graph, num_samples=100, seed=3)
    second = MonteCarloEstimator(graph, num_samples=100, seed=3)
    allocation = {0: 3}
    assert first.expected_benefit([0], allocation) == second.expected_benefit(
        [0], allocation
    )


def test_monotone_in_allocation():
    graph = unit_benefit(star_graph(6, probability=0.5))
    estimator = MonteCarloEstimator(graph, num_samples=200, seed=2)
    small = estimator.expected_benefit([0], {0: 1})
    large = estimator.expected_benefit([0], {0: 5})
    assert large >= small


def test_close_to_exact_on_small_graph():
    graph = unit_benefit(star_graph(3, probability=0.5))
    exact = ExactEstimator(graph)
    monte_carlo = MonteCarloEstimator(graph, num_samples=4000, seed=5)
    allocation = {0: 2}
    assert monte_carlo.expected_benefit([0], allocation) == pytest.approx(
        exact.expected_benefit([0], allocation), rel=0.05
    )


def test_activation_probabilities_sum_and_range():
    graph = unit_benefit(star_graph(4, probability=0.5))
    estimator = MonteCarloEstimator(graph, num_samples=300, seed=4)
    probabilities = estimator.activation_probabilities([0], {0: 4})
    assert probabilities[0] == 1.0
    assert all(0.0 <= p <= 1.0 for p in probabilities.values())
    assert estimator.expected_spread([0], {0: 4}) == pytest.approx(
        sum(probabilities.values())
    )


def test_likely_activated_threshold():
    graph = unit_benefit(path_graph(3, probability=1.0))
    estimator = MonteCarloEstimator(graph, num_samples=20, seed=1)
    assert estimator.likely_activated([0], {0: 1, 1: 1}) == {0, 1, 2}
    assert estimator.likely_activated([0], {}) == {0}


def test_expected_activations_and_benefit_consistency():
    graph = unit_benefit(star_graph(3, probability=0.5))
    estimator = MonteCarloEstimator(graph, num_samples=500, seed=6)
    spread, benefit = estimator.expected_activations_and_benefit([0], {0: 3})
    assert benefit == pytest.approx(spread)  # all benefits are 1


def test_cache_returns_same_object_value_and_clear_works():
    graph = unit_benefit(star_graph(3, probability=0.5))
    estimator = MonteCarloEstimator(graph, num_samples=50, seed=7)
    before = estimator.evaluations
    value_one = estimator.expected_benefit([0], {0: 2})
    evaluations_after_first = estimator.evaluations
    value_two = estimator.expected_benefit([0], {0: 2})
    assert value_one == value_two
    assert estimator.evaluations == evaluations_after_first > before
    estimator.clear_cache()
    estimator.expected_benefit([0], {0: 2})
    assert estimator.evaluations == evaluations_after_first + 1


def test_allocation_key_ignores_zero_entries():
    graph = unit_benefit(star_graph(3, probability=0.5))
    estimator = MonteCarloEstimator(graph, num_samples=50, seed=8)
    assert estimator.expected_benefit([0], {0: 2, 1: 0}) == estimator.expected_benefit(
        [0], {0: 2}
    )


def test_empty_deployment_has_zero_benefit():
    graph = unit_benefit(path_graph(3))
    estimator = MonteCarloEstimator(graph, num_samples=10, seed=9)
    assert estimator.expected_benefit([], {}) == 0.0
