"""Profit-maximisation seed selector (the PM baseline, Tang et al. [17]).

Profit is defined as the expected benefit of the influenced users minus the
cost of activating the seeds.  The greedy algorithm adds the seed with the
largest marginal profit while it stays positive; like the IM baseline it
reasons under the plain independent cascade (unlimited referrals) and leaves
the budgeted coupon allocation to the coupon-strategy wrappers.
"""

from __future__ import annotations

from typing import Hashable, List, Optional

from repro.baselines.base import BaselineAlgorithm
from repro.core.deployment import Deployment
from repro.diffusion.independent_cascade import saturated_allocation

NodeId = Hashable


class GreedyProfitMaximization(BaselineAlgorithm):
    """Greedy marginal-profit seed selection under the plain IC model."""

    name = "PM"

    def __init__(self, *args, max_seeds: Optional[int] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.max_seeds = max_seeds
        self._saturated = saturated_allocation(self.graph)

    # ------------------------------------------------------------------

    def benefit(self, seeds) -> float:
        """Expected benefit of the influenced users (plain IC)."""
        return self.estimator.expected_benefit(seeds, self._saturated)

    def profit(self, seeds) -> float:
        """Expected benefit minus the total seed cost."""
        seeds = list(seeds)
        return self.benefit(seeds) - sum(self.graph.seed_cost(s) for s in seeds)

    def ranked_seeds(self, limit: Optional[int] = None) -> List[NodeId]:
        """Greedy order by marginal profit, stopping when it turns non-positive.

        Each greedy round compares every remaining candidate against the same
        selected set, so the round's cached-saturation evaluations go through
        the estimator's batch API in one evaluation plan (pipelined on a
        parallel backend) instead of one blocking ``expected_benefit`` call
        per candidate — the marginals, and therefore the ranking, are
        bit-identical to the per-candidate loop.
        """
        limit = limit if limit is not None else self.max_seeds
        if limit is None:
            limit = self.graph.num_nodes

        selected: List[NodeId] = []
        current_benefit = 0.0
        remaining = set(self.graph.nodes())
        fallback: NodeId | None = None
        fallback_marginal = float("-inf")
        saturated = self._saturated
        while len(selected) < limit and remaining:
            best_node = None
            best_marginal = 0.0
            best_benefit = current_benefit
            candidates = sorted(remaining, key=str)
            benefits = self.batch_benefits(
                [(selected + [node], saturated) for node in candidates]
            )
            for node, new_benefit in zip(candidates, benefits):
                marginal = (new_benefit - current_benefit) - self.graph.seed_cost(node)
                if not selected and marginal > fallback_marginal:
                    fallback_marginal = marginal
                    fallback = node
                if marginal > best_marginal:
                    best_marginal = marginal
                    best_node = node
                    best_benefit = new_benefit
            if best_node is None:
                break
            selected.append(best_node)
            remaining.discard(best_node)
            current_benefit = best_benefit
        if not selected and fallback is not None:
            # No seed is strictly profitable (seed costs dominate benefits,
            # e.g. large kappa).  A real campaign still recruits someone, so
            # fall back to the least unprofitable seed instead of doing
            # nothing; this mirrors how the paper's PM baseline still produces
            # a deployment in every setting of the evaluation.
            selected.append(fallback)
        return selected

    def select(self) -> Deployment:
        """Greedy profit seeds that fit the budget, saturated allocation."""
        budget = self.scenario.budget_limit
        deployment = Deployment(self.graph)
        for node in self.ranked_seeds():
            candidate = deployment.with_seed(node)
            if candidate.seed_cost() > budget:
                break
            deployment = candidate
        from repro.baselines.influence_max import _saturate_reachable

        _saturate_reachable(deployment)
        return deployment
