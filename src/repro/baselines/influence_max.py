"""Influence-maximisation seed selectors.

The IM baseline of the paper is the classical greedy algorithm of Kempe et
al. with the CELF lazy-evaluation speed-up: seeds are added one at a time, each
maximising the marginal expected spread under the plain independent cascade
(every user may refer all friends).  A cheap degree heuristic is also provided
as the kind of scalable approximation the follow-up IM literature uses.

Both classes expose :meth:`ranked_seeds`, the greedy seed order, which the
coupon-strategy wrappers (:mod:`repro.baselines.coupon_wrappers`) combine with
the budget and a real-world coupon policy to obtain a full deployment.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.baselines.base import BaselineAlgorithm
from repro.core.deployment import Deployment
from repro.diffusion.independent_cascade import saturated_allocation
from repro.utils.indexed_heap import IndexedMaxHeap

NodeId = Hashable


class GreedyInfluenceMaximization(BaselineAlgorithm):
    """CELF lazy-greedy influence maximisation under the plain IC model."""

    name = "IM"

    def __init__(self, *args, max_seeds: Optional[int] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.max_seeds = max_seeds
        self._saturated = saturated_allocation(self.graph)

    # ------------------------------------------------------------------

    def spread(self, seeds) -> float:
        """Expected number of activated users for a seed set (plain IC)."""
        return self.estimator.expected_spread(seeds, self._saturated)

    def ranked_seeds(self, limit: Optional[int] = None) -> List[NodeId]:
        """Greedy seed order by marginal expected spread (CELF).

        ``limit`` bounds the length of the ranking; the default is
        ``max_seeds`` (or every node when that is ``None``).
        """
        limit = limit if limit is not None else self.max_seeds
        if limit is None:
            limit = self.graph.num_nodes

        heap: IndexedMaxHeap = IndexedMaxHeap()
        base_spread = 0.0
        selected: List[NodeId] = []
        # Initial marginal gains: spread of each singleton seed.  This is the
        # one pass that evaluates every node, so it runs through the
        # estimator's batch API (one pipelined pass per uncached singleton on
        # a parallel backend); the CELF re-evaluations below are inherently
        # sequential — each depends on the previous pop — and stay single.
        nodes = list(self.graph.nodes())
        spreads = self.estimator.expected_spreads(
            [([node], self._saturated) for node in nodes]
        )
        for node, spread in zip(nodes, spreads):
            heap.push(node, spread)

        last_evaluated: Dict[NodeId, int] = {node: 0 for node in self.graph.nodes()}

        while heap and len(selected) < limit:
            node, gain = heap.pop()
            if last_evaluated[node] == len(selected):
                selected.append(node)
                base_spread += gain
                continue
            # Stale bound: re-evaluate the marginal gain against the current set.
            new_gain = self.spread(selected + [node]) - base_spread
            last_evaluated[node] = len(selected)
            heap.push(node, new_gain)
        return selected

    def select(self) -> Deployment:
        """Deployment of the greedy seeds with unlimited coupons (pure IM).

        Seeds are added in greedy order while their seed cost alone fits the
        budget; the coupon allocation saturates every reachable user, which is
        the model IM implicitly assumes.  The coupon-strategy wrappers provide
        the budget-aware variants used in the experiments.
        """
        budget = self.scenario.budget_limit
        deployment = Deployment(self.graph)
        for node in self.ranked_seeds():
            candidate = deployment.with_seed(node)
            if candidate.seed_cost() > budget:
                break
            deployment = candidate
        _saturate_reachable(deployment)
        return deployment


def _saturate_reachable(deployment: Deployment) -> None:
    """Give every user reachable from the seeds as many coupons as friends."""
    from repro.graph.metrics import reachable_set

    graph = deployment.graph
    for node in reachable_set(graph, deployment.seeds):
        degree = graph.out_degree(node)
        if degree > 0:
            deployment.allocation.set(node, degree)


class DegreeHeuristic(BaselineAlgorithm):
    """Seed ranking by out-degree — the classic cheap IM heuristic."""

    name = "Degree"

    def __init__(self, *args, max_seeds: Optional[int] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.max_seeds = max_seeds

    def ranked_seeds(self, limit: Optional[int] = None) -> List[NodeId]:
        """Nodes sorted by decreasing out-degree (ties by identifier)."""
        limit = limit if limit is not None else self.max_seeds
        ranking = sorted(
            self.graph.nodes(),
            key=lambda node: (-self.graph.out_degree(node), str(node)),
        )
        return ranking if limit is None else ranking[:limit]

    def select(self) -> Deployment:
        """Highest-degree seeds that fit the budget, saturated allocation."""
        budget = self.scenario.budget_limit
        deployment = Deployment(self.graph)
        for node in self.ranked_seeds():
            candidate = deployment.with_seed(node)
            if candidate.seed_cost() > budget:
                break
            deployment = candidate
        _saturate_reachable(deployment)
        return deployment
