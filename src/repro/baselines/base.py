"""Shared interface for every algorithm compared in the experiments.

Both S3CA (wrapped by the experiment runner) and the baselines return an
:class:`AlgorithmResult` so the metrics layer can treat them uniformly: it only
needs the final deployment and, for the running-time figures, how long the
algorithm took.

Baselines price candidate deployments through the estimator's batched
evaluation scheduler (:meth:`BaselineAlgorithm.batch_benefits` /
:meth:`~repro.diffusion.estimator.BenefitEstimator.expected_spreads`) rather
than one :meth:`expected_benefit` call at a time, so on a parallel estimator
their greedy rounds pipeline through the shared shard pool exactly like
S3CA's phases — with bit-identical selections either way.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.deployment import Deployment
from repro.diffusion.estimator import BenefitEstimator
from repro.diffusion.factory import DEFAULT_ESTIMATOR_METHOD, make_estimator
from repro.economics.scenario import Scenario
from repro.utils.rng import SeedLike

NodeId = Hashable


@dataclass
class AlgorithmResult:
    """Uniform result record produced by every algorithm."""

    name: str
    deployment: Deployment
    expected_benefit: float
    total_cost: float
    redemption_rate: float
    seed_cost: float
    sc_cost: float
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def seeds(self) -> Set[NodeId]:
        """Selected seed set."""
        return set(self.deployment.seeds)

    @property
    def allocation(self) -> Dict[NodeId, int]:
        """Final coupon allocation."""
        return self.deployment.allocation.as_dict()

    @property
    def seed_sc_rate(self) -> float:
        """Seed spending divided by SC spending (Fig. 7 metric)."""
        if self.sc_cost > 0:
            return self.seed_cost / self.sc_cost
        return float("inf") if self.seed_cost > 0 else 0.0

    @classmethod
    def from_deployment(
        cls,
        name: str,
        deployment: Deployment,
        estimator: BenefitEstimator,
        **extras: float,
    ) -> "AlgorithmResult":
        """Price a deployment and wrap it."""
        benefit = deployment.expected_benefit(estimator)
        seed_cost = deployment.seed_cost()
        sc_cost = deployment.sc_cost()
        total = seed_cost + sc_cost
        return cls(
            name=name,
            deployment=deployment,
            expected_benefit=benefit,
            total_cost=total,
            redemption_rate=benefit / total if total > 0 else 0.0,
            seed_cost=seed_cost,
            sc_cost=sc_cost,
            extras=dict(extras),
        )


class BaselineAlgorithm(ABC):
    """Base class for the baselines.

    Subclasses implement :meth:`select` which returns a
    :class:`~repro.core.deployment.Deployment`; the shared :meth:`run` wraps it
    into an :class:`AlgorithmResult` using a common estimator so every
    algorithm is judged by exactly the same Monte-Carlo worlds.
    """

    name: str = "baseline"

    def __init__(
        self,
        scenario: Scenario,
        *,
        estimator: Optional[BenefitEstimator] = None,
        estimator_method: str = DEFAULT_ESTIMATOR_METHOD,
        num_samples: int = 200,
        seed: SeedLike = None,
    ) -> None:
        self.scenario = scenario
        self.graph = scenario.graph
        self.estimator = estimator or make_estimator(
            scenario, estimator_method, num_samples=num_samples, seed=seed
        )

    @abstractmethod
    def select(self) -> Deployment:
        """Choose the seed set and coupon allocation."""

    def batch_benefits(
        self,
        deployments: Sequence[Tuple[Iterable[NodeId], Mapping[NodeId, int]]],
    ) -> List[float]:
        """Expected benefits of a batch of ``(seeds, allocation)`` pairs.

        One batch through the estimator's scheduler: pipelined on a parallel
        backend, a plain loop otherwise — the values are exactly what
        per-pair ``expected_benefit`` calls would return, so greedy
        comparisons built on them are bit-identical.
        """
        return self.estimator.expected_benefits(deployments)

    def run(self) -> AlgorithmResult:
        """Run the baseline and price its deployment."""
        deployment = self.select()
        return AlgorithmResult.from_deployment(self.name, deployment, self.estimator)
