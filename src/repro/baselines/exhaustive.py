"""Exhaustive optimal search for tiny instances.

The paper's Fig. 10 validates the approximation ratio by comparing S3CA with
the optimum obtained by "computation-intensive exhaustive search" on small
networks.  :class:`ExhaustiveSearch` reproduces that oracle: it enumerates
every seed set up to ``max_seeds`` and, for each, every coupon allocation over
the nodes reachable from those seeds with at most ``max_coupons_per_node``
coupons per node and ``max_total_coupons`` in total, keeping the feasible
deployment with the highest redemption rate.  The search is exponential and is
only intended for instances with a dozen or so nodes (or tight coupon bounds).
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Hashable, Iterable, List, Optional, Tuple

from repro.baselines.base import BaselineAlgorithm
from repro.core.deployment import Deployment
from repro.diffusion.monte_carlo import BenefitEstimator
from repro.economics.scenario import Scenario
from repro.graph.metrics import reachable_set
from repro.utils.rng import SeedLike

NodeId = Hashable


class ExhaustiveSearch(BaselineAlgorithm):
    """Brute-force optimum of S3CRM on tiny instances."""

    name = "OPT"

    def __init__(
        self,
        scenario: Scenario,
        *,
        estimator: Optional[BenefitEstimator] = None,
        num_samples: int = 500,
        seed: SeedLike = None,
        max_seeds: int = 2,
        max_coupons_per_node: int = 2,
        max_total_coupons: int = 6,
        candidate_seeds: Optional[Iterable[NodeId]] = None,
    ) -> None:
        super().__init__(scenario, estimator=estimator, num_samples=num_samples, seed=seed)
        self.max_seeds = max_seeds
        self.max_coupons_per_node = max_coupons_per_node
        self.max_total_coupons = max_total_coupons
        self.candidate_seeds = (
            list(candidate_seeds) if candidate_seeds is not None else None
        )

    # ------------------------------------------------------------------

    def select(self) -> Deployment:
        budget = self.scenario.budget_limit
        graph = self.graph
        seed_pool = self.candidate_seeds
        if seed_pool is None:
            seed_pool = [
                node for node in graph.nodes() if graph.seed_cost(node) <= budget
            ]
        seed_pool = sorted(seed_pool, key=str)

        best: Optional[Deployment] = None
        best_rate = 0.0

        for size in range(1, self.max_seeds + 1):
            for seeds in combinations(seed_pool, size):
                base = Deployment(graph, seeds=seeds)
                if base.seed_cost() > budget:
                    continue
                for deployment in self._enumerate_allocations(base, budget):
                    rate = deployment.redemption_rate(self.estimator)
                    if rate > best_rate:
                        best_rate = rate
                        best = deployment
        return best if best is not None else Deployment(graph)

    # ------------------------------------------------------------------

    def _enumerate_allocations(
        self, base: Deployment, budget: float
    ) -> Iterable[Deployment]:
        """All bounded allocations over nodes reachable from the seeds."""
        graph = self.graph
        holders: List[NodeId] = sorted(
            (
                node
                for node in reachable_set(graph, base.seeds)
                if graph.out_degree(node) > 0
            ),
            key=str,
        )
        per_node_options: List[Tuple[int, ...]] = [
            tuple(range(0, min(self.max_coupons_per_node, graph.out_degree(node)) + 1))
            for node in holders
        ]
        if not holders:
            yield base
            return
        for counts in product(*per_node_options):
            if sum(counts) > self.max_total_coupons:
                continue
            deployment = base.copy()
            for node, count in zip(holders, counts):
                if count > 0:
                    deployment.allocation.set(node, count)
            if deployment.total_cost() <= budget:
                yield deployment
