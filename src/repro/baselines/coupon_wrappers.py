"""IM-U, IM-L, PM-U, PM-L: seed selectors combined with real coupon policies.

The paper's baselines are not coupon-aware, so its evaluation pairs each seed
selector (IM or PM) with one of the two deployed coupon strategies (unlimited
or limited) and fits the combination into the investment budget (Sec. VI-A):

1. seeds are taken in the selector's greedy order while their seed cost — plus
   the coupons the strategy mandates for the seeds themselves — still fits the
   budget (the paper's "select only seeds under the remaining budget"), and
2. the remaining budget is spent handing each user reachable from the seeds
   her strategy allocation, in breadth-first order from the seeds, until the
   next user no longer fits.

The BFS hand-out means the limited strategy (32 coupons per user, each costing
money in expectation) exhausts the budget close to the seeds — reproducing the
shallow spreads the paper reports for IM-L/PM-L in Table III — while the
unlimited strategy's per-user cost scales with out-degree and the budget
reaches somewhat deeper.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, List, Optional

from repro.baselines.base import BaselineAlgorithm
from repro.baselines.influence_max import GreedyInfluenceMaximization
from repro.baselines.profit_max import GreedyProfitMaximization
from repro.core.deployment import Deployment
from repro.diffusion.estimator import BenefitEstimator
from repro.economics.coupons import (
    CouponStrategy,
    LimitedCouponStrategy,
    UnlimitedCouponStrategy,
)
from repro.economics.scenario import Scenario
from repro.utils.rng import SeedLike

NodeId = Hashable


class CouponStrategyBaseline(BaselineAlgorithm):
    """A seed selector combined with a coupon strategy under the budget."""

    def __init__(
        self,
        scenario: Scenario,
        selector: BaselineAlgorithm,
        strategy: CouponStrategy,
        *,
        name: Optional[str] = None,
        estimator: Optional[BenefitEstimator] = None,
        num_samples: int = 200,
        seed: SeedLike = None,
        max_seeds: Optional[int] = None,
    ) -> None:
        super().__init__(
            scenario, estimator=estimator or selector.estimator,
            num_samples=num_samples, seed=seed,
        )
        self.selector = selector
        self.strategy = strategy
        self.max_seeds = max_seeds
        self.name = name or f"{selector.name}-{strategy.name}"

    # ------------------------------------------------------------------

    def select(self) -> Deployment:
        budget = self.scenario.budget_limit
        ranking: List[NodeId] = self.selector.ranked_seeds(self.max_seeds)

        deployment = Deployment(self.graph)
        # Stage 1: seed prefix.  Each seed is admitted together with its own
        # strategy allocation so a strategy with expensive per-user coupons
        # admits fewer seeds.
        for node in ranking:
            candidate = deployment.with_seed(node)
            coupons = self.strategy.allocation_for(self.graph, node)
            if coupons > 0:
                candidate.allocation.set(
                    node, max(candidate.allocation.get(node), coupons)
                )
            if candidate.total_cost() > budget:
                break
            deployment = candidate

        if not deployment.seeds and ranking:
            # Not even one seed with its coupons fits: fall back to the
            # cheapest-ranked seed without coupons if that alone is affordable.
            for node in ranking:
                candidate = Deployment(self.graph, seeds=[node])
                if candidate.total_cost() <= budget:
                    deployment = candidate
                    break

        # Stage 2: hand out coupons breadth-first from the seeds.
        self._spread_coupons(deployment, budget)
        return deployment

    # ------------------------------------------------------------------

    def _spread_coupons(self, deployment: Deployment, budget: float) -> None:
        """Give reachable users their strategy allocation while the budget lasts."""
        graph = self.graph
        visited = set(deployment.seeds)
        frontier = deque(sorted(deployment.seeds, key=str))
        while frontier:
            user = frontier.popleft()
            coupons = self.strategy.allocation_for(graph, user)
            if coupons > deployment.allocation.get(user):
                candidate = deployment.copy()
                candidate.allocation.set(user, coupons)
                if candidate.total_cost() <= budget:
                    deployment.allocation.set(user, coupons)
                # When the full allocation does not fit, the user is skipped
                # (rather than aborting the hand-out) so the remaining budget
                # can still equip cheaper users further out.
            if deployment.allocation.get(user) <= 0:
                continue
            for neighbor, _probability in graph.ranked_out_neighbors(user):
                if neighbor not in visited:
                    visited.add(neighbor)
                    frontier.append(neighbor)


def make_im_u(
    scenario: Scenario,
    *,
    estimator: Optional[BenefitEstimator] = None,
    num_samples: int = 200,
    seed: SeedLike = None,
    max_seeds: Optional[int] = None,
) -> CouponStrategyBaseline:
    """IM with the unlimited coupon strategy (IM-U)."""
    selector = GreedyInfluenceMaximization(
        scenario, estimator=estimator, num_samples=num_samples, seed=seed
    )
    return CouponStrategyBaseline(
        scenario, selector, UnlimitedCouponStrategy(), name="IM-U",
        estimator=selector.estimator, max_seeds=max_seeds,
    )


def make_im_l(
    scenario: Scenario,
    coupons_per_user: int = 32,
    *,
    estimator: Optional[BenefitEstimator] = None,
    num_samples: int = 200,
    seed: SeedLike = None,
    max_seeds: Optional[int] = None,
) -> CouponStrategyBaseline:
    """IM with the limited coupon strategy (IM-L, Dropbox's 32 by default)."""
    selector = GreedyInfluenceMaximization(
        scenario, estimator=estimator, num_samples=num_samples, seed=seed
    )
    return CouponStrategyBaseline(
        scenario, selector, LimitedCouponStrategy(coupons_per_user), name="IM-L",
        estimator=selector.estimator, max_seeds=max_seeds,
    )


def make_pm_u(
    scenario: Scenario,
    *,
    estimator: Optional[BenefitEstimator] = None,
    num_samples: int = 200,
    seed: SeedLike = None,
    max_seeds: Optional[int] = None,
) -> CouponStrategyBaseline:
    """PM with the unlimited coupon strategy (PM-U)."""
    selector = GreedyProfitMaximization(
        scenario, estimator=estimator, num_samples=num_samples, seed=seed
    )
    return CouponStrategyBaseline(
        scenario, selector, UnlimitedCouponStrategy(), name="PM-U",
        estimator=selector.estimator, max_seeds=max_seeds,
    )


def make_pm_l(
    scenario: Scenario,
    coupons_per_user: int = 32,
    *,
    estimator: Optional[BenefitEstimator] = None,
    num_samples: int = 200,
    seed: SeedLike = None,
    max_seeds: Optional[int] = None,
) -> CouponStrategyBaseline:
    """PM with the limited coupon strategy (PM-L)."""
    selector = GreedyProfitMaximization(
        scenario, estimator=estimator, num_samples=num_samples, seed=seed
    )
    return CouponStrategyBaseline(
        scenario, selector, LimitedCouponStrategy(coupons_per_user), name="PM-L",
        estimator=selector.estimator, max_seeds=max_seeds,
    )
