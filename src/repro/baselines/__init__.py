"""Baseline algorithms of the paper's evaluation (Sec. VI-A).

* **IM** — greedy influence maximisation (CELF lazy greedy) plus a degree
  heuristic, with the seed size chosen as ``|V| / 2^n`` as in the paper.
* **PM** — greedy profit maximisation (benefit minus seed cost).
* **IM-U / IM-L / PM-U / PM-L** — IM and PM combined with the unlimited and
  limited real-world coupon strategies.
* **IM-S** — the paper's two-stage heuristic that connects IM seeds with
  shortest paths and spreads coupons uniformly along them.
* **Random** — a random seed/coupon policy used as a sanity floor.
* **Exhaustive** — the exact optimum by brute force on tiny instances
  (the Fig. 10 optimality study).
"""

from repro.baselines.base import AlgorithmResult, BaselineAlgorithm
from repro.baselines.coupon_wrappers import (
    CouponStrategyBaseline,
    make_im_l,
    make_im_u,
    make_pm_l,
    make_pm_u,
)
from repro.baselines.exhaustive import ExhaustiveSearch
from repro.baselines.im_s import IMShortestPath
from repro.baselines.influence_max import DegreeHeuristic, GreedyInfluenceMaximization
from repro.baselines.profit_max import GreedyProfitMaximization
from repro.baselines.random_policy import RandomPolicy

__all__ = [
    "AlgorithmResult",
    "BaselineAlgorithm",
    "CouponStrategyBaseline",
    "make_im_l",
    "make_im_u",
    "make_pm_l",
    "make_pm_u",
    "ExhaustiveSearch",
    "IMShortestPath",
    "DegreeHeuristic",
    "GreedyInfluenceMaximization",
    "GreedyProfitMaximization",
    "RandomPolicy",
]
