"""Random seed/coupon policy.

Not part of the paper's baseline set, but a useful sanity floor for tests and
ablations: it spends the budget on uniformly random seeds and coupons, so any
algorithm worth its salt should beat it comfortably.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.baselines.base import BaselineAlgorithm
from repro.core.deployment import Deployment
from repro.diffusion.monte_carlo import BenefitEstimator
from repro.economics.scenario import Scenario
from repro.utils.rng import SeedLike, spawn_rng

NodeId = Hashable


class RandomPolicy(BaselineAlgorithm):
    """Uniformly random seeds and coupons under the budget."""

    name = "Random"

    def __init__(
        self,
        scenario: Scenario,
        *,
        estimator: Optional[BenefitEstimator] = None,
        num_samples: int = 200,
        seed: SeedLike = None,
        seed_budget_fraction: float = 0.5,
        max_attempts: int = 10_000,
    ) -> None:
        super().__init__(scenario, estimator=estimator, num_samples=num_samples, seed=seed)
        if not 0.0 <= seed_budget_fraction <= 1.0:
            raise ValueError("seed_budget_fraction must lie in [0, 1]")
        self.seed_budget_fraction = seed_budget_fraction
        self.max_attempts = max_attempts
        self._rng = spawn_rng(seed)

    def select(self) -> Deployment:
        budget = self.scenario.budget_limit
        seed_budget = budget * self.seed_budget_fraction
        nodes = sorted(self.graph.nodes(), key=str)
        deployment = Deployment(self.graph)

        # Random seeds until the seed sub-budget is full.
        order = list(self._rng.permutation(len(nodes)))
        for index in order:
            node = nodes[index]
            candidate = deployment.with_seed(node)
            if candidate.seed_cost() > seed_budget:
                continue
            deployment = candidate
            if deployment.seed_cost() >= seed_budget * 0.9:
                break

        # Random coupons until nothing more fits (bounded attempts).
        attempts = 0
        while attempts < self.max_attempts:
            attempts += 1
            node = nodes[int(self._rng.integers(0, len(nodes)))]
            if self.graph.out_degree(node) <= deployment.allocation.get(node):
                continue
            candidate = deployment.with_extra_coupon(node)
            if candidate.total_cost() > budget:
                break
            deployment = candidate
        return deployment
