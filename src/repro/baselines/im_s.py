"""IM-S: the paper's two-stage shortest-path heuristic (Sec. VI-A).

Stage one runs the existing IM algorithm to pick seeds.  Stage two connects
every two consecutive seeds with the shortest path in the graph where each
edge ``e(i, j)`` is weighted ``1 − P(e(i, j))`` — i.e. high-influence edges
are short — and distributes social coupons uniformly to the users on those
paths until the total of seed cost and SC cost meets the investment budget.
The paper uses IM-S to show that naively gluing SC allocation onto IM wastes
budget on the connecting paths and misses benefits outside them.

All of IM-S's benefit evaluations happen inside stage one, which runs through
the shared :class:`~repro.baselines.influence_max.GreedyInfluenceMaximization`
selector — whose singleton-spread pass goes through the estimator's batched
evaluation scheduler (``expected_spreads``), pipelined on a parallel backend.
Stage two is pure graph/cost work and submits no evaluations at all; the
final deployment is priced once by the shared :meth:`run`.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Optional, Tuple

from repro.baselines.base import BaselineAlgorithm
from repro.baselines.influence_max import GreedyInfluenceMaximization
from repro.core.deployment import Deployment
from repro.diffusion.monte_carlo import BenefitEstimator
from repro.economics.scenario import Scenario
from repro.utils.rng import SeedLike

NodeId = Hashable


class IMShortestPath(BaselineAlgorithm):
    """Two-stage IM + shortest-path coupon distribution."""

    name = "IM-S"

    def __init__(
        self,
        scenario: Scenario,
        *,
        estimator: Optional[BenefitEstimator] = None,
        num_samples: int = 200,
        seed: SeedLike = None,
        max_seeds: Optional[int] = None,
        selector: Optional[GreedyInfluenceMaximization] = None,
    ) -> None:
        super().__init__(scenario, estimator=estimator, num_samples=num_samples, seed=seed)
        self.max_seeds = max_seeds
        self.selector = selector or GreedyInfluenceMaximization(
            scenario, estimator=self.estimator
        )

    # ------------------------------------------------------------------

    def select(self) -> Deployment:
        budget = self.scenario.budget_limit
        # Stage 1 ranking: the selector batches its singleton-spread pass
        # through the estimator's scheduler; sharing `self.estimator` means
        # IM-S and a sibling IM baseline also share every memoised result.
        ranking = self.selector.ranked_seeds(self.max_seeds)

        # Stage 1: admit seeds in greedy order while their cost fits half the
        # budget, reserving the other half for the connecting coupons (the
        # paper does not specify the split; half-and-half keeps both stages
        # non-degenerate and the total within budget).
        deployment = Deployment(self.graph)
        seed_budget = budget / 2.0
        for node in ranking:
            candidate = deployment.with_seed(node)
            if candidate.seed_cost() > seed_budget:
                break
            deployment = candidate
        if not deployment.seeds and ranking:
            cheapest = min(ranking, key=self.graph.seed_cost)
            if self.graph.seed_cost(cheapest) <= budget:
                deployment = Deployment(self.graph, seeds=[cheapest])

        # Stage 2: connect consecutive seeds with shortest paths and give one
        # coupon per path edge, uniformly, while the budget allows.
        seeds = sorted(deployment.seeds, key=str)
        path_nodes: List[NodeId] = []
        for first, second in zip(seeds, seeds[1:]):
            path = self._shortest_path(first, second)
            if path:
                path_nodes.extend(path)
        # Always let the seeds themselves hand out at least one coupon.
        path_nodes.extend(seeds)

        for node in path_nodes:
            degree = self.graph.out_degree(node)
            if degree <= 0:
                continue
            current = deployment.allocation.get(node)
            if current >= degree:
                continue
            candidate = deployment.copy()
            candidate.allocation.set(node, current + 1)
            if candidate.total_cost() <= budget:
                deployment.allocation.set(node, current + 1)
        return deployment

    # ------------------------------------------------------------------

    def _shortest_path(self, source: NodeId, target: NodeId) -> List[NodeId]:
        """Dijkstra shortest path with edge weight ``1 - P(e)``.

        Returns the node sequence from ``source`` to ``target`` (both
        included) or an empty list when ``target`` is unreachable.
        """
        distances: Dict[NodeId, float] = {source: 0.0}
        previous: Dict[NodeId, NodeId] = {}
        heap: List[Tuple[float, str, NodeId]] = [(0.0, str(source), source)]
        visited = set()
        while heap:
            distance, _, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            if node == target:
                break
            for neighbor, probability in self.graph.out_neighbors(node).items():
                weight = 1.0 - probability
                new_distance = distance + weight
                if new_distance < distances.get(neighbor, float("inf")):
                    distances[neighbor] = new_distance
                    previous[neighbor] = node
                    heapq.heappush(heap, (new_distance, str(neighbor), neighbor))
        if target not in visited:
            return []
        path = [target]
        while path[-1] != source:
            path.append(previous[path[-1]])
        path.reverse()
        return path
