"""Scenario: the complete input of an S3CRM instance.

A :class:`Scenario` bundles the graph (with its economic attributes already
attached), the investment budget and a human-readable name.  It is the object
the algorithms (:mod:`repro.core`, :mod:`repro.baselines`) and the experiment
harness exchange.

:class:`ScenarioBuilder` provides the fluent construction path used by the
experiment harness and examples:

>>> from repro.graph.generators import power_law_graph
>>> scenario = (
...     ScenarioBuilder(power_law_graph(200, 4, seed=1), name="demo")
...     .with_normal_benefits(mean=10, std=2, seed=1)
...     .with_uniform_sc_costs(10.0)
...     .with_degree_proportional_seed_costs()
...     .with_lambda(1.0)
...     .with_kappa(10.0)
...     .with_budget(500.0)
...     .build()
... )
>>> scenario.budget_limit
500.0
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional

from repro.economics.benefits import (
    assign_gross_margin_benefits,
    assign_normal_benefits,
    assign_uniform_benefits,
    benefit_cost_ratio,
    seed_cost_benefit_ratio,
)
from repro.economics.budget import Budget
from repro.economics.costs import (
    assign_degree_proportional_seed_costs,
    assign_uniform_sc_costs,
    assign_uniform_seed_costs,
    scale_sc_costs_to_lambda,
    scale_seed_costs_to_kappa,
)
from repro.exceptions import ScenarioError
from repro.graph.social_graph import SocialGraph
from repro.utils.validation import require_positive

NodeId = Hashable


@dataclass(frozen=True)
class Scenario:
    """An immutable S3CRM problem instance.

    Attributes
    ----------
    graph:
        The social graph with benefits, seed costs and SC costs attached.
    budget_limit:
        The investment budget ``B_inv``.
    name:
        Identifier used in experiment reports.
    """

    graph: SocialGraph
    budget_limit: float
    name: str = "scenario"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        require_positive(self.budget_limit, "budget_limit")
        if self.graph.num_nodes == 0:
            raise ScenarioError("scenario graph has no nodes")

    def budget(self) -> Budget:
        """Return a fresh :class:`Budget` ledger for this scenario."""
        return Budget(self.budget_limit)

    def compiled_graph(self):
        """The scenario graph's cached CSR snapshot.

        Estimators built through :func:`repro.diffusion.factory.make_estimator`
        on the same scenario share this snapshot, so a ``compare``-style run
        compiles the graph once.  The cache lives on the
        :class:`~repro.graph.social_graph.SocialGraph` and is invalidated
        automatically when the graph is mutated.
        """
        return self.graph.compiled()

    @property
    def num_nodes(self) -> int:
        """Number of users."""
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        """Number of directed relationships."""
        return self.graph.num_edges

    def lam(self) -> float:
        """Current λ = total benefit / total SC cost."""
        return benefit_cost_ratio(self.graph)

    def kappa(self) -> float:
        """Current κ = total seed cost / total benefit."""
        return seed_cost_benefit_ratio(self.graph)

    def describe(self) -> str:
        """One-line description used by the reporting module."""
        return (
            f"{self.name}: {self.num_nodes} nodes, {self.num_edges} edges, "
            f"B_inv={self.budget_limit:g}"
        )


class ScenarioBuilder:
    """Fluent builder attaching economics to a topology step by step.

    Each ``with_*`` method mutates the graph copy held by the builder and
    returns ``self`` so calls can be chained.  ``build`` validates that every
    node ended up with a benefit and both costs, and that a budget was set.
    """

    def __init__(self, graph: SocialGraph, name: str = "scenario") -> None:
        self._graph = graph.copy()
        self._name = name
        self._budget: Optional[float] = None
        self._metadata: dict = {}

    # -- benefits ----------------------------------------------------------

    def with_normal_benefits(
        self, mean: float, std: float, seed=None
    ) -> "ScenarioBuilder":
        """Draw benefits from ``N(mean, std)`` truncated at zero."""
        assign_normal_benefits(self._graph, mean, std, seed=seed)
        return self

    def with_uniform_benefits(self, benefit: float) -> "ScenarioBuilder":
        """Give every user the same benefit."""
        assign_uniform_benefits(self._graph, benefit)
        return self

    def with_gross_margin_benefits(self, gross_margin: float) -> "ScenarioBuilder":
        """Derive benefits from SC costs and a gross margin (case study)."""
        assign_gross_margin_benefits(self._graph, gross_margin)
        return self

    # -- costs ---------------------------------------------------------------

    def with_degree_proportional_seed_costs(
        self, cost_per_friend: float = 1.0, minimum_cost: float = 1.0
    ) -> "ScenarioBuilder":
        """Seed cost proportional to out-degree."""
        assign_degree_proportional_seed_costs(
            self._graph, cost_per_friend=cost_per_friend, minimum_cost=minimum_cost
        )
        return self

    def with_uniform_seed_costs(self, cost: float) -> "ScenarioBuilder":
        """Same seed cost for every user."""
        assign_uniform_seed_costs(self._graph, cost)
        return self

    def with_uniform_sc_costs(self, cost: float) -> "ScenarioBuilder":
        """Same SC cost for every user."""
        assign_uniform_sc_costs(self._graph, cost)
        return self

    # -- ratio knobs ---------------------------------------------------------

    def with_lambda(self, lam: float) -> "ScenarioBuilder":
        """Rescale SC costs so total benefit / total SC cost equals ``lam``."""
        scale_sc_costs_to_lambda(self._graph, lam)
        self._metadata["lambda"] = lam
        return self

    def with_kappa(self, kappa: float) -> "ScenarioBuilder":
        """Rescale seed costs so total seed cost / total benefit equals ``kappa``."""
        scale_seed_costs_to_kappa(self._graph, kappa)
        self._metadata["kappa"] = kappa
        return self

    # -- budget / metadata ----------------------------------------------------

    def with_budget(self, budget: float) -> "ScenarioBuilder":
        """Set the investment budget ``B_inv``."""
        require_positive(budget, "budget")
        self._budget = budget
        return self

    def with_metadata(self, **metadata) -> "ScenarioBuilder":
        """Attach arbitrary metadata carried through to reports."""
        self._metadata.update(metadata)
        return self

    # -- finalisation -----------------------------------------------------------

    def build(self) -> Scenario:
        """Validate and return the immutable :class:`Scenario`."""
        if self._budget is None:
            raise ScenarioError("a budget must be set before build()")
        missing_benefit = all(
            self._graph.benefit(node) == 0.0 for node in self._graph.nodes()
        )
        if missing_benefit:
            raise ScenarioError("no node has a positive benefit; assign benefits first")
        return Scenario(
            graph=self._graph,
            budget_limit=self._budget,
            name=self._name,
            metadata=dict(self._metadata),
        )
