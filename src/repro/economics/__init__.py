"""Economic models: costs, benefits, budgets, coupon strategies and adoption.

This subpackage turns a bare topology into an S3CRM *scenario*: every node
receives a benefit, a seed cost and a social-coupon cost, drawn from the
distributions the paper's evaluation section specifies, and the investment
budget constrains the algorithms that run on top.
"""

from repro.economics.benefits import (
    assign_gross_margin_benefits,
    assign_normal_benefits,
    benefit_cost_ratio,
)
from repro.economics.budget import Budget
from repro.economics.costs import (
    assign_degree_proportional_seed_costs,
    assign_uniform_sc_costs,
    assign_uniform_seed_costs,
    scale_seed_costs_to_kappa,
)
from repro.economics.coupons import (
    CouponStrategy,
    LimitedCouponStrategy,
    UnlimitedCouponStrategy,
)
from repro.economics.adoption import AdoptionModel
from repro.economics.scenario import Scenario, ScenarioBuilder

__all__ = [
    "assign_gross_margin_benefits",
    "assign_normal_benefits",
    "benefit_cost_ratio",
    "Budget",
    "assign_degree_proportional_seed_costs",
    "assign_uniform_sc_costs",
    "assign_uniform_seed_costs",
    "scale_seed_costs_to_kappa",
    "CouponStrategy",
    "LimitedCouponStrategy",
    "UnlimitedCouponStrategy",
    "AdoptionModel",
    "Scenario",
    "ScenarioBuilder",
]
