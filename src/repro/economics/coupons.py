"""Real-world coupon strategies.

The paper treats two deployed coupon policies as special cases of S3CRM
(Sec. III) and as the allocation rule attached to the IM/PM baselines in the
evaluation (Sec. VI-A):

* **Limited coupon strategy** (Dropbox, Airbnb, Booking.com): every user may
  hand out at most a fixed constant number of coupons, ``k_i = k`` — Dropbox's
  32 in the paper's default.
* **Unlimited coupon strategy** (Uber, Lyft, Hotels.com): every user may refer
  all of her friends, ``k_i = |N(v_i)|``, so the propagation model reduces to
  the plain independent cascade.

A strategy is a callable object mapping a graph and a set of users to an
allocation dictionary ``{node: k}``; the baselines apply it to every node the
selected seeds can reach.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Hashable, Iterable

from repro.graph.social_graph import SocialGraph
from repro.utils.validation import require_non_negative

NodeId = Hashable


class CouponStrategy(ABC):
    """Rule assigning an SC constraint ``k_i`` to each selected user."""

    @abstractmethod
    def allocation_for(self, graph: SocialGraph, node: NodeId) -> int:
        """Number of coupons given to ``node``."""

    def allocate(self, graph: SocialGraph, nodes: Iterable[NodeId]) -> Dict[NodeId, int]:
        """Allocation dictionary for all ``nodes`` (zero entries are dropped)."""
        allocation: Dict[NodeId, int] = {}
        for node in nodes:
            count = self.allocation_for(graph, node)
            if count > 0:
                allocation[node] = count
        return allocation

    @property
    @abstractmethod
    def name(self) -> str:
        """Short identifier used in experiment reports (e.g. ``"limited"``)."""


class LimitedCouponStrategy(CouponStrategy):
    """Constant per-user coupon cap, truncated to the user's out-degree."""

    def __init__(self, coupons_per_user: int = 32) -> None:
        require_non_negative(coupons_per_user, "coupons_per_user")
        self.coupons_per_user = int(coupons_per_user)

    def allocation_for(self, graph: SocialGraph, node: NodeId) -> int:
        return min(self.coupons_per_user, graph.out_degree(node))

    @property
    def name(self) -> str:
        return f"limited({self.coupons_per_user})"

    def __repr__(self) -> str:
        return f"LimitedCouponStrategy(coupons_per_user={self.coupons_per_user})"


class UnlimitedCouponStrategy(CouponStrategy):
    """Every user may refer all friends; reduces the model to the plain IC."""

    def allocation_for(self, graph: SocialGraph, node: NodeId) -> int:
        return graph.out_degree(node)

    @property
    def name(self) -> str:
        return "unlimited"

    def __repr__(self) -> str:
        return "UnlimitedCouponStrategy()"
