"""Coupon adoption model used by the case study (Sec. VI-C).

The paper adopts the stochastic coupon-probing adoption model of Tang [30] to
decide whether a user accepts a social coupon at all: 85% of users adopt with
weight ``c_sc^(1/3)``, 10% with weight ``c_sc`` and 5% with weight ``c_sc^2``,
all normalised by ``c_sc^(1/3) + c_sc + c_sc^2``.  The resulting per-user
adoption probability multiplies the influence probability of every incoming
edge, so a user who is unlikely to adopt a coupon is also unlikely to be
activated through one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable

from repro.graph.social_graph import SocialGraph
from repro.utils.rng import SeedLike, spawn_rng

NodeId = Hashable


@dataclass(frozen=True)
class AdoptionSegment:
    """One segment of the adoption mixture: a population share and an exponent."""

    share: float
    exponent: float


class AdoptionModel:
    """The 85/10/5 adoption mixture of the case study.

    Parameters
    ----------
    segments:
        The mixture components.  The default reproduces the paper's split:
        85% of users weighted by ``c_sc^(1/3)``, 10% by ``c_sc`` and 5% by
        ``c_sc^2``.
    seed:
        Random seed controlling which users fall into which segment.
    """

    DEFAULT_SEGMENTS = (
        AdoptionSegment(share=0.85, exponent=1.0 / 3.0),
        AdoptionSegment(share=0.10, exponent=1.0),
        AdoptionSegment(share=0.05, exponent=2.0),
    )

    def __init__(self, segments=DEFAULT_SEGMENTS, seed: SeedLike = None) -> None:
        total_share = sum(segment.share for segment in segments)
        if abs(total_share - 1.0) > 1e-9:
            raise ValueError(f"segment shares must sum to 1, got {total_share}")
        self.segments = tuple(segments)
        self._rng = spawn_rng(seed)

    def adoption_probabilities(self, graph: SocialGraph) -> Dict[NodeId, float]:
        """Assign an adoption probability to every user.

        Users are partitioned into the segments uniformly at random in the
        configured proportions; a user in the segment with exponent ``e`` and
        SC cost ``c`` adopts with probability
        ``c^e / (c^(1/3) + c + c^2)`` (clamped to ``[0, 1]``).
        """
        nodes = list(graph.nodes())
        assignment = self._rng.random(len(nodes))
        cumulative = []
        running = 0.0
        for segment in self.segments:
            running += segment.share
            cumulative.append(running)

        probabilities: Dict[NodeId, float] = {}
        for node, draw in zip(nodes, assignment.tolist()):
            segment = self.segments[-1]
            for boundary, candidate in zip(cumulative, self.segments):
                if draw <= boundary:
                    segment = candidate
                    break
            cost = graph.sc_cost(node)
            if cost <= 0:
                probabilities[node] = 1.0
                continue
            normaliser = cost ** (1.0 / 3.0) + cost + cost**2
            probabilities[node] = min(1.0, (cost**segment.exponent) / normaliser)
        return probabilities

    def apply(self, graph: SocialGraph) -> SocialGraph:
        """Return a copy of ``graph`` with edge probabilities damped by adoption.

        Each edge ``(u, v)`` has its influence probability multiplied by the
        adoption probability of the *target* ``v`` — the invitee must both be
        influenced and willing to adopt the coupon.
        """
        probabilities = self.adoption_probabilities(graph)
        damped = graph.copy()
        for source, target, probability in graph.edges():
            damped.add_edge(source, target, probability * probabilities[target])
        return damped
