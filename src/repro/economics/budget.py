"""Investment budget accounting.

The budget ``B_inv`` of S3CRM caps the *sum* of seed costs and expected SC
costs (constraint (1b) of the paper).  :class:`Budget` is a small ledger that
algorithms use to check feasibility of a candidate investment and to track how
much has been committed so far; it never mutates the graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.exceptions import BudgetError
from repro.utils.validation import require_positive


@dataclass
class Budget:
    """Ledger for the investment budget ``B_inv``.

    Parameters
    ----------
    limit:
        The total investment budget.  Must be strictly positive.
    tolerance:
        Numerical slack used in feasibility checks: a spend is feasible when
        ``spent + amount <= limit * (1 + tolerance)``.  The default ``1e-9``
        only forgives floating-point rounding.
    """

    limit: float
    tolerance: float = 1e-9
    _spent: float = field(default=0.0, init=False, repr=False)
    _entries: List[Tuple[str, float]] = field(default_factory=list, init=False, repr=False)

    def __post_init__(self) -> None:
        require_positive(self.limit, "limit")

    @property
    def spent(self) -> float:
        """Total amount committed so far."""
        return self._spent

    @property
    def remaining(self) -> float:
        """Budget still available (never negative)."""
        return max(0.0, self.limit - self._spent)

    def can_afford(self, amount: float) -> bool:
        """Return whether ``amount`` more can be spent without exceeding the limit."""
        if amount < 0:
            raise BudgetError(f"spend amount must be >= 0, got {amount!r}")
        return self._spent + amount <= self.limit * (1.0 + self.tolerance)

    def spend(self, amount: float, label: str = "") -> None:
        """Commit ``amount``; raises :class:`BudgetError` if it does not fit."""
        if not self.can_afford(amount):
            raise BudgetError(
                f"spending {amount:.6g} exceeds budget: spent={self._spent:.6g}, "
                f"limit={self.limit:.6g}"
            )
        self._spent += amount
        self._entries.append((label, amount))

    def refund(self, amount: float, label: str = "") -> None:
        """Return ``amount`` to the budget (e.g. after an SC maneuver retrieval)."""
        if amount < 0:
            raise BudgetError(f"refund amount must be >= 0, got {amount!r}")
        self._spent = max(0.0, self._spent - amount)
        self._entries.append((label, -amount))

    def entries(self) -> List[Tuple[str, float]]:
        """The ledger of (label, signed amount) entries, in order."""
        return list(self._entries)

    def reset(self) -> None:
        """Clear all spending."""
        self._spent = 0.0
        self._entries.clear()

    def copy(self) -> "Budget":
        """Return an independent copy with the same limit and spending."""
        clone = Budget(self.limit, self.tolerance)
        clone._spent = self._spent
        clone._entries = list(self._entries)
        return clone
