"""Benefit models.

Two settings from the paper:

* the *normal benefit setting* of the main experiments (Sec. VI-A): each
  user's benefit is drawn from a normal distribution ``N(mu, sigma)`` with
  dataset-specific parameters (Table II), truncated at zero, and
* the *gross-margin setting* of the case study (Sec. VI-C): the benefit is
  derived from the SC cost and a gross-margin percentage ``gm`` via
  ``gm = (b - c_sc) / b``, i.e. ``b = c_sc / (1 - gm)``.
"""

from __future__ import annotations

from repro.graph.social_graph import SocialGraph
from repro.utils.rng import SeedLike, spawn_rng
from repro.utils.validation import require_non_negative, require_positive


def assign_normal_benefits(
    graph: SocialGraph,
    mean: float,
    std: float,
    seed: SeedLike = None,
    *,
    minimum: float = 0.0,
) -> None:
    """Draw ``b(v) ~ N(mean, std)`` independently per user, truncated at ``minimum``.

    The truncation (default zero) keeps benefits non-negative as the problem
    definition requires; with the paper's parameters (e.g. µ=10, σ=2) the
    truncation is almost never active.
    """
    require_positive(mean, "mean")
    require_non_negative(std, "std")
    require_non_negative(minimum, "minimum")
    rng = spawn_rng(seed)
    nodes = list(graph.nodes())
    samples = rng.normal(mean, std, size=len(nodes))
    for node, value in zip(nodes, samples.tolist()):
        graph.add_node(node, benefit=max(minimum, value))


def assign_uniform_benefits(graph: SocialGraph, benefit: float) -> None:
    """Give every user the same benefit (used in toy examples and tests)."""
    require_non_negative(benefit, "benefit")
    for node in graph.nodes():
        graph.add_node(node, benefit=benefit)


def assign_gross_margin_benefits(graph: SocialGraph, gross_margin: float) -> None:
    """Set ``b(v) = c_sc(v) / (1 - gross_margin)``.

    ``gross_margin`` is a fraction in ``[0, 1)``; the paper's Fig. 8 sweeps it
    between roughly 0.2 and 0.8.  SC costs must already be assigned.
    """
    if not 0.0 <= gross_margin < 1.0:
        raise ValueError(f"gross_margin must be in [0, 1), got {gross_margin!r}")
    for node in graph.nodes():
        sc_cost = graph.sc_cost(node)
        graph.add_node(node, benefit=sc_cost / (1.0 - gross_margin))


def benefit_cost_ratio(graph: SocialGraph) -> float:
    """Return λ = total benefit / total SC cost for the current attributes."""
    total_sc = graph.total_sc_cost()
    if total_sc == 0:
        raise ValueError("total SC cost is zero; lambda is undefined")
    return graph.total_benefit() / total_sc


def seed_cost_benefit_ratio(graph: SocialGraph) -> float:
    """Return κ = total seed cost / total benefit for the current attributes."""
    total_benefit = graph.total_benefit()
    if total_benefit == 0:
        raise ValueError("total benefit is zero; kappa is undefined")
    return graph.total_seed_cost() / total_benefit
