"""Seed-cost and social-coupon-cost models.

The paper's evaluation (Sec. VI-A) uses two cost conventions:

* the seed cost of a user is proportional to the number of her friends
  (out-degree), following the PM literature [17], and
* the SC cost is uniform across users, following the real coupon programs of
  Dropbox and Hotels.com.

The κ knob (ratio of total seed cost to total benefit) is implemented by
rescaling seed costs after benefits are assigned
(:func:`scale_seed_costs_to_kappa`).
"""

from __future__ import annotations

from typing import Hashable

from repro.graph.social_graph import SocialGraph
from repro.utils.validation import require_non_negative, require_positive

NodeId = Hashable


def assign_degree_proportional_seed_costs(
    graph: SocialGraph,
    *,
    cost_per_friend: float = 1.0,
    minimum_cost: float = 1.0,
) -> None:
    """Set ``c_seed(v) = max(minimum_cost, cost_per_friend * out_degree(v))``.

    The out-degree is the number of friends the user can refer, which the PM
    literature uses as a proxy for how expensive the user is to recruit.
    """
    require_non_negative(cost_per_friend, "cost_per_friend")
    require_non_negative(minimum_cost, "minimum_cost")
    for node in graph.nodes():
        cost = max(minimum_cost, cost_per_friend * graph.out_degree(node))
        graph.add_node(node, seed_cost=cost)


def assign_uniform_seed_costs(graph: SocialGraph, cost: float) -> None:
    """Set the same seed cost for every user."""
    require_non_negative(cost, "cost")
    for node in graph.nodes():
        graph.add_node(node, seed_cost=cost)


def assign_uniform_sc_costs(graph: SocialGraph, cost: float) -> None:
    """Set the same social-coupon cost for every user (Dropbox/Hotels.com style)."""
    require_non_negative(cost, "cost")
    for node in graph.nodes():
        graph.add_node(node, sc_cost=cost)


def scale_seed_costs_to_kappa(graph: SocialGraph, kappa: float) -> None:
    """Rescale seed costs so that ``sum(c_seed) / sum(b) == kappa``.

    ``kappa`` is the κ knob of Fig. 7(e)-(f).  Benefits must already be
    assigned and have a positive total; current seed costs define the relative
    profile (degree-proportional by default) and are scaled uniformly.
    """
    require_positive(kappa, "kappa")
    total_benefit = graph.total_benefit()
    if total_benefit <= 0:
        raise ValueError("cannot scale to kappa: total benefit is zero")
    total_seed_cost = graph.total_seed_cost()
    if total_seed_cost <= 0:
        raise ValueError("cannot scale to kappa: total seed cost is zero")
    factor = kappa * total_benefit / total_seed_cost
    for node in graph.nodes():
        graph.add_node(node, seed_cost=graph.seed_cost(node) * factor)


def scale_sc_costs_to_lambda(graph: SocialGraph, lam: float) -> None:
    """Rescale SC costs so that ``sum(b) / sum(c_sc) == lam``.

    ``lam`` is the λ knob of Fig. 6(c)-(d) and Fig. 7(c)-(d).  Benefits must
    already be assigned with a positive total.
    """
    require_positive(lam, "lam")
    total_benefit = graph.total_benefit()
    if total_benefit <= 0:
        raise ValueError("cannot scale to lambda: total benefit is zero")
    total_sc_cost = graph.total_sc_cost()
    if total_sc_cost <= 0:
        raise ValueError("cannot scale to lambda: total SC cost is zero")
    factor = (total_benefit / lam) / total_sc_cost
    for node in graph.nodes():
        graph.add_node(node, sc_cost=graph.sc_cost(node) * factor)
