"""Multiprocess shard evaluation for the compiled cascade engine.

The per-world cascades of a Monte-Carlo estimate are embarrassingly parallel:
every world is an independent deterministic cascade and the estimate is a sum
of integer activation counts.  :class:`ShardExecutor` exploits that with a
*persistent* process pool:

* each worker receives the pickled :class:`~repro.diffusion.engine.WorldSampler`
  (frozen RNG state + the compiled CSR graph) **once**, at pool start-up —
  per-evaluation tasks only carry the seed indices and the sparse coupon
  vector;
* a task is one shard block ``(start, count)``: the worker regenerates the
  block's worlds locally by skipping the shared RNG stream to
  ``start × num_edges`` (bit-identical to the serial draw), runs the shared
  :func:`~repro.diffusion.engine.cascade_block` inner loop and returns the
  block's activation-count vector;
* workers keep a small LRU of materialised blocks, so successive estimates
  (the greedy loops evaluate thousands) do not re-draw the same worlds —
  while per-worker memory stays bounded by a few blocks;
* the parent reduces the per-block count vectors **in block order**.  The
  counts are integers, so the reduction is exact and the final
  ``counts @ benefits / num_worlds`` expression — evaluated by the engine,
  not here — produces a float that is bit-identical to the serial path for
  any shard size and worker count.

The pool prefers the ``fork`` start method on Linux (cheap start-up, the
graph is inherited rather than re-imported) and uses the platform default
everywhere else (``spawn`` on macOS/Windows — fork is unsafe under macOS
frameworks), where the initializer arguments travel pickled — :class:`~repro.graph.csr.CompiledGraph`
supports both transports.
"""

from __future__ import annotations

import multiprocessing
import sys
import weakref
from typing import List, Optional, Tuple

import numpy as np

from repro.diffusion.engine import BlockCache, WorldSampler, cascade_block
from repro.exceptions import EstimationError

#: Blocks each worker keeps materialised between tasks.
_WORKER_CACHE_BLOCKS = 4

#: Per-process worker state, populated by :func:`_init_worker`.
_WORKER: Optional["_WorkerState"] = None


class _WorkerState:
    """Everything one worker process needs to evaluate shard blocks."""

    def __init__(self, sampler: WorldSampler, cache_blocks: int) -> None:
        num_nodes = sampler.compiled.num_nodes
        self.sampler = sampler
        self.visited: List[int] = [0] * num_nodes
        self.coupons: List[int] = [0] * num_nodes
        self.stamp = 0
        self.cache = BlockCache(sampler, cache_blocks)


def _init_worker(sampler: WorldSampler, cache_blocks: int) -> None:
    global _WORKER
    _WORKER = _WorkerState(sampler, cache_blocks)


def _evaluate_block(
    task: Tuple[int, int, List[int], List[Tuple[int, int]]]
) -> np.ndarray:
    """Evaluate one shard block; returns its activation-count vector."""
    start, count, seed_indices, coupon_items = task
    state = _WORKER
    targets_block, offsets_block = state.cache.block(start, count)
    coupons = state.coupons
    for position, coupon_count in coupon_items:
        coupons[position] = coupon_count
    # Reserve the block's stamp range up front (mirroring the serial
    # engine): if cascade_block raises mid-block, the stamps it already
    # wrote into `visited` must never be reused by a later task in this
    # worker, or previously-visited nodes would look activated.
    stamp = state.stamp
    state.stamp = stamp + count
    try:
        flat_activations, _ = cascade_block(
            targets_block, offsets_block, seed_indices, coupons,
            state.visited, stamp,
        )
    finally:
        for position, _ in coupon_items:
            coupons[position] = 0
    return np.bincount(
        np.asarray(flat_activations, dtype=np.int64),
        minlength=state.sampler.compiled.num_nodes,
    )


def _shutdown_pool(pool) -> None:
    pool.terminate()
    pool.join()


class ShardExecutor:
    """Persistent process pool evaluating shard blocks of live-edge worlds.

    Built lazily by :class:`~repro.diffusion.engine.CompiledCascadeEngine` on
    the first parallel :meth:`run`; reused for every subsequent evaluation
    until :meth:`close` (a finalizer tears the pool down if the owner is
    garbage collected first).
    """

    def __init__(
        self,
        sampler: WorldSampler,
        *,
        num_worlds: int,
        shard_size: int,
        workers: int,
        start_method: Optional[str] = None,
        cache_blocks: int = _WORKER_CACHE_BLOCKS,
    ) -> None:
        if workers < 1:
            raise EstimationError(f"workers must be >= 1, got {workers}")
        self._blocks: List[Tuple[int, int]] = [
            (start, min(shard_size, num_worlds - start))
            for start in range(0, num_worlds, shard_size)
        ]
        self.workers = min(workers, len(self._blocks))
        self.num_nodes = sampler.compiled.num_nodes
        if start_method is None:
            # Prefer the cheap fork start-up only on Linux: macOS offers
            # fork too, but forking after ObjC-framework initialisation is
            # unsafe there (the reason CPython switched its default to
            # spawn), so everywhere else the platform default stands.
            start_method = "fork" if sys.platform == "linux" else None
        context = multiprocessing.get_context(start_method)
        self._pool = context.Pool(
            self.workers,
            initializer=_init_worker,
            initargs=(sampler, cache_blocks),
        )
        self._finalizer = weakref.finalize(self, _shutdown_pool, self._pool)

    def run_counts(
        self, seed_indices: List[int], coupon_items: List[Tuple[int, int]]
    ) -> np.ndarray:
        """Activation counts over every world, reduced in block order."""
        if not self._finalizer.alive:
            raise EstimationError("ShardExecutor is closed")
        tasks = [
            (start, count, seed_indices, coupon_items)
            for start, count in self._blocks
        ]
        counts = np.zeros(self.num_nodes, dtype=np.int64)
        for block_counts in self._pool.map(_evaluate_block, tasks):
            counts += block_counts
        return counts

    def close(self) -> None:
        """Terminate the pool; the executor cannot be used afterwards."""
        self._finalizer()

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
