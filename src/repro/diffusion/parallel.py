"""Multiprocess shard evaluation with streaming reduction and pool sharing.

The per-world cascades of a Monte-Carlo estimate are embarrassingly parallel:
every world is an independent deterministic cascade and the estimate is a sum
of integer activation counts.  Two classes exploit that:

:class:`SharedShardPool`
    A persistent process pool that can serve **many** estimators.  Each
    :class:`~repro.diffusion.engine.WorldSampler` (frozen RNG state + compiled
    CSR graph) is *registered* once: a barrier-synchronised broadcast ships it
    to every worker exactly once, after which per-evaluation tasks carry only
    a small token, the block bounds, the seed indices and the sparse coupon
    vector.  The pool is injectable through every layer
    (``make_estimator(..., pool=...)``), so an experiment sweep spanning
    several scenarios and algorithms runs on **one** pool instead of paying a
    pool start-up per estimator.

:class:`ShardExecutor`
    One estimator's view onto a pool (owned or injected).  An evaluation is
    *submitted*: its shard blocks are tagged with their block index and
    dispatched through ``imap_unordered``, and the returned
    :class:`PendingCounts` handle folds the per-block activation-count
    vectors into a running total **in block order** as they arrive (buffering
    out-of-order completions), so the parent overlaps its reduction with the
    workers' computation instead of idling in a blocking ``pool.map``.
    Several evaluations can be pending on the same pool at once — submitting
    a batch and draining it in submission order pipelines the parent's
    reductions behind the workers' cascades.

Determinism
-----------
The per-block counts are integers and the running reduction folds them in
block order whatever order they complete in, so the final count vector — and
the ``counts @ benefits / num_worlds`` benefit derived from it by the engine —
is bit-identical to the serial path for any shard size, worker count,
completion order and pipelining depth.

Ownership
---------
An executor built *without* an injected pool creates one and owns it:
:meth:`ShardExecutor.close` tears the pool down.  An executor built *on* an
injected pool never closes it — closing the executor (or the estimator above
it) merely unregisters its sampler; the pool keeps serving other estimators
until its owner calls :meth:`SharedShardPool.close` (or the ``with`` block
exits).  Every pool also carries a :func:`weakref.finalize` guard — Python
runs outstanding finalizers at interpreter exit, so a pool whose owner forgot
to close it is reclaimed at exit instead of leaking worker processes.

The pool prefers the ``fork`` start method on Linux (cheap start-up, the
graph is inherited rather than re-imported) and uses the platform default
everywhere else (``spawn`` on macOS/Windows — fork is unsafe under macOS
frameworks), where the broadcast arguments travel pickled —
:class:`~repro.graph.csr.CompiledGraph` supports both transports.
"""

from __future__ import annotations

import multiprocessing
import pickle
import sys
import time
import weakref
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.diffusion import kernels as _kernels
from repro.diffusion.engine import BlockCache, WorldSampler, cascade_block
from repro.exceptions import EstimationError

#: Blocks each worker keeps materialised between tasks (per registered sampler).
_WORKER_CACHE_BLOCKS = 4

#: Seconds a worker waits at the registration barrier before giving up; only
#: reached when a sibling worker died mid-broadcast.
_BARRIER_TIMEOUT = 120.0

#: One evaluation task: (sampler token, block index, start, count, seeds,
#: sparse coupon items, use-kernel flag).
Task = Tuple[int, int, int, int, List[int], List[Tuple[int, int]], bool]

#: Per-process worker state, keyed by sampler token.
_WORKER_STATES: Dict[int, "_WorkerState"] = {}
_WORKER_BARRIER = None

#: Live-object registries backing the leak assertions of the soak tests.
_LIVE_POOLS: "weakref.WeakSet[SharedShardPool]" = weakref.WeakSet()
_LIVE_EXECUTORS: "weakref.WeakSet[ShardExecutor]" = weakref.WeakSet()


def live_pool_count() -> int:
    """Number of :class:`SharedShardPool` instances not yet closed."""
    return sum(1 for pool in _LIVE_POOLS if not pool.closed)


def live_executor_count() -> int:
    """Number of :class:`ShardExecutor` instances not yet closed."""
    return sum(1 for executor in _LIVE_EXECUTORS if not executor.closed)


def shutdown_live_pools() -> int:
    """Terminate every live pool and executor; returns how many were closed.

    The emergency teardown path of the CLI's interrupt handler: normal code
    closes its own estimators/pools, but a ``KeyboardInterrupt`` can land
    anywhere — including between an estimator's construction and the
    ``try/finally`` that would release it.  Pools are terminated first
    (idempotent, never blocks on in-flight tasks), after which closing the
    executors is pure bookkeeping: an injected pool that is already closed
    makes ``release`` a no-op instead of a broadcast.
    """
    closed = 0
    for pool in list(_LIVE_POOLS):
        if not pool.closed:
            pool.close()
            closed += 1
    for executor in list(_LIVE_EXECUTORS):
        if not executor.closed:
            executor.close()
            closed += 1
    return closed


class _WorkerState:
    """Everything one worker process needs to evaluate one sampler's blocks."""

    def __init__(self, sampler: WorldSampler, cache_blocks: int) -> None:
        num_nodes = sampler.compiled.num_nodes
        self.sampler = sampler
        self.visited: List[int] = [0] * num_nodes
        self.coupons: List[int] = [0] * num_nodes
        self.stamp = 0
        self.cache = BlockCache(sampler, cache_blocks)
        # Native-kernel resources, resolved lazily on the first kernel-tagged
        # task so workers of a no-kernel engine never pay backend resolution.
        # The kernel path keeps its own numpy-typed buffers and stamp stream;
        # the two streams never touch each other's arrays.
        self._kernel_resolved = False
        self.kernel = None
        self.kernel_visited: Optional[np.ndarray] = None
        self.kernel_queue: Optional[np.ndarray] = None
        self.kernel_coupons: Optional[np.ndarray] = None
        self.kernel_stamp = 0

    def kernel_or_none(self):
        """The worker's native kernel, resolving (and warming) it on first use."""
        if not self._kernel_resolved:
            self._kernel_resolved = True
            kernel = _kernels.load_kernel()
            if kernel is not None:
                kernel.warm()
                num_nodes = self.sampler.compiled.num_nodes
                self.kernel = kernel
                self.kernel_visited = np.zeros(num_nodes, dtype=np.int64)
                self.kernel_queue = np.empty(num_nodes, dtype=np.int32)
                self.kernel_coupons = np.zeros(num_nodes, dtype=np.int64)
        return self.kernel


def _init_worker(barrier) -> None:
    global _WORKER_BARRIER, _WORKER_STATES
    _WORKER_BARRIER = barrier
    _WORKER_STATES = {}


def _install_sampler(args: Tuple[int, WorldSampler, int]) -> int:
    """Store a sampler in this worker; the barrier forces one task per worker."""
    token, sampler, cache_blocks = args
    _WORKER_STATES[token] = _WorkerState(sampler, cache_blocks)
    _WORKER_BARRIER.wait(timeout=_BARRIER_TIMEOUT)
    return token


def _uninstall_sampler(token: int) -> int:
    _WORKER_STATES.pop(token, None)
    _WORKER_BARRIER.wait(timeout=_BARRIER_TIMEOUT)
    return token


def evaluate_block_in_state(
    state: _WorkerState, task: Task
) -> Tuple[int, np.ndarray]:
    """Evaluate one shard block against a worker state.

    Returns ``(block_index, activation_counts)``.  This is the single
    evaluation routine shared by the real pool workers and the in-process
    fake pools the property tests inject, so the two paths cannot drift.
    Tasks tagged ``use_kernel`` run the block on the worker's native cascade
    kernel; a worker that cannot resolve a backend falls back to the
    interpreted loop — the per-block counts are bit-identical either way.
    """
    _, block_index, start, count, seed_indices, coupon_items, use_kernel = task
    block = state.cache.block(start, count)
    num_nodes = state.sampler.compiled.num_nodes
    kernel = state.kernel_or_none() if use_kernel else None
    if kernel is not None:
        coupons_arr = state.kernel_coupons
        for position, coupon_count in coupon_items:
            coupons_arr[position] = coupon_count
        # Reserve the block's stamp range up front (mirroring the serial
        # engine): if the kernel raises mid-block, the stamps it already
        # wrote into `visited` must never be reused by a later task.
        stamp = state.kernel_stamp
        state.kernel_stamp = stamp + count
        counts = np.zeros(num_nodes, dtype=np.int64)
        try:
            kernel.cascade_block(
                block.targets, block.offsets,
                np.asarray(seed_indices, dtype=np.int32), coupons_arr,
                state.kernel_visited, stamp, state.kernel_queue, counts,
            )
        finally:
            for position, _ in coupon_items:
                coupons_arr[position] = 0
        return block_index, counts
    coupons = state.coupons
    for position, coupon_count in coupon_items:
        coupons[position] = coupon_count
    # Same up-front stamp-range reservation as above for the interpreted
    # stamp stream.
    stamp = state.stamp
    state.stamp = stamp + count
    try:
        flat_activations, _ = cascade_block(
            block, seed_indices, coupons, state.visited, stamp,
        )
    finally:
        for position, _ in coupon_items:
            coupons[position] = 0
    counts = np.bincount(
        np.asarray(flat_activations, dtype=np.int64),
        minlength=num_nodes,
    )
    return block_index, counts


def _evaluate_block(task: Task) -> Tuple[int, np.ndarray]:
    return evaluate_block_in_state(_WORKER_STATES[task[0]], task)


def _shutdown_pool(pool) -> None:
    pool.terminate()
    pool.join()


class SharedShardPool:
    """A persistent worker pool shared by any number of estimators.

    Parameters
    ----------
    workers:
        Pool size.  Fixed for the pool's lifetime; executors built on an
        injected pool inherit it.
    start_method:
        Optional multiprocessing start method; default prefers ``fork`` on
        Linux and the platform default elsewhere.
    cache_blocks:
        Shard blocks each worker keeps materialised per registered sampler.

    The pool is a context manager; it is also guarded by a
    :func:`weakref.finalize` that terminates the workers when the pool is
    garbage collected or the interpreter exits, so a leaked pool cannot keep
    worker processes alive past program end.
    """

    def __init__(
        self,
        workers: int,
        *,
        start_method: Optional[str] = None,
        cache_blocks: int = _WORKER_CACHE_BLOCKS,
    ) -> None:
        if workers < 1:
            raise EstimationError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.cache_blocks = cache_blocks
        if start_method is None:
            # Prefer the cheap fork start-up only on Linux: macOS offers
            # fork too, but forking after ObjC-framework initialisation is
            # unsafe there (the reason CPython switched its default to
            # spawn), so everywhere else the platform default stands.
            start_method = "fork" if sys.platform == "linux" else None
        context = multiprocessing.get_context(start_method)
        self._barrier = context.Barrier(self.workers)
        self._pool = context.Pool(
            self.workers, initializer=_init_worker, initargs=(self._barrier,)
        )
        # token -> sampler: the strong reference keeps id() keys stable.
        self._samplers: Dict[int, WorldSampler] = {}
        self._token_by_id: Dict[int, int] = {}
        self._next_token = 0
        #: Broadcast instrumentation (benchmarks read these): pickled bytes
        #: of the most recent register() payload, the cumulative bytes
        #: shipped over the pipe (payload × workers, summed over registers),
        #: and the wall time of the most recent barrier broadcast.
        self.last_broadcast_bytes = 0
        self.broadcast_bytes_total = 0
        self.last_broadcast_seconds = 0.0
        self.broadcast_seconds_total = 0.0
        self._finalizer = weakref.finalize(self, _shutdown_pool, self._pool)
        _LIVE_POOLS.add(self)

    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether the pool has been shut down."""
        return not self._finalizer.alive

    def register(self, sampler: WorldSampler) -> int:
        """Ship ``sampler`` to every worker once; returns its task token.

        Registering the same sampler object again is a cheap no-op returning
        the existing token.  The broadcast submits exactly ``workers`` tasks
        (``chunksize=1``) whose handler blocks on a barrier until all of them
        have started, which forces one task onto each worker — the only way
        to address every worker of a :class:`multiprocessing.pool.Pool`.
        """
        self._require_open()
        token = self._token_by_id.get(id(sampler))
        if token is not None:
            return token
        token = self._next_token
        self._next_token += 1
        # Measure what one worker receives: with a shared-memory graph the
        # payload is a segment descriptor (hundreds of bytes); with a
        # private graph it is the whole CSR.  The extra dump costs one
        # serialization per register — once per estimator, not per task.
        payload = (token, sampler, self.cache_blocks)
        self.last_broadcast_bytes = len(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        )
        self.broadcast_bytes_total += self.last_broadcast_bytes * self.workers
        began = time.perf_counter()
        self._pool.map(
            _install_sampler,
            [payload] * self.workers,
            chunksize=1,
        )
        self.last_broadcast_seconds = time.perf_counter() - began
        self.broadcast_seconds_total += self.last_broadcast_seconds
        self._samplers[token] = sampler
        self._token_by_id[id(sampler)] = token
        return token

    def release(self, token: int) -> None:
        """Drop a registered sampler from every worker (frees its block LRU)."""
        if self.closed:
            return
        sampler = self._samplers.pop(token, None)
        if sampler is None:
            return
        self._token_by_id.pop(id(sampler), None)
        self._pool.map(_uninstall_sampler, [token] * self.workers, chunksize=1)

    def imap_unordered(
        self, tasks: Iterable[Task]
    ) -> Iterator[Tuple[int, np.ndarray]]:
        """Dispatch evaluation tasks; yields ``(block_index, counts)`` as done."""
        self._require_open()
        return self._pool.imap_unordered(_evaluate_block, tasks, chunksize=1)

    def close(self) -> None:
        """Terminate the workers; idempotent."""
        self._finalizer()

    def _require_open(self) -> None:
        if self.closed:
            raise EstimationError("SharedShardPool is closed")

    def __enter__(self) -> "SharedShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PendingCounts:
    """Handle to one in-flight evaluation's streaming reduction.

    Results are folded into the running total **in block order**: a block
    completing early is buffered until every earlier block has been folded.
    ``wait_seconds`` accumulates the time the parent spent blocked waiting
    for the next completion — the parent's idle time, which pipelining
    several pending evaluations is designed to fill.
    """

    __slots__ = (
        "_iterator", "_remaining", "_buffer", "_next_block", "_counts",
        "_owner", "_reported", "wait_seconds",
    )

    def __init__(
        self,
        iterator: Iterator[Tuple[int, np.ndarray]],
        num_blocks: int,
        num_nodes: int,
        owner: Optional["ShardExecutor"] = None,
    ) -> None:
        self._iterator = iterator
        self._remaining = num_blocks
        self._buffer: Dict[int, np.ndarray] = {}
        self._next_block = 0
        self._counts = np.zeros(num_nodes, dtype=np.int64)
        self._owner = owner
        self._reported = False
        self.wait_seconds = 0.0

    @property
    def done(self) -> bool:
        """Whether every block has been received and folded."""
        return self._remaining == 0

    def result(self) -> np.ndarray:
        """Drain the remaining blocks and return the total count vector."""
        buffer = self._buffer
        while self._remaining:
            began = time.perf_counter()
            try:
                block_index, block_counts = next(self._iterator)
            except StopIteration:
                # The pool was torn down (owner close / finalizer) with this
                # evaluation still in flight; surface the module's error
                # contract instead of a bare StopIteration → RuntimeError.
                raise EstimationError(
                    f"worker pool closed with {self._remaining} shard "
                    f"block(s) outstanding"
                ) from None
            self.wait_seconds += time.perf_counter() - began
            self._remaining -= 1
            buffer[block_index] = block_counts
            while self._next_block in buffer:
                self._counts += buffer.pop(self._next_block)
                self._next_block += 1
        if self._buffer:
            raise EstimationError(
                f"shard reduction is missing blocks before "
                f"{min(self._buffer)} (got {sorted(self._buffer)})"
            )
        if self._owner is not None and not self._reported:
            self._reported = True
            self._owner.completed += 1
            self._owner.wait_seconds_total += self.wait_seconds
        return self._counts


class ShardExecutor:
    """One sampler's evaluation front-end onto a (shared or owned) pool.

    Built lazily by :class:`~repro.diffusion.engine.CompiledCascadeEngine` on
    the first parallel run.  With ``pool=None`` the executor creates a
    :class:`SharedShardPool` of its own and :meth:`close` tears it down; with
    an injected pool the executor only registers its sampler and :meth:`close`
    merely unregisters it — **an executor never closes a pool it does not
    own**.
    """

    def __init__(
        self,
        sampler: WorldSampler,
        *,
        num_worlds: int,
        shard_size: int,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        cache_blocks: int = _WORKER_CACHE_BLOCKS,
        pool: Optional[SharedShardPool] = None,
        use_kernel: bool = False,
    ) -> None:
        #: Whether this executor's tasks ask workers for the native kernel.
        #: Per-task (not per-pool) so estimators with different settings can
        #: share one pool; a worker without a resolvable backend falls back
        #: to the interpreted loop with identical counts.
        self.use_kernel = bool(use_kernel)
        self._blocks: List[Tuple[int, int]] = [
            (start, min(shard_size, num_worlds - start))
            for start in range(0, num_worlds, shard_size)
        ]
        if pool is None:
            if workers is None:
                raise EstimationError("either workers or pool is required")
            pool = SharedShardPool(
                min(int(workers), len(self._blocks)),
                start_method=start_method,
                cache_blocks=cache_blocks,
            )
            self._owns_pool = True
        else:
            self._owns_pool = False
        self.pool = pool
        self.workers = pool.workers
        self.num_nodes = sampler.compiled.num_nodes
        self._token = pool.register(sampler)
        self._closed = False
        #: Completed evaluations and the parent's cumulative blocked time,
        #: reported by the PendingCounts handles (benchmark instrumentation).
        self.completed = 0
        self.wait_seconds_total = 0.0
        _LIVE_EXECUTORS.add(self)

    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def submit(
        self, seed_indices: List[int], coupon_items: List[Tuple[int, int]]
    ) -> PendingCounts:
        """Dispatch one evaluation; returns its streaming-reduction handle.

        Several submissions may be pending at once: their tasks interleave on
        the pool and each handle drains only its own results, so a caller can
        pipeline a batch by submitting all of it before draining in
        submission order.
        """
        if self._closed:
            raise EstimationError("ShardExecutor is closed")
        tasks: List[Task] = [
            (
                self._token, block_index, start, count,
                seed_indices, coupon_items, self.use_kernel,
            )
            for block_index, (start, count) in enumerate(self._blocks)
        ]
        iterator = self.pool.imap_unordered(tasks)
        return PendingCounts(iterator, len(tasks), self.num_nodes, owner=self)

    def run_counts(
        self, seed_indices: List[int], coupon_items: List[Tuple[int, int]]
    ) -> np.ndarray:
        """Activation counts over every world, reduced in block order."""
        return self.submit(seed_indices, coupon_items).result()

    def close(self) -> None:
        """Release the executor: owned pools shut down, injected pools stay."""
        if self._closed:
            return
        self._closed = True
        if self._owns_pool:
            self.pool.close()
        else:
            self.pool.release(self._token)

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
