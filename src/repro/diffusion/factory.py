"""Estimator factory: one construction point for every benefit estimator.

The algorithms (S3CA, the baselines, the experiment runner, the CLI) never
instantiate estimator classes directly; they ask :func:`make_estimator` for
one by method name.  This keeps backend selection in one place, lets a single
``--estimator`` flag reach every layer, and means new backends (sharded world
sampling, multiprocess estimation, ...) only need to be registered here.

>>> from repro.experiments.datasets import toy_scenario
>>> estimator = make_estimator(toy_scenario(), "mc-compiled", num_samples=50, seed=7)
>>> estimator.backend
'compiled'
"""

from __future__ import annotations

from typing import Optional, Union

from repro.diffusion.estimator import BenefitEstimator
from repro.diffusion.exact import ExactEstimator
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.diffusion.rr_sets import RRBenefitEstimator
from repro.diffusion.tiered import (
    DEFAULT_TIER_EPSILON,
    DEFAULT_TIER_TOP_K,
    TieredEstimator,
)
from repro.exceptions import EstimationError
from repro.graph.social_graph import SocialGraph
from repro.utils.rng import SeedLike

#: Method names accepted by :func:`make_estimator`.
ESTIMATOR_METHODS = ("mc-compiled", "mc", "exact", "rr", "tiered")

DEFAULT_ESTIMATOR_METHOD = "mc-compiled"


def make_estimator(
    scenario_or_graph: Union["SocialGraph", object],
    method: str = DEFAULT_ESTIMATOR_METHOD,
    *,
    num_samples: int = 200,
    seed: SeedLike = None,
    cache_size: int = 50_000,
    max_exact_edges: int = 20,
    num_rr_sets: Optional[int] = None,
    incremental: bool = True,
    shard_size: Optional[int] = None,
    workers: Optional[int] = None,
    pool=None,
    pipeline_depth: Optional[int] = None,
    use_kernel: Optional[bool] = None,
    shared_memory: Optional[bool] = None,
    tier_epsilon: float = DEFAULT_TIER_EPSILON,
    tier_top_k: int = DEFAULT_TIER_TOP_K,
    tiering: bool = True,
) -> BenefitEstimator:
    """Build a :class:`BenefitEstimator` for a scenario (or bare graph).

    Parameters
    ----------
    scenario_or_graph:
        A :class:`~repro.economics.scenario.Scenario` or the
        :class:`SocialGraph` itself.
    method:
        ``"mc-compiled"`` — Monte-Carlo on the compiled CSR backend (default);
        ``"mc"`` — Monte-Carlo on the dict-adjacency reference backend;
        ``"exact"`` — exhaustive world enumeration (tiny graphs only);
        ``"rr"`` — reverse-reachable sets (plain-IC / unlimited-coupon regime
        only; ignores the allocation);
        ``"tiered"`` — two-tier estimation: an RR-sketch screening pass over
        every ``submit_many`` batch with only the frontier dispatched to a
        resident compiled Monte-Carlo tier (see
        :class:`~repro.diffusion.tiered.TieredEstimator`).
    num_samples / seed / cache_size:
        Monte-Carlo knobs; ``seed`` also drives the RR sampler.
    max_exact_edges:
        Edge cap forwarded to :class:`ExactEstimator`.
    num_rr_sets:
        RR-set count; defaults to ``max(2000, 25 * num_nodes)`` so every node
        gets a usable number of rooted samples.
    incremental:
        Attach the delta-evaluation engine to the compiled Monte-Carlo
        backend (default on; ignored by the other methods).  See
        :mod:`repro.diffusion.delta`.
    shard_size / workers:
        Sharded world sampling and the multiprocess shard executor of the
        compiled Monte-Carlo backend (ignored by the other methods).  Both
        preserve bit-identical estimates; see
        :mod:`repro.diffusion.parallel`.
    pool:
        Optional :class:`~repro.diffusion.parallel.SharedShardPool` shared
        across estimators (compiled Monte-Carlo backend only).  The estimator
        registers its worlds on the injected pool instead of creating its
        own, and never closes it — the pool's owner does.  ``workers`` is
        ignored when a pool is given (the pool's width wins).
    pipeline_depth:
        In-flight bound of the batched evaluation scheduler
        (:meth:`~repro.diffusion.monte_carlo.MonteCarloEstimator.submit_many`);
        ``None`` derives ``max(2, 2 * workers)``.  Bit-identical results for
        any value (compiled Monte-Carlo backend only).
    use_kernel:
        Native cascade kernel dispatch (:mod:`repro.diffusion.kernels`):
        ``None`` auto-detects with silent interpreted fallback, ``True``
        warns on fallback, ``False`` forces the interpreted oracle.
        Bit-identical estimates either way (compiled Monte-Carlo backend
        only).
    shared_memory:
        Zero-copy shared-memory transport of the compiled graph and the
        materialised world blocks (:mod:`repro.utils.shm`): ``None`` enables
        it exactly when worlds execute out-of-process (``pool`` or
        ``workers > 1``), ``True`` forces it (warning + by-value fallback
        when unavailable), ``False`` forces private copies.  Bit-identical
        estimates for every setting (compiled Monte-Carlo backend only).
    tier_epsilon / tier_top_k / tiering:
        Screening knobs of the ``"tiered"`` method (ignored by the others):
        the top ``tier_top_k`` sketch scores of a batch plus everything
        within a relative ``tier_epsilon`` band below the k-th are
        MC-confirmed; ``tiering=False`` disables screening (cross-check
        mode) while keeping the wrapper's counters.
    """
    graph = getattr(scenario_or_graph, "graph", scenario_or_graph)
    if not isinstance(graph, SocialGraph):
        raise EstimationError(
            f"expected a Scenario or SocialGraph, got {type(scenario_or_graph)!r}"
        )
    if method == "mc-compiled":
        return MonteCarloEstimator(
            graph,
            num_samples=num_samples,
            seed=seed,
            cache_size=cache_size,
            backend="compiled",
            incremental=incremental,
            shard_size=shard_size,
            workers=workers,
            pool=pool,
            pipeline_depth=pipeline_depth,
            use_kernel=use_kernel,
            shared_memory=shared_memory,
        )
    if method == "mc":
        return MonteCarloEstimator(
            graph,
            num_samples=num_samples,
            seed=seed,
            cache_size=cache_size,
            backend="dict",
        )
    if method == "exact":
        return ExactEstimator(graph, max_edges=max_exact_edges)
    if method == "rr":
        num_sets = num_rr_sets or max(2000, 25 * graph.num_nodes)
        return RRBenefitEstimator(graph, num_sets=num_sets, seed=seed)
    if method == "tiered":
        mc = MonteCarloEstimator(
            graph,
            num_samples=num_samples,
            seed=seed,
            cache_size=cache_size,
            backend="compiled",
            incremental=incremental,
            shard_size=shard_size,
            workers=workers,
            pool=pool,
            pipeline_depth=pipeline_depth,
            use_kernel=use_kernel,
            shared_memory=shared_memory,
        )
        num_sets = num_rr_sets or max(2000, 25 * graph.num_nodes)
        sketch = RRBenefitEstimator(graph, num_sets=num_sets, seed=seed)
        return TieredEstimator(
            mc,
            sketch,
            tier_epsilon=tier_epsilon,
            tier_top_k=tier_top_k,
            tiering=tiering,
        )
    raise EstimationError(
        f"unknown estimator method {method!r}; expected one of {ESTIMATOR_METHODS}"
    )
