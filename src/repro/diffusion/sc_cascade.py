"""The SC-constrained independent cascade model (Sec. III of the paper).

The propagation starts from the seed set.  Every activated user ``u`` holding
``k_u`` social coupons attempts to activate her out-neighbours **in decreasing
order of influence probability** — the order in which, per the paper, a user
would hand coupons to the friends most likely to redeem them.  An attempt on a
not-yet-active neighbour ``v`` succeeds with probability ``P(e(u, v))``; on
success ``v`` is activated, redeems one of ``u``'s coupons, and will later make
its own attempts.  Once ``k_u`` coupons have been redeemed, ``u`` stops
attempting (the remaining, lower-probability neighbours can then only be
reached through other users — the paper's *dependent edges*).  Attempts on
already-active neighbours neither activate nor consume a coupon, because an
active user never redeems a second coupon.

Seeds themselves are activated directly (they are "bought" with the seed cost)
and only spread further if they are also allocated coupons.

:func:`simulate_sc_cascade` runs one stochastic realisation; the Monte-Carlo
estimator in :mod:`repro.diffusion.monte_carlo` averages many of them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro.exceptions import AllocationError
from repro.graph.social_graph import SocialGraph
from repro.utils.rng import SeedLike, spawn_rng

NodeId = Hashable


@dataclass
class CascadeResult:
    """Outcome of a single cascade realisation.

    Attributes
    ----------
    activated:
        Every user active at the end of the process (seeds included).
    redemptions:
        Edges ``(u, v)`` along which a coupon was actually redeemed, in
        activation order.
    coupons_used:
        Per-user count of coupons redeemed by her friends.
    """

    activated: Set[NodeId] = field(default_factory=set)
    redemptions: List[Tuple[NodeId, NodeId]] = field(default_factory=list)
    coupons_used: Dict[NodeId, int] = field(default_factory=dict)

    def total_benefit(self, graph: SocialGraph) -> float:
        """Sum of benefits of the activated users."""
        return sum(graph.benefit(node) for node in self.activated)

    def total_sc_cost(self, graph: SocialGraph) -> float:
        """Sum of SC costs of the users that redeemed a coupon."""
        return sum(graph.sc_cost(target) for _, target in self.redemptions)

    @property
    def num_redemptions(self) -> int:
        """Number of coupons redeemed in this realisation."""
        return len(self.redemptions)


def validate_allocation(graph: SocialGraph, allocation: Mapping[NodeId, int]) -> None:
    """Check that an allocation respects the SC-constraint bounds.

    Each entry must be a non-negative integer not exceeding the user's number
    of friends (out-degree), and every allocated user must exist in the graph.
    """
    for node, coupons in allocation.items():
        if node not in graph:
            raise AllocationError(f"allocated node {node!r} is not in the graph")
        if not isinstance(coupons, (int, np.integer)) or isinstance(coupons, bool):
            raise AllocationError(
                f"allocation for {node!r} must be an integer, got {coupons!r}"
            )
        if coupons < 0:
            raise AllocationError(f"allocation for {node!r} is negative: {coupons}")
        if coupons > graph.out_degree(node):
            raise AllocationError(
                f"allocation for {node!r} ({coupons}) exceeds its out-degree "
                f"({graph.out_degree(node)})"
            )


def simulate_sc_cascade(
    graph: SocialGraph,
    seeds: Iterable[NodeId],
    allocation: Mapping[NodeId, int],
    rng: SeedLike = None,
    *,
    validate: bool = True,
    edge_outcomes: Optional[Mapping[Tuple[NodeId, NodeId], bool]] = None,
) -> CascadeResult:
    """Run one realisation of the SC-constrained cascade.

    Parameters
    ----------
    graph:
        The social graph.
    seeds:
        Users activated directly at time zero.
    allocation:
        Mapping ``user -> number of coupons`` (users absent from the mapping
        hold zero coupons and therefore never spread influence).
    rng:
        Seed or generator for the activation coin flips.  Ignored when
        ``edge_outcomes`` is given.
    validate:
        Whether to check the allocation against the SC-constraint bounds.
    edge_outcomes:
        Optional pre-drawn coin flips per edge (a live-edge world).  When
        provided the simulation is deterministic, which is how the Monte-Carlo
        estimator shares worlds across deployments (common random numbers).

    Returns
    -------
    CascadeResult
        The activated set, redemption edges and per-user coupon usage.
    """
    if validate:
        validate_allocation(graph, allocation)
    generator = spawn_rng(rng)

    activated: Set[NodeId] = set()
    queue: deque = deque()
    for seed in seeds:
        if seed in graph and seed not in activated:
            activated.add(seed)
            queue.append(seed)

    result = CascadeResult(activated=activated)

    while queue:
        user = queue.popleft()
        coupons = int(allocation.get(user, 0))
        if coupons <= 0:
            continue
        redeemed = 0
        for neighbor, probability in graph.ranked_out_neighbors(user):
            if redeemed >= coupons:
                break
            if neighbor in activated:
                continue
            if edge_outcomes is not None:
                success = bool(edge_outcomes.get((user, neighbor), False))
            else:
                success = generator.random() < probability
            if success:
                activated.add(neighbor)
                queue.append(neighbor)
                result.redemptions.append((user, neighbor))
                result.coupons_used[user] = result.coupons_used.get(user, 0) + 1
                redeemed += 1
    return result


def reachable_with_coupons(
    graph: SocialGraph,
    seeds: Iterable[NodeId],
    allocation: Mapping[NodeId, int],
) -> Set[NodeId]:
    """Users with a non-zero probability of activation under the deployment.

    This is the optimistic closure: a user is possibly influenced if there is a
    directed path from a seed in which every intermediate node holds at least
    one coupon and every traversed edge ranks within the holder's coupon reach
    (i.e. the edge could be among the first ``k`` successes).  Because any
    higher-ranked neighbour can fail, every edge of a coupon holder is
    potentially redeemable, so the closure simply follows out-edges of
    coupon-holding activated-candidates.
    """
    reachable: Set[NodeId] = set()
    frontier = deque()
    for seed in seeds:
        if seed in graph and seed not in reachable:
            reachable.add(seed)
            frontier.append(seed)
    while frontier:
        user = frontier.popleft()
        if int(allocation.get(user, 0)) <= 0:
            continue
        for neighbor, _ in graph.ranked_out_neighbors(user):
            if neighbor not in reachable:
                reachable.add(neighbor)
                frontier.append(neighbor)
    return reachable
