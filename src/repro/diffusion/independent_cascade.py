"""Plain independent cascade (IC) model.

The IC model of Kempe et al. is the special case of the SC-constrained cascade
in which every user may refer all of her friends (the unlimited coupon
strategy), so this module simply delegates to
:func:`repro.diffusion.sc_cascade.simulate_sc_cascade` with a saturated
allocation.  It exists as a separate entry point because the IM and PM
baselines reason purely in IC terms.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Optional, Set, Tuple

from repro.diffusion.sc_cascade import CascadeResult, simulate_sc_cascade
from repro.graph.social_graph import SocialGraph
from repro.utils.rng import SeedLike

NodeId = Hashable


def saturated_allocation(graph: SocialGraph) -> dict:
    """Allocation giving every user as many coupons as she has friends."""
    return {node: graph.out_degree(node) for node in graph.nodes()}


def simulate_independent_cascade(
    graph: SocialGraph,
    seeds: Iterable[NodeId],
    rng: SeedLike = None,
    *,
    edge_outcomes: Optional[Mapping[Tuple[NodeId, NodeId], bool]] = None,
) -> CascadeResult:
    """Run one realisation of the plain IC model starting from ``seeds``."""
    allocation = saturated_allocation(graph)
    return simulate_sc_cascade(
        graph,
        seeds,
        allocation,
        rng,
        validate=False,
        edge_outcomes=edge_outcomes,
    )


def expected_spread_monte_carlo(
    graph: SocialGraph,
    seeds: Iterable[NodeId],
    samples: int,
    rng: SeedLike = None,
) -> float:
    """Monte-Carlo estimate of the expected number of activated users (IC).

    A thin convenience wrapper used by the IM baseline's unit tests; the
    heavier lifting (caching, common random numbers, benefit weighting) lives
    in :class:`repro.diffusion.monte_carlo.MonteCarloEstimator`.
    """
    from repro.utils.rng import spawn_rng

    generator = spawn_rng(rng)
    seeds = list(seeds)
    total = 0
    for _ in range(samples):
        result = simulate_independent_cascade(graph, seeds, generator)
        total += len(result.activated)
    return total / samples if samples else 0.0


def activated_union(
    graph: SocialGraph,
    seeds: Iterable[NodeId],
    samples: int,
    rng: SeedLike = None,
) -> Set[NodeId]:
    """Union of activated sets over ``samples`` IC realisations.

    Useful for quickly identifying which users are plausibly reachable from a
    seed set without computing exact probabilities.
    """
    from repro.utils.rng import spawn_rng

    generator = spawn_rng(rng)
    seeds = list(seeds)
    union: Set[NodeId] = set()
    for _ in range(samples):
        union |= simulate_independent_cascade(graph, seeds, generator).activated
    return union
