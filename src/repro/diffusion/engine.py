"""Vectorized SC-constrained cascade engine over a compiled CSR graph.

:class:`CompiledCascadeEngine` is the fast replacement for the dict-based
:func:`~repro.diffusion.live_edge.sample_worlds` +
:func:`~repro.diffusion.live_edge.cascade_in_world` pair.  It draws *all*
live-edge coin flips as flat numpy masks up front and pre-resolves, for every
world, the **live adjacency**: each node's live out-edges in coupon hand-off
order.  The SC-constrained cascade then never touches a dead edge — under the
weighted-cascade setting (``P(e) = 1/in_degree``) that prunes the per-node walk
from ``out_degree`` attempts down to roughly one — and runs on flat integer
arrays instead of per-node dict lookups and per-edge tuple hashing.

Common-random-numbers parity
----------------------------
The engine reproduces the dict path *exactly* for a fixed seed:

* coin flips are drawn per world in ``graph.edges()`` enumeration order — the
  same stream consumption as ``sample_worlds`` — and an edge is live iff
  ``draw < probability``, so world ``w`` here is bit-for-bit world ``w`` there;
* the cascade processes a FIFO queue seeded in caller order and walks each
  holder's live out-edges in ranked order, redeeming on not-yet-active
  targets until the coupons run out.  Dead-edge visits in the dict path are
  no-ops (they neither activate nor consume a coupon), so skipping them leaves
  the activated set, the redemption order, and therefore every activation
  count identical.

Expected-benefit totals can differ from the dict path in the last few ulps
only, because the dict path sums per-world benefits in Python-set iteration
order while the engine accumulates in activation order.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Tuple

import numpy as np

from repro.exceptions import EstimationError
from repro.graph.csr import CompiledGraph
from repro.graph.social_graph import SocialGraph
from repro.utils.rng import SeedLike, spawn_rng

NodeId = Hashable


class CompiledCascadeEngine:
    """Shared live-edge worlds and the vectorized cascade over them.

    Parameters
    ----------
    compiled:
        The :class:`CompiledGraph` to run on (or a :class:`SocialGraph`,
        which is compiled on the fly).
    num_worlds:
        Number of live-edge worlds drawn once at construction and shared by
        every evaluation (common random numbers).
    seed:
        RNG seed; the same seed reproduces the dict path's worlds exactly.
    """

    def __init__(
        self,
        compiled: "CompiledGraph | SocialGraph",
        num_worlds: int,
        seed: SeedLike = None,
    ) -> None:
        if num_worlds <= 0:
            raise EstimationError(f"num_worlds must be > 0, got {num_worlds}")
        if isinstance(compiled, SocialGraph):
            compiled = CompiledGraph.from_social_graph(compiled)
        self.compiled = compiled
        self.num_worlds = int(num_worlds)

        generator = spawn_rng(seed)
        num_edges = compiled.num_edges
        num_nodes = compiled.num_nodes
        indptr = compiled.indptr
        edge_pos = compiled.edge_pos
        probs = compiled.probs

        # Per-world live adjacency: the live out-edges of every node, in
        # hand-off order, as plain int lists (Python-int access in the cascade
        # inner loop is several times faster than per-element numpy reads).
        self._world_targets: List[List[int]] = []
        self._world_offsets: List[List[int]] = []
        for _ in range(self.num_worlds):
            draws = generator.random(num_edges)  # graph.edges() order
            live_slots = np.flatnonzero(draws[edge_pos] < probs)
            self._world_targets.append(compiled.indices[live_slots].tolist())
            self._world_offsets.append(
                np.searchsorted(live_slots, indptr).tolist()
            )

        # Stamp-versioned visited array shared across cascades: bumping the
        # stamp resets it in O(1) instead of reallocating per world.
        self._visited: List[int] = [0] * num_nodes
        self._stamp = 0
        # Dense coupon buffer reused across evaluations (reset after each).
        self._coupons: List[int] = [0] * num_nodes

    # ------------------------------------------------------------------
    # low-level cascade
    # ------------------------------------------------------------------

    def cascade_world(
        self, world_index: int, seed_indices: List[int], coupons: List[int]
    ) -> List[int]:
        """Deterministic cascade in one world; returns activated node indices.

        ``seed_indices`` must be deduplicated compiled indices in caller
        order; ``coupons`` is a dense per-node coupon vector.  The returned
        list is in activation (FIFO) order, seeds first.
        """
        return self.cascade_world_instrumented(world_index, seed_indices, coupons)[0]

    def cascade_world_instrumented(
        self, world_index: int, seed_indices: List[int], coupons: List[int]
    ) -> Tuple[List[int], List[int]]:
        """Cascade in one world, also reporting coupon-limited holders.

        Returns ``(queue, limited)`` where ``queue`` is exactly what
        :meth:`cascade_world` returns and ``limited`` lists (in dequeue
        order) every activated node whose coupon supply was — conservatively
        — the binding constraint of its hand-out walk: either it was dequeued
        with no coupons while holding live out-edges, or its walk broke on
        coupon exhaustion before reaching the end of its live edge list.
        Giving any such node one more coupon is the *only* way a single-node
        coupon increment can change this world's outcome, which is what the
        delta-evaluation engine (:mod:`repro.diffusion.delta`) keys on.
        """
        self._stamp += 1
        stamp = self._stamp
        visited = self._visited
        targets = self._world_targets[world_index]
        offsets = self._world_offsets[world_index]

        queue: List[int] = []
        limited: List[int] = []
        for seed in seed_indices:
            visited[seed] = stamp
            queue.append(seed)

        head = 0
        while head < len(queue):
            user = queue[head]
            head += 1
            remaining = coupons[user]
            low = offsets[user]
            high = offsets[user + 1]
            if remaining <= 0:
                if low < high:
                    limited.append(user)
                continue
            if low == high:
                continue
            for position in range(low, high):
                neighbor = targets[position]
                if visited[neighbor] == stamp:
                    continue
                visited[neighbor] = stamp
                queue.append(neighbor)
                remaining -= 1
                if remaining <= 0:
                    if position < high - 1:
                        limited.append(user)
                    break
        return queue, limited

    # ------------------------------------------------------------------
    # estimator-facing API
    # ------------------------------------------------------------------

    def run(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> Tuple[np.ndarray, float]:
        """One pass over every world.

        Returns ``(activation_counts, expected_benefit)`` where
        ``activation_counts[i]`` is the number of worlds in which compiled
        node ``i`` ended up activated.  Both quantities come out of the same
        pass, so callers needing benefit *and* probabilities pay for one.

        Seed *order* is canonicalised (sorted by ``str``) before the cascade:
        the queue order is seed-order dependent, and every consumer — the
        estimator's order-insensitive memoisation, the delta engine's
        snapshot matching — treats deployments with equal seed sets as equal.
        Use :meth:`cascade_world` directly for explicit-order experiments.
        """
        compiled = self.compiled
        num_nodes = compiled.num_nodes
        seed_indices = compiled.indices_of(sorted(seeds, key=str))
        if not seed_indices:
            return np.zeros(num_nodes, dtype=np.int64), 0.0

        index = compiled.index
        coupons = self._coupons
        touched: List[int] = []
        for node, count in allocation.items():
            position = index.get(node)
            if position is not None and int(count) > 0:
                coupons[position] = int(count)
                touched.append(position)

        # The per-world cascade is inlined here (rather than calling
        # :meth:`cascade_world`) because this loop runs once per world per
        # greedy evaluation and locals-only access is measurably faster.
        visited = self._visited
        stamp = self._stamp
        # Reserve the whole stamp range up front: if the loop is interrupted
        # (e.g. KeyboardInterrupt), a later run() must not reuse stamp values
        # already written into `visited`, or it would see phantom activations.
        self._stamp = stamp + self.num_worlds
        world_targets = self._world_targets
        world_offsets = self._world_offsets
        flat_activations: List[int] = []
        extend = flat_activations.extend
        try:
            for world_index in range(self.num_worlds):
                targets = world_targets[world_index]
                offsets = world_offsets[world_index]
                stamp += 1
                queue = list(seed_indices)
                for seed in queue:
                    visited[seed] = stamp
                head = 0
                while head < len(queue):
                    user = queue[head]
                    head += 1
                    remaining = coupons[user]
                    if remaining <= 0:
                        continue
                    low = offsets[user]
                    high = offsets[user + 1]
                    if low == high:
                        continue
                    for neighbor in targets[low:high]:
                        if visited[neighbor] == stamp:
                            continue
                        visited[neighbor] = stamp
                        queue.append(neighbor)
                        remaining -= 1
                        if remaining <= 0:
                            break
                extend(queue)
        finally:
            # Always restore the coupon buffer, even on interruption.
            for position in touched:
                coupons[position] = 0

        counts = np.bincount(
            np.asarray(flat_activations, dtype=np.int64), minlength=num_nodes
        )
        benefit = float(counts @ self.compiled.benefits) / self.num_worlds
        return counts, benefit

    def expected_benefit(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> float:
        """Expected total benefit of activated users under the deployment."""
        _, benefit = self.run(seeds, allocation)
        return benefit

    def activation_probabilities(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> Dict[NodeId, float]:
        """Per-user activation probability (only users ever activated appear)."""
        counts, _ = self.run(seeds, allocation)
        node_ids = self.compiled.node_ids
        num_worlds = self.num_worlds
        return {
            node_ids[node_index]: int(count) / num_worlds
            for node_index, count in enumerate(counts)
            if count
        }
