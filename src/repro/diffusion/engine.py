"""Vectorized SC-constrained cascade engine over a compiled CSR graph.

:class:`CompiledCascadeEngine` is the fast replacement for the dict-based
:func:`~repro.diffusion.live_edge.sample_worlds` +
:func:`~repro.diffusion.live_edge.cascade_in_world` pair.  It draws live-edge
coin flips as flat numpy masks and pre-resolves, for every world, the **live
adjacency**: each node's live out-edges in coupon hand-off order.  The
SC-constrained cascade then never touches a dead edge — under the
weighted-cascade setting (``P(e) = 1/in_degree``) that prunes the per-node walk
from ``out_degree`` attempts down to roughly one — and runs on flat integer
arrays instead of per-node dict lookups and per-edge tuple hashing.

Sharded world sampling
----------------------
Worlds are produced by a :class:`WorldSampler`, which freezes the RNG state at
construction and can recreate *any* contiguous block of worlds from scratch by
skipping the bit stream forward (``bit_generator.advance`` where available,
chunked draw-and-discard otherwise).  With the default ``shard_size=None`` the
engine keeps every world resident, exactly as before.  With a ``shard_size``
the engine materialises worlds in fixed-size blocks — build, evaluate, discard
— holding at most a couple of blocks at a time, which bounds peak memory to
O(shard_size × live edges) instead of O(num_worlds × live edges).  Because
each block is regenerated from the same frozen state at the same stream
offset, the worlds — and therefore every activation count and expected
benefit — are **bit-identical** for any shard size, and for any worker count
(see :mod:`repro.diffusion.parallel`).

Common-random-numbers parity
----------------------------
The engine reproduces the dict path *exactly* for a fixed seed:

* coin flips are drawn per world in ``graph.edges()`` enumeration order — the
  same stream consumption as ``sample_worlds`` — and an edge is live iff
  ``draw < probability``, so world ``w`` here is bit-for-bit world ``w`` there;
* the cascade processes a FIFO queue seeded in caller order and walks each
  holder's live out-edges in ranked order, redeeming on not-yet-active
  targets until the coupons run out.  Dead-edge visits in the dict path are
  no-ops (they neither activate nor consume a coupon), so skipping them leaves
  the activated set, the redemption order, and therefore every activation
  count identical.

Expected-benefit totals can differ from the dict path in the last few ulps
only, because the dict path sums per-world benefits in Python-set iteration
order while the engine accumulates in activation order.
"""

from __future__ import annotations

import copy
import hashlib
import pickle
import warnings
import weakref
from collections import OrderedDict
from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.diffusion import kernels as _kernels
from repro.exceptions import EstimationError
from repro.graph.csr import CompiledGraph
from repro.graph.social_graph import SocialGraph
from repro.utils import shm as _shm
from repro.utils.rng import SeedLike, spawn_rng

NodeId = Hashable

#: One world's live adjacency: (targets, offsets) in coupon hand-off order.
WorldAdjacency = Tuple[List[int], List[int]]

#: How many shard blocks the engine keeps resident at once.  Two covers the
#: common access patterns (a sequential full pass, plus the delta engine
#: revisiting the block it just left) without growing with ``num_worlds``.
_MAX_CACHED_BLOCKS = 2

#: Draw-and-discard chunk for bit generators without ``advance``.
_DISCARD_CHUNK = 65_536


class FlatWorldBlock:
    """A contiguous block of worlds stored as flat contiguous int arrays.

    This is the block representation every path — the serial engine, the
    delta snapshot engine, the multiprocess workers and the native kernels —
    consumes.  No Python lists exist in the hot path:

    ``targets``
        int32 array: the concatenated live-edge targets of every world of
        the block, each world's targets in coupon hand-off order.
    ``offsets``
        int64 array of shape ``(count, num_nodes + 1)``: world ``w``'s live
        out-edges of node ``u`` are ``targets[offsets[w, u]:offsets[w, u+1]]``.
        Offsets are **absolute** indices into the concatenated ``targets``
        (each row is already rebased by its world's boundary), so a cascade
        needs no per-world base arithmetic; ``offsets[w, 0]`` /
        ``offsets[w, -1]`` delimit world ``w``'s slice of ``targets`` — the
        per-world boundary index.
    ``count``
        Number of worlds in the block.

    The interpreted oracle path still runs on Python lists (flat numpy
    scalar indexing is slower than list indexing in pure Python);
    :meth:`lists` materialises — lazily, once per block — the concatenated
    targets list and per-world absolute offset rows it needs, so the
    interpreted loop keeps its historic speed without a second world
    representation being drawn.
    """

    __slots__ = ("targets", "offsets", "count", "_targets_list", "_offsets_rows", "segment")

    def __init__(self, targets: np.ndarray, offsets: np.ndarray, count: int) -> None:
        self.targets = targets
        self.offsets = offsets
        self.count = count
        self._targets_list: Optional[List[int]] = None
        self._offsets_rows: Optional[List[List[int]]] = None
        #: Shared-memory segment backing the arrays, when the block was
        #: attached from (or published to) the machine-wide world store.
        self.segment = None

    def release(self) -> None:
        """Drop the list caches and close a shared mapping, if any.

        Called on LRU eviction so evicted shared blocks do not pin their
        mapping; live array views (a caller still cascading on the block)
        keep the pages valid regardless — closing is best-effort.
        """
        self._targets_list = None
        self._offsets_rows = None
        segment, self.segment = self.segment, None
        if segment is not None:
            _shm.close_segment(segment)

    def lists(self) -> Tuple[List[int], List[List[int]]]:
        """Python-list view ``(targets, offset rows)`` for the interpreted path."""
        if self._targets_list is None:
            self._targets_list = self.targets.tolist()
            self._offsets_rows = self.offsets.tolist()
        return self._targets_list, self._offsets_rows

    def world_local(self, slot: int) -> WorldAdjacency:
        """One world's live adjacency as world-local ``(targets, offsets)`` lists.

        The returned pair is self-contained (offsets rebased to the world's
        own targets slice) and therefore comparable across blocks and shard
        sizes — the representation :meth:`CompiledCascadeEngine.world`
        exposes.
        """
        row = self.offsets[slot]
        base = int(row[0])
        return (
            self.targets[base:int(row[-1])].tolist(),
            (row - base).tolist(),
        )


class WorldSampler:
    """Recreates any block of live-edge worlds from a frozen RNG state.

    The sampler captures the bit-generator state once at construction; a block
    starting at world ``w`` is then drawn by restoring that state, skipping
    ``w × num_edges`` doubles (each live-edge coin flip consumes exactly one
    draw) and flipping the block's coins in ``graph.edges()`` enumeration
    order.  The skip uses ``bit_generator.advance`` when the bit generator
    supports it (PCG64, the ``numpy.random.default_rng`` default, does) and
    falls back to chunked draw-and-discard otherwise — both reproduce the
    sequential stream bit for bit.

    The sampler is picklable (frozen state + the compiled graph), which is
    what lets :mod:`repro.diffusion.parallel` ship it to worker processes
    once and have every worker draw its own shards locally.  When the graph
    is a :class:`~repro.graph.shared.SharedCompiledGraph` the pickle carries
    only its segment descriptor, and when a
    :class:`~repro.diffusion.world_store.SharedBlockStore` is attached,
    :meth:`draw_block` publishes each block to shared memory exactly once
    machine-wide — attachers get bit-identical zero-copy views, and any
    process that cannot attach simply draws privately.

    Layered streams (dynamic graphs)
    --------------------------------
    ``layers`` is a tuple of ``(frozen_state, width)`` pairs partitioning the
    draw-position space: layer ``k`` covers positions ``sum(widths[:k]) ..
    sum(widths[:k]) + width_k - 1``, and world ``w``'s draws at those
    positions are ``width_k`` doubles taken from layer ``k``'s own stream
    advanced ``w × width_k``.  A fresh sampler has a single layer of width
    ``compiled.num_draws`` — bit-identical to the historic flat stream.  When
    the graph evolves through an event batch, :meth:`rekey` appends one new
    layer covering exactly the new edges' draw positions: every surviving
    edge keeps its position inside the old layers and therefore sees the
    *identical* coin flip in every world across graph versions, which is
    what lets snapshot reconciliation (:mod:`repro.diffusion.reconcile`)
    prove most worlds unchanged without re-simulating them.
    """

    __slots__ = ("compiled", "bit_generator_class", "state", "store", "layers")

    def __init__(
        self, compiled: CompiledGraph, seed: SeedLike = None, *, store=None
    ) -> None:
        generator = spawn_rng(seed)
        bit_generator = generator.bit_generator
        self.compiled = compiled
        self.bit_generator_class = type(bit_generator)
        self.state = copy.deepcopy(bit_generator.state)
        self.store = store
        self.layers: Tuple[Tuple[object, int], ...] = (
            (self.state, int(compiled.num_draws)),
        )

    # ------------------------------------------------------------------
    # layered stream plumbing
    # ------------------------------------------------------------------

    def _layer_generator(
        self, state, width: int, world_index: int
    ) -> np.random.Generator:
        """A generator positioned at world ``world_index``'s draws of a layer."""
        bit_generator = self.bit_generator_class()
        bit_generator.state = copy.deepcopy(state)
        generator = np.random.Generator(bit_generator)
        skip = world_index * width
        if skip:
            advance = getattr(bit_generator, "advance", None)
            if advance is not None:
                advance(skip)
            else:
                _discard_draws(generator, skip)
        return generator

    def _layer_state(self, layer_index: int):
        """A frozen state for a fresh, non-overlapping stream layer.

        Derived deterministically from the base state so that every process
        (parent, pool workers, a reconnecting server) rekeys to the *same*
        layer: primarily via ``bit_generator.jumped(layer_index)`` (PCG64 &
        friends — jumps are astronomically far from the base stream), with a
        content-hash fallback for bit generators without ``jumped``.  The
        fallback hashes the pickled base state (never Python's per-process
        randomised ``hash()``), so it is equally stable across processes.
        """
        bit_generator = self.bit_generator_class()
        bit_generator.state = copy.deepcopy(self.state)
        jumped = getattr(bit_generator, "jumped", None)
        if jumped is not None:
            try:
                return copy.deepcopy(jumped(layer_index).state)
            except TypeError:  # pragma: no cover - exotic bit generators
                pass
        payload = pickle.dumps(
            (self.bit_generator_class.__name__, self.state, layer_index),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        entropy = int.from_bytes(hashlib.sha256(payload).digest(), "big")
        seeded = self.bit_generator_class(np.random.SeedSequence(entropy))
        return copy.deepcopy(seeded.state)

    def rekey(self, compiled: CompiledGraph, num_new_draws: int) -> "WorldSampler":
        """The evolved-graph sampler: same layers plus one for the new edges.

        ``compiled`` must be the evolved snapshot; its ``num_draws`` is the
        old width plus ``num_new_draws``.  The returned sampler has no store
        attached (the world universe changed, so the block fingerprint must
        change with it — the engine wires a fresh store itself).
        """
        total = sum(width for _, width in self.layers) + int(num_new_draws)
        if total != compiled.num_draws:
            raise EstimationError(
                f"rekey width mismatch: layers cover {total} draw positions, "
                f"evolved graph needs {compiled.num_draws}"
            )
        clone = object.__new__(WorldSampler)
        clone.compiled = compiled
        clone.bit_generator_class = self.bit_generator_class
        clone.state = self.state
        clone.store = None
        clone.layers = self.layers
        if num_new_draws:
            clone.layers = self.layers + (
                (self._layer_state(len(self.layers)), int(num_new_draws)),
            )
        return clone

    def with_compiled(self, compiled: CompiledGraph) -> "WorldSampler":
        """A store-less clone drawing the same worlds on ``compiled``.

        ``compiled`` must describe the same draw universe (same
        ``num_draws``); typically it is the shared-memory twin of this
        sampler's graph, or vice versa.
        """
        if compiled.num_draws != self.compiled.num_draws:
            raise EstimationError(
                f"sampler covers {self.compiled.num_draws} draw positions, "
                f"graph needs {compiled.num_draws}"
            )
        clone = object.__new__(WorldSampler)
        clone.compiled = compiled
        clone.bit_generator_class = self.bit_generator_class
        clone.state = self.state
        clone.store = None
        clone.layers = self.layers
        return clone

    def generator_at(self, world_index: int) -> np.random.Generator:
        """A generator at the first *base-layer* coin flip of ``world_index``."""
        state, width = self.layers[0]
        return self._layer_generator(state, width, world_index)

    def draws_at(self, positions: np.ndarray, num_worlds: int) -> np.ndarray:
        """The coin-flip draws at given positions, for every world.

        Returns a ``(num_worlds, len(positions))`` float64 array:
        ``out[w, i]`` is world ``w``'s draw at flat position ``positions[i]``.
        This is the dirty-world probe of snapshot reconciliation — layers
        containing no queried position are skipped entirely, and within a
        queried layer only the prefix up to its last queried position is
        generated per world (the remainder advances without generation).
        """
        positions = np.asarray(positions, dtype=np.int64)
        out = np.empty((int(num_worlds), positions.shape[0]), dtype=np.float64)
        low = 0
        for state, width in self.layers:
            high = low + width
            selected = np.flatnonzero((positions >= low) & (positions < high))
            if selected.size:
                local = positions[selected] - low
                need = int(local.max()) + 1
                generator = self._layer_generator(state, width, 0)
                advance = getattr(generator.bit_generator, "advance", None)
                remainder = width - need
                for world in range(int(num_worlds)):
                    draws = generator.random(need)
                    out[world, selected] = draws[local]
                    if remainder:
                        if advance is not None:
                            advance(remainder)
                        else:
                            _discard_draws(generator, remainder)
            low = high
        return out

    def draw_block(self, start: int, count: int) -> FlatWorldBlock:
        """Worlds ``start .. start+count-1`` as one flat block.

        With a shared block store attached this is publish-or-attach: the
        first process to need the block materialises it into shared memory,
        every other attaches zero-copy.  Without one (or whenever attaching
        fails) the block is drawn privately — the arrays are bit-identical
        either way, so the store never affects results.
        """
        store = self.store
        if store is None:
            return self.draw_block_private(start, count)
        return store.block_for(self, start, count)

    def draw_block_private(self, start: int, count: int) -> FlatWorldBlock:
        """Materialise a block into process-private arrays (the raw draw)."""
        compiled = self.compiled
        layers = self.layers
        indptr = compiled.indptr
        indices = compiled.indices
        edge_pos = compiled.edge_pos
        probs = compiled.probs
        generators = [
            self._layer_generator(state, width, start) for state, width in layers
        ]
        single = len(layers) == 1
        draws = (
            None if single else np.empty(compiled.num_draws, dtype=np.float64)
        )
        target_parts: List[np.ndarray] = []
        offsets = np.empty((count, compiled.num_nodes + 1), dtype=np.int64)
        base = 0
        for slot in range(count):
            if single:
                # One flat stream in graph.edges() order — the historic draw.
                draws = generators[0].random(layers[0][1])
            else:
                low = 0
                for generator, (_, width) in zip(generators, layers):
                    draws[low : low + width] = generator.random(width)
                    low += width
            live_slots = np.flatnonzero(draws[edge_pos] < probs)
            target_parts.append(indices[live_slots].astype(np.int32, copy=False))
            row = offsets[slot]
            row[:] = np.searchsorted(live_slots, indptr)
            if base:
                row += base
            base += live_slots.size
        targets = (
            np.concatenate(target_parts)
            if target_parts
            else np.empty(0, dtype=np.int32)
        )
        return FlatWorldBlock(targets, offsets, count)


def _discard_draws(generator: np.random.Generator, count: int) -> None:
    """Consume ``count`` doubles from ``generator`` (advance() fallback)."""
    while count > 0:
        chunk = min(count, _DISCARD_CHUNK)
        generator.random(chunk)
        count -= chunk


class BlockCache:
    """Bounded LRU of materialised world blocks, keyed by start index.

    Shared by the engine's sharded mode and the multiprocess workers so the
    two paths cannot drift; only the capacity differs.
    """

    __slots__ = ("sampler", "max_blocks", "_blocks")

    def __init__(self, sampler: WorldSampler, max_blocks: int) -> None:
        self.sampler = sampler
        self.max_blocks = max_blocks
        self._blocks: "OrderedDict[int, FlatWorldBlock]" = OrderedDict()

    def block(self, start: int, count: int) -> FlatWorldBlock:
        blocks = self._blocks
        block = blocks.get(start)
        if block is not None:
            blocks.move_to_end(start)
            return block
        block = self.sampler.draw_block(start, count)
        blocks[start] = block
        while len(blocks) > self.max_blocks:
            _, evicted = blocks.popitem(last=False)
            evicted.release()
        return block


def cascade_block(
    block: FlatWorldBlock,
    seed_indices: List[int],
    coupons: List[int],
    visited: List[int],
    stamp: int,
) -> Tuple[List[int], int]:
    """Run the deterministic cascade in every world of a block (interpreted).

    Returns ``(flat_activations, stamp)`` — the concatenated activation
    queues of the block's worlds and the last stamp value written into
    ``visited``.  This is the cascade inner loop shared by the serial engine
    and the multiprocess workers whenever the native kernel
    (:mod:`repro.diffusion.kernels`) is disabled or unavailable — and the
    bit-identity *oracle* the kernel is tested against.  ``visited`` is a
    stamp-versioned scratch array: the caller owns it and must never reuse a
    stamp value already written.
    """
    flat_activations: List[int] = []
    extend = flat_activations.extend
    targets, offsets_rows = block.lists()
    for offsets in offsets_rows:
        stamp += 1
        queue = list(seed_indices)
        for seed in queue:
            visited[seed] = stamp
        head = 0
        while head < len(queue):
            user = queue[head]
            head += 1
            remaining = coupons[user]
            if remaining <= 0:
                continue
            low = offsets[user]
            high = offsets[user + 1]
            if low == high:
                continue
            for neighbor in targets[low:high]:
                if visited[neighbor] == stamp:
                    continue
                visited[neighbor] = stamp
                queue.append(neighbor)
                remaining -= 1
                if remaining <= 0:
                    break
        extend(queue)
    return flat_activations, stamp


class CompiledCascadeEngine:
    """Shared live-edge worlds and the vectorized cascade over them.

    Parameters
    ----------
    compiled:
        The :class:`CompiledGraph` to run on (or a :class:`SocialGraph`,
        which is compiled on the fly).
    num_worlds:
        Number of live-edge worlds shared by every evaluation (common random
        numbers).
    seed:
        RNG seed; the same seed reproduces the dict path's worlds exactly.
    shard_size:
        ``None`` (default) keeps every world resident, exactly the historic
        behaviour.  A positive integer makes the engine materialise worlds in
        blocks of that size — build, evaluate, discard — bounding peak memory
        to O(shard_size) worlds while staying bit-identical to the monolithic
        path for any value.
    workers:
        ``None``/``1`` evaluates worlds in-process.  ``workers > 1`` spins up
        a persistent process pool (lazily, on the first :meth:`run`) that
        evaluates shard blocks concurrently with a deterministic streaming
        reduction — see :mod:`repro.diffusion.parallel`.  When ``shard_size``
        is not set explicitly, a default of ``ceil(num_worlds / (4 ×
        workers))`` keeps every worker busy with several blocks.
    start_method:
        Optional multiprocessing start method (``"fork"``/``"spawn"``/...);
        default prefers ``fork`` where available.
    pool:
        Optional injected :class:`~repro.diffusion.parallel.SharedShardPool`.
        The engine registers its sampler on the shared pool instead of
        creating one of its own, inherits the pool's worker count (``workers``
        is then ignored) and **never closes the injected pool** —
        :meth:`close` only unregisters the sampler; the pool's owner decides
        when the workers die.
    use_kernel:
        ``None`` (default) runs the cascade inner loop on the native compiled
        kernel (:mod:`repro.diffusion.kernels` — numba ``@njit`` when numba
        is importable, a C-compiled fallback otherwise) whenever one is
        available, silently falling back to the interpreted loop when
        neither backend exists.  ``True`` asks for the kernel explicitly and
        *warns* when it has to fall back; ``False`` forces the interpreted
        oracle path.  Activation queues, counts and benefits are
        bit-identical either way — only speed changes.  The JIT is warmed on
        a one-world dummy block here at construction, so the first timed
        evaluation never pays compilation latency;
        :attr:`kernel_compile_seconds` records what the warm-up cost.
    shared_memory:
        ``None`` (default) turns zero-copy shared-memory transport on
        automatically whenever the engine runs multiprocess (``workers > 1``
        or an injected ``pool``): the compiled graph moves into a
        :class:`~repro.graph.shared.SharedCompiledGraph` segment (so pool
        broadcasts ship a few hundred bytes instead of the arrays) and world
        blocks are published once machine-wide through a
        :class:`~repro.diffusion.world_store.SharedBlockStore` instead of
        being re-drawn per process.  ``True`` forces it on (warning and
        falling back when the platform has no shared memory); ``False``
        forces the historic private-copy transport.  Results are
        bit-identical either way — the knob only moves bytes.
    sampler:
        Optional pre-built :class:`WorldSampler` to draw worlds from
        (``seed`` is then ignored).  This is how a *cold* engine is built on
        the exact world universe of an evolved sampler — e.g. the
        reconciliation parity suites constructing the reference resolve of a
        mutated graph — and how layered (post-event) samplers are injected
        at all.  The sampler's ``num_draws`` must match ``compiled``'s.
    """

    def __init__(
        self,
        compiled: "CompiledGraph | SocialGraph",
        num_worlds: int,
        seed: SeedLike = None,
        *,
        shard_size: Optional[int] = None,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        pool=None,
        use_kernel: Optional[bool] = None,
        shared_memory: Optional[bool] = None,
        sampler: Optional[WorldSampler] = None,
    ) -> None:
        if num_worlds <= 0:
            raise EstimationError(f"num_worlds must be > 0, got {num_worlds}")
        if isinstance(compiled, SocialGraph):
            compiled = CompiledGraph.from_social_graph(compiled)
        self.num_worlds = int(num_worlds)

        if pool is not None:
            workers = pool.workers
        else:
            workers = 1 if workers is None else int(workers)
        if workers < 1:
            raise EstimationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.pool = pool
        self._start_method = start_method

        # Zero-copy shared-memory transport: auto-on for multiprocess runs.
        self.shared_memory_requested = shared_memory
        share = (
            bool(shared_memory)
            if shared_memory is not None
            else (pool is not None or workers > 1)
        )
        if share:
            from repro.graph.shared import share_compiled

            shared_graph = share_compiled(compiled)
            if shared_graph is None:
                if shared_memory is True:
                    warnings.warn(
                        "shared memory is unavailable on this platform; "
                        "falling back to by-value graph transport — results "
                        "are identical, broadcasts are just larger",
                        stacklevel=2,
                    )
                share = False
            else:
                compiled = shared_graph
        self.shared_memory = share
        self.compiled = compiled

        if shard_size is not None:
            shard_size = int(shard_size)
            if shard_size < 1:
                raise EstimationError(f"shard_size must be >= 1, got {shard_size}")
            shard_size = min(shard_size, self.num_worlds)
        elif workers > 1:
            # A handful of blocks per worker: enough slack for the pool to
            # balance, coarse enough to amortise per-task overhead.
            shard_size = max(1, -(-self.num_worlds // (4 * workers)))
        else:
            shard_size = self.num_worlds
        self.shard_size = shard_size

        if sampler is not None:
            self.sampler = sampler.with_compiled(compiled)
        else:
            self.sampler = WorldSampler(compiled, seed)
            if isinstance(seed, np.random.Generator):
                # The monolithic engine used to consume the caller's generator
                # directly; keep that stream contract so downstream draws from
                # a shared generator land where they always did.
                _consume_stream(seed, self.num_worlds * compiled.num_edges)

        # Shared world-block store: blocks of this sampler's world grid are
        # published to /dev/shm once machine-wide.  The engine owns cleanup
        # of the *whole grid* — deterministic names make every segment
        # enumerable, so even blocks published by a since-killed worker are
        # swept on close / GC / interpreter exit.
        self._store_bounds: Tuple[Tuple[int, int], ...] = ()
        self._store_finalizer = None
        if share:
            from repro.diffusion.world_store import SharedBlockStore, sampler_fingerprint

            store = SharedBlockStore(sampler_fingerprint(self.sampler))
            self.sampler.store = store
            self._store_bounds = tuple(
                (start, min(self.shard_size, self.num_worlds - start))
                for start in range(0, self.num_worlds, self.shard_size)
            )
            self._store_finalizer = weakref.finalize(
                self, store.sweep, self._store_bounds
            )

        # Resident world block (monolithic mode) or a small LRU of shards.
        self._resident_block: Optional[FlatWorldBlock] = None
        self._block_cache = BlockCache(self.sampler, _MAX_CACHED_BLOCKS)
        if self.shard_size >= self.num_worlds:
            self._resident_block = self.sampler.draw_block(0, self.num_worlds)

        self._executor = None

        # Native kernel resolution: auto (None) silently falls back to the
        # interpreted loop; an explicit request (True) warns on fallback.
        self.use_kernel_requested = use_kernel
        self._kernel = None
        self.kernel_compile_seconds = 0.0
        if use_kernel is not False:
            self._kernel = _kernels.load_kernel()
            if self._kernel is None and use_kernel is True:
                warnings.warn(
                    "no native cascade kernel backend is available (numba "
                    "not importable, no C compiler); falling back to the "
                    "interpreted cascade loop — results are identical, only "
                    "slower",
                    stacklevel=2,
                )
        num_nodes = compiled.num_nodes
        if self._kernel is not None:
            # Warm the JIT on a one-world dummy block now, so the first real
            # evaluation (CELF pivot-queue timings, benchmarks) never pays
            # compilation latency; record what the warm-up cost.
            self.kernel_compile_seconds = self._kernel.warm()
            self._kernel_visited = np.zeros(num_nodes, dtype=np.int64)
            self._kernel_stamp = 0
            self._kernel_queue = np.empty(num_nodes, dtype=np.int32)
            self._kernel_limited = np.empty(num_nodes, dtype=np.int32)
            self._kernel_coupons = np.zeros(num_nodes, dtype=np.int64)

        # Stamp-versioned visited array shared across interpreted cascades:
        # bumping the stamp resets it in O(1) instead of reallocating per
        # world.  (The kernel path has its own numpy-typed buffers above;
        # the two stamp streams never touch each other's arrays.)
        self._visited: List[int] = [0] * num_nodes
        self._stamp = 0
        # Dense coupon buffer reused across evaluations (reset after each).
        self._coupons: List[int] = [0] * num_nodes

    # ------------------------------------------------------------------
    # world access
    # ------------------------------------------------------------------

    @property
    def is_sharded(self) -> bool:
        """Whether worlds are materialised in blocks rather than resident."""
        return self._resident_block is None

    @property
    def kernel_active(self) -> bool:
        """Whether the native cascade kernel executes this engine's worlds."""
        return self._kernel is not None

    @property
    def kernel_backend(self) -> Optional[str]:
        """Resolved native backend name (``"numba"``/``"cc"``) or ``None``."""
        return self._kernel.backend if self._kernel is not None else None

    def world(self, world_index: int) -> WorldAdjacency:
        """The live adjacency of one world as world-local ``(targets, offsets)``.

        The returned lists are self-contained (offsets index the returned
        targets), so worlds compare equal across shard sizes and block
        layouts.  Resident worlds are sliced out of the resident block; in
        sharded mode the world's block is drawn on demand and kept in a
        small LRU, so sequential access (the snapshot pass, ascending
        dirty-world lists) regenerates each block exactly once.
        """
        block, slot = self._world_slot(world_index)
        return block.world_local(slot)

    def _world_slot(self, world_index: int) -> Tuple[FlatWorldBlock, int]:
        """The flat block holding ``world_index`` and the world's slot in it."""
        if self._resident_block is not None:
            return self._resident_block, world_index
        start = (world_index // self.shard_size) * self.shard_size
        return self._block(start), world_index - start

    def world_blocks(self) -> Iterator[Tuple[int, int, FlatWorldBlock]]:
        """Yield ``(start, count, block)`` per shard, as flat array blocks.

        In monolithic mode this is a single block covering every world; in
        sharded mode each block is materialised as it is yielded and only a
        bounded number stay resident.
        """
        for start in range(0, self.num_worlds, self.shard_size):
            count = min(self.shard_size, self.num_worlds - start)
            if self._resident_block is not None:
                yield start, count, self._resident_block
            else:
                yield start, count, self._block(start)

    def _block(self, start: int) -> FlatWorldBlock:
        count = min(self.shard_size, self.num_worlds - start)
        return self._block_cache.block(start, count)

    # ------------------------------------------------------------------
    # low-level cascade
    # ------------------------------------------------------------------

    def cascade_world(
        self, world_index: int, seed_indices: List[int], coupons: List[int]
    ) -> List[int]:
        """Deterministic cascade in one world; returns activated node indices.

        ``seed_indices`` must be deduplicated compiled indices in caller
        order; ``coupons`` is a dense per-node coupon vector.  The returned
        list is in activation (FIFO) order, seeds first.
        """
        return self.cascade_world_instrumented(world_index, seed_indices, coupons)[0]

    def cascade_world_instrumented(
        self, world_index: int, seed_indices: List[int], coupons: List[int]
    ) -> Tuple[List[int], List[int]]:
        """Cascade in one world, also reporting coupon-limited holders.

        Returns ``(queue, limited)`` where ``queue`` is exactly what
        :meth:`cascade_world` returns and ``limited`` lists (in dequeue
        order) every activated node whose coupon supply was — conservatively
        — the binding constraint of its hand-out walk: either it was dequeued
        with no coupons while holding live out-edges, or its walk broke on
        coupon exhaustion before reaching the end of its live edge list.
        Giving any such node one more coupon is the *only* way a single-node
        coupon increment can change this world's outcome, which is what the
        delta-evaluation engine (:mod:`repro.diffusion.delta`) keys on.

        Runs on the native kernel when one is active (identical queues and
        limited lists, only faster); callers with several worlds to
        re-simulate should prefer :meth:`cascade_worlds_instrumented`, which
        converts the seed/coupon buffers once for the whole batch.
        """
        if self._kernel is not None:
            return self._kernel_world_instrumented(
                world_index,
                np.asarray(seed_indices, dtype=np.int32),
                np.asarray(coupons, dtype=np.int64),
            )
        return self._interpreted_world_instrumented(
            world_index, seed_indices, coupons
        )

    def cascade_worlds_instrumented(
        self,
        world_indices: Iterable[int],
        seed_indices: List[int],
        coupons: Sequence[int],
    ) -> Iterator[Tuple[List[int], List[int]]]:
        """Instrumented cascades over several worlds of one deployment.

        Yields ``(queue, limited)`` per world of ``world_indices``, exactly
        as per-world :meth:`cascade_world_instrumented` calls would — this
        is the batch entry point the delta engine's snapshot and splice
        passes run on, so the kernel path pays the seed/coupon array
        conversion once per pass instead of once per world.
        """
        if self._kernel is None:
            for world_index in world_indices:
                yield self._interpreted_world_instrumented(
                    world_index, seed_indices, coupons
                )
            return
        seeds_arr = np.asarray(seed_indices, dtype=np.int32)
        coupons_arr = np.asarray(coupons, dtype=np.int64)
        for world_index in world_indices:
            yield self._kernel_world_instrumented(
                world_index, seeds_arr, coupons_arr
            )

    def _kernel_world_instrumented(
        self, world_index: int, seeds_arr: np.ndarray, coupons_arr: np.ndarray
    ) -> Tuple[List[int], List[int]]:
        """One world's instrumented cascade on the native kernel."""
        block, slot = self._world_slot(world_index)
        self._kernel_stamp += 1
        queue_length, limited_length = self._kernel.cascade_world_instrumented(
            block.targets,
            block.offsets[slot],
            seeds_arr,
            coupons_arr,
            self._kernel_visited,
            self._kernel_stamp,
            self._kernel_queue,
            self._kernel_limited,
        )
        return (
            self._kernel_queue[:queue_length].tolist(),
            self._kernel_limited[:limited_length].tolist(),
        )

    def _interpreted_world_instrumented(
        self, world_index: int, seed_indices: List[int], coupons: Sequence[int]
    ) -> Tuple[List[int], List[int]]:
        """One world's instrumented cascade on the interpreted oracle loop."""
        self._stamp += 1
        stamp = self._stamp
        visited = self._visited
        block, slot = self._world_slot(world_index)
        targets, offsets_rows = block.lists()
        offsets = offsets_rows[slot]

        queue: List[int] = []
        limited: List[int] = []
        for seed in seed_indices:
            visited[seed] = stamp
            queue.append(seed)

        head = 0
        while head < len(queue):
            user = queue[head]
            head += 1
            remaining = coupons[user]
            low = offsets[user]
            high = offsets[user + 1]
            if remaining <= 0:
                if low < high:
                    limited.append(user)
                continue
            if low == high:
                continue
            for position in range(low, high):
                neighbor = targets[position]
                if visited[neighbor] == stamp:
                    continue
                visited[neighbor] = stamp
                queue.append(neighbor)
                remaining -= 1
                if remaining <= 0:
                    if position < high - 1:
                        limited.append(user)
                    break
        return queue, limited

    # ------------------------------------------------------------------
    # estimator-facing API
    # ------------------------------------------------------------------

    def run(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> Tuple[np.ndarray, float]:
        """One pass over every world.

        Returns ``(activation_counts, expected_benefit)`` where
        ``activation_counts[i]`` is the number of worlds in which compiled
        node ``i`` ended up activated.  Both quantities come out of the same
        pass, so callers needing benefit *and* probabilities pay for one.

        Worlds are processed shard by shard — serially, or fanned out over
        the worker pool when ``workers > 1``.  The per-shard activation
        counts are integers and are reduced in shard order, so the resulting
        count vector (and hence the benefit, computed with the same final
        expression) is bit-identical for every shard size and worker count.

        Seed *order* is canonicalised (sorted by ``str``) before the cascade:
        the queue order is seed-order dependent, and every consumer — the
        estimator's order-insensitive memoisation, the delta engine's
        snapshot matching — treats deployments with equal seed sets as equal.
        Use :meth:`cascade_world` directly for explicit-order experiments.
        """
        return self.submit(seeds, allocation).result()

    def submit(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> "PendingRun":
        """Start one :meth:`run`-equivalent evaluation; returns its handle.

        With ``workers > 1`` the evaluation's shard blocks are dispatched to
        the pool and the call returns immediately — several evaluations can
        be pending at once, pipelining the parent's streaming reductions
        behind the workers' cascades.  Draining the handles in submission
        order yields exactly the results sequential :meth:`run` calls would
        have produced, bit for bit.  On a serial engine the evaluation runs
        eagerly and the handle is already complete.
        """
        compiled = self.compiled
        num_nodes = compiled.num_nodes
        seed_indices = compiled.indices_of(sorted(seeds, key=str))
        if not seed_indices:
            return PendingRun(self, result=(np.zeros(num_nodes, dtype=np.int64), 0.0))

        index = compiled.index
        coupon_items: List[Tuple[int, int]] = []
        for node, count in allocation.items():
            position = index.get(node)
            if position is not None and int(count) > 0:
                coupon_items.append((position, int(count)))

        if self.workers > 1:
            pending = self._ensure_executor().submit(seed_indices, coupon_items)
            return PendingRun(self, pending=pending)
        counts = self._run_serial(seed_indices, coupon_items)
        benefit = float(counts @ compiled.benefits) / self.num_worlds
        return PendingRun(self, result=(counts, benefit))

    def _run_serial(
        self, seed_indices: List[int], coupon_items: List[Tuple[int, int]]
    ) -> np.ndarray:
        """Shard-by-shard in-process evaluation; returns activation counts."""
        if self._kernel is not None:
            return self._run_serial_kernel(seed_indices, coupon_items)
        coupons = self._coupons
        for position, count in coupon_items:
            coupons[position] = count

        visited = self._visited
        stamp = self._stamp
        # Reserve the whole stamp range up front: if the loop is interrupted
        # (e.g. KeyboardInterrupt), a later run() must not reuse stamp values
        # already written into `visited`, or it would see phantom activations.
        self._stamp = stamp + self.num_worlds
        counts = np.zeros(self.compiled.num_nodes, dtype=np.int64)
        try:
            for _, _, block in self.world_blocks():
                flat_activations, stamp = cascade_block(
                    block, seed_indices, coupons, visited, stamp,
                )
                counts += np.bincount(
                    np.asarray(flat_activations, dtype=np.int64),
                    minlength=counts.shape[0],
                )
        finally:
            # Always restore the coupon buffer, even on interruption.
            for position, _ in coupon_items:
                coupons[position] = 0
        return counts

    def _run_serial_kernel(
        self, seed_indices: List[int], coupon_items: List[Tuple[int, int]]
    ) -> np.ndarray:
        """Kernel-dispatched serial evaluation, bit-identical to interpreted.

        The kernel accumulates each world's activation queue straight into
        the integer count vector — the same integers the interpreted path
        derives via ``np.bincount`` over the flat activation list.
        """
        coupons = self._kernel_coupons
        for position, count in coupon_items:
            coupons[position] = count
        seeds_arr = np.asarray(seed_indices, dtype=np.int32)

        stamp = self._kernel_stamp
        # Reserve the stamp range up front, mirroring the interpreted path.
        self._kernel_stamp = stamp + self.num_worlds
        counts = np.zeros(self.compiled.num_nodes, dtype=np.int64)
        kernel = self._kernel
        try:
            for _, _, block in self.world_blocks():
                stamp = kernel.cascade_block(
                    block.targets, block.offsets, seeds_arr, coupons,
                    self._kernel_visited, stamp, self._kernel_queue, counts,
                )
        finally:
            for position, _ in coupon_items:
                coupons[position] = 0
        return counts

    def _ensure_executor(self):
        if self._executor is None:
            from repro.diffusion.parallel import ShardExecutor

            self._executor = ShardExecutor(
                self.sampler,
                num_worlds=self.num_worlds,
                shard_size=self.shard_size,
                workers=self.workers,
                start_method=self._start_method,
                pool=self.pool,
                use_kernel=self._kernel is not None,
            )
        return self._executor

    def apply_events(self, application, dirty_mask: Optional[np.ndarray] = None) -> int:
        """Evolve the engine in place onto an event batch's new graph.

        ``application`` is the :class:`~repro.graph.events.EventApplication`
        of the batch; the engine switches to its evolved snapshot (re-shared
        into a fresh segment when shared-memory transport is on), rekeys the
        sampler with one stream layer for the new edges (so every surviving
        edge keeps its per-world coin flips), and rebuilds the derived state
        that depends on the graph: the shared block store (new fingerprint),
        the block cache, the worker executor (workers hold old-graph
        samplers; it is lazily rebuilt), and the cascade scratch buffers.

        When ``dirty_mask`` (per-world booleans) is given and the batch kept
        every surviving edge's hand-off rank and the node set (no reweights,
        no retires, no node adds), the published shared-memory blocks of
        all-clean shards are **chained**: re-published byte-identical under
        the new fingerprint before the old grid is swept, so clean worlds
        advance to the new graph version without being re-drawn by anyone.
        Returns the number of chained blocks.
        """
        compiled = application.compiled
        old_compiled = self.compiled
        old_store = self.sampler.store
        old_finalizer = self._store_finalizer

        if self.shared_memory:
            from repro.graph.shared import share_compiled

            shared_graph = share_compiled(compiled)
            if shared_graph is not None:
                compiled = shared_graph
            else:  # pragma: no cover - platform lost shm mid-flight
                self.shared_memory = False
        self.compiled = compiled
        self.sampler = self.sampler.rekey(compiled, application.num_new_draws)

        # Workers hold samplers keyed to the old graph; the executor is
        # rebuilt (and the new sampler re-registered) on the next parallel
        # run.
        if self._executor is not None:
            self._executor.close()
            self._executor = None

        if self._resident_block is not None:
            self._resident_block.release()
            self._resident_block = None
        for block in self._block_cache._blocks.values():
            block.release()

        chained = 0
        self._store_bounds = ()
        self._store_finalizer = None
        if self.shared_memory:
            from repro.diffusion.world_store import (
                SharedBlockStore,
                sampler_fingerprint,
            )

            store = SharedBlockStore(sampler_fingerprint(self.sampler))
            self.sampler.store = store
            self._store_bounds = tuple(
                (start, min(self.shard_size, self.num_worlds - start))
                for start in range(0, self.num_worlds, self.shard_size)
            )
            if (
                old_store is not None
                and dirty_mask is not None
                and application.rank_stable
                and application.identity_remap
                and compiled.num_nodes == application.old_num_nodes
            ):
                # Clean worlds of a rank-stable batch have bit-identical
                # live adjacency (their added edges are dead, their dropped
                # edges were dead), so an all-clean block's bytes are valid
                # under the new fingerprint verbatim.
                num_nodes = compiled.num_nodes
                for start, count in self._store_bounds:
                    if bool(dirty_mask[start : start + count].any()):
                        continue
                    block = old_store.load(start, count, num_nodes)
                    if block is None:
                        continue
                    published = store.publish(start, count, block)
                    if published is not block:
                        published.release()
                        chained += 1
                    block.release()
            self._store_finalizer = weakref.finalize(
                self, store.sweep, self._store_bounds
            )
        if old_finalizer is not None:
            # Sweep the old fingerprint's whole grid now; chained blocks
            # already live under the new names.
            old_finalizer()

        # The old shared graph segment: close our fd now; the owner
        # finalizer unlinks the name once the last reference dies.
        segment = getattr(old_compiled, "segment", None)
        if segment is not None and getattr(old_compiled, "owns_segment", False):
            _shm.close_segment(segment)

        self._block_cache = BlockCache(self.sampler, _MAX_CACHED_BLOCKS)
        if self.shard_size >= self.num_worlds:
            self._resident_block = self.sampler.draw_block(0, self.num_worlds)

        num_nodes = compiled.num_nodes
        if self._kernel is not None:
            self._kernel_visited = np.zeros(num_nodes, dtype=np.int64)
            self._kernel_stamp = 0
            self._kernel_queue = np.empty(num_nodes, dtype=np.int32)
            self._kernel_limited = np.empty(num_nodes, dtype=np.int32)
            self._kernel_coupons = np.zeros(num_nodes, dtype=np.int64)
        self._visited = [0] * num_nodes
        self._stamp = 0
        self._coupons = [0] * num_nodes
        return chained

    def close(self) -> None:
        """Release the executor and sweep shared world-block segments.

        An owned pool shuts down, an injected pool only has this engine's
        sampler unregistered (no-op when no parallel run ever happened).
        The shared block store's segments — including any published by
        workers — are unlinked; the engine stays usable, re-publishing
        blocks on demand, and re-arms its GC sweep."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None
        if self.shared_memory:
            # Close the shared mappings' descriptors.  The numpy views keep
            # the pages alive, so the engine stays fully usable — only the
            # (bounded-resource) fds go; the owner finalizers still unlink
            # the names at GC.
            if self._resident_block is not None:
                self._resident_block.release()
            for block in self._block_cache._blocks.values():
                block.release()
            segment = getattr(self.compiled, "segment", None)
            if segment is not None and getattr(self.compiled, "owns_segment", False):
                _shm.close_segment(segment)
        if self._store_finalizer is not None:
            self._store_finalizer()
            store = self.sampler.store
            if store is not None:
                self._store_finalizer = weakref.finalize(
                    self, store.sweep, self._store_bounds
                )

    def __enter__(self) -> "CompiledCascadeEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def expected_benefit(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> float:
        """Expected total benefit of activated users under the deployment."""
        _, benefit = self.run(seeds, allocation)
        return benefit

    def activation_probabilities(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> Dict[NodeId, float]:
        """Per-user activation probability (only users ever activated appear)."""
        counts, _ = self.run(seeds, allocation)
        node_ids = self.compiled.node_ids
        num_worlds = self.num_worlds
        return {
            node_ids[node_index]: int(count) / num_worlds
            for node_index, count in enumerate(counts)
            if count
        }


class PendingRun:
    """Handle to one in-flight (or already complete) engine evaluation.

    :meth:`result` returns exactly what
    :meth:`CompiledCascadeEngine.run` would have returned for the same
    inputs — ``(activation_counts, expected_benefit)`` — computing the
    benefit with the engine's canonical ``counts @ benefits / num_worlds``
    expression, so pipelined results are bit-identical to sequential ones.
    """

    __slots__ = ("_engine", "_pending", "_result")

    def __init__(self, engine, pending=None, result=None) -> None:
        self._engine = engine
        self._pending = pending
        self._result = result

    @property
    def done(self) -> bool:
        """Whether the result is already available without blocking."""
        return self._result is not None

    def result(self) -> Tuple[np.ndarray, float]:
        """Block until the evaluation completes; returns ``(counts, benefit)``."""
        if self._result is None:
            counts = self._pending.result()
            engine = self._engine
            benefit = float(counts @ engine.compiled.benefits) / engine.num_worlds
            self._result = (counts, benefit)
            self._pending = None
        return self._result


def _consume_stream(generator: np.random.Generator, num_draws: int) -> None:
    """Advance a caller-owned generator past ``num_draws`` coin flips."""
    if num_draws <= 0:
        return
    advance = getattr(generator.bit_generator, "advance", None)
    if advance is not None:
        advance(num_draws)
    else:
        _discard_draws(generator, num_draws)
