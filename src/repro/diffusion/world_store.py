"""Machine-wide shared store of materialised world blocks.

Without it, every process of a worker pool draws its own private copy of
every :class:`~repro.diffusion.engine.FlatWorldBlock` it evaluates — the same
deterministic arrays, re-derived ``workers`` times and held in ``workers``
private LRUs.  :class:`SharedBlockStore` deduplicates that machine-wide:
whoever needs a block first publishes it into a :mod:`multiprocessing`
shared-memory segment under a **deterministic name** derived from the
sampler fingerprint and the block bounds; everyone else attaches zero-copy.

Correctness never depends on the store.  Blocks are pure functions of the
frozen sampler state, so a reader that finds no published block (not yet
drawn, lost a race, store swept by a sibling engine with the same
fingerprint) simply draws privately and gets bit-identical arrays.  That is
also why crash cleanup can be blunt: the parent engine sweeps the *entire*
name universe of its sampler — every ``(start, count)`` block of its world
grid — on close and at GC, which removes even segments a since-killed worker
published.  A stale same-fingerprint segment from an earlier crashed run is
harmless for the same reason: its content is exactly what this run would
draw.

Publication protocol
--------------------
A block segment is only valid once fully written, but segment creation is
visible to other processes immediately.  Publishers therefore create and
fill the data segment first and only then create a one-byte ``ready``
sentinel segment; readers require the sentinel before attaching.  Creation
is the atomic primitive (``shm_open(O_CREAT | O_EXCL)``), so exactly one
publisher wins any race; losers keep their private block.

Segment layout: a 64-byte int64 header ``[num_targets, count, num_nodes]``,
the ``(count, num_nodes + 1)`` int64 offsets matrix, then the int32
concatenated targets — the exact dtypes of :class:`FlatWorldBlock`, so
attached blocks are bit-identical views, not conversions.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.diffusion.engine import FlatWorldBlock, WorldSampler
from repro.utils import shm

#: Header slots: number of target entries, worlds in the block, graph nodes.
_HEADER_FIELDS = 3
#: Header bytes (padded so the offsets matrix starts 64-byte aligned).
_HEADER_BYTES = 64


def sampler_fingerprint(sampler: WorldSampler) -> str:
    """Digest identifying the exact world universe a sampler draws.

    Two samplers agree iff they produce bit-identical blocks for every
    ``(start, count)``: same live-edge topology (indptr/indices), same draw
    gather (edge_pos) and probabilities, same bit generator, same frozen
    state and same stream layering (an evolved graph changes ``num_draws``
    and the layer stack, and must never collide with its ancestor's blocks).
    Node attributes are deliberately excluded — they do not influence world
    drawing.
    """
    compiled = sampler.compiled
    digest = hashlib.sha256()
    for array in (compiled.indptr, compiled.indices, compiled.probs, compiled.edge_pos):
        digest.update(np.ascontiguousarray(array).tobytes())
    digest.update(
        pickle.dumps(
            (
                sampler.bit_generator_class.__name__,
                sampler.state,
                int(compiled.num_draws),
                sampler.layers,
            ),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    )
    return digest.hexdigest()[:20]


class SharedBlockStore:
    """Publish-or-attach façade over the shared block segments of one sampler.

    Instances are tiny and picklable (the fingerprint is the whole identity),
    which is how the store travels inside a pickled
    :class:`~repro.diffusion.engine.WorldSampler` to pool workers.  Counters
    (`publish_count`, `attach_count`, `attach_seconds`) are per-process
    benchmark instrumentation, not shared state.
    """

    __slots__ = ("fingerprint", "publish_count", "attach_count", "attach_seconds")

    def __init__(self, fingerprint: str) -> None:
        self.fingerprint = fingerprint
        self.publish_count = 0
        self.attach_count = 0
        self.attach_seconds = 0.0

    def __reduce__(self):
        return (SharedBlockStore, (self.fingerprint,))

    # ------------------------------------------------------------------
    # naming
    # ------------------------------------------------------------------

    def data_name(self, start: int, count: int) -> str:
        return f"{shm.SEGMENT_PREFIX}wb-{self.fingerprint}-{start}-{count}"

    def ready_name(self, start: int, count: int) -> str:
        return self.data_name(start, count) + "-r"

    # ------------------------------------------------------------------
    # publish / attach
    # ------------------------------------------------------------------

    def load(self, start: int, count: int, num_nodes: int) -> Optional[FlatWorldBlock]:
        """Attach the published block, or ``None`` (caller draws privately)."""
        began = time.perf_counter()
        try:
            sentinel = shm.attach_segment(self.ready_name(start, count))
        except (FileNotFoundError, OSError):
            return None
        shm.close_segment(sentinel)
        try:
            segment = shm.attach_segment(self.data_name(start, count))
        except (FileNotFoundError, OSError):
            return None
        header = np.frombuffer(segment.buf, dtype=np.int64, count=_HEADER_FIELDS)
        num_targets, stored_count, stored_nodes = (int(v) for v in header)
        if stored_count != count or stored_nodes != num_nodes:
            # A different world grid collided on the name (only possible if
            # someone truncated the fingerprint universe); treat as absent.
            shm.close_segment(segment)
            return None
        block = _block_views(segment, num_targets, count, num_nodes)
        self.attach_count += 1
        self.attach_seconds += time.perf_counter() - began
        return block

    def publish(self, start: int, count: int, block: FlatWorldBlock) -> FlatWorldBlock:
        """Publish a freshly drawn block; returns the shared-backed view.

        On any race or OS-level failure the private ``block`` comes back
        unchanged — publication is an optimisation, never a requirement.
        """
        num_nodes = block.offsets.shape[1] - 1
        num_targets = int(block.targets.shape[0])
        offsets_bytes = _aligned64(block.offsets.nbytes)
        total = _HEADER_BYTES + offsets_bytes + max(block.targets.nbytes, 1)
        name = self.data_name(start, count)
        try:
            segment = shm.create_segment(name, total)
        except (FileExistsError, OSError):
            return block
        shm.register_owned(name)
        header = np.frombuffer(segment.buf, dtype=np.int64, count=_HEADER_FIELDS)
        header[:] = (num_targets, count, num_nodes)
        offsets_view = np.frombuffer(
            segment.buf, dtype=np.int64, count=block.offsets.size, offset=_HEADER_BYTES
        )
        offsets_view[:] = block.offsets.reshape(-1)
        if num_targets:
            targets_view = np.frombuffer(
                segment.buf,
                dtype=np.int32,
                count=num_targets,
                offset=_HEADER_BYTES + offsets_bytes,
            )
            targets_view[:] = block.targets
        del header, offsets_view
        ready = self.ready_name(start, count)
        try:
            sentinel = shm.create_segment(ready, 1)
        except (FileExistsError, OSError):  # pragma: no cover - lost a race
            shm.close_segment(segment)
            return block
        shm.register_owned(ready)
        shm.close_segment(sentinel)
        self.publish_count += 1
        return _block_views(segment, num_targets, count, num_nodes)

    def block_for(
        self, sampler: WorldSampler, start: int, count: int
    ) -> FlatWorldBlock:
        """The store-mediated draw: attach if published, else draw + publish."""
        num_nodes = sampler.compiled.num_nodes
        block = self.load(start, count, num_nodes)
        if block is not None:
            return block
        return self.publish(start, count, sampler.draw_block_private(start, count))

    # ------------------------------------------------------------------
    # cleanup
    # ------------------------------------------------------------------

    def sweep(self, bounds: Iterable[Tuple[int, int]]) -> int:
        """Unlink every segment of the given block grid; returns how many.

        Covers segments published by *any* process (the deterministic names
        are the registry), which is what makes a SIGKILLed worker unable to
        leak: the parent engine knows the grid and sweeps it all.  The ready
        sentinel goes first so no reader can see ready-without-data.
        """
        removed = 0
        for start, count in bounds:
            if shm.unlink_segment(self.ready_name(start, count)):
                removed += 1
            if shm.unlink_segment(self.data_name(start, count)):
                removed += 1
        return removed


def _aligned64(nbytes: int) -> int:
    return (nbytes + 63) // 64 * 64


def _block_views(segment, num_targets: int, count: int, num_nodes: int) -> FlatWorldBlock:
    """Read-only :class:`FlatWorldBlock` views onto a block segment."""
    offsets = np.frombuffer(
        segment.buf,
        dtype=np.int64,
        count=count * (num_nodes + 1),
        offset=_HEADER_BYTES,
    ).reshape(count, num_nodes + 1)
    offsets.flags.writeable = False
    offsets_bytes = _aligned64(offsets.nbytes)
    targets = np.frombuffer(
        segment.buf,
        dtype=np.int32,
        count=num_targets,
        offset=_HEADER_BYTES + offsets_bytes,
    )
    targets.flags.writeable = False
    block = FlatWorldBlock(targets, offsets, count)
    block.segment = segment
    return block
