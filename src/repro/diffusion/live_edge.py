"""Live-edge world realisations.

Kempe et al.'s equivalence between the IC model and live-edge graphs also
holds for the SC-constrained cascade once the sequential coupon-handout order
is fixed: toss one coin per edge up front (the edge is *live* with its
influence probability), then run the deterministic cascade in which an attempt
succeeds exactly when its edge is live.  Sharing the same set of worlds across
the deployments compared inside a greedy iteration (common random numbers)
makes marginal-redemption comparisons far less noisy than independent
simulations, which is essential for the greedy phases of S3CA.

This module is the *reference* implementation of world sampling and the
in-world cascade.  The compiled backend
(:class:`repro.diffusion.engine.CompiledCascadeEngine`) reproduces it bit for
bit on CSR arrays and is the default in production paths; keep the two in
lockstep when changing cascade semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Mapping, Set, Tuple

from repro.graph.social_graph import SocialGraph
from repro.utils.rng import SeedLike, spawn_rng

NodeId = Hashable
EdgeKey = Tuple[NodeId, NodeId]


@dataclass(frozen=True)
class LiveEdgeWorld:
    """One deterministic realisation: the set of live edges."""

    live_edges: frozenset

    def is_live(self, source: NodeId, target: NodeId) -> bool:
        """Whether the directed edge is live in this world."""
        return (source, target) in self.live_edges

    def as_outcomes(self) -> Dict[EdgeKey, bool]:
        """Dictionary view compatible with ``simulate_sc_cascade(edge_outcomes=...)``."""
        return {edge: True for edge in self.live_edges}


def sample_worlds(
    graph: SocialGraph,
    num_worlds: int,
    rng: SeedLike = None,
) -> List[LiveEdgeWorld]:
    """Draw ``num_worlds`` independent live-edge worlds for ``graph``."""
    generator = spawn_rng(rng)
    edges = list(graph.edges())
    worlds: List[LiveEdgeWorld] = []
    for _ in range(num_worlds):
        draws = generator.random(len(edges))
        live = frozenset(
            (source, target)
            for (source, target, probability), draw in zip(edges, draws)
            if draw < probability
        )
        worlds.append(LiveEdgeWorld(live))
    return worlds


def cascade_in_world(
    graph: SocialGraph,
    world: LiveEdgeWorld,
    seeds: Iterable[NodeId],
    allocation: Mapping[NodeId, int],
) -> Set[NodeId]:
    """Deterministic SC-constrained cascade inside one live-edge world.

    The semantics match :func:`repro.diffusion.sc_cascade.simulate_sc_cascade`
    with ``edge_outcomes`` taken from the world: each activated coupon holder
    walks her neighbours in decreasing probability order and spends a coupon on
    every live edge to a not-yet-active neighbour until her coupons run out.
    """
    from collections import deque

    activated: Set[NodeId] = set()
    queue: deque = deque()
    for seed in seeds:
        if seed in graph and seed not in activated:
            activated.add(seed)
            queue.append(seed)
    while queue:
        user = queue.popleft()
        coupons = int(allocation.get(user, 0))
        if coupons <= 0:
            continue
        redeemed = 0
        for neighbor, _probability in graph.ranked_out_neighbors(user):
            if redeemed >= coupons:
                break
            if neighbor in activated:
                continue
            if world.is_live(user, neighbor):
                activated.add(neighbor)
                queue.append(neighbor)
                redeemed += 1
    return activated
