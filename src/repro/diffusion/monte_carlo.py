"""Monte-Carlo expected-benefit estimation.

Every algorithm in the library — S3CA's greedy phases, the IM/PM baselines,
the exhaustive optimal solver — needs the expected benefit
``B(S, K(I)) = E[sum of b(v) over activated v]`` for a candidate deployment.
:class:`MonteCarloEstimator` estimates it by averaging the deterministic
cascade over a fixed set of live-edge worlds drawn once per estimator
instance.  Re-using the same worlds for every evaluation (common random
numbers) means the *difference* between two deployments — which is what greedy
decisions compare — has much lower variance than with independent sampling,
and it makes the whole pipeline deterministic for a given seed.

Two interchangeable cascade backends execute the worlds:

``compiled`` (the default)
    The graph is compiled once into CSR arrays
    (:class:`~repro.graph.csr.CompiledGraph`) and all coin flips are drawn as
    flat masks by the vectorized
    :class:`~repro.diffusion.engine.CompiledCascadeEngine`.  One pass yields
    both the expected benefit and the activation counts, so an
    ``expected_benefit`` call warms the ``activation_probabilities`` cache
    and vice versa.
``dict``
    The original implementation over ``SocialGraph``'s adjacency dicts and
    :func:`~repro.diffusion.live_edge.cascade_in_world`.  Kept as the
    reference semantics and for graphs that are mutated after the estimator
    is built (the compiled backend snapshots the graph at construction).

Both backends consume the RNG stream identically, so for a fixed seed they
produce the *same worlds* and the same activation probabilities, bit for bit;
expected benefits can differ in the last few ulps only (floating-point
summation order).

Results are memoised on the (frozen) deployment, because the greedy loops of
S3CA re-evaluate the same base deployment against many candidate increments.
The memo key is order-insensitive, so the estimator must be too: seed
iterables are canonicalised (sorted by ``str``) before they reach the cascade,
whose queue order is seed-order dependent.  Without this, two deployments with
the same seed *set* but different set-iteration orders could produce different
estimates while sharing a cache entry — and the delta-evaluation engine could
never match a re-built deployment against its snapshot.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.diffusion.delta import DeltaCascadeEngine, DeltaOutcome
from repro.diffusion.engine import CompiledCascadeEngine
from repro.diffusion.estimator import BenefitEstimator, DeploymentKey
from repro.diffusion.reconcile import ReconcileOutcome, dirty_world_mask
from repro.diffusion.live_edge import LiveEdgeWorld, cascade_in_world, sample_worlds
from repro.exceptions import EstimationError
from repro.graph.social_graph import SocialGraph
from repro.utils.rng import SeedLike

NodeId = Hashable

__all__ = ["BenefitEstimator", "MonteCarloEstimator"]

_BACKENDS = ("auto", "compiled", "dict")


class MonteCarloEstimator(BenefitEstimator):
    """Expected benefit by averaging over shared live-edge worlds.

    Parameters
    ----------
    graph:
        The social graph (with benefits attached).
    num_samples:
        Number of live-edge worlds.  More worlds = lower variance and more
        runtime; the experiments use a few hundred, unit tests a handful.
    seed:
        Seed controlling the world draws (and hence every estimate).
    cache_size:
        Maximum number of memoised deployments; the cache is cleared wholesale
        when it grows past this bound (the greedy loops have strong temporal
        locality, so a simple policy is sufficient).
    backend:
        ``"compiled"`` (CSR + vectorized engine), ``"dict"`` (the original
        adjacency-dict cascade) or ``"auto"`` (currently ``compiled``).
    incremental:
        When ``True`` (the default) and the backend is compiled, a
        :class:`~repro.diffusion.delta.DeltaCascadeEngine` is attached so the
        greedy loops can evaluate single-investment changes against a
        snapshotted base deployment by re-simulating only the worlds the
        change can affect — with bit-identical results to a full pass.  The
        flag is ignored (treated as ``False``) on the dict backend.
    shard_size:
        Evaluate worlds in blocks of this size — build, evaluate, discard —
        bounding peak memory to O(shard_size) worlds instead of
        O(num_samples).  ``None`` (default) keeps every world resident.  Any
        value produces bit-identical estimates (compiled backend only; the
        dict backend ignores it).
    workers:
        ``workers > 1`` evaluates shard blocks on a persistent process pool
        (see :mod:`repro.diffusion.parallel`) with a deterministic streaming
        reduction: estimates are bit-identical for every worker count.
        ``None``/``1`` evaluates in-process.  Compiled backend only.  Call
        :meth:`close` (or use the estimator as a context manager) to release
        the pool.
    pool:
        Optional injected :class:`~repro.diffusion.parallel.SharedShardPool`
        shared with other estimators.  The estimator registers its worlds on
        the shared pool, inherits its worker count (``workers`` is then
        ignored) and **never closes an injected pool** — :meth:`close` only
        unregisters this estimator's sampler; shutting the pool down is its
        owner's decision.  Compiled backend only.
    pipeline_depth:
        How many submitted evaluations :meth:`submit_many` keeps in flight
        before draining the oldest.  ``None`` (default) picks
        ``max(2, 2 * workers)`` — wide enough to keep every worker busy,
        narrow enough to bound the parent's result buffering.  Any value
        produces bit-identical results; only throughput changes.
    use_kernel:
        Run the cascade inner loop on the native compiled kernel
        (:mod:`repro.diffusion.kernels`).  ``None`` (default) uses the kernel
        when a backend resolves and silently falls back to the interpreted
        loop otherwise; ``True`` warns on fallback; ``False`` forces the
        interpreted oracle path.  Estimates are bit-identical either way.
        Compiled backend only.
    shared_memory:
        Zero-copy transport of the compiled graph and the materialised world
        blocks through POSIX shared memory (:mod:`repro.utils.shm`).  ``None``
        (default) turns it on exactly when worlds execute out-of-process
        (``pool`` injected or ``workers > 1``) — that is when broadcast size
        matters; ``True`` forces it even in-process (so other same-seed
        estimators on the machine can attach this estimator's blocks),
        warning and falling back to by-value transport when the platform
        lacks shared memory; ``False`` forces the private-copy transport.
        Estimates are bit-identical for every setting.  Compiled backend
        only.
    """

    def __init__(
        self,
        graph: SocialGraph,
        num_samples: int = 200,
        seed: SeedLike = None,
        *,
        cache_size: int = 50_000,
        backend: str = "auto",
        incremental: bool = True,
        shard_size: Optional[int] = None,
        workers: Optional[int] = None,
        pool=None,
        pipeline_depth: Optional[int] = None,
        use_kernel: Optional[bool] = None,
        shared_memory: Optional[bool] = None,
    ) -> None:
        super().__init__(graph)
        if num_samples <= 0:
            raise EstimationError(f"num_samples must be > 0, got {num_samples}")
        if backend not in _BACKENDS:
            raise EstimationError(
                f"unknown backend {backend!r}; expected one of {_BACKENDS}"
            )
        self.num_samples = int(num_samples)
        self.cache_size = int(cache_size)
        self.backend = "compiled" if backend == "auto" else backend
        self._worlds: Tuple[LiveEdgeWorld, ...] = ()
        self._engine = None
        self._delta: Optional[DeltaCascadeEngine] = None
        self._delta_base_key: Optional[DeploymentKey] = None
        if self.backend == "compiled":
            self._engine = CompiledCascadeEngine(
                graph.compiled(), self.num_samples, seed,
                shard_size=shard_size, workers=workers, pool=pool,
                use_kernel=use_kernel, shared_memory=shared_memory,
            )
            if incremental:
                self._delta = DeltaCascadeEngine(self._engine)
        else:
            self._worlds = tuple(sample_worlds(graph, self.num_samples, seed))
        self.incremental = self._delta is not None
        self.shard_size = self._engine.shard_size if self._engine is not None else None
        self.workers = self._engine.workers if self._engine is not None else 1
        self.pool = self._engine.pool if self._engine is not None else None
        engine = self._engine
        #: Whether the native cascade kernel executes this estimator's worlds,
        #: which backend resolved, and what warming its JIT cost (benchmark
        #: instrumentation; all trivially False/None/0.0 on the dict backend).
        self.kernel_active = engine.kernel_active if engine is not None else False
        self.kernel_backend = engine.kernel_backend if engine is not None else None
        self.kernel_compile_seconds = (
            engine.kernel_compile_seconds if engine is not None else 0.0
        )
        #: Whether the zero-copy shared-memory transport carries this
        #: estimator's graph and world blocks (always False on the dict
        #: backend, where nothing is compiled to share).
        self.shared_memory_active = (
            engine.shared_memory if engine is not None else False
        )
        if pipeline_depth is not None:
            pipeline_depth = int(pipeline_depth)
            if pipeline_depth < 1:
                raise EstimationError(
                    f"pipeline_depth must be >= 1 or None, got {pipeline_depth}"
                )
        #: In-flight evaluations a batch keeps pending before draining the
        #: oldest — the default is wide enough to keep every worker busy,
        #: narrow enough to bound the parent's result buffering.
        self.pipeline_depth = (
            pipeline_depth if pipeline_depth is not None
            else max(2, 2 * self.workers)
        )
        self._benefit_cache: Dict[DeploymentKey, float] = {}
        self._probability_cache: Dict[DeploymentKey, Dict[NodeId, float]] = {}
        self.evaluations = 0

    # ------------------------------------------------------------------

    def expected_benefit(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> float:
        seeds = _canonical_seeds(seeds)
        key = self._key(seeds, allocation)
        cached = self._benefit_cache.get(key)
        if cached is not None:
            return cached
        if self._engine is not None:
            benefit = self._evaluate_compiled(key, seeds, allocation)[1]
        else:
            benefit = self._evaluate_benefit(seeds, allocation)
            self._remember(self._benefit_cache, key, benefit)
        return benefit

    def submit_many(
        self, deployments: Sequence[Tuple[Iterable[NodeId], Mapping[NodeId, int]]]
    ) -> List[float]:
        """Expected benefits of a batch of deployments, pipelined.

        The scheduler's batch primitive (every :class:`EvaluationPlan` this
        estimator hands out executes through here).  Returns exactly what
        calling :meth:`expected_benefit` per deployment would return — same
        numbers, same memoisation — but on a parallel compiled engine the
        uncached evaluations are *submitted* ahead of being drained (up to
        :attr:`pipeline_depth` in flight), so the parent's streaming
        reductions overlap the workers' cascades instead of alternating with
        them.
        """
        deployments = [
            (_canonical_seeds(seeds), allocation) for seeds, allocation in deployments
        ]
        if self._engine is None:
            return [
                self.expected_benefit(seeds, allocation)
                for seeds, allocation in deployments
            ]
        results: List[Optional[float]] = [None] * len(deployments)
        in_flight: "OrderedDict[DeploymentKey, Tuple[object, List[int]]]" = (
            OrderedDict()
        )

        def drain_oldest() -> None:
            key, (run, indices) = next(iter(in_flight.items()))
            del in_flight[key]
            counts, benefit = run.result()
            self._remember(self._benefit_cache, key, benefit)
            self._remember(
                self._probability_cache, key, self._counts_to_probabilities(counts)
            )
            self.evaluations += 1
            for position in indices:
                results[position] = benefit

        for position, (seeds, allocation) in enumerate(deployments):
            key = self._key(seeds, allocation)
            cached = self._benefit_cache.get(key)
            if cached is not None:
                results[position] = cached
                continue
            entry = in_flight.get(key)
            if entry is not None:
                entry[1].append(position)
                continue
            in_flight[key] = (self._engine.submit(seeds, allocation), [position])
            if len(in_flight) >= self.pipeline_depth:
                drain_oldest()
        while in_flight:
            drain_oldest()
        return results

    def activation_probabilities(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> Dict[NodeId, float]:
        seeds = _canonical_seeds(seeds)
        key = self._key(seeds, allocation)
        cached = self._probability_cache.get(key)
        if cached is not None:
            return dict(cached)
        if self._engine is not None:
            return dict(self._evaluate_compiled(key, seeds, allocation)[0])
        counts: Dict[NodeId, int] = {}
        for world in self._worlds:
            for node in cascade_in_world(self.graph, world, seeds, allocation):
                counts[node] = counts.get(node, 0) + 1
        probabilities = {
            node: count / self.num_samples for node, count in counts.items()
        }
        self._remember(self._probability_cache, key, probabilities)
        self.evaluations += 1
        return dict(probabilities)

    def expected_spreads(
        self, deployments: Sequence[Tuple[Iterable[NodeId], Mapping[NodeId, int]]]
    ) -> List[float]:
        """Expected activation counts of a batch of deployments, pipelined.

        On the compiled backend one pipelined pass per uncached deployment
        warms both memo caches (:meth:`submit_many` stores benefit *and*
        activation probabilities from the same counts), after which the
        per-deployment :meth:`expected_spread` reads are cache hits — the
        returned values are bit-identical to looping :meth:`expected_spread`
        without the batch.
        """
        if self._engine is not None:
            self.submit_many(deployments)
        return [
            self.expected_spread(seeds, allocation)
            for seeds, allocation in deployments
        ]

    def expected_activations_and_benefit(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> Tuple[float, float]:
        """Return ``(expected #activated, expected benefit)`` in one pass."""
        probabilities = self.activation_probabilities(seeds, allocation)
        spread = sum(probabilities.values())
        benefit = sum(
            self.graph.benefit(node) * probability
            for node, probability in probabilities.items()
        )
        return spread, benefit

    def clear_cache(self) -> None:
        """Drop all memoised evaluations (worlds are kept)."""
        self._benefit_cache.clear()
        self._probability_cache.clear()

    def close(self) -> None:
        """Release the worker pool, if one was started (idempotent)."""
        if self._engine is not None:
            self._engine.close()

    def __enter__(self) -> "MonteCarloEstimator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # incremental (delta) evaluation
    # ------------------------------------------------------------------

    @property
    def supports_incremental(self) -> bool:
        """Whether the delta-evaluation engine is available."""
        return self._delta is not None

    @property
    def delta_snapshot_passes(self) -> int:
        """Instrumented full passes the delta engine has run (0 without one)."""
        return self._delta.snapshot_passes if self._delta is not None else 0

    @property
    def delta_spliced_advances(self) -> int:
        """Accepted coupon moves spliced into the snapshot without a full pass."""
        return self._delta.spliced_advances if self._delta is not None else 0

    @property
    def delta_spliced_seed_advances(self) -> int:
        """Accepted pivot (seed) moves spliced into the snapshot without a full pass."""
        return self._delta.spliced_seed_advances if self._delta is not None else 0

    def snapshot_base(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> float:
        """Make ``(seeds, allocation)`` the delta-evaluation base deployment.

        A no-op when the deployment is already the snapshot.  The
        instrumented pass doubles as a full evaluation: both the expected
        benefit and the activation probabilities of the base are memoised, so
        the surrounding greedy loop pays one pass per iteration in total.
        Returns the base expected benefit.
        """
        delta = self._require_delta()
        seeds = _canonical_seeds(seeds)
        key = self._key(seeds, allocation)
        if key == self._delta_base_key and delta.has_snapshot:
            return delta.base_benefit
        counts, benefit = delta.snapshot(seeds, allocation)
        self._delta_base_key = key
        self._remember(self._benefit_cache, key, benefit)
        self._remember(
            self._probability_cache, key, self._counts_to_probabilities(counts)
        )
        self.evaluations += 1
        return benefit

    def advance_base(
        self,
        outcome: DeltaOutcome,
        node: NodeId,
        new_seeds: Iterable[NodeId],
        new_allocation: Mapping[NodeId, int],
    ) -> float:
        """Advance the delta base to an accepted move's resulting deployment.

        ``outcome`` must be the accepted move's own :class:`DeltaOutcome`
        (evaluated for exactly ``(new_seeds, new_allocation)`` against the
        current base).  Its already re-simulated worlds are spliced into the
        snapshot surgically — no instrumented full pass — leaving the engine
        in a state identical to :meth:`snapshot_base` on the new deployment.
        Falls back to :meth:`snapshot_base` when the outcome cannot be
        spliced (fallback outcome, seed change, stale record).  Returns the
        new base benefit either way; the benefit and the base's activation
        probabilities are memoised exactly as a fresh snapshot would.
        """
        delta = self._require_delta()
        new_seeds = _canonical_seeds(new_seeds)
        key = self._key(new_seeds, new_allocation)
        if key == self._delta_base_key and delta.has_snapshot:
            return delta.base_benefit
        benefit = delta.splice_base(outcome, node, new_seeds, new_allocation)
        if benefit is None:
            return self.snapshot_base(new_seeds, new_allocation)
        self._delta_base_key = key
        self._remember(self._benefit_cache, key, benefit)
        self._remember(
            self._probability_cache,
            key,
            self._counts_to_probabilities(delta.base_counts),
        )
        return benefit

    def advance_base_new_seed(
        self,
        node: NodeId,
        new_seeds: Iterable[NodeId],
        new_allocation: Mapping[NodeId, int],
    ) -> float:
        """Advance the delta base to an accepted *pivot*'s resulting deployment.

        The accepted seed-add is delta-evaluated against the current base
        (:meth:`DeltaCascadeEngine.eval_new_seed` with the clean-world
        limited-bit bookkeeping collected) and spliced into the snapshot —
        re-simulating only the worlds the new seed can change instead of the
        O(num_samples) instrumented pass a fresh :meth:`snapshot_base` would
        pay.  The spliced snapshot is bit-identical to a fresh one.  Falls
        back to :meth:`snapshot_base` when the splice is refused.  Returns
        the new base benefit either way, memoised exactly as a fresh
        snapshot would be.
        """
        delta = self._require_delta()
        new_seeds = _canonical_seeds(new_seeds)
        key = self._key(new_seeds, new_allocation)
        if key == self._delta_base_key and delta.has_snapshot:
            return delta.base_benefit
        if not delta.has_snapshot:
            return self.snapshot_base(new_seeds, new_allocation)
        outcome = delta.eval_new_seed(
            node, new_seeds, new_allocation, collect_clean_limited=True
        )
        if not outcome.exact:
            return self.snapshot_base(new_seeds, new_allocation)
        self.evaluations += 1
        benefit = delta.splice_base_new_seed(outcome, node, new_seeds, new_allocation)
        if benefit is None:
            return self.snapshot_base(new_seeds, new_allocation)
        self._delta_base_key = key
        self._remember(self._benefit_cache, key, benefit)
        self._remember(
            self._probability_cache,
            key,
            self._counts_to_probabilities(delta.base_counts),
        )
        return benefit

    def delta_extra_coupon(
        self,
        base_seeds: Iterable[NodeId],
        base_allocation: Mapping[NodeId, int],
        node: NodeId,
        new_seeds: Iterable[NodeId],
        new_allocation: Mapping[NodeId, int],
    ) -> DeltaOutcome:
        """Benefit of the base deployment with one more coupon on ``node``."""
        delta = self._require_delta()
        self.snapshot_base(base_seeds, base_allocation)
        new_seeds = _canonical_seeds(new_seeds)
        outcome = delta.eval_extra_coupon(node, new_seeds, new_allocation)
        self._remember(
            self._benefit_cache, self._key(new_seeds, new_allocation), outcome.benefit
        )
        self.evaluations += 1
        return outcome

    def delta_new_seed(
        self,
        base_seeds: Iterable[NodeId],
        base_allocation: Mapping[NodeId, int],
        node: NodeId,
        new_seeds: Iterable[NodeId],
        new_allocation: Mapping[NodeId, int],
    ) -> DeltaOutcome:
        """Benefit of the base deployment with ``node`` added as a seed."""
        delta = self._require_delta()
        self.snapshot_base(base_seeds, base_allocation)
        new_seeds = _canonical_seeds(new_seeds)
        outcome = delta.eval_new_seed(node, new_seeds, new_allocation)
        self._remember(
            self._benefit_cache, self._key(new_seeds, new_allocation), outcome.benefit
        )
        self.evaluations += 1
        return outcome

    def refresh_delta_benefit(
        self,
        outcome: DeltaOutcome,
        new_seeds: Iterable[NodeId],
        new_allocation: Mapping[NodeId, int],
    ) -> float:
        """Re-derive a still-valid outcome's benefit against the current base."""
        delta = self._require_delta()
        benefit = delta.refresh_benefit(outcome)
        self._remember(
            self._benefit_cache, self._key(new_seeds, new_allocation), benefit
        )
        return benefit

    def coupon_dirty_worlds(self, node: NodeId) -> Tuple[int, ...]:
        """Worlds an extra coupon on ``node`` can change, per current snapshot."""
        return self._require_delta().coupon_dirty_worlds(node)

    # ------------------------------------------------------------------
    # dynamic graphs: event ingestion + snapshot reconciliation
    # ------------------------------------------------------------------

    @property
    def delta_reconcile_passes(self) -> int:
        """Graph-event reconciliations absorbed without a snapshot pass."""
        return self._delta.reconcile_passes if self._delta is not None else 0

    @property
    def delta_reconciled_worlds(self) -> int:
        """Total dirty worlds re-simulated across all reconciliations."""
        return self._delta.reconciled_worlds if self._delta is not None else 0

    def ingest_events(self, batch) -> ReconcileOutcome:
        """Apply a :class:`~repro.graph.events.GraphEventBatch` end to end.

        Mutates the estimator's :class:`SocialGraph` (delta-recompiling its
        CSR cache) and then reconciles this estimator onto the evolved graph
        via :meth:`reconcile`.  Compiled backend only.
        """
        if self._engine is None:
            raise EstimationError(
                "graph-event ingestion requires the compiled backend"
            )
        application = self.graph.apply_events(batch)
        return self.reconcile(application)

    def reconcile(self, application) -> ReconcileOutcome:
        """Absorb an already-applied graph-event batch without a cold resolve.

        ``application`` is the :class:`~repro.graph.events.EventApplication`
        of a batch applied to this estimator's graph.  The compiled engine is
        evolved in place (delta CSR, rekeyed layered sampler, chained shared
        blocks for clean shards), the memo caches are dropped (they are keyed
        by deployment, not graph version), and a live delta snapshot is
        advanced by re-simulating **only** the worlds whose live-edge draws
        touch a changed edge — bit-identical to a cold instrumented pass on
        the evolved graph.  The base deployment's benefit and probabilities
        are re-memoised, so a subsequent :meth:`snapshot_base` on the same
        deployment stays a no-op.
        """
        if self._engine is None:
            raise EstimationError(
                "graph-event reconciliation requires the compiled backend"
            )
        engine = self._engine
        # Probe dirtiness on a preview of the evolved sampler: layer states
        # are derived deterministically from the frozen base state, so the
        # preview's draws are exactly the post-evolution engine's draws.
        preview = engine.sampler.rekey(
            application.compiled, application.num_new_draws
        )
        mask = dirty_world_mask(preview, application, self.num_samples)
        chained = engine.apply_events(application, dirty_mask=mask)
        self.clear_cache()

        delta = self._delta
        reconciled = False
        base_benefit: Optional[float] = None
        if delta is not None and delta.has_snapshot:
            benefit = delta.reconcile(application, mask)
            if benefit is None:
                # The deployment resolves differently on the new graph (e.g.
                # a previously-unknown seed id now exists): rebuild the
                # snapshot from the kept identifiers — still correct, just
                # not free; the pass shows up in delta_snapshot_passes.
                _, benefit = delta.snapshot(
                    list(delta._base_seeds), dict(delta._base_alloc)
                )
            else:
                reconciled = True
            base_benefit = benefit
            if self._delta_base_key is not None:
                self._remember(self._benefit_cache, self._delta_base_key, benefit)
                self._remember(
                    self._probability_cache,
                    self._delta_base_key,
                    self._counts_to_probabilities(delta.base_counts),
                )
        return ReconcileOutcome(
            num_worlds=self.num_samples,
            dirty_worlds=int(mask.sum()),
            touched_edges=application.touched_edges,
            reconciled=reconciled,
            chained_blocks=chained,
            base_benefit=base_benefit,
        )

    def _require_delta(self) -> DeltaCascadeEngine:
        if self._delta is None:
            raise EstimationError(
                "incremental evaluation requires the compiled backend with "
                "incremental=True"
            )
        return self._delta

    # ------------------------------------------------------------------

    def _evaluate_compiled(
        self,
        key: DeploymentKey,
        seeds: Iterable[NodeId],
        allocation: Mapping[NodeId, int],
    ) -> Tuple[Dict[NodeId, float], float]:
        """One engine pass; memoise both the benefit and the probabilities."""
        counts, benefit = self._engine.run(seeds, allocation)
        probabilities = self._counts_to_probabilities(counts)
        self._remember(self._benefit_cache, key, benefit)
        self._remember(self._probability_cache, key, probabilities)
        self.evaluations += 1
        return probabilities, benefit

    def _counts_to_probabilities(self, counts: np.ndarray) -> Dict[NodeId, float]:
        """Activation-count vector -> per-node probability dict (nonzero only)."""
        node_ids = self._engine.compiled.node_ids
        num_samples = self.num_samples
        return {
            node_ids[int(node_index)]: int(counts[node_index]) / num_samples
            for node_index in np.flatnonzero(counts)
        }

    def _evaluate_benefit(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> float:
        total = 0.0
        graph = self.graph
        for world in self._worlds:
            activated = cascade_in_world(graph, world, seeds, allocation)
            total += sum(graph.benefit(node) for node in activated)
        self.evaluations += 1
        return total / self.num_samples

    def _remember(self, cache: Dict, key: DeploymentKey, value) -> None:
        if len(cache) >= self.cache_size:
            cache.clear()
        cache[key] = value


def _canonical_seeds(seeds: Iterable[NodeId]) -> list:
    """Deterministic seed order shared by every evaluation of the same set."""
    return sorted(seeds, key=str)
