"""Monte-Carlo expected-benefit estimation.

Every algorithm in the library — S3CA's greedy phases, the IM/PM baselines,
the exhaustive optimal solver — needs the expected benefit
``B(S, K(I)) = E[sum of b(v) over activated v]`` for a candidate deployment.
:class:`MonteCarloEstimator` estimates it by averaging the deterministic
cascade over a fixed set of live-edge worlds drawn once per estimator
instance.  Re-using the same worlds for every evaluation (common random
numbers) means the *difference* between two deployments — which is what greedy
decisions compare — has much lower variance than with independent sampling,
and it makes the whole pipeline deterministic for a given seed.

Two interchangeable cascade backends execute the worlds:

``compiled`` (the default)
    The graph is compiled once into CSR arrays
    (:class:`~repro.graph.csr.CompiledGraph`) and all coin flips are drawn as
    flat masks by the vectorized
    :class:`~repro.diffusion.engine.CompiledCascadeEngine`.  One pass yields
    both the expected benefit and the activation counts, so an
    ``expected_benefit`` call warms the ``activation_probabilities`` cache
    and vice versa.
``dict``
    The original implementation over ``SocialGraph``'s adjacency dicts and
    :func:`~repro.diffusion.live_edge.cascade_in_world`.  Kept as the
    reference semantics and for graphs that are mutated after the estimator
    is built (the compiled backend snapshots the graph at construction).

Both backends consume the RNG stream identically, so for a fixed seed they
produce the *same worlds* and the same activation probabilities, bit for bit;
expected benefits can differ in the last few ulps only (floating-point
summation order).

Results are memoised on the (frozen) deployment, because the greedy loops of
S3CA re-evaluate the same base deployment against many candidate increments.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Tuple

import numpy as np

from repro.diffusion.engine import CompiledCascadeEngine
from repro.diffusion.estimator import BenefitEstimator, DeploymentKey
from repro.diffusion.live_edge import LiveEdgeWorld, cascade_in_world, sample_worlds
from repro.exceptions import EstimationError
from repro.graph.social_graph import SocialGraph
from repro.utils.rng import SeedLike

NodeId = Hashable

__all__ = ["BenefitEstimator", "MonteCarloEstimator"]

_BACKENDS = ("auto", "compiled", "dict")


class MonteCarloEstimator(BenefitEstimator):
    """Expected benefit by averaging over shared live-edge worlds.

    Parameters
    ----------
    graph:
        The social graph (with benefits attached).
    num_samples:
        Number of live-edge worlds.  More worlds = lower variance and more
        runtime; the experiments use a few hundred, unit tests a handful.
    seed:
        Seed controlling the world draws (and hence every estimate).
    cache_size:
        Maximum number of memoised deployments; the cache is cleared wholesale
        when it grows past this bound (the greedy loops have strong temporal
        locality, so a simple policy is sufficient).
    backend:
        ``"compiled"`` (CSR + vectorized engine), ``"dict"`` (the original
        adjacency-dict cascade) or ``"auto"`` (currently ``compiled``).
    """

    def __init__(
        self,
        graph: SocialGraph,
        num_samples: int = 200,
        seed: SeedLike = None,
        *,
        cache_size: int = 50_000,
        backend: str = "auto",
    ) -> None:
        super().__init__(graph)
        if num_samples <= 0:
            raise EstimationError(f"num_samples must be > 0, got {num_samples}")
        if backend not in _BACKENDS:
            raise EstimationError(
                f"unknown backend {backend!r}; expected one of {_BACKENDS}"
            )
        self.num_samples = int(num_samples)
        self.cache_size = int(cache_size)
        self.backend = "compiled" if backend == "auto" else backend
        self._worlds: Tuple[LiveEdgeWorld, ...] = ()
        self._engine = None
        if self.backend == "compiled":
            self._engine = CompiledCascadeEngine(graph, self.num_samples, seed)
        else:
            self._worlds = tuple(sample_worlds(graph, self.num_samples, seed))
        self._benefit_cache: Dict[DeploymentKey, float] = {}
        self._probability_cache: Dict[DeploymentKey, Dict[NodeId, float]] = {}
        self.evaluations = 0

    # ------------------------------------------------------------------

    def expected_benefit(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> float:
        seeds = list(seeds)
        key = self._key(seeds, allocation)
        cached = self._benefit_cache.get(key)
        if cached is not None:
            return cached
        if self._engine is not None:
            benefit = self._evaluate_compiled(key, seeds, allocation)[1]
        else:
            benefit = self._evaluate_benefit(seeds, allocation)
            self._remember(self._benefit_cache, key, benefit)
        return benefit

    def activation_probabilities(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> Dict[NodeId, float]:
        seeds = list(seeds)
        key = self._key(seeds, allocation)
        cached = self._probability_cache.get(key)
        if cached is not None:
            return dict(cached)
        if self._engine is not None:
            return dict(self._evaluate_compiled(key, seeds, allocation)[0])
        counts: Dict[NodeId, int] = {}
        for world in self._worlds:
            for node in cascade_in_world(self.graph, world, seeds, allocation):
                counts[node] = counts.get(node, 0) + 1
        probabilities = {
            node: count / self.num_samples for node, count in counts.items()
        }
        self._remember(self._probability_cache, key, probabilities)
        self.evaluations += 1
        return dict(probabilities)

    def expected_activations_and_benefit(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> Tuple[float, float]:
        """Return ``(expected #activated, expected benefit)`` in one pass."""
        probabilities = self.activation_probabilities(seeds, allocation)
        spread = sum(probabilities.values())
        benefit = sum(
            self.graph.benefit(node) * probability
            for node, probability in probabilities.items()
        )
        return spread, benefit

    def clear_cache(self) -> None:
        """Drop all memoised evaluations (worlds are kept)."""
        self._benefit_cache.clear()
        self._probability_cache.clear()

    # ------------------------------------------------------------------

    def _evaluate_compiled(
        self,
        key: DeploymentKey,
        seeds: Iterable[NodeId],
        allocation: Mapping[NodeId, int],
    ) -> Tuple[Dict[NodeId, float], float]:
        """One engine pass; memoise both the benefit and the probabilities."""
        counts, benefit = self._engine.run(seeds, allocation)
        node_ids = self._engine.compiled.node_ids
        num_samples = self.num_samples
        probabilities = {
            node_ids[int(node_index)]: int(counts[node_index]) / num_samples
            for node_index in np.flatnonzero(counts)
        }
        self._remember(self._benefit_cache, key, benefit)
        self._remember(self._probability_cache, key, probabilities)
        self.evaluations += 1
        return probabilities, benefit

    def _evaluate_benefit(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> float:
        total = 0.0
        graph = self.graph
        for world in self._worlds:
            activated = cascade_in_world(graph, world, seeds, allocation)
            total += sum(graph.benefit(node) for node in activated)
        self.evaluations += 1
        return total / self.num_samples

    def _remember(self, cache: Dict, key: DeploymentKey, value) -> None:
        if len(cache) >= self.cache_size:
            cache.clear()
        cache[key] = value
