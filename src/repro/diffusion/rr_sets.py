"""Reverse-reachable (RR) set estimation for plain-IC influence.

The IM literature the paper builds its baselines on (Tang et al.'s TIM/IMM
line, cited as the "reverse greedy" speed-up in Sec. V) estimates influence
spreads from *reverse-reachable sets*: pick a random target user, reveal the
in-edges that are live in one coin-flip world, and collect every user that can
reach the target through live edges.  The expected spread of a seed set ``S``
is then ``n * P(S hits a random RR set)``, and greedy seed selection becomes a
maximum-coverage problem over the sampled RR sets.

This module provides that machinery for the **plain IC model** (the model the
IM/PM baselines reason in).  It is used as the screening tier of the two-tier
estimator (:mod:`repro.diffusion.tiered`), as a faster backend for the IM
selector on larger graphs, and as an independent cross-check of the
Monte-Carlo estimator in tests.  Note that it does not apply to the
SC-constrained cascade: coupon limits break the reverse-reachability argument
because whether an edge can carry influence depends on how many *other*
neighbours redeemed first.

Backends
--------
Sampling runs over a reverse-adjacency CSR built once per sampler
(``backend="csr"``, the default): per BFS-popped node the in-edge slice is
masked against a visited stamp array and the survivors' coin flips are drawn
with one vectorized ``rng.random(k)`` call.  Because numpy's ``Generator``
fills a size-``k`` request with exactly the ``k`` doubles that ``k`` scalar
calls would produce, and the reverse CSR preserves each node's
``in_neighbors`` iteration order, the CSR sampler consumes the RNG stream
*identically* to the original dict-adjacency BFS — the sets are bit-for-bit
equal (property-tested in ``tests/properties/test_rr_parity.py``).  The dict
path is kept as the parity oracle (``backend="dict"``).

Either way the sampled sets land in flat int arrays (``rr_flat`` /
``rr_offsets`` / ``root_index``) plus an inverted membership CSR, so coverage
queries, benefit bounds and screening scores are vectorized and the arrays
can ride the shared-memory machinery unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.diffusion.estimator import BenefitEstimator
from repro.exceptions import EstimationError
from repro.graph.social_graph import SocialGraph
from repro.utils.indexed_heap import IndexedMaxHeap
from repro.utils.rng import SeedLike, spawn_rng

NodeId = Hashable

SAMPLER_BACKENDS = ("csr", "dict")


class RRSetSampler:
    """Sampler and coverage-based spread estimator over RR sets.

    Parameters
    ----------
    graph:
        The social graph (only edge probabilities are used).
    num_sets:
        Number of RR sets to sample.  More sets = lower estimation variance.
    seed:
        RNG seed; the sampler is fully deterministic given it.
    backend:
        ``"csr"`` (default) samples over the flat reverse-adjacency arrays;
        ``"dict"`` keeps the original dict-adjacency BFS as the parity
        oracle.  Both produce bit-identical sets for the same seed.
    """

    def __init__(
        self,
        graph: SocialGraph,
        num_sets: int = 2000,
        seed: SeedLike = None,
        backend: str = "csr",
    ) -> None:
        if num_sets <= 0:
            raise EstimationError(f"num_sets must be > 0, got {num_sets}")
        if backend not in SAMPLER_BACKENDS:
            raise EstimationError(
                f"unknown RR sampler backend {backend!r}; pick one of {SAMPLER_BACKENDS}"
            )
        self.graph = graph
        self.num_sets = int(num_sets)
        self.backend = backend
        self._rng = spawn_rng(seed)
        self._nodes: List[NodeId] = list(graph.nodes())
        if not self._nodes:
            raise EstimationError("cannot sample RR sets of an empty graph")
        self.index_of: Dict[NodeId, int] = {
            node: index for index, node in enumerate(self._nodes)
        }
        #: Flat node-index storage of the sampled sets: set ``i`` is
        #: ``rr_flat[rr_offsets[i]:rr_offsets[i+1]]`` (in BFS visit order).
        self.rr_flat: np.ndarray
        self.rr_offsets: np.ndarray
        #: Node index of each set's random target.
        self.root_index: np.ndarray
        self._materialized: Optional[List[FrozenSet[NodeId]]] = None
        self._mem_offsets: Optional[np.ndarray] = None
        self._mem_sets: Optional[np.ndarray] = None
        if backend == "csr":
            self._build_reverse_csr()
            self._sample_all_csr()
        else:
            self._sample_all_dict()
        self.roots: List[NodeId] = [self._nodes[i] for i in self.root_index]

    @property
    def nodes(self) -> Sequence[NodeId]:
        """Node ids in index order (the inverse of :attr:`index_of`)."""
        return self._nodes

    @property
    def rr_sets(self) -> List[FrozenSet[NodeId]]:
        """The sampled sets as node-id frozensets (materialized lazily)."""
        if self._materialized is None:
            nodes = self._nodes
            flat = self.rr_flat
            offsets = self.rr_offsets
            self._materialized = [
                frozenset(nodes[j] for j in flat[offsets[i] : offsets[i + 1]])
                for i in range(self.num_sets)
            ]
        return self._materialized

    # ------------------------------------------------------------------
    # sampling backends

    def _build_reverse_csr(self) -> None:
        """Reverse adjacency in ``in_neighbors`` iteration order per node.

        The per-node ordering matters: the BFS draws one coin per unvisited
        in-neighbour in iteration order, so preserving it is what keeps the
        CSR backend bit-identical to the dict path.
        """
        index_of = self.index_of
        offsets = np.zeros(len(self._nodes) + 1, dtype=np.int64)
        source_chunks: List[np.ndarray] = []
        prob_chunks: List[np.ndarray] = []
        for index, node in enumerate(self._nodes):
            preds = self.graph.in_neighbors(node)
            offsets[index + 1] = offsets[index] + len(preds)
            if preds:
                source_chunks.append(
                    np.fromiter(
                        (index_of[source] for source in preds), np.int64, len(preds)
                    )
                )
                prob_chunks.append(
                    np.fromiter(preds.values(), np.float64, len(preds))
                )
        self._rin_offsets = offsets
        if source_chunks:
            self._rin_sources = np.concatenate(source_chunks)
            self._rin_probs = np.concatenate(prob_chunks)
        else:
            self._rin_sources = np.empty(0, dtype=np.int64)
            self._rin_probs = np.empty(0, dtype=np.float64)

    def _sample_all_csr(self) -> None:
        rng = self._rng
        num_nodes = len(self._nodes)
        offsets = self._rin_offsets
        sources = self._rin_sources
        probs = self._rin_probs
        stamp = np.full(num_nodes, -1, dtype=np.int64)
        queue = np.empty(num_nodes, dtype=np.int64)
        root_index = np.empty(self.num_sets, dtype=np.int64)
        rr_offsets = np.zeros(self.num_sets + 1, dtype=np.int64)
        chunks: List[np.ndarray] = []
        for set_id in range(self.num_sets):
            target = int(rng.integers(0, num_nodes))
            root_index[set_id] = target
            stamp[target] = set_id
            queue[0] = target
            head, tail = 0, 1
            while head < tail:
                node = int(queue[head])
                head += 1
                lo = offsets[node]
                hi = offsets[node + 1]
                if lo == hi:
                    continue
                in_sources = sources[lo:hi]
                unvisited = stamp[in_sources] != set_id
                candidates = in_sources[unvisited]
                if candidates.size == 0:
                    continue
                draws = rng.random(candidates.size)
                accepted = candidates[draws < probs[lo:hi][unvisited]]
                if accepted.size:
                    stamp[accepted] = set_id
                    queue[tail : tail + accepted.size] = accepted
                    tail += accepted.size
            chunks.append(queue[:tail].copy())
            rr_offsets[set_id + 1] = rr_offsets[set_id] + tail
        self.rr_flat = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        )
        self.rr_offsets = rr_offsets
        self.root_index = root_index

    def _sample_all_dict(self) -> None:
        sampled = [self._sample_one_dict() for _ in range(self.num_sets)]
        index_of = self.index_of
        rr_offsets = np.zeros(self.num_sets + 1, dtype=np.int64)
        chunks: List[np.ndarray] = []
        root_index = np.empty(self.num_sets, dtype=np.int64)
        for set_id, (root, members) in enumerate(sampled):
            root_index[set_id] = index_of[root]
            rr_offsets[set_id + 1] = rr_offsets[set_id] + len(members)
            chunks.append(
                np.fromiter(
                    (index_of[node] for node in members), np.int64, len(members)
                )
            )
        self.rr_flat = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        )
        self.rr_offsets = rr_offsets
        self.root_index = root_index
        self._materialized = [frozenset(members) for _, members in sampled]

    def _sample_one_dict(self) -> Tuple[NodeId, Set[NodeId]]:
        """One RR set: reverse BFS from a random target over live in-edges."""
        target = self._nodes[int(self._rng.integers(0, len(self._nodes)))]
        visited: Set[NodeId] = {target}
        frontier = deque([target])
        while frontier:
            node = frontier.popleft()
            for source, probability in self.graph.in_neighbors(node).items():
                if source in visited:
                    continue
                if self._rng.random() < probability:
                    visited.add(source)
                    frontier.append(source)
        return target, visited

    # ------------------------------------------------------------------
    # membership CSR (node -> sampled sets containing it) and coverage

    def _ensure_membership(self) -> None:
        if self._mem_offsets is not None:
            return
        num_nodes = len(self._nodes)
        counts = np.bincount(self.rr_flat, minlength=num_nodes)
        order = np.argsort(self.rr_flat, kind="stable")
        set_ids = np.repeat(
            np.arange(self.num_sets, dtype=np.int64), np.diff(self.rr_offsets)
        )
        self._mem_sets = set_ids[order]
        self._mem_offsets = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=self._mem_offsets[1:])

    def member_sets(self, index: int) -> np.ndarray:
        """Ids of the sampled sets containing node *index* (ascending)."""
        self._ensure_membership()
        assert self._mem_offsets is not None and self._mem_sets is not None
        return self._mem_sets[self._mem_offsets[index] : self._mem_offsets[index + 1]]

    def _seed_indices(self, seeds: Iterable[NodeId]) -> List[int]:
        index_of = self.index_of
        return [index_of[seed] for seed in set(seeds) if seed in index_of]

    def hit_mask(self, seed_indices: Sequence[int]) -> np.ndarray:
        """Boolean mask over set ids: which sampled sets the seeds hit."""
        self._ensure_membership()
        assert self._mem_offsets is not None and self._mem_sets is not None
        hit = np.zeros(self.num_sets, dtype=bool)
        offsets, members = self._mem_offsets, self._mem_sets
        for index in seed_indices:
            hit[members[offsets[index] : offsets[index + 1]]] = True
        return hit

    def hit_root_counts(self, seed_indices: Sequence[int]) -> np.ndarray:
        """Per-root counts of hit sets: entry ``r`` = #{sets rooted at ``r`` hit}."""
        hit_ids = np.flatnonzero(self.hit_mask(seed_indices))
        return np.bincount(
            self.root_index[hit_ids], minlength=len(self._nodes)
        )

    def coverage(self, seeds: Iterable[NodeId]) -> int:
        """Number of sampled RR sets hit by ``seeds``."""
        seed_indices = self._seed_indices(seeds)
        if not seed_indices:
            return 0
        return int(self.hit_mask(seed_indices).sum())

    def expected_spread(self, seeds: Iterable[NodeId]) -> float:
        """Estimated expected number of activated users under plain IC."""
        return self.graph.num_nodes * self.coverage(seeds) / self.num_sets

    def greedy_seeds(self, k: int) -> List[NodeId]:
        """Greedy maximum coverage over the RR sets (the RR-set IM solver).

        Returns up to ``k`` seeds in selection order.  Uses the standard lazy
        evaluation: node gains only decrease as sets get covered, so a stale
        heap priority is always an upper bound.
        """
        if k <= 0:
            return []
        membership: Dict[NodeId, List[int]] = {}
        for index, rr in enumerate(self.rr_sets):
            for node in rr:
                membership.setdefault(node, []).append(index)

        heap: IndexedMaxHeap = IndexedMaxHeap()
        for node, sets in membership.items():
            heap.push(node, float(len(sets)))

        covered = [False] * self.num_sets
        stale: Dict[NodeId, bool] = {node: False for node in membership}
        selected: List[NodeId] = []
        while heap and len(selected) < k:
            node, gain = heap.pop()
            if stale[node]:
                fresh_gain = float(
                    sum(1 for index in membership[node] if not covered[index])
                )
                stale[node] = False
                heap.push(node, fresh_gain)
                continue
            if gain <= 0:
                break
            selected.append(node)
            for index in membership[node]:
                covered[index] = True
            for other in stale:
                stale[other] = True
        return selected


class RRBenefitEstimator(BenefitEstimator):
    """RR-set-backed :class:`BenefitEstimator` for the plain-IC regime.

    The RR-set argument applies to the **unlimited-coupon** relaxation of the
    SC-constrained cascade (plain IC): the coupon allocation passed to
    :meth:`expected_benefit` / :meth:`activation_probabilities` is ignored and
    every activated user is assumed able to refer all her friends.  That makes
    this estimator an *upper-bound* oracle — useful for the IM-U/PM-U
    baselines, for candidate pre-screening, as the screening tier of
    :class:`~repro.diffusion.tiered.TieredEstimator`, and for cross-checking
    the Monte-Carlo estimator — but NOT a drop-in replacement inside the
    coupon aware greedy phases; use the ``mc-compiled`` method there.

    A node's activation probability is estimated from the RR sets *rooted at
    that node*: ``P(v active | S) ~ fraction of RR(v) samples hit by S``.
    With ``num_sets`` samples spread uniformly over roots, each node gets
    about ``num_sets / n`` of them, so size ``num_sets`` accordingly (the
    factory defaults to a multiple of ``n``).
    """

    def __init__(
        self,
        graph: SocialGraph,
        num_sets: int = 2000,
        seed: SeedLike = None,
        backend: str = "csr",
    ) -> None:
        super().__init__(graph)
        self.sampler = RRSetSampler(
            graph, num_sets=num_sets, seed=seed, backend=backend
        )
        self._by_root: Dict[NodeId, List[int]] = {}
        for index, root in enumerate(self.sampler.roots):
            self._by_root.setdefault(root, []).append(index)
        self._root_counts = np.bincount(
            self.sampler.root_index, minlength=len(self.sampler.nodes)
        )
        self._benefits = np.fromiter(
            (graph.benefit(node) for node in self.sampler.nodes),
            np.float64,
            len(self.sampler.nodes),
        )
        self._singleton_vec: Optional[np.ndarray] = None

    def activation_probabilities(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> Dict[NodeId, float]:
        seed_set = {seed for seed in seeds if seed in self.graph}
        if not seed_set:
            return {}
        sampler = self.sampler
        hits = sampler.hit_root_counts(
            [sampler.index_of[seed] for seed in seed_set]
        )
        index_of = sampler.index_of
        probabilities: Dict[NodeId, float] = {}
        for root, indices in self._by_root.items():
            hit = int(hits[index_of[root]])
            if hit:
                probabilities[root] = hit / len(indices)
        for seed in seed_set:  # seeds are certainly active, sampled or not
            probabilities[seed] = 1.0
        return probabilities

    def expected_benefit(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> float:
        probabilities = self.activation_probabilities(seeds, allocation)
        graph = self.graph
        return sum(
            graph.benefit(node) * probability
            for node, probability in probabilities.items()
        )

    # ------------------------------------------------------------------
    # vectorized screening scores (the two-tier estimator's fast path)

    def benefit_bound(self, seeds: Iterable[NodeId]) -> float:
        """Plain-IC benefit estimate of ``seeds``, fully vectorized.

        Numerically equal to :meth:`expected_benefit` up to float summation
        order; used as the screening score where bit-level agreement with the
        per-slot path is not required.
        """
        sampler = self.sampler
        seed_indices = [
            sampler.index_of[seed] for seed in set(seeds) if seed in sampler.index_of
        ]
        if not seed_indices:
            return 0.0
        hits = sampler.hit_root_counts(seed_indices)
        fractions = np.zeros(len(self._root_counts), dtype=np.float64)
        sampled = self._root_counts > 0
        fractions[sampled] = hits[sampled] / self._root_counts[sampled]
        fractions[seed_indices] = 1.0  # seeds are certainly active
        return float(np.dot(self._benefits, fractions))

    def benefit_bounds(
        self, deployments: Sequence[Tuple[Iterable[NodeId], Mapping[NodeId, int]]]
    ) -> List[float]:
        """Screening scores for a batch of ``(seeds, allocation)`` specs.

        Allocations are ignored (plain-IC relaxation): deployments differing
        only in coupon placement score identically, which is exactly what
        makes the tier's ``>=``-band screening structurally lossless on
        same-seed-set batches.  Singleton seed sets — the shape of the whole
        pivot-queue batch — read from the precomputed all-nodes bound vector
        (:meth:`singleton_bound`), so screening a thousand-slot batch costs
        one weighted ``bincount``, not a thousand coverage queries.
        """
        results: List[float] = []
        for seeds, _ in deployments:
            materialized = (
                seeds
                if isinstance(seeds, (list, tuple, set, frozenset))
                else list(seeds)
            )
            if len(materialized) == 1:
                results.append(self.singleton_bound(next(iter(materialized))))
            else:
                results.append(self.benefit_bound(materialized))
        return results

    def _ensure_singleton_bounds(self) -> None:
        """Every node's singleton bound in one vectorized pass.

        For a single seed ``v`` the per-root hit fraction is degenerate: a set
        is hit iff it contains ``v``, and every set rooted at ``v`` contains
        ``v`` (fraction 1, matching the seeds-are-active override).  So the
        bound collapses to ``sum over sets containing v of
        benefit(root)/count(root)`` — one ``bincount`` of ``rr_flat`` weighted
        by each set's root term — plus the own-benefit term for nodes no set
        is rooted at.
        """
        if self._singleton_vec is not None:
            return
        sampler = self.sampler
        counts = self._root_counts
        root_weight = np.where(
            counts[sampler.root_index] > 0,
            self._benefits[sampler.root_index]
            / np.maximum(counts[sampler.root_index], 1),
            0.0,
        )
        flat_weights = root_weight[
            np.repeat(
                np.arange(sampler.num_sets, dtype=np.int64),
                np.diff(sampler.rr_offsets),
            )
        ]
        raw = np.bincount(
            sampler.rr_flat, weights=flat_weights, minlength=len(self._benefits)
        )
        self._singleton_vec = raw + self._benefits * (counts == 0)

    def singleton_bound(self, node: NodeId) -> float:
        """The single-seed screening score of ``node``, from the bound vector.

        Numerically equal to ``benefit_bound([node])`` up to float summation
        order (both are used only for ordering and banded thresholds).
        """
        index = self.sampler.index_of.get(node)
        if index is None:
            return 0.0
        self._ensure_singleton_bounds()
        assert self._singleton_vec is not None
        return float(self._singleton_vec[index])


def estimate_spread_rr(
    graph: SocialGraph,
    seeds: Sequence[NodeId],
    num_sets: int = 2000,
    seed: SeedLike = None,
) -> float:
    """One-shot RR-set spread estimate (convenience wrapper)."""
    sampler = RRSetSampler(graph, num_sets=num_sets, seed=seed)
    return sampler.expected_spread(seeds)
