"""Reverse-reachable (RR) set estimation for plain-IC influence.

The IM literature the paper builds its baselines on (Tang et al.'s TIM/IMM
line, cited as the "reverse greedy" speed-up in Sec. V) estimates influence
spreads from *reverse-reachable sets*: pick a random target user, reveal the
in-edges that are live in one coin-flip world, and collect every user that can
reach the target through live edges.  The expected spread of a seed set ``S``
is then ``n * P(S hits a random RR set)``, and greedy seed selection becomes a
maximum-coverage problem over the sampled RR sets.

This module provides that machinery for the **plain IC model** (the model the
IM/PM baselines reason in).  It is used as an optional faster backend for the
IM selector on larger graphs and as an independent cross-check of the
Monte-Carlo estimator in tests.  Note that it does not apply to the
SC-constrained cascade: coupon limits break the reverse-reachability argument
because whether an edge can carry influence depends on how many *other*
neighbours redeemed first.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
)

from repro.diffusion.estimator import BenefitEstimator
from repro.exceptions import EstimationError
from repro.graph.social_graph import SocialGraph
from repro.utils.indexed_heap import IndexedMaxHeap
from repro.utils.rng import SeedLike, spawn_rng

NodeId = Hashable


class RRSetSampler:
    """Sampler and coverage-based spread estimator over RR sets.

    Parameters
    ----------
    graph:
        The social graph (only edge probabilities are used).
    num_sets:
        Number of RR sets to sample.  More sets = lower estimation variance.
    seed:
        RNG seed; the sampler is fully deterministic given it.
    """

    def __init__(
        self, graph: SocialGraph, num_sets: int = 2000, seed: SeedLike = None
    ) -> None:
        if num_sets <= 0:
            raise EstimationError(f"num_sets must be > 0, got {num_sets}")
        self.graph = graph
        self.num_sets = int(num_sets)
        self._rng = spawn_rng(seed)
        self._nodes: List[NodeId] = list(graph.nodes())
        if not self._nodes:
            raise EstimationError("cannot sample RR sets of an empty graph")
        self.roots: List[NodeId] = []
        self.rr_sets: List[FrozenSet[NodeId]] = [
            self._sample_one() for _ in range(self.num_sets)
        ]

    # ------------------------------------------------------------------

    def _sample_one(self) -> FrozenSet[NodeId]:
        """One RR set: reverse BFS from a random target over live in-edges."""
        target = self._nodes[int(self._rng.integers(0, len(self._nodes)))]
        self.roots.append(target)
        visited: Set[NodeId] = {target}
        frontier = deque([target])
        while frontier:
            node = frontier.popleft()
            for source, probability in self.graph.in_neighbors(node).items():
                if source in visited:
                    continue
                if self._rng.random() < probability:
                    visited.add(source)
                    frontier.append(source)
        return frozenset(visited)

    # ------------------------------------------------------------------

    def coverage(self, seeds: Iterable[NodeId]) -> int:
        """Number of sampled RR sets hit by ``seeds``."""
        seed_set = set(seeds)
        return sum(1 for rr in self.rr_sets if not seed_set.isdisjoint(rr))

    def expected_spread(self, seeds: Iterable[NodeId]) -> float:
        """Estimated expected number of activated users under plain IC."""
        return self.graph.num_nodes * self.coverage(seeds) / self.num_sets

    def greedy_seeds(self, k: int) -> List[NodeId]:
        """Greedy maximum coverage over the RR sets (the RR-set IM solver).

        Returns up to ``k`` seeds in selection order.  Uses the standard lazy
        evaluation: node gains only decrease as sets get covered, so a stale
        heap priority is always an upper bound.
        """
        if k <= 0:
            return []
        membership: Dict[NodeId, List[int]] = {}
        for index, rr in enumerate(self.rr_sets):
            for node in rr:
                membership.setdefault(node, []).append(index)

        heap: IndexedMaxHeap = IndexedMaxHeap()
        for node, sets in membership.items():
            heap.push(node, float(len(sets)))

        covered = [False] * self.num_sets
        stale: Dict[NodeId, bool] = {node: False for node in membership}
        selected: List[NodeId] = []
        while heap and len(selected) < k:
            node, gain = heap.pop()
            if stale[node]:
                fresh_gain = float(
                    sum(1 for index in membership[node] if not covered[index])
                )
                stale[node] = False
                heap.push(node, fresh_gain)
                continue
            if gain <= 0:
                break
            selected.append(node)
            for index in membership[node]:
                covered[index] = True
            for other in stale:
                stale[other] = True
        return selected


class RRBenefitEstimator(BenefitEstimator):
    """RR-set-backed :class:`BenefitEstimator` for the plain-IC regime.

    The RR-set argument applies to the **unlimited-coupon** relaxation of the
    SC-constrained cascade (plain IC): the coupon allocation passed to
    :meth:`expected_benefit` / :meth:`activation_probabilities` is ignored and
    every activated user is assumed able to refer all her friends.  That makes
    this estimator an *upper-bound* oracle — useful for the IM-U/PM-U
    baselines, for candidate pre-screening, and for cross-checking the
    Monte-Carlo estimator — but NOT a drop-in replacement inside the coupon
    aware greedy phases; use the ``mc-compiled`` method there.

    A node's activation probability is estimated from the RR sets *rooted at
    that node*: ``P(v active | S) ~ fraction of RR(v) samples hit by S``.
    With ``num_sets`` samples spread uniformly over roots, each node gets
    about ``num_sets / n`` of them, so size ``num_sets`` accordingly (the
    factory defaults to a multiple of ``n``).
    """

    def __init__(
        self, graph: SocialGraph, num_sets: int = 2000, seed: SeedLike = None
    ) -> None:
        super().__init__(graph)
        self.sampler = RRSetSampler(graph, num_sets=num_sets, seed=seed)
        self._by_root: Dict[NodeId, List[int]] = {}
        for index, root in enumerate(self.sampler.roots):
            self._by_root.setdefault(root, []).append(index)

    def activation_probabilities(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> Dict[NodeId, float]:
        seed_set = {seed for seed in seeds if seed in self.graph}
        if not seed_set:
            return {}
        rr_sets = self.sampler.rr_sets
        probabilities: Dict[NodeId, float] = {}
        for root, indices in self._by_root.items():
            hit = sum(
                1 for index in indices if not seed_set.isdisjoint(rr_sets[index])
            )
            if hit:
                probabilities[root] = hit / len(indices)
        for seed in seed_set:  # seeds are certainly active, sampled or not
            probabilities[seed] = 1.0
        return probabilities

    def expected_benefit(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> float:
        probabilities = self.activation_probabilities(seeds, allocation)
        graph = self.graph
        return sum(
            graph.benefit(node) * probability
            for node, probability in probabilities.items()
        )


def estimate_spread_rr(
    graph: SocialGraph,
    seeds: Sequence[NodeId],
    num_sets: int = 2000,
    seed: SeedLike = None,
) -> float:
    """One-shot RR-set spread estimate (convenience wrapper)."""
    sampler = RRSetSampler(graph, num_sets=num_sets, seed=seed)
    return sampler.expected_spread(seeds)
