"""Native cascade kernels over flat world-block arrays.

The cascade inner loop — walk a FIFO queue of coupon holders over one world's
live adjacency, redeeming on not-yet-active targets until the coupons run out
— is the single hottest code path in the library: every layer above it (the
delta snapshot engine, the CELF queue, the shard pool, the batched evaluation
scheduler) ultimately funnels into it once per world per evaluation.  This
module provides *compiled* implementations of that loop operating on the flat
contiguous arrays of :class:`~repro.diffusion.engine.FlatWorldBlock`:

``numba``
    :func:`numba.njit`-compiled kernels, used whenever numba is importable.
    The JIT is warmed on a one-world dummy block at engine construction (see
    :meth:`CascadeKernel.warm`) so first-evaluation latency never skews CELF
    pivot-queue timings or benchmarks.
``cc``
    A C translation of the same loops, compiled once with the system C
    compiler (``cc``/``gcc``/``clang``) into a content-addressed shared
    library under ``~/.cache/repro-kernels`` and loaded through
    :mod:`ctypes`.  Used when numba is absent but a compiler is present —
    the common case in slim containers.
``None``
    Neither backend available (or ``REPRO_NO_NATIVE_KERNEL`` set): callers
    fall back to the interpreted loops in :mod:`repro.diffusion.engine`,
    which remain the bit-identity *oracle* the compiled kernels are tested
    against.

Both backends implement the exact semantics of the interpreted
``cascade_block`` / ``cascade_world_instrumented`` pair — same FIFO order,
same redemption bookkeeping, same coupon-limited flags — so activation
queues, counts and benefits are **bit-identical** whichever path runs; the
parity suite (``tests/properties/test_kernel_parity.py``) and the benchmark
gates enforce that.

All kernels share one calling convention (flat int arrays only, no Python
objects in the hot path):

* ``targets`` — int32, the block's concatenated live-edge targets;
* ``offsets`` — int64, per-world rows of ``num_nodes + 1`` *absolute*
  indices into ``targets`` (a 2-D array for block kernels, one row for the
  single-world instrumented kernel);
* ``seeds`` — int32 deduplicated seed indices in canonical order;
* ``coupons`` — int64 dense per-node coupon vector;
* ``visited`` — int64 stamp-versioned scratch (caller owns the stamp);
* ``queue`` / ``limited`` — int32 preallocated FIFO / limited-flag buffers
  of ``num_nodes`` entries;
* ``counts`` — int64 activation-count accumulator (block kernel only).
"""

from __future__ import annotations

import ctypes
import hashlib
import logging
import os
import subprocess
import tempfile
import time
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.utils.env import env_flag

logger = logging.getLogger(__name__)

#: Setting this environment variable (to any non-empty value) disables both
#: native backends — the engine then runs the interpreted oracle.  This is
#: how CI's "no-numba" leg and the forced-fallback tests exercise the
#: degradation path deterministically.
DISABLE_ENV = "REPRO_NO_NATIVE_KERNEL"

#: Override for where the C backend caches its compiled shared library.
CACHE_DIR_ENV = "REPRO_KERNEL_CACHE_DIR"

_C_SOURCE = r"""
#include <stdint.h>

/* Both functions are line-for-line translations of the interpreted
 * cascade loops in repro/diffusion/engine.py (cascade_block and
 * CompiledCascadeEngine.cascade_world_instrumented).  Any semantic change
 * there must be mirrored here and in the numba kernels — the parity suite
 * fails otherwise. */

int64_t repro_cascade_block(
    const int32_t *targets,
    const int64_t *offsets,      /* num_worlds x (num_nodes + 1), absolute */
    int64_t num_nodes,
    int64_t num_worlds,
    const int32_t *seeds,
    int64_t num_seeds,
    const int64_t *coupons,
    int64_t *visited,
    int64_t stamp,
    int32_t *queue,
    int64_t *counts)
{
    const int64_t stride = num_nodes + 1;
    for (int64_t w = 0; w < num_worlds; ++w) {
        stamp += 1;
        const int64_t *off = offsets + w * stride;
        int64_t qlen = 0;
        for (int64_t s = 0; s < num_seeds; ++s) {
            const int32_t seed = seeds[s];
            visited[seed] = stamp;
            queue[qlen++] = seed;
        }
        int64_t head = 0;
        while (head < qlen) {
            const int32_t user = queue[head++];
            int64_t remaining = coupons[user];
            if (remaining <= 0) continue;
            const int64_t low = off[user];
            const int64_t high = off[user + 1];
            for (int64_t pos = low; pos < high; ++pos) {
                const int32_t neighbor = targets[pos];
                if (visited[neighbor] == stamp) continue;
                visited[neighbor] = stamp;
                queue[qlen++] = neighbor;
                if (--remaining <= 0) break;
            }
        }
        for (int64_t q = 0; q < qlen; ++q) counts[queue[q]] += 1;
    }
    return stamp;
}

void repro_cascade_world_instrumented(
    const int32_t *targets,
    const int64_t *off,          /* one world's num_nodes + 1 row, absolute */
    const int32_t *seeds,
    int64_t num_seeds,
    const int64_t *coupons,
    int64_t *visited,
    int64_t stamp,
    int32_t *queue,
    int32_t *limited,
    int64_t *out_lens)           /* [queue length, limited length] */
{
    int64_t qlen = 0;
    int64_t llen = 0;
    for (int64_t s = 0; s < num_seeds; ++s) {
        const int32_t seed = seeds[s];
        visited[seed] = stamp;
        queue[qlen++] = seed;
    }
    int64_t head = 0;
    while (head < qlen) {
        const int32_t user = queue[head++];
        int64_t remaining = coupons[user];
        const int64_t low = off[user];
        const int64_t high = off[user + 1];
        if (remaining <= 0) {
            if (low < high) limited[llen++] = user;
            continue;
        }
        if (low == high) continue;
        for (int64_t pos = low; pos < high; ++pos) {
            const int32_t neighbor = targets[pos];
            if (visited[neighbor] == stamp) continue;
            visited[neighbor] = stamp;
            queue[qlen++] = neighbor;
            if (--remaining <= 0) {
                if (pos < high - 1) limited[llen++] = user;
                break;
            }
        }
    }
    out_lens[0] = qlen;
    out_lens[1] = llen;
}
"""


def _import_numba():
    """Import hook isolated so tests can monkeypatch an ImportError."""
    import numba  # noqa: F401  (numba's presence is the decision)

    return numba


def _make_numba_kernels():
    """Build the ``@njit`` kernel pair; raises when numba is unusable."""
    numba = _import_numba()
    njit = numba.njit

    @njit(cache=True, nogil=True)
    def cascade_block_njit(
        targets, offsets, seeds, coupons, visited, stamp, queue, counts
    ):
        num_worlds = offsets.shape[0]
        for w in range(num_worlds):
            stamp += 1
            off = offsets[w]
            qlen = 0
            for s in range(seeds.shape[0]):
                seed = seeds[s]
                visited[seed] = stamp
                queue[qlen] = seed
                qlen += 1
            head = 0
            while head < qlen:
                user = queue[head]
                head += 1
                remaining = coupons[user]
                if remaining <= 0:
                    continue
                low = off[user]
                high = off[user + 1]
                for pos in range(low, high):
                    neighbor = targets[pos]
                    if visited[neighbor] == stamp:
                        continue
                    visited[neighbor] = stamp
                    queue[qlen] = neighbor
                    qlen += 1
                    remaining -= 1
                    if remaining <= 0:
                        break
            for q in range(qlen):
                counts[queue[q]] += 1
        return stamp

    @njit(cache=True, nogil=True)
    def cascade_world_instrumented_njit(
        targets, off, seeds, coupons, visited, stamp, queue, limited
    ):
        qlen = 0
        llen = 0
        for s in range(seeds.shape[0]):
            seed = seeds[s]
            visited[seed] = stamp
            queue[qlen] = seed
            qlen += 1
        head = 0
        while head < qlen:
            user = queue[head]
            head += 1
            remaining = coupons[user]
            low = off[user]
            high = off[user + 1]
            if remaining <= 0:
                if low < high:
                    limited[llen] = user
                    llen += 1
                continue
            if low == high:
                continue
            for pos in range(low, high):
                neighbor = targets[pos]
                if visited[neighbor] == stamp:
                    continue
                visited[neighbor] = stamp
                queue[qlen] = neighbor
                qlen += 1
                remaining -= 1
                if remaining <= 0:
                    if pos < high - 1:
                        limited[llen] = user
                        llen += 1
                    break
        return qlen, llen

    return cascade_block_njit, cascade_world_instrumented_njit


def _cache_dir() -> Path:
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-kernels"


def _find_compiler() -> Optional[str]:
    from shutil import which

    for candidate in ("cc", "gcc", "clang"):
        path = which(candidate)
        if path:
            return path
    return None


def _build_cc_library() -> Tuple[Optional[ctypes.CDLL], float]:
    """Compile (or load the cached) C kernel library.

    Returns ``(library, compile_seconds)`` — ``compile_seconds`` is 0.0 when
    a previously compiled library was reused.  Any failure (no compiler,
    compile error, unwritable cache) returns ``(None, 0.0)``; the caller
    falls back to the interpreted path.
    """
    digest = hashlib.sha256(_C_SOURCE.encode("utf-8")).hexdigest()[:16]
    cache_dir = _cache_dir()
    lib_path = cache_dir / f"cascade-{digest}.so"
    compile_seconds = 0.0
    if not lib_path.exists():
        compiler = _find_compiler()
        if compiler is None:
            logger.debug("no C compiler found for the cascade kernel")
            return None, 0.0
        try:
            cache_dir.mkdir(parents=True, exist_ok=True)
            began = time.perf_counter()
            with tempfile.TemporaryDirectory(dir=str(cache_dir)) as workdir:
                source_path = Path(workdir) / "cascade.c"
                object_path = Path(workdir) / "cascade.so"
                source_path.write_text(_C_SOURCE, encoding="utf-8")
                subprocess.run(
                    [
                        compiler, "-O3", "-shared", "-fPIC",
                        "-o", str(object_path), str(source_path),
                    ],
                    check=True,
                    capture_output=True,
                )
                # Atomic publish: concurrent builders race harmlessly.
                os.replace(str(object_path), str(lib_path))
            compile_seconds = time.perf_counter() - began
        except (OSError, subprocess.CalledProcessError) as error:
            logger.debug("cascade kernel C compile failed: %s", error)
            return None, 0.0
    try:
        return ctypes.CDLL(str(lib_path)), compile_seconds
    except OSError as error:  # corrupt cache entry, wrong arch, ...
        logger.debug("cascade kernel library load failed: %s", error)
        try:
            lib_path.unlink()
        except OSError:
            pass
        return None, 0.0


class CascadeKernel:
    """One resolved native backend: compiled cascade entry points + warm-up.

    Instances are produced by :func:`load_kernel` (one per process) and are
    shared by every engine and worker in the process; the entry points are
    stateless, so sharing is safe.
    """

    def __init__(self, backend: str, block_fn, instrumented_fn) -> None:
        self.backend = backend
        self._block_fn = block_fn
        self._instrumented_fn = instrumented_fn
        self._warmed = False
        #: Wall-clock seconds the one-off warm-up (JIT compilation for the
        #: numba backend, shared-library compilation for the C backend)
        #: cost in this process; 0.0 once warm or when a disk cache was hit.
        self.compile_seconds = 0.0

    # -- entry points --------------------------------------------------

    def cascade_block(
        self,
        targets: np.ndarray,
        offsets: np.ndarray,
        seeds: np.ndarray,
        coupons: np.ndarray,
        visited: np.ndarray,
        stamp: int,
        queue: np.ndarray,
        counts: np.ndarray,
    ) -> int:
        """Cascade every world of a flat block, accumulating ``counts``.

        Returns the last stamp written into ``visited`` (one per world) —
        the same contract as the interpreted
        :func:`repro.diffusion.engine.cascade_block`.
        """
        return int(
            self._block_fn(
                targets, offsets, seeds, coupons, visited, stamp, queue, counts
            )
        )

    def cascade_world_instrumented(
        self,
        targets: np.ndarray,
        offsets_row: np.ndarray,
        seeds: np.ndarray,
        coupons: np.ndarray,
        visited: np.ndarray,
        stamp: int,
        queue: np.ndarray,
        limited: np.ndarray,
    ) -> Tuple[int, int]:
        """One world's instrumented cascade into ``queue`` / ``limited``.

        Returns ``(queue_length, limited_length)``; the filled prefixes hold
        exactly what the interpreted
        :meth:`~repro.diffusion.engine.CompiledCascadeEngine.cascade_world_instrumented`
        would have produced, in the same order.
        """
        qlen, llen = self._instrumented_fn(
            targets, offsets_row, seeds, coupons, visited, stamp, queue, limited
        )
        return int(qlen), int(llen)

    # -- warm-up -------------------------------------------------------

    def warm(self) -> float:
        """Compile/trigger both entry points on a one-world dummy block.

        Engines call this at construction so the JIT cost lands before any
        timed evaluation (CELF pivot-queue timings, benchmarks) instead of
        inside the first one.  Idempotent per kernel instance; returns the
        seconds this call spent (0.0 once warm).
        """
        if self._warmed:
            return 0.0
        began = time.perf_counter()
        targets = np.array([1], dtype=np.int32)
        offsets = np.array([[0, 1, 1]], dtype=np.int64)
        seeds = np.array([0], dtype=np.int32)
        coupons = np.array([1, 0], dtype=np.int64)
        visited = np.zeros(2, dtype=np.int64)
        queue = np.zeros(2, dtype=np.int32)
        limited = np.zeros(2, dtype=np.int32)
        counts = np.zeros(2, dtype=np.int64)
        stamp = self.cascade_block(
            targets, offsets, seeds, coupons, visited, 0, queue, counts
        )
        self.cascade_world_instrumented(
            targets, offsets[0], seeds, coupons, visited, stamp + 1, queue, limited
        )
        elapsed = time.perf_counter() - began
        self._warmed = True
        self.compile_seconds += elapsed
        return elapsed


def _make_cc_kernel() -> Optional[CascadeKernel]:
    library, compile_seconds = _build_cc_library()
    if library is None:
        return None
    from numpy.ctypeslib import ndpointer

    i32 = ndpointer(dtype=np.int32, flags="C_CONTIGUOUS")
    i64 = ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
    c_i64 = ctypes.c_int64

    library.repro_cascade_block.argtypes = [
        i32, i64, c_i64, c_i64, i32, c_i64, i64, i64, c_i64, i32, i64,
    ]
    library.repro_cascade_block.restype = c_i64
    library.repro_cascade_world_instrumented.argtypes = [
        i32, i64, i32, c_i64, i64, i64, c_i64, i32, i32, i64,
    ]
    library.repro_cascade_world_instrumented.restype = None

    block_raw = library.repro_cascade_block
    instrumented_raw = library.repro_cascade_world_instrumented

    def block_fn(targets, offsets, seeds, coupons, visited, stamp, queue, counts):
        return block_raw(
            targets, offsets, offsets.shape[1] - 1, offsets.shape[0],
            seeds, seeds.shape[0], coupons, visited, stamp, queue, counts,
        )

    def instrumented_fn(
        targets, offsets_row, seeds, coupons, visited, stamp, queue, limited
    ):
        out_lens = np.zeros(2, dtype=np.int64)
        instrumented_raw(
            targets, offsets_row, seeds, seeds.shape[0],
            coupons, visited, stamp, queue, limited, out_lens,
        )
        return out_lens[0], out_lens[1]

    kernel = CascadeKernel("cc", block_fn, instrumented_fn)
    kernel.compile_seconds = compile_seconds
    return kernel


def _make_numba_kernel() -> Optional[CascadeKernel]:
    try:
        block_fn, instrumented_fn = _make_numba_kernels()
    except Exception as error:  # ImportError, numba config errors, ...
        logger.debug("numba cascade kernel unavailable: %s", error)
        return None
    return CascadeKernel("numba", block_fn, instrumented_fn)


# Per-process kernel singleton: False = unresolved, None = resolved absent.
_KERNEL: "CascadeKernel | None | bool" = False


def native_disabled() -> bool:
    """Whether ``REPRO_NO_NATIVE_KERNEL`` forces the interpreted path.

    Parsed through :func:`repro.utils.env.env_flag`, so ``0``/``false``/
    ``no``/``off``/empty behave exactly like leaving the variable unset —
    only a truthy spelling disables the native backends.
    """
    return env_flag(DISABLE_ENV)


def load_kernel() -> Optional[CascadeKernel]:
    """The process-wide native kernel, or ``None`` when unavailable.

    Resolution order: numba (``@njit``) when importable, then the
    C-compiler backend, then ``None``.  The result is cached for the life
    of the process; tests use :func:`reset_kernel_cache` to re-resolve
    after monkeypatching the backends.
    """
    global _KERNEL
    if native_disabled():
        return None
    if _KERNEL is False:
        kernel = _make_numba_kernel()
        if kernel is None:
            kernel = _make_cc_kernel()
        if kernel is None:
            logger.debug("no native cascade kernel backend available")
        _KERNEL = kernel
    return _KERNEL


def kernel_backend() -> Optional[str]:
    """Name of the resolved native backend (``"numba"``/``"cc"``/``None``)."""
    kernel = load_kernel()
    return kernel.backend if kernel is not None else None


def reset_kernel_cache() -> None:
    """Forget the resolved backend (test hook for forced-fallback suites)."""
    global _KERNEL
    _KERNEL = False
