"""The unified expected-benefit estimator interface.

Every algorithm in the library — S3CA's greedy phases, the IM/PM/IM-S
baselines, the exhaustive optimal solver — prices candidate deployments
through one abstract contract: :class:`BenefitEstimator`.  Four
implementations exist, selectable through
:func:`repro.diffusion.factory.make_estimator`:

``mc-compiled``
    :class:`~repro.diffusion.monte_carlo.MonteCarloEstimator` running on the
    compiled CSR backend (:mod:`repro.graph.csr`) with the vectorized cascade
    engine (:mod:`repro.diffusion.engine`).  The default.
``mc``
    The same estimator on the original dict-adjacency cascade.  Bit-for-bit
    the same activation probabilities for a fixed seed; kept as the reference
    implementation and for graphs mutated after estimator construction.
``exact``
    :class:`~repro.diffusion.exact.ExactEstimator` — world enumeration,
    tractable only for tens of edges.
``rr``
    :class:`~repro.diffusion.rr_sets.RRBenefitEstimator` — reverse-reachable
    set sampling; fast, but only valid for the unlimited-coupon (plain IC)
    regime.

The ABC lives in its own module so that the core, baseline and experiment
layers can depend on the interface without importing any concrete backend.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.graph.social_graph import SocialGraph

NodeId = Hashable
DeploymentKey = Tuple[FrozenSet, Tuple]


class BenefitEstimator(ABC):
    """Interface shared by every expected-benefit estimator."""

    def __init__(self, graph: SocialGraph) -> None:
        self.graph = graph

    @abstractmethod
    def expected_benefit(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> float:
        """Expected total benefit of activated users under the deployment."""

    @abstractmethod
    def activation_probabilities(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> Dict[NodeId, float]:
        """Per-user probability of ending up activated."""

    def expected_benefits(
        self, deployments: Sequence[Tuple[Iterable[NodeId], Mapping[NodeId, int]]]
    ) -> List[float]:
        """Expected benefits of a batch of ``(seeds, allocation)`` deployments.

        The default simply loops :meth:`expected_benefit`; estimators with a
        parallel backend override this to pipeline the batch through their
        worker pool — with bit-identical results, so callers may always use
        the batch form.
        """
        return [
            self.expected_benefit(seeds, allocation)
            for seeds, allocation in deployments
        ]

    def expected_spread(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> float:
        """Expected number of activated users (benefit with all benefits = 1)."""
        return sum(self.activation_probabilities(seeds, allocation).values())

    def likely_activated(
        self,
        seeds: Iterable[NodeId],
        allocation: Mapping[NodeId, int],
        threshold: float = 0.0,
    ) -> Set[NodeId]:
        """Users whose activation probability exceeds ``threshold``."""
        probabilities = self.activation_probabilities(seeds, allocation)
        return {node for node, prob in probabilities.items() if prob > threshold}

    @staticmethod
    def _key(
        seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> DeploymentKey:
        return (
            frozenset(seeds),
            tuple(sorted((node, int(k)) for node, k in allocation.items() if k > 0)),
        )
