"""The unified expected-benefit estimator interface.

Every algorithm in the library — S3CA's greedy phases, the IM/PM/IM-S
baselines, the exhaustive optimal solver — prices candidate deployments
through one abstract contract: :class:`BenefitEstimator`.  Four
implementations exist, selectable through
:func:`repro.diffusion.factory.make_estimator`:

``mc-compiled``
    :class:`~repro.diffusion.monte_carlo.MonteCarloEstimator` running on the
    compiled CSR backend (:mod:`repro.graph.csr`) with the vectorized cascade
    engine (:mod:`repro.diffusion.engine`).  The default.
``mc``
    The same estimator on the original dict-adjacency cascade.  Bit-for-bit
    the same activation probabilities for a fixed seed; kept as the reference
    implementation and for graphs mutated after estimator construction.
``exact``
    :class:`~repro.diffusion.exact.ExactEstimator` — world enumeration,
    tractable only for tens of edges.
``rr``
    :class:`~repro.diffusion.rr_sets.RRBenefitEstimator` — reverse-reachable
    set sampling; fast, but only valid for the unlimited-coupon (plain IC)
    regime.

The ABC lives in its own module so that the core, baseline and experiment
layers can depend on the interface without importing any concrete backend.

The evaluation scheduler
------------------------
Every greedy phase and baseline faces the same shape of work: a set of
candidate deployments whose benefits are compared against each other, with no
data dependency between the evaluations.  :class:`EvaluationPlan` is the one
scheduling unit for that shape — callers *add* deployments to a plan and
*execute* it, and the estimator decides how the batch actually runs:

* the default :meth:`BenefitEstimator.submit_many` loops
  :meth:`BenefitEstimator.expected_benefit` — the serial fallback, trivially
  bit-identical to single calls;
* :class:`~repro.diffusion.monte_carlo.MonteCarloEstimator` overrides
  :meth:`~BenefitEstimator.submit_many` to pipeline the uncached evaluations
  through ``engine.submit`` and the shared shard pool
  (:mod:`repro.diffusion.parallel`), keeping up to ``pipeline_depth``
  evaluations in flight — with results bit-identical to the serial loop for
  every workers / shard-size / pipeline-depth setting.

No layer above the estimator submits comparison evaluations one at a time:
S3CA's three phases, the baselines and the experiment harness all build plans
(or call the batch methods directly) and let the scheduler place the work.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.graph.social_graph import SocialGraph

NodeId = Hashable
DeploymentKey = Tuple[FrozenSet, Tuple]
#: One plan entry / batch element: ``(seeds, allocation)``.
DeploymentSpec = Tuple[Iterable[NodeId], Mapping[NodeId, int]]


class EvaluationPlan:
    """An ordered batch of benefit evaluations scheduled as one unit.

    A plan is the currency between the decision layers (greedy phases,
    baselines) and the estimator's scheduler: callers :meth:`add` every
    deployment they intend to compare, :meth:`execute` once, and read the
    per-slot results back.  How the batch runs — serial loop, pipelined
    ``engine.submit`` over a shard pool — is entirely the estimator's
    decision; the results are bit-identical either way.

    Plans are single-shot: :meth:`execute` is idempotent (the batch runs at
    most once) and :meth:`add` refuses new entries afterwards.
    """

    __slots__ = ("estimator", "_deployments", "_benefits", "_want_probabilities", "_probabilities")

    def __init__(self, estimator: "BenefitEstimator") -> None:
        self.estimator = estimator
        self._deployments: List[DeploymentSpec] = []
        self._benefits: Optional[List[float]] = None
        self._want_probabilities: Set[int] = set()
        self._probabilities: Dict[int, Dict[NodeId, float]] = {}

    def __len__(self) -> int:
        return len(self._deployments)

    @property
    def executed(self) -> bool:
        """Whether the plan's batch has already run."""
        return self._benefits is not None

    def add(
        self,
        seeds: Iterable[NodeId],
        allocation: Mapping[NodeId, int],
        *,
        want_probabilities: bool = False,
    ) -> int:
        """Enqueue one deployment; returns its slot index in the results.

        ``want_probabilities`` marks the slot as also needing its per-user
        activation probabilities; :meth:`execute` fetches them right after the
        batch runs, while the estimator's caches are still warm from the same
        pipelined pass, and :meth:`probabilities` reads them back.
        """
        if self._benefits is not None:
            raise RuntimeError("EvaluationPlan already executed; build a new plan")
        self._deployments.append((seeds, allocation))
        slot = len(self._deployments) - 1
        if want_probabilities:
            self._want_probabilities.add(slot)
        return slot

    def execute(self) -> List[float]:
        """Run the batch through the estimator's scheduler (idempotent).

        Returns the expected benefits in slot order — exactly the values
        per-deployment :meth:`BenefitEstimator.expected_benefit` calls would
        produce.
        """
        if self._benefits is None:
            self._benefits = self.estimator.submit_many(self._deployments)
            for slot in sorted(self._want_probabilities):
                seeds, allocation = self._deployments[slot]
                self._probabilities[slot] = self.estimator.activation_probabilities(
                    seeds, allocation
                )
        return self._benefits

    def benefit(self, slot: int) -> float:
        """The executed plan's expected benefit for ``slot``."""
        if self._benefits is None:
            raise RuntimeError("EvaluationPlan not executed yet")
        return self._benefits[slot]

    def probabilities(self, slot: int) -> Dict[NodeId, float]:
        """Activation probabilities for a slot added with ``want_probabilities``."""
        if self._benefits is None:
            raise RuntimeError("EvaluationPlan not executed yet")
        if slot not in self._probabilities:
            raise KeyError(
                f"slot {slot} was not added with want_probabilities=True"
            )
        return self._probabilities[slot]


class BenefitEstimator(ABC):
    """Interface shared by every expected-benefit estimator."""

    def __init__(self, graph: SocialGraph) -> None:
        self.graph = graph

    @abstractmethod
    def expected_benefit(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> float:
        """Expected total benefit of activated users under the deployment."""

    @abstractmethod
    def activation_probabilities(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> Dict[NodeId, float]:
        """Per-user probability of ending up activated."""

    def plan(self) -> EvaluationPlan:
        """A fresh :class:`EvaluationPlan` scheduled by this estimator."""
        return EvaluationPlan(self)

    def submit_many(
        self, deployments: Sequence[DeploymentSpec]
    ) -> List[float]:
        """Expected benefits of a batch of ``(seeds, allocation)`` deployments.

        This is the scheduler's batch primitive, the single entry point every
        :class:`EvaluationPlan` executes through.  The default simply loops
        :meth:`expected_benefit` — the serial fallback; estimators with a
        parallel backend override this to pipeline the batch through
        ``engine.submit`` and their worker pool, with bit-identical results,
        so callers may always use the batch form.
        """
        return [
            self.expected_benefit(seeds, allocation)
            for seeds, allocation in deployments
        ]

    def expected_benefits(
        self, deployments: Sequence[DeploymentSpec]
    ) -> List[float]:
        """Batch form of :meth:`expected_benefit` (alias of :meth:`submit_many`)."""
        return self.submit_many(deployments)

    def expected_spreads(
        self, deployments: Sequence[DeploymentSpec]
    ) -> List[float]:
        """Expected activation counts of a batch of deployments.

        Same contract as :meth:`submit_many` for the spread metric: the
        default loops :meth:`expected_spread`; batch-capable estimators
        override it to warm both result caches from one pipelined pass per
        deployment, returning exactly what the per-deployment calls would.
        """
        return [
            self.expected_spread(seeds, allocation)
            for seeds, allocation in deployments
        ]

    def expected_spread(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> float:
        """Expected number of activated users (benefit with all benefits = 1)."""
        return sum(self.activation_probabilities(seeds, allocation).values())

    def likely_activated(
        self,
        seeds: Iterable[NodeId],
        allocation: Mapping[NodeId, int],
        threshold: float = 0.0,
    ) -> Set[NodeId]:
        """Users whose activation probability exceeds ``threshold``."""
        probabilities = self.activation_probabilities(seeds, allocation)
        return {node for node, prob in probabilities.items() if prob > threshold}

    @staticmethod
    def _key(
        seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> DeploymentKey:
        return (
            frozenset(seeds),
            tuple(sorted((node, int(k)) for node, k in allocation.items() if k > 0)),
        )
