"""Snapshot reconciliation across graph-event applications.

When a :class:`~repro.graph.events.GraphEventBatch` evolves the graph under a
live :class:`~repro.diffusion.delta.DeltaCascadeEngine` snapshot, almost all
of the snapshot is still exactly right: a world whose live-edge draws never
touch a changed edge runs the *identical* cascade on the new graph.  This
module proves that per world and re-simulates only the rest.

The dirty-world rule
--------------------
Draw positions are persistent (see :mod:`repro.graph.events`): a surviving
edge keeps its position, so the layered sampler gives it the same coin flip
in every world across graph versions.  World ``w`` can only change if one of
the batch's changed edges actually participates in its live adjacency, in
either graph version:

* **dropped** edge at position ``p`` with old probability ``q`` — the world
  is affected iff ``draw[p] < q`` (the edge was live and is now gone);
* **added** edge at position ``p`` with probability ``q`` — affected iff
  ``draw[p] < q`` (the edge is live in the new graph; it did not exist in
  the old);
* **reweighted** edge with probabilities ``q_old → q_new`` — affected iff
  ``draw[p] < max(q_old, q_new)``.  Liveness flips only inside the interval
  between the two, but an edge live in *both* versions can still change its
  rank inside its source row (hand-off order), which alters the cascade —
  so any world where the edge is live in either version is conservatively
  dirty.

In a clean world every changed edge is dead in both versions, so the live
target sequence of every node is unchanged (surviving live edges keep their
probabilities and hence their relative ranked order), the cascade replays
move for move, and the recorded queue / limited list / counts are carried
over by bookkeeping alone.  That is why the post-reconcile snapshot is
**bit-identical** to a cold instrumented pass on the evolved graph — the
parity the reconciliation test suite pins across the interpreted oracle,
the native kernel and multiprocess workers.
"""

from __future__ import annotations

from bisect import insort
from typing import List, Optional

import numpy as np

from repro.diffusion.delta import _sorted_remove
from repro.exceptions import EstimationError
from repro.graph.events import EventApplication

__all__ = ["ReconcileOutcome", "dirty_world_mask", "reconcile_snapshot"]


class ReconcileOutcome:
    """What one estimator-level reconcile did — the server's receipt.

    Attributes
    ----------
    num_worlds / dirty_worlds:
        Total worlds versus worlds whose draws touch a changed edge; only
        the latter were re-simulated.
    touched_edges:
        Edges the batch changed (added + dropped + reweighted).
    reconciled:
        ``True`` when a live snapshot was advanced in place; ``False`` when
        there was no snapshot to reconcile (nothing solved yet) or the
        deployment did not survive the remap and a fresh snapshot pass ran.
    chained_blocks:
        Shared-memory world blocks republished verbatim under the new graph
        fingerprint (clean shards of a rank-stable batch).
    base_benefit:
        The base deployment's expected benefit on the evolved graph, when a
        snapshot exists (``None`` otherwise).
    """

    __slots__ = (
        "num_worlds",
        "dirty_worlds",
        "touched_edges",
        "reconciled",
        "chained_blocks",
        "base_benefit",
    )

    def __init__(
        self,
        *,
        num_worlds: int,
        dirty_worlds: int,
        touched_edges: int,
        reconciled: bool,
        chained_blocks: int,
        base_benefit: Optional[float],
    ) -> None:
        self.num_worlds = int(num_worlds)
        self.dirty_worlds = int(dirty_worlds)
        self.touched_edges = int(touched_edges)
        self.reconciled = bool(reconciled)
        self.chained_blocks = int(chained_blocks)
        self.base_benefit = base_benefit

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ReconcileOutcome(dirty={self.dirty_worlds}/{self.num_worlds}, "
            f"touched_edges={self.touched_edges}, "
            f"reconciled={self.reconciled}, chained={self.chained_blocks})"
        )


def dirty_world_mask(
    sampler, application: EventApplication, num_worlds: int
) -> np.ndarray:
    """Per-world booleans: does any changed edge touch the world's live set?

    ``sampler`` must be the **evolved** (rekeyed) sampler — added edges live
    at positions past the old stream width, which only its new layer covers.
    Probes exactly the changed positions via
    :meth:`~repro.diffusion.engine.WorldSampler.draws_at`; a batch touching
    few edges costs a few draws per world, not a block re-draw.
    """
    positions: List[int] = []
    thresholds: List[float] = []
    for position, probability in application.added:
        positions.append(position)
        thresholds.append(probability)
    for position, old_probability in application.dropped:
        positions.append(position)
        thresholds.append(old_probability)
    for position, old_probability, new_probability in application.reweighted:
        positions.append(position)
        thresholds.append(max(old_probability, new_probability))
    if not positions:
        return np.zeros(int(num_worlds), dtype=bool)
    draws = sampler.draws_at(np.asarray(positions, dtype=np.int64), num_worlds)
    return (draws < np.asarray(thresholds, dtype=np.float64)).any(axis=1)


def reconcile_snapshot(
    delta, application: EventApplication, dirty_mask: np.ndarray
) -> Optional[float]:
    """Advance ``delta``'s snapshot across ``application`` in place.

    The heavy lifting behind :meth:`DeltaCascadeEngine.reconcile` — see that
    method for the contract.  ``delta.engine`` must already run on the
    evolved graph.  Returns the new base benefit, or ``None`` when the
    deployment does not survive the remap (caller re-snapshots).
    """
    engine = delta.engine
    compiled = engine.compiled
    num_nodes = compiled.num_nodes
    remap = application.remap
    old_num_nodes = application.old_num_nodes

    # A retired base seed or active coupon holder has no well-defined
    # reconciliation: the deployment itself referenced the removed node.
    if application.retired:
        retired_set = set(application.retired)
        for seed_index in delta._base_seed_indices:
            if seed_index in retired_set:
                raise EstimationError(
                    f"cannot reconcile: base seed at old index {seed_index} "
                    f"was retired by the event batch"
                )
        for old_index in retired_set:
            if delta._base_coupons[old_index] > 0:
                raise EstimationError(
                    f"cannot reconcile: retired node index {old_index} "
                    f"holds base coupons"
                )

    # The deployment re-resolved on the evolved graph must be exactly the
    # old resolution pushed through the remap.  A previously-unknown seed id
    # that now resolves (or a retired-then-re-added one) would have to be
    # inserted into every clean world's queue — a different operation; the
    # caller falls back to a fresh snapshot pass for those.
    new_seed_indices = compiled.indices_of(delta._base_seeds)
    remapped_seeds = [int(remap[i]) for i in delta._base_seed_indices]
    if new_seed_indices != remapped_seeds:
        return None

    dirty = np.flatnonzero(np.asarray(dirty_mask, dtype=bool)).tolist()

    # (1) Un-record the dirty worlds in old index space: subtract their
    # queues from the counts and remove them from the per-node world lists.
    counts = delta._base_counts.copy()
    removed_flat: List[int] = []
    for world_index in dirty:
        queue = delta._base_queues[world_index]
        removed_flat.extend(queue)
        for node_index in queue:
            _sorted_remove(delta._active_worlds, node_index, world_index)
        for node_index in delta._base_limited[world_index]:
            _sorted_remove(delta._limited_worlds, node_index, world_index)
    if removed_flat:
        counts -= np.bincount(
            np.asarray(removed_flat, dtype=np.int64), minlength=old_num_nodes
        )

    # (2) Move the clean-world state into the new index space.  A retired
    # node can only ever be active (or limited) in dirty worlds — activation
    # needs a live in-edge, and a live dropped edge marks the world dirty —
    # so after step (1) nothing clean references a retired index.
    identity = application.identity_remap and num_nodes >= old_num_nodes
    if identity and num_nodes == old_num_nodes:
        new_counts = counts
    elif identity:
        new_counts = np.zeros(num_nodes, dtype=np.int64)
        new_counts[:old_num_nodes] = counts
    else:
        if counts[list(application.retired)].any():
            raise EstimationError(
                "snapshot splice inconsistency: a retired node is still "
                "counted in a clean world"
            )
        new_counts = np.zeros(num_nodes, dtype=np.int64)
        survivors = np.flatnonzero(remap >= 0)
        new_counts[remap[survivors]] = counts[survivors]
        translate = remap.tolist()
        for worlds_by_node in (delta._active_worlds, delta._limited_worlds):
            if any(translate[node_index] < 0 for node_index in worlds_by_node):
                raise EstimationError(
                    "snapshot splice inconsistency: a retired node still "
                    "indexes a clean world"
                )
        delta._active_worlds = {
            translate[node_index]: worlds
            for node_index, worlds in delta._active_worlds.items()
        }
        delta._limited_worlds = {
            translate[node_index]: worlds
            for node_index, worlds in delta._limited_worlds.items()
        }
        dirty_set = set(dirty)
        for world_index in range(engine.num_worlds):
            if world_index in dirty_set:
                continue
            delta._base_queues[world_index] = [
                translate[node_index]
                for node_index in delta._base_queues[world_index]
            ]
            delta._base_limited[world_index] = [
                translate[node_index]
                for node_index in delta._base_limited[world_index]
            ]

    # Rebuild the dense coupon vector from the identifier-keyed allocation —
    # exactly what a cold snapshot would do on the evolved graph (including
    # holders that only now resolve to a node: they are never active in a
    # clean world, so only the dirty re-simulations below can see them).
    new_coupons = [0] * num_nodes
    index = compiled.index
    for node, count in delta._base_alloc.items():
        position = index.get(node)
        if position is not None:
            new_coupons[position] = count
    delta._base_seed_indices = new_seed_indices
    delta._base_coupons = new_coupons

    # (3) Re-simulate the dirty worlds on the evolved engine and splice the
    # results in, exactly like the coupon/seed splices do.
    added_flat: List[int] = []
    if new_seed_indices and dirty:
        instrumented = engine.cascade_worlds_instrumented(
            dirty, new_seed_indices, new_coupons
        )
        for world_index, (queue, limited) in zip(dirty, instrumented):
            added_flat.extend(queue)
            for node_index in queue:
                insort(
                    delta._active_worlds.setdefault(node_index, []), world_index
                )
            for node_index in limited:
                insort(
                    delta._limited_worlds.setdefault(node_index, []), world_index
                )
            delta._base_queues[world_index] = queue
            delta._base_limited[world_index] = limited
    elif dirty:
        for world_index in dirty:
            delta._base_queues[world_index] = []
            delta._base_limited[world_index] = []
    if added_flat:
        new_counts += np.bincount(
            np.asarray(added_flat, dtype=np.int64), minlength=num_nodes
        )

    delta._base_counts = new_counts
    delta.base_benefit = (
        float(new_counts @ compiled.benefits) / engine.num_worlds
        if new_seed_indices
        else 0.0
    )
    delta.reconcile_passes += 1
    delta.reconciled_worlds += len(dirty)
    return delta.base_benefit
