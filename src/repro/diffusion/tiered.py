"""Two-tier benefit estimation: RR-sketch screening + MC-confirmed frontier.

:class:`TieredEstimator` wraps a resident
:class:`~repro.diffusion.monte_carlo.MonteCarloEstimator` and overrides the
scheduler's batch primitive, :meth:`~TieredEstimator.submit_many`: the whole
batch is first scored with the vectorized plain-IC RR-sketch bound
(:meth:`~repro.diffusion.rr_sets.RRBenefitEstimator.benefit_bounds`), and only
the *frontier* — the top-``tier_top_k`` scores plus everything within an
``tier_epsilon`` relative band below the k-th score — is dispatched to the
Monte-Carlo tier.  Because every call site (pivot queue, coupon pass, SCM
donor ranking, IM/PM baselines) already routes comparison evaluations through
:class:`~repro.diffusion.estimator.EvaluationPlan` / ``submit_many``, they all
get screening for free.

Why accepted moves stay MC-confirmed
------------------------------------
* Single-deployment calls (``expected_benefit``, ``activation_probabilities``,
  the delta-evaluation API) delegate straight to the Monte-Carlo tier — every
  value an algorithm *accepts* or reports comes from MC.
* Screened-out slots return their sketch score scaled by the *minimum*
  MC/sketch ratio observed on the frontier (clipped to ``[0, 1]``), so a
  screened-out slot can never outrank the frontier's MC values in a
  caller-side argmax: winners are always MC-confirmed slots.
* The sketch ignores coupon allocations (plain-IC relaxation), so batches
  whose slots share one seed set — the eager coupon pass, SCM donor ranking —
  score identically, land entirely inside the ``>=`` band, and are never
  pruned: screening only engages where seed sets differ.

With a conservative band (the defaults) the final deployments are
bit-identical to untiered runs — pinned by the parity suites in
``tests/diffusion/test_tiered.py`` and the ``bench_greedy.py`` tiered leg.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.diffusion.estimator import BenefitEstimator, DeploymentSpec, NodeId
from repro.diffusion.rr_sets import RRBenefitEstimator
from repro.exceptions import EstimationError

#: Default relative width of the epsilon band below the k-th sketch score.
DEFAULT_TIER_EPSILON = 0.5
#: Default number of top sketch scores always dispatched to the MC tier.
DEFAULT_TIER_TOP_K = 48


class TieredEstimator(BenefitEstimator):
    """Sketch-screened wrapper around a resident Monte-Carlo estimator.

    Parameters
    ----------
    mc:
        The confirmation tier.  Everything not explicitly overridden here —
        the incremental/delta API, kernel and shared-memory introspection,
        event ingestion, ``close`` — is forwarded to it via attribute
        delegation, so the wrapper is a drop-in anywhere the MC estimator is.
    sketch:
        The screening tier (an :class:`RRBenefitEstimator` over the same
        graph).  Exposed as :attr:`sketch` so the CELF queue can reuse its
        singleton bounds for speculative evaluation ordering.
    tier_epsilon:
        Relative band width: slots scoring ``>= kth_score * (1 - epsilon)``
        are dispatched.  ``0`` keeps only ties with the top-k; larger values
        are more conservative.
    tier_top_k:
        Minimum number of top-scoring slots always dispatched.  Batches no
        larger than this are never screened.
    tiering:
        ``False`` disables screening entirely (every batch is dispatched);
        the wrapper still counts batches, which makes it the cross-check
        mode behind ``--no-tiering``.
    """

    def __init__(
        self,
        mc: BenefitEstimator,
        sketch: RRBenefitEstimator,
        *,
        tier_epsilon: float = DEFAULT_TIER_EPSILON,
        tier_top_k: int = DEFAULT_TIER_TOP_K,
        tiering: bool = True,
    ) -> None:
        super().__init__(mc.graph)
        if not 0.0 <= tier_epsilon <= 1.0:
            raise EstimationError(
                f"tier_epsilon must be in [0, 1], got {tier_epsilon}"
            )
        if tier_top_k <= 0:
            raise EstimationError(f"tier_top_k must be > 0, got {tier_top_k}")
        self.mc = mc
        self.sketch = sketch
        self.tier_epsilon = float(tier_epsilon)
        self.tier_top_k = int(tier_top_k)
        self.tiering = bool(tiering)
        self.screened_candidates = 0
        self.confirmed_candidates = 0
        self.screened_out_candidates = 0
        self.screening_batches = 0
        self.speculative_evals = 0
        self.speculative_hits = 0

    def __getattr__(self, name: str):
        # Only reached when normal lookup fails: forward the MC tier's
        # surface (delta API, kernel/shared-memory introspection, counters).
        if name.startswith("_") or name == "mc":
            raise AttributeError(name)
        return getattr(self.mc, name)

    # ------------------------------------------------------------------
    # MC-confirmed single-deployment surface

    def expected_benefit(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> float:
        return self.mc.expected_benefit(seeds, allocation)

    def activation_probabilities(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> Dict[NodeId, float]:
        return self.mc.activation_probabilities(seeds, allocation)

    def expected_spread(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> float:
        return self.mc.expected_spread(seeds, allocation)

    def expected_spreads(
        self, deployments: Sequence[DeploymentSpec]
    ) -> List[float]:
        # Spread metrics are reporting, not candidate comparison: unscreened.
        return self.mc.expected_spreads(deployments)

    # ------------------------------------------------------------------
    # the screening tier

    def submit_many(self, deployments: Sequence[DeploymentSpec]) -> List[float]:
        deployments = list(deployments)
        if not self.tiering or len(deployments) <= self.tier_top_k:
            return self.mc.submit_many(deployments)
        scores = self.sketch.benefit_bounds(deployments)
        kth_score = sorted(scores, reverse=True)[self.tier_top_k - 1]
        threshold = kth_score * (1.0 - self.tier_epsilon)
        frontier = [i for i, score in enumerate(scores) if score >= threshold]
        self.screening_batches += 1
        self.screened_candidates += len(deployments)
        self.confirmed_candidates += len(frontier)
        self.screened_out_candidates += len(deployments) - len(frontier)
        if len(frontier) == len(deployments):
            return self.mc.submit_many(deployments)
        confirmed = self.mc.submit_many([deployments[i] for i in frontier])
        ratios = [
            value / scores[i]
            for i, value in zip(frontier, confirmed)
            if scores[i] > 0.0
        ]
        calibration = min(1.0, max(0.0, min(ratios))) if ratios else 0.0
        results: List[float] = [score * calibration for score in scores]
        for i, value in zip(frontier, confirmed):
            results[i] = value
        return results

    # ------------------------------------------------------------------
    # counters

    def note_speculative_eval(self) -> None:
        """Record one speculative CELF delta evaluation."""
        self.speculative_evals += 1

    def note_speculative_hit(self) -> None:
        """Record a speculatively-freshened candidate surfacing at the top."""
        self.speculative_hits += 1

    @property
    def tier_stats(self) -> Dict[str, int]:
        """Screening and speculation counters, for results/telemetry."""
        return {
            "screening_batches": self.screening_batches,
            "screened_candidates": self.screened_candidates,
            "confirmed_candidates": self.confirmed_candidates,
            "screened_out_candidates": self.screened_out_candidates,
            "speculative_evals": self.speculative_evals,
            "speculative_hits": self.speculative_hits,
        }

    def close(self) -> None:
        close = getattr(self.mc, "close", None)
        if close is not None:
            close()
