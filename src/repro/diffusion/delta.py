"""Incremental delta-evaluation of single-investment deployment changes.

The greedy phases of S3CA only ever ask the estimator about deployments that
differ from a known *base* by exactly one investment: one extra coupon on some
node, or one new seed.  :class:`DeltaCascadeEngine` exploits that structure:
it snapshots the base deployment's per-world cascades once (an instrumented
full pass over the shared live-edge worlds) and then answers delta queries by
re-simulating **only** the worlds in which the change can possibly alter the
outcome, splicing the per-world differences into the base activation counts.

Which worlds can change is an exact property of the deterministic
SC-constrained cascade:

* **extra coupon on ``v``** — the coupon vector is only read when a node is
  dequeued, so if ``v`` never activates in a world the cascade is unchanged;
  if ``v`` activates but its hand-out walk was not coupon-limited (it
  reached the end of its live edge list, or stopped with coupons to spare)
  an extra coupon is never spent and the walk is again unchanged.  Only the
  worlds in which ``v``'s walk was *coupon-limited* need re-simulation.
* **new seed ``v``** — in worlds where ``v`` was already inactive, no base
  node ever reached ``v`` with a spare coupon (otherwise ``v`` would have
  activated), so pre-visiting ``v`` changes nothing about the base portion;
  if additionally ``v`` holds no coupons or has no live out-edges, the
  outcome is exactly the base activation set plus ``v``.  Every other world
  (``v`` active in the base — activation *order* shifts — or ``v`` able to
  spread) is re-simulated.

Bit-identical parity
--------------------
All bookkeeping is integer activation counts, so splicing is exact: the
resulting count vector equals the one a fresh
:meth:`~repro.diffusion.engine.CompiledCascadeEngine.run` would produce, and
the expected benefit is computed with the same ``counts @ benefits /
num_worlds`` expression — the delta path is bit-for-bit identical to the full
pass, not merely close.  :class:`DeltaOutcome` additionally carries the
sparse count delta so a caller can cheaply *re-derive* the benefit against a
newer snapshot (see :meth:`DeltaCascadeEngine.refresh_benefit`), plus the
re-simulated world indices and the coupon-limited nodes observed inside them
— the ingredients of the exact cache-invalidation rule used by the CELF lazy
queue in :mod:`repro.core.investment`.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.diffusion.engine import CompiledCascadeEngine
from repro.exceptions import EstimationError

NodeId = Hashable


class DeltaOutcome:
    """Result of one delta evaluation.

    Attributes
    ----------
    benefit:
        Expected benefit of the new deployment — bit-identical to a full
        engine pass when ``exact`` is ``True``.
    delta_index / delta_values:
        Sparse difference between the new and the base activation-count
        vectors (``None`` when the evaluation fell back to a full pass).
    dirty_worlds:
        World indices that were re-simulated (``None`` on fallback); these
        are the only worlds whose base outcome the accepted investment can
        change.
    touched:
        Node identifiers that were coupon-limited inside any re-simulated
        world: raising *their* coupon count is the only single-node increment
        that could alter those re-simulations.
    exact:
        ``False`` when the query did not match the snapshot (different seed
        order, multi-node change, ...) and a full pass was used instead; the
        benefit is still exact, but no delta bookkeeping is available.
    world_queues / world_limited:
        Per-dirty-world instrumentation of the re-simulations: the new
        activation queue and the new coupon-limited list of every
        re-simulated world (``None`` on fallback).  When the evaluated
        investment is *accepted*, :meth:`DeltaCascadeEngine.splice_base`
        grafts these directly into the snapshot instead of re-running a full
        instrumented pass.
    clean_limited:
        Only on :meth:`DeltaCascadeEngine.eval_new_seed` outcomes evaluated
        with ``collect_clean_limited=True``: the *clean* (not re-simulated)
        worlds in which the new seed holds live out-edges while carrying no
        coupons — exactly the worlds where a fresh instrumented pass would
        flag it coupon-limited at its dequeue.
        :meth:`DeltaCascadeEngine.splice_base_new_seed` needs this limited-bit
        bookkeeping to graft an accepted zero-coupon pivot without the full
        pass.  ``None`` when the evaluation did not collect it.
    """

    __slots__ = (
        "benefit",
        "delta_index",
        "delta_values",
        "dirty_worlds",
        "touched",
        "exact",
        "world_queues",
        "world_limited",
        "clean_limited",
    )

    def __init__(
        self,
        benefit: float,
        delta_index: Optional[np.ndarray],
        delta_values: Optional[np.ndarray],
        dirty_worlds: Optional[Tuple[int, ...]],
        touched: FrozenSet[NodeId],
        exact: bool,
        world_queues: Optional[Dict[int, List[int]]] = None,
        world_limited: Optional[Dict[int, List[int]]] = None,
        clean_limited: Optional[Tuple[int, ...]] = None,
    ) -> None:
        self.benefit = benefit
        self.delta_index = delta_index
        self.delta_values = delta_values
        self.dirty_worlds = dirty_worlds
        self.touched = touched
        self.exact = exact
        self.world_queues = world_queues
        self.world_limited = world_limited
        self.clean_limited = clean_limited


class DeltaCascadeEngine:
    """Snapshot-based incremental evaluator over a compiled cascade engine."""

    def __init__(self, engine: CompiledCascadeEngine) -> None:
        self.engine = engine
        self._base_seeds: List[NodeId] = []
        self._base_seed_indices: List[int] = []
        self._base_alloc: Dict[NodeId, int] = {}
        self._base_coupons: List[int] = [0] * engine.compiled.num_nodes
        self._base_queues: List[List[int]] = []
        self._base_limited: List[List[int]] = []
        self._base_counts: Optional[np.ndarray] = None
        self.base_benefit: float = 0.0
        self._active_worlds: Dict[int, List[int]] = {}
        self._limited_worlds: Dict[int, List[int]] = {}
        #: Instrumented full passes run by :meth:`snapshot` vs accepted moves
        #: grafted by :meth:`splice_base` (coupon accepts) and
        #: :meth:`splice_base_new_seed` (pivot accepts) — the benchmark's
        #: evidence that every per-greedy-step re-snapshot pass is gone.
        self.snapshot_passes = 0
        self.spliced_advances = 0
        self.spliced_seed_advances = 0
        #: Graph-event reconciliations absorbed without a snapshot pass, and
        #: how many (dirty) worlds they re-simulated in total — the proof
        #: that graph churn does not cost cold resolves.
        self.reconcile_passes = 0
        self.reconciled_worlds = 0

    @property
    def has_snapshot(self) -> bool:
        """Whether :meth:`snapshot` has been called at least once."""
        return self._base_counts is not None

    @property
    def base_counts(self) -> Optional[np.ndarray]:
        """The base deployment's activation-count vector (read-only use)."""
        return self._base_counts

    # ------------------------------------------------------------------
    # snapshot
    # ------------------------------------------------------------------

    def snapshot(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> Tuple[np.ndarray, float]:
        """Instrumented full pass establishing the base deployment.

        Returns ``(activation_counts, expected_benefit)`` exactly like
        :meth:`CompiledCascadeEngine.run` on the same inputs, while recording
        the per-world activation queues, each node's active worlds and each
        node's coupon-limited worlds for later delta queries.
        """
        engine = self.engine
        compiled = engine.compiled
        num_nodes = compiled.num_nodes

        # Same canonical seed order as CompiledCascadeEngine.run, so every
        # delta query built from an equal seed set matches the snapshot.  The
        # identifier list is kept too: graph-event reconciliation re-resolves
        # it against the evolved graph.
        self._base_seeds = sorted(seeds, key=str)
        self._base_seed_indices = compiled.indices_of(self._base_seeds)
        self._base_alloc = {
            node: int(count) for node, count in allocation.items() if int(count) > 0
        }
        coupons = [0] * num_nodes
        index = compiled.index
        for node, count in self._base_alloc.items():
            position = index.get(node)
            if position is not None:
                coupons[position] = count
        self._base_coupons = coupons

        queues: List[List[int]] = []
        limited_lists: List[List[int]] = []
        active_worlds: Dict[int, List[int]] = {}
        limited_worlds: Dict[int, List[int]] = {}
        flat: List[int] = []
        if self._base_seed_indices:
            instrumented = engine.cascade_worlds_instrumented(
                range(engine.num_worlds), self._base_seed_indices, coupons
            )
            for world_index, (queue, limited) in enumerate(instrumented):
                queues.append(queue)
                limited_lists.append(limited)
                flat.extend(queue)
                for node_index in queue:
                    active_worlds.setdefault(node_index, []).append(world_index)
                for node_index in limited:
                    limited_worlds.setdefault(node_index, []).append(world_index)
        else:
            queues = [[] for _ in range(engine.num_worlds)]
            limited_lists = [[] for _ in range(engine.num_worlds)]

        counts = np.bincount(
            np.asarray(flat, dtype=np.int64), minlength=num_nodes
        )
        benefit = (
            float(counts @ compiled.benefits) / engine.num_worlds
            if self._base_seed_indices
            else 0.0
        )
        self._base_queues = queues
        self._base_limited = limited_lists
        self._base_counts = counts
        self.base_benefit = benefit
        self._active_worlds = active_worlds
        self._limited_worlds = limited_worlds
        self.snapshot_passes += 1
        return counts, benefit

    # ------------------------------------------------------------------
    # delta queries
    # ------------------------------------------------------------------

    def coupon_dirty_worlds(self, node: NodeId) -> Tuple[int, ...]:
        """Worlds an extra coupon on ``node`` can change, under the snapshot."""
        self._require_snapshot()
        position = self.engine.compiled.index.get(node)
        if position is None:
            return ()
        return tuple(self._limited_worlds.get(position, ()))

    def eval_extra_coupon(
        self,
        node: NodeId,
        new_seeds: Iterable[NodeId],
        new_allocation: Mapping[NodeId, int],
    ) -> DeltaOutcome:
        """Evaluate ``base`` with ``node``'s coupon count raised.

        ``new_seeds`` / ``new_allocation`` describe the *resulting*
        deployment; they are verified against the snapshot (same seed order,
        allocation differing only on ``node`` and only upward) and the
        evaluation falls back to a full engine pass when they do not match.
        """
        self._require_snapshot()
        engine = self.engine
        compiled = engine.compiled
        new_seed_indices = compiled.indices_of(sorted(new_seeds, key=str))
        if new_seed_indices != self._base_seed_indices:
            return self._fallback(new_seed_indices, new_allocation)
        new_alloc = _normalize(new_allocation)
        if not _single_increase(self._base_alloc, new_alloc, node):
            return self._fallback(new_seed_indices, new_allocation)

        position = compiled.index.get(node)
        if position is None:
            # Unknown coupon holders are ignored by the cascade entirely.
            return self._unchanged()

        dirty = self._limited_worlds.get(position, [])
        coupons = list(self._base_coupons)
        coupons[position] = new_alloc[node]
        return self._splice(dirty, self._base_seed_indices, coupons, clean_node=None)

    def eval_new_seed(
        self,
        node: NodeId,
        new_seeds: Iterable[NodeId],
        new_allocation: Mapping[NodeId, int],
        *,
        collect_clean_limited: bool = False,
    ) -> DeltaOutcome:
        """Evaluate ``base`` with ``node`` added to the seed set.

        ``new_allocation`` may additionally raise ``node``'s own coupon count
        (the pivot-queue construction seeds users together with one coupon);
        any other difference falls back to a full pass.

        ``collect_clean_limited`` additionally records, on the returned
        outcome, the clean worlds in which a zero-coupon ``node`` holds live
        out-edges (so a fresh instrumented pass would flag it coupon-limited
        there) — the extra bookkeeping :meth:`splice_base_new_seed` needs
        when the evaluated pivot is *accepted*.  The scan touches only the
        per-world live-edge offsets, never a cascade.
        """
        self._require_snapshot()
        engine = self.engine
        compiled = engine.compiled
        new_seed_indices = compiled.indices_of(sorted(new_seeds, key=str))
        position = compiled.index.get(node)
        if position is None:
            return self._fallback(new_seed_indices, new_allocation)
        if position in self._base_seed_indices:
            if new_seed_indices == self._base_seed_indices and _normalize(
                new_allocation
            ) == self._base_alloc:
                return self._unchanged()
            return self._fallback(new_seed_indices, new_allocation)
        stripped = [i for i in new_seed_indices if i != position]
        if stripped != self._base_seed_indices:
            return self._fallback(new_seed_indices, new_allocation)
        new_alloc = _normalize(new_allocation)
        if new_alloc != self._base_alloc and not _single_increase(
            self._base_alloc, new_alloc, node
        ):
            return self._fallback(new_seed_indices, new_allocation)

        seed_coupons = new_alloc.get(node, 0)
        active = self._active_worlds.get(position, [])
        dirty = list(active)
        clean = 0
        clean_limited: List[int] = []
        if seed_coupons > 0:
            active_set = set(active)
            # Scan shard blocks in order (bounded memory under sharding) and
            # keep the historic ascending world order in `dirty`.  The
            # per-world live-out-edge test is one vectorized column compare
            # on the block's flat offsets array.  Clean worlds here hold no
            # live out-edges for the node, so it is never coupon-limited in
            # them: clean_limited stays empty.
            for start, count, block in engine.world_blocks():
                has_live = block.offsets[:, position + 1] > block.offsets[:, position]
                for slot in range(count):
                    world_index = start + slot
                    if world_index in active_set:
                        continue
                    if has_live[slot]:
                        dirty.append(world_index)
                    else:
                        clean += 1
        else:
            clean = engine.num_worlds - len(active)
            if collect_clean_limited and compiled.indptr[position + 1] > compiled.indptr[position]:
                # A zero-coupon seed is coupon-limited at its dequeue in every
                # world where it holds at least one live out-edge.
                active_set = set(active)
                for start, count, block in engine.world_blocks():
                    has_live = (
                        block.offsets[:, position + 1] > block.offsets[:, position]
                    )
                    for slot in range(count):
                        world_index = start + slot
                        if world_index in active_set:
                            continue
                        if has_live[slot]:
                            clean_limited.append(world_index)

        coupons = list(self._base_coupons)
        coupons[position] = seed_coupons
        outcome = self._splice(
            dirty, new_seed_indices, coupons, clean_node=position, clean_count=clean
        )
        if collect_clean_limited:
            outcome.clean_limited = tuple(clean_limited)
        return outcome

    def refresh_benefit(self, outcome: DeltaOutcome) -> float:
        """Re-derive an outcome's benefit against the *current* snapshot.

        Valid only while the outcome's per-world deltas still hold for the
        current base (the caller's invalidation rule guarantees this); the
        result is bit-identical to re-running the evaluation from scratch.
        """
        self._require_snapshot()
        if not outcome.exact:
            raise EstimationError("cannot refresh a fallback delta outcome")
        counts = self._base_counts.copy()
        if outcome.delta_index is not None and outcome.delta_index.size:
            counts[outcome.delta_index] += outcome.delta_values
        return float(counts @ self.engine.compiled.benefits) / self.engine.num_worlds

    # ------------------------------------------------------------------
    # surgical snapshot advancement
    # ------------------------------------------------------------------

    def splice_base(
        self,
        outcome: DeltaOutcome,
        node: NodeId,
        new_seeds: Iterable[NodeId],
        new_allocation: Mapping[NodeId, int],
    ) -> Optional[float]:
        """Make an accepted extra-coupon move's deployment the new base.

        ``outcome`` must be the :class:`DeltaOutcome` of evaluating exactly
        ``(new_seeds, new_allocation)`` against the current base — the greedy
        loop hands back the evaluation it just accepted.  Instead of running
        a fresh instrumented pass over every world (O(num_samples) per greedy
        step), the outcome's already re-simulated worlds are grafted into the
        snapshot: ``base_queues`` / ``base_limited`` are replaced for the
        dirty worlds only, the per-node ``active_worlds`` / ``limited_worlds``
        indices are updated surgically (sorted order preserved, exactly as a
        fresh ascending world scan would build them), the count vector is
        advanced by the outcome's sparse delta and the benefit is re-derived
        with the engine's canonical expression.  The resulting snapshot state
        is **identical** — queues, indices, counts and benefit, bit for bit —
        to calling :meth:`snapshot` on the new deployment from scratch.

        A reused (CELF-refreshed) outcome is equally valid: the lazy queue's
        invalidation rule guarantees its per-world re-simulations still equal
        what a fresh evaluation would produce, and the dirty-set equality
        check below re-verifies that against the current snapshot.

        Returns the new base benefit, or ``None`` when the outcome cannot be
        spliced (fallback outcome, seed change, non-single-increment
        allocation, stale dirty set) — the caller then falls back to
        :meth:`snapshot`.
        """
        if not self.has_snapshot:
            return None
        if not outcome.exact or outcome.world_queues is None:
            return None
        compiled = self.engine.compiled
        new_seed_indices = compiled.indices_of(sorted(new_seeds, key=str))
        if new_seed_indices != self._base_seed_indices:
            return None
        new_alloc = _normalize(new_allocation)
        if not _single_increase(self._base_alloc, new_alloc, node):
            return None
        position = compiled.index.get(node)
        if position is None:
            # Unknown coupon holders never reach the cascade: the deployment
            # bookkeeping moves, the worlds do not.
            if outcome.dirty_worlds:
                return None
            self._base_alloc = new_alloc
            self.spliced_advances += 1
            return self.base_benefit
        # The outcome's dirty set must be exactly what the *current* snapshot
        # says an extra coupon on ``node`` can change — refuses stale records
        # the lazy queue's invalidation rule would have rejected.
        if outcome.dirty_worlds != tuple(self._limited_worlds.get(position, ())):
            return None

        active_worlds = self._active_worlds
        limited_worlds = self._limited_worlds
        base_queues = self._base_queues
        base_limited = self._base_limited
        for world_index in outcome.dirty_worlds:
            new_queue = outcome.world_queues[world_index]
            new_limited = outcome.world_limited[world_index]
            old_active = set(base_queues[world_index])
            new_active = set(new_queue)
            for node_index in old_active - new_active:
                _sorted_remove(active_worlds, node_index, world_index)
            for node_index in new_active - old_active:
                insort(active_worlds.setdefault(node_index, []), world_index)
            old_lim = set(base_limited[world_index])
            new_lim = set(new_limited)
            for node_index in old_lim - new_lim:
                _sorted_remove(limited_worlds, node_index, world_index)
            for node_index in new_lim - old_lim:
                insort(limited_worlds.setdefault(node_index, []), world_index)
            base_queues[world_index] = list(new_queue)
            base_limited[world_index] = list(new_limited)

        if outcome.delta_index is not None and outcome.delta_index.size:
            self._base_counts[outcome.delta_index] += outcome.delta_values
        self._base_alloc = new_alloc
        self._base_coupons[position] = new_alloc[node]
        self.base_benefit = (
            float(self._base_counts @ compiled.benefits) / self.engine.num_worlds
        )
        self.spliced_advances += 1
        return self.base_benefit

    def splice_base_new_seed(
        self,
        outcome: DeltaOutcome,
        node: NodeId,
        new_seeds: Iterable[NodeId],
        new_allocation: Mapping[NodeId, int],
    ) -> Optional[float]:
        """Make an accepted *pivot* (new-seed) move's deployment the new base.

        ``outcome`` must come from :meth:`eval_new_seed` with
        ``collect_clean_limited=True`` evaluated for exactly
        ``(new_seeds, new_allocation)`` against the current base.  The
        outcome's re-simulated (dirty) worlds are grafted exactly as in
        :meth:`splice_base`; the *clean* worlds — where the base cascade is
        provably untouched — are advanced by pure bookkeeping:

        * the new seed is inserted into each clean world's activation queue
          at its canonical position in the seed prefix (fresh snapshots seed
          the queue in canonical order);
        * where the outcome's ``clean_limited`` bookkeeping says a
          zero-coupon seed holds live out-edges, the seed is inserted into
          that world's coupon-limited list at its dequeue position — after
          the limited seeds that precede it, before everything else;
        * the per-node active/limited world indices and the count vector are
          updated to match.

        The resulting snapshot state is **identical** — queues, limited
        lists, indices, counts and benefit, bit for bit — to
        :meth:`snapshot` on the new deployment from scratch.  Returns the new
        base benefit, or ``None`` when the outcome cannot be spliced
        (fallback outcome, missing bookkeeping, mismatched deployment, stale
        dirty set) — the caller then falls back to :meth:`snapshot`.
        """
        if not self.has_snapshot:
            return None
        if (
            not outcome.exact
            or outcome.world_queues is None
            or outcome.dirty_worlds is None
            or outcome.clean_limited is None
        ):
            return None
        compiled = self.engine.compiled
        new_seed_indices = compiled.indices_of(sorted(new_seeds, key=str))
        position = compiled.index.get(node)
        if position is None or position in self._base_seed_indices:
            return None
        if position not in new_seed_indices:
            return None
        stripped = [i for i in new_seed_indices if i != position]
        if stripped != self._base_seed_indices:
            return None
        new_alloc = _normalize(new_allocation)
        if new_alloc != self._base_alloc and not _single_increase(
            self._base_alloc, new_alloc, node
        ):
            return None
        seed_coupons = new_alloc.get(node, 0)
        # The outcome must match the *current* snapshot: eval_new_seed builds
        # its dirty list as the node's active worlds (ascending) followed by
        # inactive live-edge worlds (coupon-carrying seeds only).
        active = tuple(self._active_worlds.get(position, ()))
        if tuple(outcome.dirty_worlds[: len(active)]) != active:
            return None
        extras = outcome.dirty_worlds[len(active):]
        if extras and seed_coupons <= 0:
            return None
        if outcome.clean_limited and seed_coupons > 0:
            return None
        active_set = set(active)
        if any(world in active_set for world in extras):
            return None

        active_worlds = self._active_worlds
        limited_worlds = self._limited_worlds
        base_queues = self._base_queues
        base_limited = self._base_limited
        for world_index in outcome.dirty_worlds:
            new_queue = outcome.world_queues[world_index]
            new_limited = outcome.world_limited[world_index]
            old_active = set(base_queues[world_index])
            new_active = set(new_queue)
            for node_index in old_active - new_active:
                _sorted_remove(active_worlds, node_index, world_index)
            for node_index in new_active - old_active:
                insort(active_worlds.setdefault(node_index, []), world_index)
            old_lim = set(base_limited[world_index])
            new_lim = set(new_limited)
            for node_index in old_lim - new_lim:
                _sorted_remove(limited_worlds, node_index, world_index)
            for node_index in new_lim - old_lim:
                insort(limited_worlds.setdefault(node_index, []), world_index)
            base_queues[world_index] = list(new_queue)
            base_limited[world_index] = list(new_limited)

        # Clean worlds: base cascade untouched, bookkeeping only.
        queue_slot = new_seed_indices.index(position)
        prefix = set(new_seed_indices[:queue_slot])
        dirty_set = set(outcome.dirty_worlds)
        clean_limited_set = set(outcome.clean_limited)
        node_active = active_worlds.setdefault(position, [])
        for world_index in range(self.engine.num_worlds):
            if world_index in dirty_set:
                continue
            base_queues[world_index].insert(queue_slot, position)
            insort(node_active, world_index)
            if world_index in clean_limited_set:
                limited = base_limited[world_index]
                # Seeds are dequeued first, in canonical order, so the new
                # seed's limited entry lands after the limited seeds that
                # precede it in that order and before everything else.
                slot = 0
                while slot < len(limited) and limited[slot] in prefix:
                    slot += 1
                limited.insert(slot, position)
                insort(limited_worlds.setdefault(position, []), world_index)

        if outcome.delta_index is not None and outcome.delta_index.size:
            self._base_counts[outcome.delta_index] += outcome.delta_values
        self._base_seed_indices = new_seed_indices
        self._base_alloc = new_alloc
        self._base_coupons[position] = seed_coupons
        self.base_benefit = (
            float(self._base_counts @ compiled.benefits) / self.engine.num_worlds
        )
        self.spliced_seed_advances += 1
        return self.base_benefit

    def reconcile(self, application, dirty_mask: np.ndarray) -> Optional[float]:
        """Advance the snapshot across a graph-event application.

        The engine must already have been evolved
        (:meth:`CompiledCascadeEngine.apply_events`); ``dirty_mask`` flags
        the worlds whose live-edge draws touch a changed edge.  Only those
        are re-simulated — the clean worlds' recorded queues, limited lists
        and per-node world indices are carried over (index-remapped when
        nodes were retired) by pure bookkeeping.  The resulting snapshot
        state is bit-identical to :meth:`snapshot` on the new graph from
        scratch; see :mod:`repro.diffusion.reconcile` for the argument.

        Returns the new base benefit, or ``None`` when the deployment does
        not survive the remap cleanly (e.g. a previously-unknown seed id now
        resolves) — the caller then falls back to a fresh :meth:`snapshot`.
        Raises :class:`EstimationError` when the batch retired a base seed
        or an active coupon holder, which has no well-defined reconciliation.
        """
        from repro.diffusion.reconcile import reconcile_snapshot

        return reconcile_snapshot(self, application, dirty_mask)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _require_snapshot(self) -> None:
        if self._base_counts is None:
            raise EstimationError("DeltaCascadeEngine has no snapshot yet")

    def _unchanged(self) -> DeltaOutcome:
        empty = np.empty(0, dtype=np.int64)
        return DeltaOutcome(
            benefit=self.base_benefit,
            delta_index=empty,
            delta_values=empty,
            dirty_worlds=(),
            touched=frozenset(),
            exact=True,
            world_queues={},
            world_limited={},
        )

    def _splice(
        self,
        dirty: List[int],
        seed_indices: List[int],
        coupons: List[int],
        *,
        clean_node: Optional[int] = None,
        clean_count: int = 0,
    ) -> DeltaOutcome:
        """Re-simulate ``dirty`` worlds and splice them into the base counts."""
        engine = self.engine
        compiled = engine.compiled
        num_nodes = compiled.num_nodes

        removed: List[int] = []
        added: List[int] = []
        touched: set = set()
        world_queues: Dict[int, List[int]] = {}
        world_limited: Dict[int, List[int]] = {}
        instrumented = engine.cascade_worlds_instrumented(
            dirty, seed_indices, coupons
        )
        for world_index, (queue, limited) in zip(dirty, instrumented):
            removed.extend(self._base_queues[world_index])
            added.extend(queue)
            touched.update(limited)
            world_queues[world_index] = queue
            world_limited[world_index] = limited

        counts = self._base_counts.copy()
        if clean_node is not None and clean_count:
            counts[clean_node] += clean_count
        if removed:
            counts -= np.bincount(
                np.asarray(removed, dtype=np.int64), minlength=num_nodes
            )
        if added:
            counts += np.bincount(
                np.asarray(added, dtype=np.int64), minlength=num_nodes
            )
        benefit = float(counts @ compiled.benefits) / engine.num_worlds

        delta = counts - self._base_counts
        delta_index = np.flatnonzero(delta)
        node_ids = compiled.node_ids
        return DeltaOutcome(
            benefit=benefit,
            delta_index=delta_index,
            delta_values=delta[delta_index],
            dirty_worlds=tuple(dirty),
            touched=frozenset(node_ids[i] for i in touched),
            exact=True,
            world_queues=world_queues,
            world_limited=world_limited,
        )

    def _fallback(
        self, seed_indices: List[int], new_allocation: Mapping[NodeId, int]
    ) -> DeltaOutcome:
        """Full engine pass for queries the snapshot cannot answer."""
        compiled = self.engine.compiled
        node_ids = compiled.node_ids
        seeds = [node_ids[i] for i in seed_indices]
        _, benefit = self.engine.run(seeds, new_allocation)
        return DeltaOutcome(
            benefit=benefit,
            delta_index=None,
            delta_values=None,
            dirty_worlds=None,
            touched=frozenset(),
            exact=False,
        )


def _sorted_remove(
    mapping: Dict[int, List[int]], key: int, value: int
) -> None:
    """Remove ``value`` from the sorted list ``mapping[key]``; drop empty keys."""
    worlds = mapping[key]
    index = bisect_left(worlds, value)
    if index >= len(worlds) or worlds[index] != value:
        raise EstimationError(
            f"snapshot splice inconsistency: world {value} not indexed "
            f"under node {key}"
        )
    del worlds[index]
    if not worlds:
        del mapping[key]


def _normalize(allocation: Mapping[NodeId, int]) -> Dict[NodeId, int]:
    """Positive entries only — the cascade's view of an allocation."""
    return {node: int(count) for node, count in allocation.items() if int(count) > 0}


def _single_increase(
    base: Mapping[NodeId, int], new: Mapping[NodeId, int], node: NodeId
) -> bool:
    """Whether ``new`` equals ``base`` except for a raised count on ``node``."""
    if new.get(node, 0) <= base.get(node, 0):
        return False
    if len(new) - len(base) not in (0, 1):
        return False
    for key, value in new.items():
        if key != node and base.get(key, 0) != value:
            return False
    for key in base:
        if key != node and key not in new:
            return False
    return True
