"""Exact expected-benefit computation by world enumeration.

For graphs with a handful of edges the expected benefit can be computed
exactly by enumerating all ``2^|E|`` live-edge worlds and weighting each by
its probability.  This estimator backs the unit tests that pin the paper's
worked examples (Fig. 1, Example 1) to their exact numbers, validates the
Monte-Carlo estimator, and feeds the optimality study of Fig. 10 where the
exhaustive OPT solver needs noise-free evaluations.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Hashable, Iterable, List, Mapping, Tuple

from repro.diffusion.live_edge import LiveEdgeWorld, cascade_in_world
from repro.diffusion.monte_carlo import BenefitEstimator
from repro.exceptions import EstimationError
from repro.graph.social_graph import SocialGraph

NodeId = Hashable


class ExactEstimator(BenefitEstimator):
    """Exact expected benefit by enumerating every live-edge world.

    Parameters
    ----------
    graph:
        The social graph.  The number of edges must not exceed
        ``max_edges`` (default 20, i.e. about a million worlds) — beyond that
        the enumeration is intractable and the caller should switch to
        :class:`~repro.diffusion.monte_carlo.MonteCarloEstimator`.
    """

    def __init__(self, graph: SocialGraph, *, max_edges: int = 20) -> None:
        super().__init__(graph)
        self.max_edges = int(max_edges)
        self._edges: List[Tuple[NodeId, NodeId, float]] = list(graph.edges())
        if len(self._edges) > self.max_edges:
            raise EstimationError(
                f"graph has {len(self._edges)} edges; exact enumeration is capped "
                f"at {self.max_edges}"
            )
        self._worlds = self._enumerate_worlds()
        self._benefit_cache: Dict[Tuple, float] = {}

    def _enumerate_worlds(self) -> List[Tuple[LiveEdgeWorld, float]]:
        worlds: List[Tuple[LiveEdgeWorld, float]] = []
        for outcome in product((False, True), repeat=len(self._edges)):
            weight = 1.0
            live = []
            for (source, target, probability), is_live in zip(self._edges, outcome):
                if is_live:
                    weight *= probability
                    live.append((source, target))
                else:
                    weight *= 1.0 - probability
                if weight == 0.0:
                    break
            if weight > 0.0:
                worlds.append((LiveEdgeWorld(frozenset(live)), weight))
        return worlds

    # ------------------------------------------------------------------

    def expected_benefit(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> float:
        seeds = list(seeds)
        key = self._key(seeds, allocation)
        cached = self._benefit_cache.get(key)
        if cached is not None:
            return cached
        total = 0.0
        for world, weight in self._worlds:
            activated = cascade_in_world(self.graph, world, seeds, allocation)
            total += weight * sum(self.graph.benefit(node) for node in activated)
        self._benefit_cache[key] = total
        return total

    def activation_probabilities(
        self, seeds: Iterable[NodeId], allocation: Mapping[NodeId, int]
    ) -> Dict[NodeId, float]:
        seeds = list(seeds)
        probabilities: Dict[NodeId, float] = {}
        for world, weight in self._worlds:
            for node in cascade_in_world(self.graph, world, seeds, allocation):
                probabilities[node] = probabilities.get(node, 0.0) + weight
        return probabilities
