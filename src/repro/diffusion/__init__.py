"""Influence-propagation substrate.

The diffusion subpackage implements the SC-constrained independent cascade of
Sec. III (``sc_cascade``), the plain independent cascade it reduces to under
the unlimited coupon strategy (``independent_cascade``), live-edge world
realisations shared across estimator calls (``live_edge``), the Monte-Carlo
expected-benefit estimator used by every algorithm (``monte_carlo``) and an
exact world-enumeration estimator for tiny graphs (``exact``).
"""

from repro.diffusion.independent_cascade import simulate_independent_cascade
from repro.diffusion.live_edge import LiveEdgeWorld, sample_worlds
from repro.diffusion.monte_carlo import BenefitEstimator, MonteCarloEstimator
from repro.diffusion.exact import ExactEstimator
from repro.diffusion.rr_sets import RRSetSampler, estimate_spread_rr
from repro.diffusion.sc_cascade import CascadeResult, simulate_sc_cascade

__all__ = [
    "RRSetSampler",
    "estimate_spread_rr",
    "simulate_independent_cascade",
    "LiveEdgeWorld",
    "sample_worlds",
    "BenefitEstimator",
    "MonteCarloEstimator",
    "ExactEstimator",
    "CascadeResult",
    "simulate_sc_cascade",
]
