"""Influence-propagation substrate.

The diffusion subpackage implements the SC-constrained independent cascade of
Sec. III (``sc_cascade``), the plain independent cascade it reduces to under
the unlimited coupon strategy (``independent_cascade``), live-edge world
realisations shared across estimator calls (``live_edge``), the Monte-Carlo
expected-benefit estimator used by every algorithm (``monte_carlo``) with its
two cascade backends — the dict-adjacency reference path and the compiled
CSR + vectorized engine (``engine``) — an exact world-enumeration estimator
for tiny graphs (``exact``) and reverse-reachable-set estimation for the
plain-IC regime (``rr_sets``).

Construct estimators through :func:`make_estimator` (``factory``) rather than
instantiating classes directly; the factory is the single switch point for
the ``mc-compiled`` / ``mc`` / ``exact`` / ``rr`` / ``tiered`` methods.  The
``tiered`` method wraps the compiled Monte-Carlo tier in a vectorized
RR-sketch screening pass (``tiered``): every ``submit_many`` batch is scored
with the sketch bound and only the frontier is MC-confirmed.

Batch evaluations — any set of candidate deployments compared against each
other — through :class:`EvaluationPlan` / ``submit_many`` (``estimator``): the
estimator schedules the batch (serial loop, or pipelined ``engine.submit``
over the shard pool in ``parallel``) with bit-identical results either way.
"""

from repro.diffusion.independent_cascade import simulate_independent_cascade
from repro.diffusion.live_edge import LiveEdgeWorld, sample_worlds
from repro.diffusion.estimator import BenefitEstimator, EvaluationPlan
from repro.diffusion.delta import DeltaCascadeEngine, DeltaOutcome
from repro.diffusion.engine import CompiledCascadeEngine
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.diffusion.exact import ExactEstimator
from repro.diffusion.factory import (
    DEFAULT_ESTIMATOR_METHOD,
    ESTIMATOR_METHODS,
    make_estimator,
)
from repro.diffusion.rr_sets import RRBenefitEstimator, RRSetSampler, estimate_spread_rr
from repro.diffusion.sc_cascade import CascadeResult, simulate_sc_cascade
from repro.diffusion.tiered import TieredEstimator

__all__ = [
    "TieredEstimator",
    "DEFAULT_ESTIMATOR_METHOD",
    "ESTIMATOR_METHODS",
    "RRBenefitEstimator",
    "RRSetSampler",
    "estimate_spread_rr",
    "make_estimator",
    "simulate_independent_cascade",
    "LiveEdgeWorld",
    "sample_worlds",
    "BenefitEstimator",
    "EvaluationPlan",
    "CompiledCascadeEngine",
    "DeltaCascadeEngine",
    "DeltaOutcome",
    "MonteCarloEstimator",
    "ExactEstimator",
    "CascadeResult",
    "simulate_sc_cascade",
]
