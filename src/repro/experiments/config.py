"""Experiment configuration objects.

The benchmark scripts declare what to run through two small dataclasses:
:class:`AlgorithmSpec` (which algorithm, with which knobs) and
:class:`ExperimentConfig` (which dataset, budget, ratios, sample counts and
random seed).  Keeping them declarative makes the per-figure benchmark files
short and lets tests exercise the harness with tiny settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.diffusion.factory import DEFAULT_ESTIMATOR_METHOD, ESTIMATOR_METHODS
from repro.exceptions import ExperimentError


@dataclass(frozen=True)
class AlgorithmSpec:
    """Declarative description of one algorithm to compare.

    ``factory`` receives ``(scenario, estimator, seed)`` and returns an object
    with a ``run()`` method producing either an
    :class:`~repro.baselines.base.AlgorithmResult` or an
    :class:`~repro.core.s3ca.S3CAResult`.
    """

    name: str
    factory: Callable
    options: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs of one experimental condition."""

    dataset: str = "facebook"
    scale: float = 1.0
    budget: Optional[float] = None
    lam: float = 1.0
    kappa: float = 10.0
    num_samples: int = 100
    repetitions: int = 3
    seed: int = 2019
    candidate_limit: Optional[int] = 25
    max_pivot_candidates: Optional[int] = 150
    limited_coupons: int = 32
    estimator_method: str = DEFAULT_ESTIMATOR_METHOD
    #: Delta-evaluation engine + CELF lazy queue for S3CA's ID phase.  The
    #: selected deployments are bit-identical either way; False forces the
    #: eager full-resimulation reference path.
    incremental: bool = True
    #: Sharded world sampling: evaluate worlds in blocks of this size,
    #: bounding peak memory to O(shard_size) worlds.  ``None`` keeps every
    #: world resident.  Estimates are bit-identical for any value.
    shard_size: Optional[int] = None
    #: Multiprocess shard executor: ``workers > 1`` evaluates shard blocks on
    #: a persistent process pool with a deterministic streaming reduction —
    #: results are bit-identical for every worker count.  The runner and the
    #: sweep harnesses share **one** pool of this width across every
    #: algorithm, estimator and swept condition (see
    #: :class:`repro.diffusion.parallel.SharedShardPool`).  ``None``/``1``
    #: stays serial.
    workers: Optional[int] = None
    #: In-flight bound of the batched evaluation scheduler: how many
    #: submitted evaluations an :class:`~repro.diffusion.estimator.EvaluationPlan`
    #: keeps pending before draining the oldest.  ``None`` derives
    #: ``max(2, 2 * workers)``.  Results are bit-identical for any value —
    #: only throughput changes.
    pipeline_depth: Optional[int] = None
    #: Native cascade kernel dispatch (:mod:`repro.diffusion.kernels`):
    #: ``None`` auto-detects a compiled backend with silent interpreted
    #: fallback, ``True`` warns on fallback, ``False`` forces the interpreted
    #: oracle loop.  Results are bit-identical either way — only speed
    #: changes.
    use_kernel: Optional[bool] = None
    #: Zero-copy shared-memory transport of the compiled graph and the
    #: materialised world blocks (:mod:`repro.utils.shm`): ``None``
    #: auto-enables it exactly when worlds execute out-of-process
    #: (``workers > 1`` or an injected pool), ``True`` forces it (warning +
    #: by-value fallback when the platform lacks shared memory), ``False``
    #: forces private copies.  Results are bit-identical for every setting —
    #: only broadcast size and memory change.
    shared_memory: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.estimator_method not in ESTIMATOR_METHODS:
            raise ExperimentError(
                f"estimator_method must be one of {ESTIMATOR_METHODS}, "
                f"got {self.estimator_method!r}"
            )
        if self.scale <= 0:
            raise ExperimentError(f"scale must be > 0, got {self.scale}")
        if self.num_samples <= 0:
            raise ExperimentError(f"num_samples must be > 0, got {self.num_samples}")
        if self.repetitions <= 0:
            raise ExperimentError(f"repetitions must be > 0, got {self.repetitions}")
        if self.lam <= 0 or self.kappa <= 0:
            raise ExperimentError("lam and kappa must be > 0")
        if self.shard_size is not None and self.shard_size <= 0:
            raise ExperimentError(
                f"shard_size must be > 0 or None, got {self.shard_size}"
            )
        if self.workers is not None and self.workers <= 0:
            raise ExperimentError(f"workers must be > 0 or None, got {self.workers}")
        if self.pipeline_depth is not None and self.pipeline_depth <= 0:
            raise ExperimentError(
                f"pipeline_depth must be > 0 or None, got {self.pipeline_depth}"
            )

    def replace(self, **changes) -> "ExperimentConfig":
        """Return a copy with some fields replaced."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **changes)
