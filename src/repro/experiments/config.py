"""Experiment configuration objects.

The benchmark scripts declare what to run through two small dataclasses:
:class:`AlgorithmSpec` (which algorithm, with which knobs) and
:class:`ExperimentConfig` (which dataset, budget, ratios, sample counts and
random seed).  Keeping them declarative makes the per-figure benchmark files
short and lets tests exercise the harness with tiny settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.diffusion.factory import DEFAULT_ESTIMATOR_METHOD, ESTIMATOR_METHODS
from repro.exceptions import ExperimentError
from repro.utils.env import env_flag, env_int, env_str


@dataclass(frozen=True)
class AlgorithmSpec:
    """Declarative description of one algorithm to compare.

    ``factory`` receives ``(scenario, estimator, seed)`` and returns an object
    with a ``run()`` method producing either an
    :class:`~repro.baselines.base.AlgorithmResult` or an
    :class:`~repro.core.s3ca.S3CAResult`.
    """

    name: str
    factory: Callable
    options: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs of one experimental condition."""

    dataset: str = "facebook"
    scale: float = 1.0
    budget: Optional[float] = None
    lam: float = 1.0
    kappa: float = 10.0
    num_samples: int = 100
    repetitions: int = 3
    seed: int = 2019
    candidate_limit: Optional[int] = 25
    max_pivot_candidates: Optional[int] = 150
    limited_coupons: int = 32
    estimator_method: str = DEFAULT_ESTIMATOR_METHOD
    #: Delta-evaluation engine + CELF lazy queue for S3CA's ID phase.  The
    #: selected deployments are bit-identical either way; False forces the
    #: eager full-resimulation reference path.
    incremental: bool = True
    #: Sharded world sampling: evaluate worlds in blocks of this size,
    #: bounding peak memory to O(shard_size) worlds.  ``None`` keeps every
    #: world resident.  Estimates are bit-identical for any value.
    shard_size: Optional[int] = None
    #: Multiprocess shard executor: ``workers > 1`` evaluates shard blocks on
    #: a persistent process pool with a deterministic streaming reduction —
    #: results are bit-identical for every worker count.  The runner and the
    #: sweep harnesses share **one** pool of this width across every
    #: algorithm, estimator and swept condition (see
    #: :class:`repro.diffusion.parallel.SharedShardPool`).  ``None``/``1``
    #: stays serial.
    workers: Optional[int] = None
    #: In-flight bound of the batched evaluation scheduler: how many
    #: submitted evaluations an :class:`~repro.diffusion.estimator.EvaluationPlan`
    #: keeps pending before draining the oldest.  ``None`` derives
    #: ``max(2, 2 * workers)``.  Results are bit-identical for any value —
    #: only throughput changes.
    pipeline_depth: Optional[int] = None
    #: Native cascade kernel dispatch (:mod:`repro.diffusion.kernels`):
    #: ``None`` auto-detects a compiled backend with silent interpreted
    #: fallback, ``True`` warns on fallback, ``False`` forces the interpreted
    #: oracle loop.  Results are bit-identical either way — only speed
    #: changes.
    use_kernel: Optional[bool] = None
    #: Zero-copy shared-memory transport of the compiled graph and the
    #: materialised world blocks (:mod:`repro.utils.shm`): ``None``
    #: auto-enables it exactly when worlds execute out-of-process
    #: (``workers > 1`` or an injected pool), ``True`` forces it (warning +
    #: by-value fallback when the platform lacks shared memory), ``False``
    #: forces private copies.  Results are bit-identical for every setting —
    #: only broadcast size and memory change.
    shared_memory: Optional[bool] = None
    #: Two-tier screening knobs (``estimator_method="tiered"`` only): the
    #: top ``tier_top_k`` sketch scores of every evaluation batch plus the
    #: relative ``tier_epsilon`` band below the k-th are MC-confirmed;
    #: everything else returns its calibrated sketch score.  ``None`` keeps
    #: the factory defaults.  ``tiering=False`` disables screening while
    #: keeping the tiered wrapper (cross-check mode).
    tier_epsilon: Optional[float] = None
    tier_top_k: Optional[int] = None
    tiering: bool = True

    def __post_init__(self) -> None:
        if self.estimator_method not in ESTIMATOR_METHODS:
            raise ExperimentError(
                f"estimator_method must be one of {ESTIMATOR_METHODS}, "
                f"got {self.estimator_method!r}"
            )
        if self.scale <= 0:
            raise ExperimentError(f"scale must be > 0, got {self.scale}")
        if self.num_samples <= 0:
            raise ExperimentError(f"num_samples must be > 0, got {self.num_samples}")
        if self.repetitions <= 0:
            raise ExperimentError(f"repetitions must be > 0, got {self.repetitions}")
        if self.lam <= 0 or self.kappa <= 0:
            raise ExperimentError("lam and kappa must be > 0")
        if self.shard_size is not None and self.shard_size <= 0:
            raise ExperimentError(
                f"shard_size must be > 0 or None, got {self.shard_size}"
            )
        if self.workers is not None and self.workers <= 0:
            raise ExperimentError(f"workers must be > 0 or None, got {self.workers}")
        if self.pipeline_depth is not None and self.pipeline_depth <= 0:
            raise ExperimentError(
                f"pipeline_depth must be > 0 or None, got {self.pipeline_depth}"
            )
        if self.tier_epsilon is not None and not 0.0 <= self.tier_epsilon <= 1.0:
            raise ExperimentError(
                f"tier_epsilon must be in [0, 1] or None, got {self.tier_epsilon}"
            )
        if self.tier_top_k is not None and self.tier_top_k <= 0:
            raise ExperimentError(
                f"tier_top_k must be > 0 or None, got {self.tier_top_k}"
            )

    def replace(self, **changes) -> "ExperimentConfig":
        """Return a copy with some fields replaced."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **changes)


@dataclass(frozen=True)
class ServerConfig:
    """Knobs of the campaign server (:mod:`repro.server`).

    The server keeps compiled graphs, RNG-frozen samplers, warmed kernels and
    one shared worker pool resident across requests; these knobs size that
    resident state.  Every field has an environment override
    (``REPRO_SERVER_*``, parsed through :mod:`repro.utils.env` so boolean
    spellings like ``0``/``false`` behave as off) and a CLI flag on
    ``repro serve``.
    """

    #: Bind address / port of the HTTP server.
    host: str = "127.0.0.1"
    port: int = 8000
    #: Width of the resident :class:`~repro.diffusion.parallel.SharedShardPool`
    #: every estimator registers on.  ``None``/``1`` evaluates in-process.
    workers: Optional[int] = None
    #: Solve-job worker threads draining the bounded job queue.
    job_workers: int = 2
    #: Bound of the job queue; submissions past it are rejected (HTTP 503)
    #: instead of accumulating unbounded resident work.
    max_queued_jobs: int = 64
    #: Default Monte-Carlo worlds / RNG seed of scenarios that do not specify
    #: their own at registration time.
    num_samples: int = 200
    seed: int = 2019
    #: Estimator knobs threaded into every resident estimator (same semantics
    #: as :class:`ExperimentConfig`).
    shard_size: Optional[int] = None
    pipeline_depth: Optional[int] = None
    use_kernel: Optional[bool] = None
    shared_memory: Optional[bool] = None
    #: Compiled-graph cache directory for SNAP registrations (``None`` =
    #: ``$REPRO_GRAPH_CACHE_DIR`` or ``~/.cache/repro-graphs``).
    graph_cache_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if not (0 < self.port < 65536):
            raise ExperimentError(f"port must be in (0, 65536), got {self.port}")
        if self.workers is not None and self.workers <= 0:
            raise ExperimentError(f"workers must be > 0 or None, got {self.workers}")
        if self.job_workers <= 0:
            raise ExperimentError(f"job_workers must be > 0, got {self.job_workers}")
        if self.max_queued_jobs <= 0:
            raise ExperimentError(
                f"max_queued_jobs must be > 0, got {self.max_queued_jobs}"
            )
        if self.num_samples <= 0:
            raise ExperimentError(f"num_samples must be > 0, got {self.num_samples}")
        if self.shard_size is not None and self.shard_size <= 0:
            raise ExperimentError(
                f"shard_size must be > 0 or None, got {self.shard_size}"
            )
        if self.pipeline_depth is not None and self.pipeline_depth <= 0:
            raise ExperimentError(
                f"pipeline_depth must be > 0 or None, got {self.pipeline_depth}"
            )

    def replace(self, **changes) -> "ServerConfig":
        """Return a copy with some fields replaced."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **changes)

    @classmethod
    def from_env(cls, **overrides) -> "ServerConfig":
        """Build a config from ``REPRO_SERVER_*`` variables, then overrides.

        Explicit keyword overrides (the CLI flags) win over the environment;
        ``None`` overrides are ignored so flag defaults don't mask env values.
        """
        values = {
            "host": env_str("REPRO_SERVER_HOST", default=cls.host),
            "port": env_int("REPRO_SERVER_PORT", default=cls.port),
            "workers": env_int("REPRO_SERVER_WORKERS", default=None),
            "job_workers": env_int("REPRO_SERVER_JOB_WORKERS", default=cls.job_workers),
            "max_queued_jobs": env_int(
                "REPRO_SERVER_MAX_QUEUE", default=cls.max_queued_jobs
            ),
            "num_samples": env_int("REPRO_SERVER_SAMPLES", default=cls.num_samples),
            "seed": env_int("REPRO_SERVER_SEED", default=cls.seed),
            "shard_size": env_int("REPRO_SERVER_SHARD_SIZE", default=None),
            "pipeline_depth": env_int("REPRO_SERVER_PIPELINE_DEPTH", default=None),
            "use_kernel": (
                False if env_flag("REPRO_SERVER_NO_KERNEL") else None
            ),
            "shared_memory": (
                False if env_flag("REPRO_SERVER_NO_SHARED_MEMORY") else None
            ),
            "graph_cache_dir": env_str("REPRO_SERVER_GRAPH_CACHE_DIR", default=None),
        }
        values.update(
            {key: value for key, value in overrides.items() if value is not None}
        )
        return cls(**values)
