"""Experiment harness reproducing Section VI of the paper.

Modules map one-to-one onto the paper's artifacts:

* :mod:`repro.experiments.datasets` — Table II (synthetic stand-ins).
* :mod:`repro.experiments.sweeps` — Fig. 6, Fig. 7 and Table IV parameter sweeps.
* :mod:`repro.experiments.case_study` — Fig. 8 (Airbnb / Booking policies).
* :mod:`repro.experiments.scalability` — Fig. 9 (size and budget scaling).
* :mod:`repro.experiments.approximation` — Fig. 10 (S3CA vs OPT vs bound).
* :mod:`repro.experiments.metrics` / ``runner`` / ``reporting`` — shared
  measurement, execution and table-formatting machinery.
"""

from repro.experiments.config import AlgorithmSpec, ExperimentConfig
from repro.experiments.datasets import (
    DATASET_SPECS,
    build_scenario,
    named_dataset,
    toy_scenario,
)
from repro.experiments.metrics import (
    average_farthest_hop,
    explored_ratio,
    seed_sc_rate,
)
from repro.experiments.runner import ExperimentRunner, RunRecord
from repro.experiments.reporting import format_series, format_table

__all__ = [
    "AlgorithmSpec",
    "ExperimentConfig",
    "DATASET_SPECS",
    "build_scenario",
    "named_dataset",
    "toy_scenario",
    "average_farthest_hop",
    "explored_ratio",
    "seed_sc_rate",
    "ExperimentRunner",
    "RunRecord",
    "format_series",
    "format_table",
]
