"""The evaluation datasets (Table II) as synthetic stand-ins.

The paper evaluates on SNAP Facebook (4K nodes / 88K edges), Epinions
(76K/509K), Google+ (108K/13.7M) and Douban (5.5M/86M).  Those datasets are
not redistributable here and graphs of that size are far beyond what a pure
Python Monte-Carlo pipeline can sweep in reasonable time, so this module
defines *scaled-down synthetic stand-ins* that preserve the properties the
evaluation actually exercises:

* heavy-tailed degree distributions (degree-proportional seed costs and
  ``1/in-degree`` influence probabilities inherit their heterogeneity),
* the relative density ordering of the four datasets (Facebook is the densest
  per node, Douban the sparsest), and
* the per-dataset benefit distribution ``N(µ, σ)`` and budget of Table II,
  rescaled to the stand-in size so the budget covers a comparable fraction of
  the users.

``scale=1.0`` gives graphs of a few hundred nodes (benchmark-friendly);
passing a larger scale grows them proportionally for users with more patience.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.economics.scenario import Scenario, ScenarioBuilder
from repro.exceptions import ExperimentError
from repro.graph.generators import GraphSpec, ppgg_like_graph
from repro.graph.social_graph import SocialGraph


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one named dataset stand-in."""

    name: str
    base_nodes: int
    avg_out_degree: float
    clustering: float
    power_law_exponent: float
    benefit_mean: float
    benefit_std: float
    base_budget: float
    paper_nodes: str
    paper_edges: str
    paper_budget: str


DATASET_SPECS: Dict[str, DatasetSpec] = {
    "facebook": DatasetSpec(
        name="facebook",
        base_nodes=300,
        avg_out_degree=10.0,
        clustering=0.3,
        power_law_exponent=2.1,
        benefit_mean=10.0,
        benefit_std=2.0,
        base_budget=750.0,
        paper_nodes="4K",
        paper_edges="88K",
        paper_budget="10K",
    ),
    "epinions": DatasetSpec(
        name="epinions",
        base_nodes=400,
        avg_out_degree=7.0,
        clustering=0.15,
        power_law_exponent=2.0,
        benefit_mean=20.0,
        benefit_std=4.0,
        base_budget=1300.0,
        paper_nodes="76K",
        paper_edges="509K",
        paper_budget="50K",
    ),
    "gplus": DatasetSpec(
        name="gplus",
        base_nodes=500,
        avg_out_degree=12.0,
        clustering=0.2,
        power_law_exponent=1.9,
        benefit_mean=50.0,
        benefit_std=10.0,
        base_budget=4500.0,
        paper_nodes="108K",
        paper_edges="13.7M",
        paper_budget="200K",
    ),
    "douban": DatasetSpec(
        name="douban",
        base_nodes=600,
        avg_out_degree=5.0,
        clustering=0.1,
        power_law_exponent=2.2,
        benefit_mean=100.0,
        benefit_std=20.0,
        base_budget=10000.0,
        paper_nodes="5.5M",
        paper_edges="86M",
        paper_budget="1M",
    ),
}


def dataset_graph(name: str, scale: float = 1.0, seed: int = 2019) -> SocialGraph:
    """Build the topology of a named dataset stand-in."""
    spec = _spec(name)
    num_nodes = max(20, int(round(spec.base_nodes * scale)))
    return ppgg_like_graph(
        num_nodes=num_nodes,
        avg_out_degree=spec.avg_out_degree,
        power_law_exponent=spec.power_law_exponent,
        clustering=spec.clustering,
        seed=seed,
    )


def build_scenario(
    name: str,
    *,
    scale: float = 1.0,
    budget: Optional[float] = None,
    lam: float = 1.0,
    kappa: float = 10.0,
    seed: int = 2019,
) -> Scenario:
    """Build a full scenario for a named dataset with the paper's default knobs.

    ``lam`` and ``kappa`` are the benefit/SC-cost and seed-cost/benefit ratios
    of Sec. VI-A (defaults 1 and 10); ``budget`` defaults to the dataset's
    scaled budget.
    """
    spec = _spec(name)
    graph = dataset_graph(name, scale=scale, seed=seed)
    effective_budget = budget if budget is not None else spec.base_budget * scale
    builder = (
        ScenarioBuilder(graph, name=f"{name}(x{scale:g})")
        .with_normal_benefits(spec.benefit_mean, spec.benefit_std, seed=seed)
        .with_uniform_sc_costs(spec.benefit_mean)  # rescaled by with_lambda below
        .with_degree_proportional_seed_costs()
        .with_lambda(lam)
        .with_kappa(kappa)
        .with_budget(effective_budget)
        .with_metadata(dataset=name, scale=scale, seed=seed)
    )
    return builder.build()


def named_dataset(name: str, scale: float = 1.0, seed: int = 2019) -> Scenario:
    """Shorthand for :func:`build_scenario` with all paper-default knobs."""
    return build_scenario(name, scale=scale, seed=seed)


def snap_scenario(
    path,
    *,
    budget: Optional[float] = None,
    lam: float = 1.0,
    kappa: float = 10.0,
    seed: int = 2019,
    benefit_mean: float = 10.0,
    benefit_std: float = 2.0,
    default_probability: float = 0.1,
    reciprocal_in_degree: bool = True,
    cache_dir=None,
) -> Scenario:
    """Build a scenario from a real SNAP-style edge-list file.

    The topology comes from the user's file — compiled through the
    content-addressed memory-mapped cache of
    :func:`repro.graph.io.load_compiled_snap`, so repeated runs on the same
    file skip the edge-list parse entirely — while the economic attributes
    follow the paper's synthetic recipe (``N(µ, σ)`` benefits, uniform SC
    costs rescaled by ``lam``, degree-proportional seed costs rescaled by
    ``kappa``).  Influence probabilities default to the paper's standard
    ``1/in-degree`` weighted-cascade setting; a third edge-list column (or
    ``default_probability``) is used instead when
    ``reciprocal_in_degree=False``.  ``budget`` defaults to ``2.0 * nodes``,
    covering a comparable user fraction at any graph size.
    """
    from pathlib import Path

    from repro.graph.io import load_compiled_snap

    path = Path(path)
    compiled = load_compiled_snap(
        path,
        default_probability=default_probability,
        reciprocal_in_degree=reciprocal_in_degree,
        cache_dir=cache_dir,
    )
    graph = SocialGraph.from_edges(compiled.edges())
    effective_budget = budget if budget is not None else 2.0 * graph.num_nodes
    builder = (
        ScenarioBuilder(graph, name=f"snap:{path.stem}")
        .with_normal_benefits(benefit_mean, benefit_std, seed=seed)
        .with_uniform_sc_costs(benefit_mean)
        .with_degree_proportional_seed_costs()
        .with_lambda(lam)
        .with_kappa(kappa)
        .with_budget(effective_budget)
        .with_metadata(dataset=f"snap:{path.name}", seed=seed)
    )
    return builder.build()


def toy_scenario(budget: float = 12.0) -> Scenario:
    """A tiny deterministic scenario used by the quickstart and many tests.

    Eight users in two communities joined by a bridge; user ``a`` is a cheap,
    well-connected entry point while the far community contains the
    high-benefit users that only coupon allocation can reach.
    """
    graph = SocialGraph()
    edges = [
        ("a", "b", 0.6),
        ("a", "c", 0.5),
        ("b", "d", 0.5),
        ("c", "d", 0.4),
        ("d", "e", 0.7),
        ("e", "f", 0.6),
        ("e", "g", 0.5),
        ("f", "h", 0.8),
    ]
    for source, target, probability in edges:
        graph.add_edge(source, target, probability)
    benefits = {"a": 2, "b": 2, "c": 2, "d": 3, "e": 4, "f": 6, "g": 5, "h": 10}
    for node in graph.nodes():
        graph.add_node(
            node,
            benefit=float(benefits[node]),
            seed_cost=2.0 if node in {"a", "b", "c"} else 8.0,
            sc_cost=1.0,
        )
    return Scenario(graph=graph, budget_limit=budget, name="toy")


def table2_rows(scale: float = 1.0, seed: int = 2019) -> list:
    """Rows of the Table II stand-in: per dataset, paper vs generated sizes."""
    rows = []
    for name, spec in DATASET_SPECS.items():
        graph = dataset_graph(name, scale=scale, seed=seed)
        rows.append(
            {
                "dataset": name,
                "paper_nodes": spec.paper_nodes,
                "paper_edges": spec.paper_edges,
                "paper_budget": spec.paper_budget,
                "nodes": graph.num_nodes,
                "edges": graph.num_edges,
                "budget": spec.base_budget * scale,
                "benefit_mu": spec.benefit_mean,
                "benefit_sigma": spec.benefit_std,
            }
        )
    return rows


def _spec(name: str) -> DatasetSpec:
    try:
        return DATASET_SPECS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_SPECS)}"
        ) from None
