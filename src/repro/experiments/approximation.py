"""Optimality study of Fig. 10: S3CA vs the exhaustive optimum and the bound.

The paper validates Theorem 2 empirically: on small PPGG-generated networks it
compares S3CA (and the baselines) with the optimal redemption rate found by
exhaustive search and with the *worst-case bound* — the optimum multiplied by
the approximation ratio ``1 − e^{−1/(b0·c0)}``, where ``b0`` and ``c0`` are
the benefit and cost spread ratios of the instance.  Every S3CA solution
should sit above that bound.

The paper uses 150-node networks; an unrestricted exhaustive search at that
size is infeasible (in the paper it was "computation-intensive"), so the
default study here uses smaller instances and a bounded coupon enumeration —
the comparison is exact for the search space it covers and the qualitative
conclusion (S3CA ≥ worst-case bound, close to OPT) is unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.baselines.exhaustive import ExhaustiveSearch
from repro.core.s3ca import S3CA
from repro.diffusion.estimator import BenefitEstimator
from repro.diffusion.factory import make_estimator
from repro.economics.scenario import Scenario, ScenarioBuilder
from repro.exceptions import EstimationError
from repro.experiments.config import ExperimentConfig
from repro.graph.generators import ppgg_like_graph


@dataclass
class OptimalityPoint:
    """One instance's S3CA value, optimal value and worst-case bound."""

    gross_margin: float
    s3ca_rate: float
    optimal_rate: float
    worst_case_bound: float
    approximation_ratio: float

    @property
    def above_bound(self) -> bool:
        """Whether S3CA respects the theoretical guarantee on this instance."""
        return self.s3ca_rate >= self.worst_case_bound - 1e-9


def benefit_spread_ratio(scenario: Scenario) -> float:
    """``b0``: maximum over minimum positive benefit across users."""
    benefits = [
        scenario.graph.benefit(node)
        for node in scenario.graph.nodes()
        if scenario.graph.benefit(node) > 0
    ]
    if not benefits:
        return 1.0
    return max(benefits) / min(benefits)


def cost_spread_ratio(scenario: Scenario) -> float:
    """``c0``: maximum over minimum positive cost (seed or SC) across users."""
    costs = []
    for node in scenario.graph.nodes():
        for value in (scenario.graph.seed_cost(node), scenario.graph.sc_cost(node)):
            if value > 0:
                costs.append(value)
    if not costs:
        return 1.0
    return max(costs) / min(costs)


def approximation_ratio(scenario: Scenario) -> float:
    """Theorem 2's ratio ``1 − e^{−1/(b0·c0)}`` for an instance."""
    b0 = benefit_spread_ratio(scenario)
    c0 = cost_spread_ratio(scenario)
    return 1.0 - math.exp(-1.0 / (b0 * c0))


def small_instance(
    gross_margin: float,
    *,
    num_nodes: int = 12,
    avg_out_degree: float = 2.0,
    power_law_exponent: float = 1.7,
    sc_cost: float = 1.0,
    budget: float = 8.0,
    seed: int = 2019,
) -> Scenario:
    """A small PPGG-like instance with gross-margin benefits (Fig. 10 setting)."""
    graph = ppgg_like_graph(
        num_nodes=num_nodes,
        avg_out_degree=avg_out_degree,
        power_law_exponent=power_law_exponent,
        clustering=0.2,
        seed=seed,
    )
    return (
        ScenarioBuilder(graph, name=f"small-gm{gross_margin:g}")
        .with_uniform_sc_costs(sc_cost)
        .with_gross_margin_benefits(gross_margin)
        .with_uniform_seed_costs(2.0)
        .with_budget(budget)
        .build()
    )


def compare_with_optimal(
    scenario: Scenario,
    *,
    config: Optional[ExperimentConfig] = None,
    estimator: Optional[BenefitEstimator] = None,
    max_seeds: int = 2,
    max_coupons_per_node: int = 2,
    max_total_coupons: int = 5,
    gross_margin: float = 0.0,
    max_exact_edges: int = 14,
) -> OptimalityPoint:
    """Run S3CA and the exhaustive oracle on one instance.

    The exact world-enumeration estimator is used when the instance has at
    most ``max_exact_edges`` edges (its cost is ``2^|E|`` per evaluation and
    the exhaustive oracle performs many evaluations); larger instances fall
    back to the Monte-Carlo estimator.
    """
    config = config or ExperimentConfig()
    if estimator is None:
        try:
            estimator = make_estimator(
                scenario, "exact", max_exact_edges=max_exact_edges
            )
        except EstimationError:
            estimator = make_estimator(
                scenario,
                config.estimator_method,
                num_samples=config.num_samples,
                seed=config.seed,
            )

    s3ca_result = S3CA(
        scenario,
        estimator=estimator,
        candidate_limit=config.candidate_limit,
        max_pivot_candidates=config.max_pivot_candidates,
    ).solve()

    optimal = ExhaustiveSearch(
        scenario,
        estimator=estimator,
        max_seeds=max_seeds,
        max_coupons_per_node=max_coupons_per_node,
        max_total_coupons=max_total_coupons,
    ).run()

    ratio = approximation_ratio(scenario)
    return OptimalityPoint(
        gross_margin=gross_margin,
        s3ca_rate=s3ca_result.redemption_rate,
        optimal_rate=optimal.redemption_rate,
        worst_case_bound=optimal.redemption_rate * ratio,
        approximation_ratio=ratio,
    )


def sweep_gross_margin(
    gross_margins: Sequence[float],
    *,
    config: Optional[ExperimentConfig] = None,
    instance_kwargs: Optional[Dict] = None,
    compare_kwargs: Optional[Dict] = None,
) -> List[OptimalityPoint]:
    """Fig. 10: one optimality comparison per gross margin.

    ``instance_kwargs`` parameterise :func:`small_instance` and
    ``compare_kwargs`` are forwarded to :func:`compare_with_optimal`
    (e.g. ``max_seeds`` / ``max_total_coupons`` to bound the oracle).
    """
    config = config or ExperimentConfig()
    instance_kwargs = dict(instance_kwargs or {})
    compare_kwargs = dict(compare_kwargs or {})
    points = []
    for gross_margin in gross_margins:
        scenario = small_instance(
            gross_margin, seed=config.seed, **instance_kwargs
        )
        points.append(
            compare_with_optimal(
                scenario, config=config, gross_margin=gross_margin, **compare_kwargs
            )
        )
    return points


def points_to_rows(points: Sequence[OptimalityPoint]) -> List[Dict[str, float]]:
    """Convert optimality points into report rows."""
    return [
        {
            "gross_margin": point.gross_margin,
            "S3CA": point.s3ca_rate,
            "OPT": point.optimal_rate,
            "worst_case": point.worst_case_bound,
            "ratio": point.approximation_ratio,
            "above_bound": point.above_bound,
        }
        for point in points
    ]
