"""Plain-text reporting matching the paper's tables and figure series.

The benchmark harness prints its results as aligned text tables (one per
paper artifact) so ``pytest benchmarks/ --benchmark-only`` output can be
compared side by side with the paper.  CSV export is provided for users who
want to re-plot the figures.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    *,
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Format dictionaries as an aligned text table.

    ``columns`` fixes the column order (default: keys of the first row).
    Floats are formatted with ``float_format``; other values with ``str``.
    """
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            if value == float("inf"):
                return "inf"
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Mapping[object, float]],
    *,
    x_label: str = "x",
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Format ``{algorithm: {x: y}}`` as one table with an ``x`` column.

    This is the shape of every figure in the paper: one curve per algorithm
    over a swept parameter.
    """
    xs: List[object] = []
    for values in series.values():
        for x in values:
            if x not in xs:
                xs.append(x)
    try:
        xs.sort()
    except TypeError:
        pass
    rows = []
    for x in xs:
        row: Dict[str, object] = {x_label: x}
        for name, values in series.items():
            if x in values:
                row[name] = values[x]
        rows.append(row)
    columns = [x_label] + list(series.keys())
    return format_table(rows, columns, title=title, float_format=float_format)


def to_csv(rows: Sequence[Mapping[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as CSV text (columns default to the first row's keys)."""
    rows = list(rows)
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(dict(row))
    return buffer.getvalue()


def records_to_rows(records: Iterable, metrics: Sequence[str]) -> List[Dict[str, object]]:
    """Convert :class:`~repro.experiments.runner.RunRecord` objects to table rows."""
    rows = []
    for record in records:
        row: Dict[str, object] = {
            "algorithm": record.algorithm,
            "scenario": record.scenario,
        }
        for metric in metrics:
            row[metric] = record.get(metric)
        rows.append(row)
    return rows
