"""Parameter sweeps: Fig. 6, Fig. 7 and Table IV.

Each sweep varies one knob (investment budget ``B_inv``, benefit/SC-cost ratio
λ or seed-cost/benefit ratio κ), rebuilds the scenario, runs the comparison
algorithms through the :class:`~repro.experiments.runner.ExperimentRunner`
and collects one series per algorithm for the requested metric.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.experiments.config import AlgorithmSpec, ExperimentConfig
from repro.experiments.datasets import build_scenario
from repro.experiments.runner import ExperimentRunner, RunRecord, shared_pool_for

Series = Dict[str, Dict[float, float]]


def sweep_budget(
    config: ExperimentConfig,
    budgets: Sequence[float],
    metrics: Sequence[str] = ("redemption_rate", "expected_benefit", "seconds"),
    *,
    algorithms: Optional[List[AlgorithmSpec]] = None,
    include_im_s: bool = True,
) -> Dict[str, Series]:
    """Vary ``B_inv`` (Fig. 6(a)-(b), Fig. 7(a)-(b), Table IV, Fig. 6(e)-(f))."""
    return _sweep(
        config,
        parameter="budget",
        values=budgets,
        metrics=metrics,
        algorithms=algorithms,
        include_im_s=include_im_s,
    )


def sweep_lambda(
    config: ExperimentConfig,
    lams: Sequence[float],
    metrics: Sequence[str] = ("redemption_rate", "seed_sc_rate"),
    *,
    algorithms: Optional[List[AlgorithmSpec]] = None,
    include_im_s: bool = True,
) -> Dict[str, Series]:
    """Vary λ = total benefit / total SC cost (Fig. 6(c)-(d), Fig. 7(c)-(d))."""
    return _sweep(
        config,
        parameter="lam",
        values=lams,
        metrics=metrics,
        algorithms=algorithms,
        include_im_s=include_im_s,
    )


def sweep_kappa(
    config: ExperimentConfig,
    kappas: Sequence[float],
    metrics: Sequence[str] = ("seed_sc_rate",),
    *,
    algorithms: Optional[List[AlgorithmSpec]] = None,
    include_im_s: bool = True,
) -> Dict[str, Series]:
    """Vary κ = total seed cost / total benefit (Fig. 7(e)-(f))."""
    return _sweep(
        config,
        parameter="kappa",
        values=kappas,
        metrics=metrics,
        algorithms=algorithms,
        include_im_s=include_im_s,
    )


def run_comparison(
    config: ExperimentConfig,
    *,
    algorithms: Optional[List[AlgorithmSpec]] = None,
    include_im_s: bool = True,
) -> List[RunRecord]:
    """Run the full comparison once under the config's default parameters."""
    scenario = build_scenario(
        config.dataset,
        scale=config.scale,
        budget=config.budget,
        lam=config.lam,
        kappa=config.kappa,
        seed=config.seed,
    )
    with ExperimentRunner(scenario, config) as runner:
        specs = (
            algorithms
            if algorithms is not None
            else runner.default_algorithms(include_im_s)
        )
        return runner.run_all(specs)


# ----------------------------------------------------------------------


def _sweep(
    config: ExperimentConfig,
    *,
    parameter: str,
    values: Iterable[float],
    metrics: Sequence[str],
    algorithms: Optional[List[AlgorithmSpec]],
    include_im_s: bool,
) -> Dict[str, Series]:
    """Shared sweep implementation returning ``{metric: {algorithm: {x: y}}}``.

    With ``config.workers > 1`` every swept condition's runner registers on
    **one** shared worker pool created here for the whole sweep, instead of
    paying a process-pool start-up per condition.
    """
    results: Dict[str, Series] = {metric: {} for metric in metrics}
    pool = shared_pool_for(config)
    try:
        for value in values:
            swept = config.replace(**{parameter: value})
            scenario = build_scenario(
                swept.dataset,
                scale=swept.scale,
                budget=swept.budget,
                lam=swept.lam,
                kappa=swept.kappa,
                seed=swept.seed,
            )
            with ExperimentRunner(scenario, swept, pool=pool) as runner:
                specs = (
                    algorithms
                    if algorithms is not None
                    else runner.default_algorithms(include_im_s)
                )
                for record in runner.run_all(specs):
                    for metric in metrics:
                        series = results[metric].setdefault(record.algorithm, {})
                        series[float(value)] = record.get(metric)
    finally:
        if pool is not None:
            pool.close()
    return results
