"""Evaluation metrics of Section VI.

The paper reports four quantities per algorithm: the redemption rate, the
total benefit, the seed-SC rate (ratio of seed spending to SC spending,
Fig. 7) and the average farthest hop from the seeds (Table III); the
scalability study additionally reports the explored ratio (Fig. 9).  The
redemption rate and total benefit come straight from the algorithm results;
this module implements the remaining, structural ones.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Optional

from repro.core.deployment import Deployment
from repro.diffusion.monte_carlo import BenefitEstimator
from repro.diffusion.sc_cascade import simulate_sc_cascade
from repro.graph.metrics import farthest_hop_from
from repro.graph.social_graph import SocialGraph
from repro.utils.rng import SeedLike, spawn_rng

NodeId = Hashable


def seed_sc_rate(deployment: Deployment) -> float:
    """Ratio of total seed cost to total (expected) SC cost.

    ``inf`` when the deployment spends nothing on coupons but something on
    seeds, ``0`` when it spends nothing at all.
    """
    seed_cost = deployment.seed_cost()
    sc_cost = deployment.sc_cost()
    if sc_cost > 0:
        return seed_cost / sc_cost
    return float("inf") if seed_cost > 0 else 0.0


def average_farthest_hop(
    graph: SocialGraph,
    deployment: Deployment,
    *,
    samples: int = 50,
    rng: SeedLike = None,
) -> float:
    """Average (over cascade realisations) of the farthest hop reached.

    For each simulated cascade the metric is the largest BFS distance from the
    seed set to any activated user; seeds alone give 0, activating only direct
    friends gives 1, and so on — matching Table III's "average farthest hops
    from seeds".  Deployments with no seeds return 0.
    """
    if not deployment.seeds:
        return 0.0
    generator = spawn_rng(rng)
    allocation = deployment.allocation.as_dict()
    total = 0.0
    for _ in range(samples):
        result = simulate_sc_cascade(
            graph, deployment.seeds, allocation, generator, validate=False
        )
        total += farthest_hop_from(
            graph, deployment.seeds, restrict_to=result.activated
        )
    return total / samples


def explored_ratio(explored_nodes: int, graph: SocialGraph) -> float:
    """Fraction of the network S3CA explored (Fig. 9's metric)."""
    if graph.num_nodes == 0:
        return 0.0
    return explored_nodes / graph.num_nodes


def expected_total_benefit(
    deployment: Deployment, estimator: BenefitEstimator
) -> float:
    """Expected benefit of the deployment (Fig. 6(b)'s metric)."""
    return deployment.expected_benefit(estimator)


def redemption_rate(deployment: Deployment, estimator: BenefitEstimator) -> float:
    """The S3CRM objective for a deployment."""
    return deployment.redemption_rate(estimator)


def summarize_deployment(
    graph: SocialGraph,
    deployment: Deployment,
    estimator: BenefitEstimator,
    *,
    hop_samples: int = 50,
    rng: SeedLike = None,
) -> Dict[str, float]:
    """All per-deployment metrics in one dictionary (used by the runner)."""
    benefit = deployment.expected_benefit(estimator)
    total_cost = deployment.total_cost()
    return {
        "expected_benefit": benefit,
        "total_cost": total_cost,
        "redemption_rate": benefit / total_cost if total_cost > 0 else 0.0,
        "seed_cost": deployment.seed_cost(),
        "sc_cost": deployment.sc_cost(),
        "seed_sc_rate": seed_sc_rate(deployment),
        "num_seeds": float(deployment.num_seeds),
        "total_coupons": float(deployment.total_coupons),
        "farthest_hop": average_farthest_hop(
            graph, deployment, samples=hop_samples, rng=rng
        ),
    }
