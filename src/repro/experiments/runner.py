"""Experiment execution: run one algorithm on one scenario, with timing.

:class:`ExperimentRunner` holds a scenario and a shared Monte-Carlo estimator
(so every algorithm is scored against the same live-edge worlds) and runs a
set of :class:`~repro.experiments.config.AlgorithmSpec` entries, producing
:class:`RunRecord` rows the reporting layer can turn into the paper's tables
and series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional

from repro.baselines.base import AlgorithmResult
from repro.baselines.coupon_wrappers import make_im_l, make_im_u, make_pm_l, make_pm_u
from repro.baselines.im_s import IMShortestPath
from repro.core.deployment import Deployment
from repro.core.s3ca import S3CA, S3CAResult
from repro.diffusion.estimator import BenefitEstimator
from repro.diffusion.factory import make_estimator
from repro.economics.scenario import Scenario
from repro.experiments.config import AlgorithmSpec, ExperimentConfig
from repro.experiments.metrics import explored_ratio, summarize_deployment
from repro.utils.timer import Timer

NodeId = Hashable


def shared_pool_for(config: ExperimentConfig):
    """A :class:`SharedShardPool` for ``config``, or ``None`` when pointless.

    A pool only helps the compiled Monte-Carlo backend — including the MC
    tier inside the tiered estimator — the other estimator methods ignore
    it, so spinning up worker processes for them would leak idle children
    for the duration of a sweep.  The caller owns the returned pool and must
    close it.
    """
    if (config.workers or 1) > 1 and config.estimator_method in (
        "mc-compiled",
        "tiered",
    ):
        from repro.diffusion.parallel import SharedShardPool

        return SharedShardPool(config.workers)
    return None


@dataclass
class RunRecord:
    """One algorithm's measured outcome on one scenario."""

    algorithm: str
    scenario: str
    metrics: Dict[str, float] = field(default_factory=dict)
    seconds: float = 0.0
    deployment: Optional[Deployment] = None

    def get(self, key: str, default: float = 0.0) -> float:
        """Convenience accessor for a metric."""
        return self.metrics.get(key, default)


class ExperimentRunner:
    """Runs a list of algorithms on one scenario with a shared estimator.

    Every algorithm is priced by **one** estimator (same live-edge worlds, so
    comparisons are noise-free), and with ``config.workers > 1`` that
    estimator runs on **one** persistent worker pool: either the injected
    ``pool`` (shared across runners — how the sweep harnesses amortise pool
    start-up over a whole parameter sweep) or a pool the runner creates and
    owns.  :meth:`close` releases the estimator and shuts down only a
    runner-owned pool — injected pools belong to their creator.  The runner
    is also a context manager.
    """

    def __init__(
        self,
        scenario: Scenario,
        config: Optional[ExperimentConfig] = None,
        *,
        estimator: Optional[BenefitEstimator] = None,
        pool=None,
    ) -> None:
        self.scenario = scenario
        self.config = config or ExperimentConfig()
        self.pool = pool
        self._owns_pool = False
        if estimator is None:
            if pool is None:
                self.pool = pool = shared_pool_for(self.config)
                self._owns_pool = pool is not None
            estimator = make_estimator(
                scenario,
                self.config.estimator_method,
                num_samples=self.config.num_samples,
                seed=self.config.seed,
                incremental=self.config.incremental,
                shard_size=self.config.shard_size,
                workers=self.config.workers,
                pool=pool,
                pipeline_depth=self.config.pipeline_depth,
                use_kernel=self.config.use_kernel,
                shared_memory=self.config.shared_memory,
                tiering=self.config.tiering,
                **{
                    key: value
                    for key, value in (
                        ("tier_epsilon", self.config.tier_epsilon),
                        ("tier_top_k", self.config.tier_top_k),
                    )
                    if value is not None
                },
            )
        self.estimator = estimator

    def close(self) -> None:
        """Release the estimator; shut down the pool only if this runner owns it."""
        close = getattr(self.estimator, "close", None)
        if close is not None:
            close()
        if self._owns_pool and self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def default_algorithms(self, include_im_s: bool = True) -> List[AlgorithmSpec]:
        """The paper's comparison set: IM-U, IM-L, PM-U, PM-L, IM-S and S3CA."""
        config = self.config
        specs = [
            AlgorithmSpec("IM-U", lambda sc, est, seed: make_im_u(sc, estimator=est)),
            AlgorithmSpec(
                "IM-L",
                lambda sc, est, seed: make_im_l(
                    sc, coupons_per_user=config.limited_coupons, estimator=est
                ),
            ),
            AlgorithmSpec("PM-U", lambda sc, est, seed: make_pm_u(sc, estimator=est)),
            AlgorithmSpec(
                "PM-L",
                lambda sc, est, seed: make_pm_l(
                    sc, coupons_per_user=config.limited_coupons, estimator=est
                ),
            ),
        ]
        if include_im_s:
            specs.append(
                AlgorithmSpec(
                    "IM-S", lambda sc, est, seed: IMShortestPath(sc, estimator=est)
                )
            )
        specs.append(
            AlgorithmSpec(
                "S3CA",
                lambda sc, est, seed: S3CA(
                    sc,
                    estimator=est,
                    candidate_limit=config.candidate_limit,
                    max_pivot_candidates=config.max_pivot_candidates,
                    incremental=config.incremental,
                ),
            )
        )
        return specs

    # ------------------------------------------------------------------

    def run_spec(self, spec: AlgorithmSpec) -> RunRecord:
        """Run one algorithm and measure it."""
        algorithm = spec.factory(self.scenario, self.estimator, self.config.seed)
        with Timer() as timer:
            raw = algorithm.run() if hasattr(algorithm, "run") else algorithm.solve()
        record = self._record_from_result(spec.name, raw, timer.elapsed)
        return record

    def run_all(
        self, specs: Optional[List[AlgorithmSpec]] = None
    ) -> List[RunRecord]:
        """Run every algorithm in ``specs`` (default: the paper's comparison set)."""
        specs = specs if specs is not None else self.default_algorithms()
        return [self.run_spec(spec) for spec in specs]

    # ------------------------------------------------------------------

    def _record_from_result(self, name: str, raw, seconds: float) -> RunRecord:
        if isinstance(raw, S3CAResult):
            deployment = raw.deployment
            extras = {
                "explored_nodes": float(raw.explored_nodes),
                "explored_ratio": explored_ratio(raw.explored_nodes, self.scenario.graph),
                "num_paths": float(raw.num_paths),
                "num_maneuvers": float(raw.num_maneuvers),
            }
            for key, value in raw.tier_stats.items():
                extras[f"tier_{key}"] = float(value)
        elif isinstance(raw, AlgorithmResult):
            deployment = raw.deployment
            extras = dict(raw.extras)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unsupported result type: {type(raw)!r}")

        metrics = summarize_deployment(
            self.scenario.graph,
            deployment,
            self.estimator,
            rng=self.config.seed,
        )
        metrics.update(extras)
        metrics["seconds"] = seconds
        return RunRecord(
            algorithm=name,
            scenario=self.scenario.name,
            metrics=metrics,
            seconds=seconds,
            deployment=deployment,
        )
