"""Scalability study of Fig. 9: running time and explored ratio.

Fig. 9 measures S3CA alone on PPGG-generated synthetic networks, sweeping
(a)–(b) the network size under a fixed budget and (c)–(d) the budget under a
fixed size, and reports the wall-clock running time and the *explored ratio* —
the fraction of nodes whose marginal redemption S3CA ever evaluated.  The
expectation (confirmed by the paper) is that the running time tracks the
budget far more than the raw network size, because S3CA stops exploring once
the budget is spent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.s3ca import S3CA
from repro.diffusion.factory import make_estimator
from repro.economics.scenario import Scenario, ScenarioBuilder
from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import explored_ratio
from repro.graph.generators import ppgg_like_graph
from repro.utils.timer import Timer


@dataclass
class ScalabilityPoint:
    """One measurement of the scalability sweep."""

    num_nodes: int
    num_edges: int
    budget: float
    seconds: float
    explored_ratio: float
    redemption_rate: float


def synthetic_scenario(
    num_nodes: int,
    *,
    budget: float,
    avg_out_degree: float = 6.0,
    power_law_exponent: float = 1.7,
    clustering: float = 0.3,
    benefit_mean: float = 10.0,
    benefit_std: float = 2.0,
    lam: float = 1.0,
    kappa: float = 10.0,
    seed: int = 2019,
) -> Scenario:
    """A Facebook-like synthetic scenario of the given size (PPGG stand-in)."""
    graph = ppgg_like_graph(
        num_nodes=num_nodes,
        avg_out_degree=avg_out_degree,
        power_law_exponent=power_law_exponent,
        clustering=clustering,
        seed=seed,
    )
    return (
        ScenarioBuilder(graph, name=f"ppgg-{num_nodes}")
        .with_normal_benefits(benefit_mean, benefit_std, seed=seed)
        .with_uniform_sc_costs(benefit_mean)
        .with_degree_proportional_seed_costs()
        .with_lambda(lam)
        .with_kappa(kappa)
        .with_budget(budget)
        .build()
    )


def measure_s3ca(
    scenario: Scenario,
    config: Optional[ExperimentConfig] = None,
    *,
    pool=None,
) -> ScalabilityPoint:
    """Run S3CA once on ``scenario`` and record the Fig. 9 metrics.

    ``pool`` optionally injects a shared
    :class:`~repro.diffusion.parallel.SharedShardPool`: the sweep drivers
    below create one pool for the whole sweep, so every measured point reuses
    the same worker processes instead of paying a pool start-up each.  The
    estimator is released after the measurement either way; an injected pool
    is never closed here.
    """
    config = config or ExperimentConfig()
    estimator = make_estimator(
        scenario,
        config.estimator_method,
        num_samples=config.num_samples,
        seed=config.seed,
        incremental=config.incremental,
        shard_size=config.shard_size,
        workers=config.workers,
        pool=pool,
        pipeline_depth=config.pipeline_depth,
        use_kernel=config.use_kernel,
        shared_memory=config.shared_memory,
    )
    try:
        algorithm = S3CA(
            scenario,
            estimator=estimator,
            candidate_limit=config.candidate_limit,
            max_pivot_candidates=config.max_pivot_candidates,
            incremental=config.incremental,
        )
        with Timer() as timer:
            result = algorithm.solve()
    finally:
        close = getattr(estimator, "close", None)
        if close is not None:
            close()
    return ScalabilityPoint(
        num_nodes=scenario.num_nodes,
        num_edges=scenario.num_edges,
        budget=scenario.budget_limit,
        seconds=timer.elapsed,
        explored_ratio=explored_ratio(result.explored_nodes, scenario.graph),
        redemption_rate=result.redemption_rate,
    )


def _sweep_pool(config: ExperimentConfig):
    """One shared worker pool for a whole sweep (None when it cannot help)."""
    from repro.experiments.runner import shared_pool_for

    return shared_pool_for(config)


def sweep_network_size(
    sizes: Sequence[int],
    budget: float,
    config: Optional[ExperimentConfig] = None,
    **scenario_kwargs,
) -> List[ScalabilityPoint]:
    """Fig. 9(a)-(b): fixed budget, growing network."""
    config = config or ExperimentConfig()
    points = []
    pool = _sweep_pool(config)
    try:
        for size in sizes:
            scenario = synthetic_scenario(
                size, budget=budget, seed=config.seed, **scenario_kwargs
            )
            points.append(measure_s3ca(scenario, config, pool=pool))
    finally:
        if pool is not None:
            pool.close()
    return points


def sweep_scalability_budget(
    budgets: Sequence[float],
    num_nodes: int,
    config: Optional[ExperimentConfig] = None,
    **scenario_kwargs,
) -> List[ScalabilityPoint]:
    """Fig. 9(c)-(d): fixed network, growing budget."""
    config = config or ExperimentConfig()
    points = []
    pool = _sweep_pool(config)
    try:
        for budget in budgets:
            scenario = synthetic_scenario(
                num_nodes, budget=budget, seed=config.seed, **scenario_kwargs
            )
            points.append(measure_s3ca(scenario, config, pool=pool))
    finally:
        if pool is not None:
            pool.close()
    return points


def points_to_rows(points: Sequence[ScalabilityPoint]) -> List[Dict[str, float]]:
    """Convert measurements into report rows."""
    return [
        {
            "nodes": point.num_nodes,
            "edges": point.num_edges,
            "budget": point.budget,
            "seconds": point.seconds,
            "explored_ratio": point.explored_ratio,
            "redemption_rate": point.redemption_rate,
        }
        for point in points
    ]
