"""Case study of Sec. VI-C (Fig. 8): Airbnb and Booking/Hotels.com SC policies.

The case study replaces the synthetic economics of the main experiments with
parameters lifted from the real programs:

* SC costs of 50 (Airbnb) and 100 (Booking, using Hotels.com's figure because
  Booking does not publish one),
* SC allocations of 100 coupons per user (Airbnb) and 10 (Booking),
* benefits derived from the SC cost through a gross margin ``gm`` via
  ``b = c_sc / (1 - gm)``, swept over a range of margins, and
* the 85/10/5 adoption model damping every edge probability by the target
  user's coupon-adoption probability.

For each gross margin the harness compares S3CA against the PM-U/PM-L/IM-U/
IM-L baselines (the ones Fig. 8 plots), reporting the redemption rate and the
seed-SC spending split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.economics.adoption import AdoptionModel
from repro.economics.scenario import Scenario, ScenarioBuilder
from repro.experiments.config import AlgorithmSpec, ExperimentConfig
from repro.experiments.datasets import dataset_graph
from repro.experiments.runner import ExperimentRunner, RunRecord, shared_pool_for


@dataclass(frozen=True)
class CouponPolicy:
    """A real-world referral program's published parameters."""

    name: str
    sc_cost: float
    coupons_per_user: int


AIRBNB = CouponPolicy(name="airbnb", sc_cost=50.0, coupons_per_user=100)
BOOKING = CouponPolicy(name="booking", sc_cost=100.0, coupons_per_user=10)


def case_study_scenario(
    policy: CouponPolicy,
    gross_margin: float,
    *,
    dataset: str = "facebook",
    scale: float = 1.0,
    budget: Optional[float] = None,
    kappa: float = 10.0,
    seed: int = 2019,
) -> Scenario:
    """Build the case-study scenario for one policy and gross margin."""
    graph = dataset_graph(dataset, scale=scale, seed=seed)
    adoption = AdoptionModel(seed=seed)

    builder = ScenarioBuilder(graph, name=f"{policy.name}-gm{gross_margin:g}")
    builder.with_uniform_sc_costs(policy.sc_cost)
    builder.with_gross_margin_benefits(gross_margin)
    builder.with_degree_proportional_seed_costs()
    builder.with_kappa(kappa)
    if budget is None:
        # Budget proportional to the coupon price so each policy can afford a
        # comparable number of referrals.
        budget = policy.sc_cost * graph.num_nodes * 0.25
    builder.with_budget(budget)
    builder.with_metadata(
        policy=policy.name,
        gross_margin=gross_margin,
        coupons_per_user=policy.coupons_per_user,
    )
    scenario = builder.build()

    # The adoption model damps influence probabilities; rebuild the scenario
    # around the damped graph while keeping the economics attached above.
    damped = adoption.apply(scenario.graph)
    return Scenario(
        graph=damped,
        budget_limit=scenario.budget_limit,
        name=scenario.name,
        metadata=scenario.metadata,
    )


def run_case_study(
    policy: CouponPolicy,
    gross_margins: Sequence[float],
    config: Optional[ExperimentConfig] = None,
    *,
    algorithms: Optional[List[AlgorithmSpec]] = None,
    include_im_s: bool = False,
) -> Dict[float, List[RunRecord]]:
    """Run the comparison for every gross margin of one policy (Fig. 8).

    With ``config.workers > 1`` all margins share one worker pool, created
    here for the duration of the study.
    """
    config = config or ExperimentConfig()
    results: Dict[float, List[RunRecord]] = {}
    pool = shared_pool_for(config)
    try:
        for gross_margin in gross_margins:
            scenario = case_study_scenario(
                policy,
                gross_margin,
                dataset=config.dataset,
                scale=config.scale,
                budget=config.budget,
                kappa=config.kappa,
                seed=config.seed,
            )
            swept = config.replace(limited_coupons=policy.coupons_per_user)
            with ExperimentRunner(scenario, swept, pool=pool) as runner:
                specs = (
                    algorithms
                    if algorithms is not None
                    else runner.default_algorithms(include_im_s)
                )
                results[float(gross_margin)] = runner.run_all(specs)
    finally:
        if pool is not None:
            pool.close()
    return results


def case_study_series(
    results: Dict[float, List[RunRecord]], metric: str
) -> Dict[str, Dict[float, float]]:
    """Re-shape case-study results into ``{algorithm: {gross margin: value}}``."""
    series: Dict[str, Dict[float, float]] = {}
    for gross_margin, records in results.items():
        for record in records:
            series.setdefault(record.algorithm, {})[gross_margin] = record.get(metric)
    return series
