"""Command-line interface for the reproduction harness.

The CLI exposes the experiment harness without writing any Python:

.. code-block:: bash

    python -m repro.cli datasets                       # Table II stand-ins
    python -m repro.cli compare --dataset facebook     # one full comparison
    python -m repro.cli sweep-budget --budgets 60 120  # Fig. 6 style sweep
    python -m repro.cli case-study --policy airbnb     # Fig. 8 style case study
    python -m repro.cli solve --dataset epinions       # just run S3CA

Every subcommand prints the same text tables the benchmark harness writes to
``benchmarks/results/`` and exits non-zero on invalid arguments.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.core.s3ca import S3CA
from repro.diffusion.factory import DEFAULT_ESTIMATOR_METHOD, ESTIMATOR_METHODS
from repro.exceptions import ReproError
from repro.experiments.case_study import AIRBNB, BOOKING, case_study_series, run_case_study
from repro.experiments.config import AlgorithmSpec, ExperimentConfig
from repro.experiments.datasets import (
    DATASET_SPECS,
    build_scenario,
    snap_scenario,
    table2_rows,
)
from repro.experiments.reporting import format_series, format_table, records_to_rows
from repro.experiments.runner import ExperimentRunner
from repro.experiments.sweeps import sweep_budget


def _positive_int(text: str) -> int:
    """argparse type for knobs where 0 or a negative value is meaningless."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for the S3CRM / S3CA paper (ICDE 2019).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--dataset", default="facebook", choices=sorted(DATASET_SPECS))
        sub.add_argument("--scale", type=float, default=0.15,
                         help="dataset scale factor (1.0 = a few hundred users)")
        sub.add_argument("--budget", type=float, default=None)
        sub.add_argument("--lam", type=float, default=1.0)
        sub.add_argument("--kappa", type=float, default=10.0)
        sub.add_argument("--samples", type=int, default=50)
        sub.add_argument("--seed", type=int, default=2019)
        sub.add_argument("--candidate-limit", type=int, default=8)
        sub.add_argument("--pivot-limit", type=int, default=20)
        sub.add_argument(
            "--estimator", default=DEFAULT_ESTIMATOR_METHOD,
            choices=ESTIMATOR_METHODS,
            help="benefit-estimator backend (mc-compiled is the fast CSR engine; "
                 "mc is the reference dict path; rr ignores coupon allocations "
                 "and is only meaningful for unlimited-coupon baselines)",
        )
        sub.add_argument(
            "--no-incremental", action="store_true",
            help="force S3CA's eager full-resimulation greedy loop instead of "
                 "the delta-evaluation engine + CELF lazy queue (same result, "
                 "slower; mainly for cross-checking)",
        )
        sub.add_argument(
            "--shard-size", type=_positive_int, default=None,
            help="evaluate live-edge worlds in blocks of this size (bounds "
                 "peak memory to O(shard) worlds; any value is bit-identical "
                 "to the default resident-worlds path)",
        )
        sub.add_argument(
            "--workers", type=_positive_int, default=None,
            help="evaluate world shards on a persistent process pool of this "
                 "size, shared across every algorithm and swept condition of "
                 "the command (streaming block-ordered reduction: results "
                 "are bit-identical for every worker count; default: serial)",
        )
        sub.add_argument(
            "--pipeline-depth", type=_positive_int, default=None,
            help="in-flight bound of the batched evaluation scheduler: how "
                 "many submitted evaluations a batch keeps pending before "
                 "draining the oldest (results are bit-identical for any "
                 "value; default: max(2, 2*workers))",
        )
        sub.add_argument(
            "--no-kernel", action="store_true",
            help="force the interpreted cascade loop instead of the native "
                 "compiled kernel (numba or C backend); results are "
                 "bit-identical either way, only slower — mainly for "
                 "cross-checking (default: use the kernel when one is "
                 "available, silently falling back otherwise)",
        )
        sub.add_argument(
            "--no-shared-memory", action="store_true",
            help="force by-value transport of the compiled graph and world "
                 "blocks instead of the zero-copy shared-memory store; "
                 "results are bit-identical either way (default: shared "
                 "memory whenever --workers evaluates out-of-process)",
        )
        sub.add_argument(
            "--tier-epsilon", type=float, default=None,
            help="two-tier screening band (--estimator tiered): evaluation "
                 "batches are scored with the RR sketch and only slots within "
                 "this relative band below the k-th best score are "
                 "MC-confirmed (0 = top-k ties only, larger = more "
                 "conservative; default 0.5)",
        )
        sub.add_argument(
            "--tier-topk", type=_positive_int, default=None,
            help="minimum number of top-scoring slots per batch the two-tier "
                 "screening always MC-confirms (--estimator tiered; "
                 "default 48)",
        )
        sub.add_argument(
            "--no-tiering", action="store_true",
            help="keep the tiered wrapper but dispatch every batch to the MC "
                 "tier (cross-check mode for --estimator tiered; screening "
                 "counters still report)",
        )

    def add_graph_source(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--graph", default=None, metavar="EDGE_LIST",
            help="build the scenario from a SNAP-style edge-list file "
                 "instead of the named --dataset (whitespace-separated "
                 "'src dst [prob]' lines, '#' comments; probabilities "
                 "default to 1/in-degree; compiled through the "
                 "content-addressed memory-mapped CSR cache)",
        )
        sub.add_argument(
            "--graph-cache-dir", default=None, metavar="DIR",
            help="directory of the compiled-graph cache used by --graph "
                 "(default: $REPRO_GRAPH_CACHE_DIR or ~/.cache/repro-graphs)",
        )

    datasets = subparsers.add_parser("datasets", help="print the Table II stand-ins")
    datasets.add_argument("--scale", type=float, default=0.15)
    datasets.add_argument("--seed", type=int, default=2019)

    solve = subparsers.add_parser("solve", help="run S3CA on one dataset")
    add_common(solve)
    add_graph_source(solve)
    solve.add_argument("--spend-full-budget", action="store_true")

    compare = subparsers.add_parser(
        "compare", help="run S3CA and every baseline on one dataset"
    )
    add_common(compare)
    add_graph_source(compare)
    compare.add_argument("--no-im-s", action="store_true",
                         help="skip the IM-S baseline (it is the slowest)")

    sweep = subparsers.add_parser("sweep-budget", help="Fig. 6 style budget sweep")
    add_common(sweep)
    sweep.add_argument("--budgets", type=float, nargs="+", required=True)

    case = subparsers.add_parser("case-study", help="Fig. 8 style case study")
    add_common(case)
    case.add_argument("--policy", choices=("airbnb", "booking"), default="airbnb")
    case.add_argument("--margins", type=float, nargs="+", default=[0.3, 0.5, 0.7])

    events = subparsers.add_parser(
        "events",
        help="solve, apply a graph-event batch, reconcile without re-solving",
        description="Run S3CA once, apply a JSON batch of graph events "
                    "(edge add/drop/reweight, node add/retire) to the solved "
                    "scenario, and reconcile the resident estimator in place: "
                    "the CSR is delta-recompiled and only the Monte-Carlo "
                    "worlds whose live-edge draws touch a changed edge are "
                    "re-simulated — bit-identical to a cold resolve on the "
                    "mutated graph.",
    )
    add_common(events)
    add_graph_source(events)
    events.add_argument(
        "--events-file", required=True, metavar="JSON",
        help="JSON file holding {\"events\": [...]} (or a bare list); each "
             "event is an object with 'type' (edge_add, edge_drop, "
             "edge_reweight, node_add, node_retire) plus 'source'/'target'/"
             "'probability' or 'node' (and optional 'benefit'/'seed_cost'/"
             "'sc_cost' attribute overrides for node_add)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the campaign server (S3CA as a long-running service)",
        description="Serve register/solve/what-if endpoints with compiled "
                    "graphs, frozen world samplers, warmed kernels and one "
                    "shared worker pool kept resident across requests. "
                    "Needs the 'server' extra (FastAPI) or Flask.",
    )
    serve.add_argument("--host", default=None,
                       help="bind address (default: $REPRO_SERVER_HOST or 127.0.0.1)")
    serve.add_argument("--port", type=_positive_int, default=None,
                       help="bind port (default: $REPRO_SERVER_PORT or 8000)")
    serve.add_argument(
        "--workers", type=_positive_int, default=None,
        help="size of the resident shared shard pool every scenario's "
             "estimator evaluates on (default: $REPRO_SERVER_WORKERS or "
             "serial in-process)",
    )
    serve.add_argument(
        "--job-workers", type=_positive_int, default=None,
        help="solve jobs run concurrently (default: $REPRO_SERVER_JOB_WORKERS "
             "or 2; jobs on one scenario still serialise on its lock)",
    )
    serve.add_argument(
        "--max-queue", type=_positive_int, default=None,
        help="bound of the pending-job queue; submissions past it get HTTP "
             "503 (default: $REPRO_SERVER_MAX_QUEUE or 64)",
    )
    serve.add_argument(
        "--samples", type=_positive_int, default=None,
        help="default Monte-Carlo worlds per scenario, overridable per "
             "registration (default: $REPRO_SERVER_SAMPLES or 200)",
    )
    serve.add_argument(
        "--graph-cache-dir", default=None, metavar="DIR",
        help="compiled-graph cache used for snap_path registrations "
             "(default: $REPRO_SERVER_GRAPH_CACHE_DIR or the --graph default)",
    )

    return parser


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        dataset=args.dataset,
        scale=args.scale,
        budget=args.budget,
        lam=args.lam,
        kappa=args.kappa,
        num_samples=args.samples,
        seed=args.seed,
        candidate_limit=args.candidate_limit,
        max_pivot_candidates=args.pivot_limit,
        estimator_method=getattr(args, "estimator", DEFAULT_ESTIMATOR_METHOD),
        incremental=not getattr(args, "no_incremental", False),
        shard_size=getattr(args, "shard_size", None),
        workers=getattr(args, "workers", None),
        pipeline_depth=getattr(args, "pipeline_depth", None),
        use_kernel=False if getattr(args, "no_kernel", False) else None,
        shared_memory=False if getattr(args, "no_shared_memory", False) else None,
        tier_epsilon=getattr(args, "tier_epsilon", None),
        tier_top_k=getattr(args, "tier_topk", None),
        tiering=not getattr(args, "no_tiering", False),
    )


def _scenario_from_args(args: argparse.Namespace, config: ExperimentConfig):
    """The scenario a subcommand runs on: ``--graph`` file or named dataset."""
    graph_path = getattr(args, "graph", None)
    if graph_path is not None:
        return snap_scenario(
            graph_path,
            budget=config.budget,
            lam=config.lam,
            kappa=config.kappa,
            seed=config.seed,
            cache_dir=getattr(args, "graph_cache_dir", None),
        )
    return build_scenario(
        config.dataset, scale=config.scale, budget=config.budget,
        lam=config.lam, kappa=config.kappa, seed=config.seed,
    )


def _s3ca_spec(args: argparse.Namespace) -> AlgorithmSpec:
    return AlgorithmSpec(
        "S3CA",
        lambda scenario, estimator, seed: S3CA(
            scenario,
            estimator=estimator,
            candidate_limit=args.candidate_limit,
            max_pivot_candidates=args.pivot_limit,
            incremental=not getattr(args, "no_incremental", False),
        ),
    )


# ----------------------------------------------------------------------
# subcommand implementations
# ----------------------------------------------------------------------


def cmd_datasets(args: argparse.Namespace) -> str:
    rows = table2_rows(scale=args.scale, seed=args.seed)
    return format_table(rows, title="Table II — dataset stand-ins")


def cmd_solve(args: argparse.Namespace) -> str:
    config = _config_from_args(args)
    scenario = _scenario_from_args(args, config)
    algorithm = S3CA(
        scenario,
        estimator_method=config.estimator_method,
        num_samples=config.num_samples,
        seed=config.seed,
        candidate_limit=config.candidate_limit,
        max_pivot_candidates=config.max_pivot_candidates,
        spend_full_budget=getattr(args, "spend_full_budget", False),
        incremental=config.incremental,
        shard_size=config.shard_size,
        workers=config.workers,
        pipeline_depth=config.pipeline_depth,
        use_kernel=config.use_kernel,
        shared_memory=config.shared_memory,
        tier_epsilon=config.tier_epsilon,
        tier_top_k=config.tier_top_k,
        tiering=config.tiering,
    )
    try:
        result = algorithm.solve()
    finally:
        # Release the estimator's worker pool (if --workers started one)
        # before formatting output, not at interpreter exit.
        close = getattr(algorithm.estimator, "close", None)
        if close is not None:
            close()
    row = {
        "seeds": len(result.seeds),
        "coupons": sum(result.allocation.values()),
        "expected_benefit": result.expected_benefit,
        "total_cost": result.total_cost,
        "redemption_rate": result.redemption_rate,
        "explored_nodes": result.explored_nodes,
        "seconds": result.total_seconds,
    }
    if result.tier_stats:
        row["screened"] = result.tier_stats["screened_candidates"]
        row["confirmed"] = result.tier_stats["confirmed_candidates"]
        row["spec_evals"] = result.tier_stats["speculative_evals"]
        row["spec_hits"] = result.tier_stats["speculative_hits"]
    return format_table([row], title=f"S3CA on {scenario.describe()}")


def cmd_compare(args: argparse.Namespace) -> str:
    config = _config_from_args(args)
    scenario = _scenario_from_args(args, config)
    with ExperimentRunner(scenario, config) as runner:
        specs = runner.default_algorithms(include_im_s=not args.no_im_s)
        records = runner.run_all(specs)
    rows = records_to_rows(
        records,
        metrics=[
            "redemption_rate", "expected_benefit", "total_cost",
            "seed_sc_rate", "farthest_hop", "seconds",
        ],
    )
    return format_table(rows, title=f"Comparison on {scenario.describe()}")


def cmd_sweep_budget(args: argparse.Namespace) -> str:
    config = _config_from_args(args)
    results = sweep_budget(
        config, args.budgets, metrics=("redemption_rate", "expected_benefit"),
        algorithms=None, include_im_s=False,
    )
    parts = [
        format_series(results["redemption_rate"], x_label="budget",
                      title="Redemption rate vs budget"),
        format_series(results["expected_benefit"], x_label="budget",
                      title="Total benefit vs budget"),
    ]
    return "\n\n".join(parts)


def cmd_case_study(args: argparse.Namespace) -> str:
    config = _config_from_args(args)
    policy = AIRBNB if args.policy == "airbnb" else BOOKING
    config = config.replace(limited_coupons=policy.coupons_per_user)
    results = run_case_study(
        policy, args.margins, config, algorithms=[_s3ca_spec(args)]
    )
    parts = [
        format_series(case_study_series(results, "redemption_rate"),
                      x_label="gross_margin",
                      title=f"Redemption rate vs gross margin ({policy.name})"),
        format_series(case_study_series(results, "seed_sc_rate"),
                      x_label="gross_margin",
                      title=f"Seed-SC rate vs gross margin ({policy.name})"),
    ]
    return "\n\n".join(parts)


def cmd_events(args: argparse.Namespace) -> str:
    import json

    from repro.diffusion.factory import make_estimator
    from repro.graph.events import GraphEventBatch

    config = _config_from_args(args)
    if config.estimator_method != "mc-compiled":
        raise ReproError(
            "the events command needs the compiled estimator "
            "(--estimator mc-compiled); reconciliation has no dict-backend form"
        )
    try:
        with open(args.events_file, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        raise ReproError(f"events file not readable: {error}") from error
    except ValueError as error:
        raise ReproError(f"events file is not valid JSON: {error}") from error
    payloads = document.get("events") if isinstance(document, dict) else document
    if not isinstance(payloads, list) or not payloads:
        raise ReproError(
            "events file must hold a non-empty 'events' list "
            '({"events": [...]} or a bare JSON list)'
        )

    scenario = _scenario_from_args(args, config)
    graph = scenario.graph

    def coerce(value):
        # JSON spells every key as written; dataset graphs use int node ids,
        # so map decimal strings onto existing int nodes (same rule as the
        # server's node resolution). Unknown ids pass through verbatim —
        # edge_add / node_add legitimately introduce new nodes.
        if value not in graph and isinstance(value, str):
            try:
                as_int = int(value)
            except ValueError:
                return value
            if as_int in graph:
                return as_int
        return value

    for payload in payloads:
        if isinstance(payload, dict):
            for key in ("source", "target", "node"):
                if key in payload:
                    payload[key] = coerce(payload[key])
    batch = GraphEventBatch.from_payloads(payloads)

    estimator = make_estimator(
        scenario,
        "mc-compiled",
        num_samples=config.num_samples,
        seed=config.seed,
        incremental=True,
        shard_size=config.shard_size,
        workers=config.workers,
        pipeline_depth=config.pipeline_depth,
        use_kernel=config.use_kernel,
        shared_memory=config.shared_memory,
    )
    try:
        algorithm = S3CA(
            scenario,
            estimator=estimator,
            candidate_limit=config.candidate_limit,
            max_pivot_candidates=config.max_pivot_candidates,
            incremental=config.incremental,
        )
        result = algorithm.solve()
        seeds = set(result.seeds)
        allocation = dict(result.allocation)
        # Pin the delta snapshot to the solved deployment, so the reconcile
        # below advances exactly it and its base benefit is the answer.
        old_benefit = estimator.snapshot_base(seeds, allocation)
        outcome = estimator.ingest_events(batch)
        new_benefit = (
            outcome.base_benefit
            if outcome.base_benefit is not None
            else estimator.expected_benefit(seeds, allocation)
        )
        rows = [
            {
                "events": len(batch.events),
                "touched_edges": outcome.touched_edges,
                "dirty_worlds": outcome.dirty_worlds,
                "num_worlds": outcome.num_worlds,
                "chained_blocks": outcome.chained_blocks,
                "benefit_before": old_benefit,
                "benefit_after": new_benefit,
                "snapshot_passes": estimator.delta_snapshot_passes,
                "reconcile_passes": estimator.delta_reconcile_passes,
            }
        ]
    finally:
        estimator.close()
    return format_table(
        rows, title=f"Graph events reconciled on {scenario.describe()}"
    )


def cmd_serve(args: argparse.Namespace) -> str:
    from repro.experiments.config import ServerConfig
    from repro.server.app import serve

    config = ServerConfig.from_env(
        host=args.host,
        port=args.port,
        workers=args.workers,
        job_workers=args.job_workers,
        max_queued_jobs=args.max_queue,
        num_samples=args.samples,
        graph_cache_dir=args.graph_cache_dir,
    )
    serve(config)
    return ""


_COMMANDS = {
    "datasets": cmd_datasets,
    "solve": cmd_solve,
    "compare": cmd_compare,
    "sweep-budget": cmd_sweep_budget,
    "case-study": cmd_case_study,
    "events": cmd_events,
    "serve": cmd_serve,
}


def _release_after_interrupt() -> None:
    """Best-effort teardown of pools and shm segments after a SIGINT.

    A Ctrl-C can land anywhere — mid-broadcast, mid-reduce — so each step
    is independently shielded; the goal is no live worker processes and no
    /dev/shm residue, not a clean unwind.
    """
    try:
        from repro.diffusion.parallel import shutdown_live_pools

        shutdown_live_pools()
    except Exception:
        pass
    try:
        from repro.utils import shm

        shm.sweep_owned()
    except Exception:
        pass


def _suppress_broken_pipe() -> None:
    """Detach stdout so interpreter shutdown does not re-raise EPIPE."""
    try:
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        os.close(devnull)
    except (OSError, ValueError):
        pass


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        output = _COMMANDS[args.command](args)
        print(output)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        _release_after_interrupt()
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Typical when piped into `head`: the reader went away. Exit with
        # the conventional SIGPIPE code instead of a traceback.
        _suppress_broken_pipe()
        return 141
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
