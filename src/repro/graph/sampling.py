"""Subgraph sampling.

Users who have the original SNAP datasets can load them with
:func:`repro.graph.io.load_edge_list`, but running the pure-Python harness on
a 100K-node graph is impractical.  These samplers produce faithful scaled-down
subgraphs — the same trick the experiment harness uses internally with
synthetic data:

* :func:`random_node_sample` — induced subgraph on a uniform node sample,
* :func:`snowball_sample` — BFS ball around random roots (keeps local
  structure intact, which matters for cascade experiments),
* :func:`forest_fire_sample` — the classic Leskovec forest-fire process, which
  approximately preserves degree and clustering distributions.

All samplers preserve node attributes and recompute ``1/in-degree`` edge
probabilities on request.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, List, Optional, Set

from repro.exceptions import GraphError
from repro.graph.social_graph import SocialGraph
from repro.utils.rng import SeedLike, spawn_rng

NodeId = Hashable


def _finalize(
    graph: SocialGraph, nodes: Set[NodeId], reciprocal_in_degree: bool
) -> SocialGraph:
    subgraph = graph.subgraph(nodes)
    if reciprocal_in_degree:
        subgraph.assign_reciprocal_in_degree_probabilities()
    return subgraph


def random_node_sample(
    graph: SocialGraph,
    num_nodes: int,
    seed: SeedLike = None,
    *,
    reciprocal_in_degree: bool = False,
) -> SocialGraph:
    """Induced subgraph on ``num_nodes`` users chosen uniformly at random."""
    _require_sane_size(graph, num_nodes)
    rng = spawn_rng(seed)
    nodes = list(graph.nodes())
    chosen = rng.choice(len(nodes), size=num_nodes, replace=False)
    selected = {nodes[int(index)] for index in chosen}
    return _finalize(graph, selected, reciprocal_in_degree)


def snowball_sample(
    graph: SocialGraph,
    num_nodes: int,
    seed: SeedLike = None,
    *,
    num_roots: int = 1,
    reciprocal_in_degree: bool = False,
) -> SocialGraph:
    """BFS ball(s) around random roots until ``num_nodes`` users are collected.

    If the reachable region of the chosen roots is smaller than ``num_nodes``
    additional random roots are drawn, so the sample always reaches the
    requested size.
    """
    _require_sane_size(graph, num_nodes)
    if num_roots <= 0:
        raise GraphError(f"num_roots must be > 0, got {num_roots}")
    rng = spawn_rng(seed)
    nodes = list(graph.nodes())
    selected: Set[NodeId] = set()
    frontier: deque = deque()

    def add_root() -> None:
        while True:
            candidate = nodes[int(rng.integers(0, len(nodes)))]
            if candidate not in selected:
                selected.add(candidate)
                frontier.append(candidate)
                return

    for _ in range(min(num_roots, num_nodes)):
        add_root()
    while len(selected) < num_nodes:
        if not frontier:
            add_root()
            continue
        node = frontier.popleft()
        for neighbor in graph.out_neighbors(node):
            if len(selected) >= num_nodes:
                break
            if neighbor not in selected:
                selected.add(neighbor)
                frontier.append(neighbor)
    return _finalize(graph, selected, reciprocal_in_degree)


def forest_fire_sample(
    graph: SocialGraph,
    num_nodes: int,
    seed: SeedLike = None,
    *,
    forward_probability: float = 0.35,
    reciprocal_in_degree: bool = False,
) -> SocialGraph:
    """Forest-fire sampling (Leskovec & Faloutsos).

    Starting from a random ambassador, the fire spreads to each out-neighbour
    independently with ``forward_probability`` and recurses; when it dies out
    before reaching the requested size a new ambassador is drawn.
    """
    _require_sane_size(graph, num_nodes)
    if not 0.0 < forward_probability < 1.0:
        raise GraphError(
            f"forward_probability must lie in (0, 1), got {forward_probability}"
        )
    rng = spawn_rng(seed)
    nodes = list(graph.nodes())
    selected: Set[NodeId] = set()

    while len(selected) < num_nodes:
        ambassador = nodes[int(rng.integers(0, len(nodes)))]
        if ambassador in selected:
            continue
        queue = deque([ambassador])
        selected.add(ambassador)
        while queue and len(selected) < num_nodes:
            node = queue.popleft()
            for neighbor in graph.out_neighbors(node):
                if len(selected) >= num_nodes:
                    break
                if neighbor in selected:
                    continue
                if rng.random() < forward_probability:
                    selected.add(neighbor)
                    queue.append(neighbor)
    return _finalize(graph, selected, reciprocal_in_degree)


def _require_sane_size(graph: SocialGraph, num_nodes: int) -> None:
    if num_nodes <= 0:
        raise GraphError(f"num_nodes must be > 0, got {num_nodes}")
    if num_nodes > graph.num_nodes:
        raise GraphError(
            f"cannot sample {num_nodes} nodes from a graph with {graph.num_nodes}"
        )
