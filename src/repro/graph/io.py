"""Graph persistence.

Three formats are supported:

* a SNAP-style whitespace edge list (``source target [probability]`` per
  line, ``#`` comments allowed) — enough to load the public datasets the paper
  uses if the user has them locally.  :func:`load_edge_list` reads it into a
  mutable :class:`SocialGraph`; :func:`load_snap_graph` streams it straight
  into a :class:`~repro.graph.csr.CompiledGraph` without materialising the
  adjacency dicts, which is what makes million-edge SNAP files practical;
* a content-addressed **compiled-graph cache** (:func:`load_compiled_snap`):
  the CSR arrays of a compiled SNAP file are stored as ``.npy`` files under a
  key derived from the source bytes and the build parameters, and later loads
  memory-map them (``np.load(mmap_mode="r")``) — a warm load touches none of
  the edge list and allocates almost nothing; and
* a self-contained JSON format that also stores the per-node economic
  attributes, used by the experiment harness to cache generated scenarios.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import GraphError
from repro.graph.attributes import NodeAttributes
from repro.graph.csr import CompiledGraph
from repro.graph.social_graph import SocialGraph

PathLike = Union[str, Path]

#: Environment override for the compiled-graph cache directory.
GRAPH_CACHE_ENV = "REPRO_GRAPH_CACHE_DIR"

#: Bumped whenever the compiled cache layout or compile semantics change, so
#: stale entries from older code can never be mistaken for valid ones (the
#: version participates in the content hash).
_CACHE_FORMAT_VERSION = 1


def save_edge_list(graph: SocialGraph, path: PathLike) -> None:
    """Write ``graph`` as a whitespace edge list with probabilities."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write("# source target probability\n")
        for source, target, probability in graph.edges():
            handle.write(f"{source} {target} {probability}\n")


def load_edge_list(
    path: PathLike,
    *,
    default_probability: float = 0.1,
    reciprocal_in_degree: bool = False,
) -> SocialGraph:
    """Read a whitespace edge list.

    Lines starting with ``#`` are ignored.  Node identifiers are read as
    integers when possible and kept as strings otherwise.  If a line has no
    third column the edge receives ``default_probability``; passing
    ``reciprocal_in_degree=True`` recomputes all probabilities as
    ``1/in-degree`` after loading (the paper's standard setting).
    """
    path = Path(path)
    graph = SocialGraph()
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise GraphError(
                    f"{path}:{line_number}: expected 'source target [prob]', got {stripped!r}"
                )
            source = _parse_node(parts[0])
            target = _parse_node(parts[1])
            probability = float(parts[2]) if len(parts) > 2 else default_probability
            graph.add_edge(source, target, probability)
    if reciprocal_in_degree:
        graph.assign_reciprocal_in_degree_probabilities()
    return graph


def save_json(graph: SocialGraph, path: PathLike) -> None:
    """Write ``graph`` (topology + attributes) to a JSON document."""
    payload = {
        "nodes": [
            {"id": node, **graph.attributes(node).as_dict()} for node in graph.nodes()
        ],
        "edges": [
            {"source": source, "target": target, "probability": probability}
            for source, target, probability in graph.edges()
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def load_json(path: PathLike) -> SocialGraph:
    """Read a graph written by :func:`save_json`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    graph = SocialGraph()
    for record in payload.get("nodes", []):
        node = record["id"]
        graph.add_node(node, NodeAttributes.from_dict(record))
    for record in payload.get("edges", []):
        graph.add_edge(record["source"], record["target"], float(record["probability"]))
    return graph


def _parse_node(token: str):
    try:
        return int(token)
    except ValueError:
        return token


# ----------------------------------------------------------------------
# streaming SNAP ingestion
# ----------------------------------------------------------------------


def _iter_line_chunks(
    path: Path, chunk_bytes: int
) -> Iterator[Tuple[int, List[str]]]:
    """Yield ``(first_line_number, lines)`` in bounded-memory chunks.

    Reads the file in binary blocks and splits on newlines, carrying the
    trailing partial line into the next block, so peak memory is
    O(chunk_bytes) regardless of file size.
    """
    with path.open("rb") as handle:
        leftover = b""
        line_base = 1
        while True:
            block = handle.read(chunk_bytes)
            if not block:
                if leftover:
                    yield line_base, [leftover.decode("utf-8", errors="replace")]
                return
            block = leftover + block
            cut = block.rfind(b"\n")
            if cut < 0:
                leftover = block
                continue
            leftover = block[cut + 1:]
            lines = block[:cut].decode("utf-8", errors="replace").split("\n")
            yield line_base, lines
            line_base += len(lines)


def _parse_snap_chunk(path: Path, line_base: int, lines: List[str]):
    """Parse one chunk of edge-list lines into ``(src, dst, probs)`` columns.

    Returns ``None`` for chunks that are all comments/blank.  The fast path
    tokenises the whole chunk at once and converts the id columns with one
    vectorised ``astype`` — no per-line Python when every data line has the
    same column count and integer ids (the shape of every real SNAP file).
    Anything irregular falls back to a per-line parse that reports the exact
    offending line.
    """
    data: List[Tuple[int, List[str]]] = []
    for offset, line in enumerate(lines):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        data.append((line_base + offset, stripped.split()))
    if not data:
        return None
    columns = len(data[0][1])
    if columns >= 2 and all(len(parts) == columns for _, parts in data):
        tokens = np.array(
            [token for _, parts in data for token in parts], dtype="U"
        )
        try:
            sources = tokens[0::columns].astype(np.int64)
            targets = tokens[1::columns].astype(np.int64)
            probs = (
                tokens[2::columns].astype(np.float64) if columns >= 3 else None
            )
        except ValueError:
            pass  # non-integer ids or a malformed number: per-line below
        else:
            return sources, targets, probs
    sources_list: List[object] = []
    targets_list: List[object] = []
    probs_list: List[float] = []
    has_probs = len(data[0][1]) >= 3
    for line_number, parts in data:
        if len(parts) < 2:
            raise GraphError(
                f"{path}:{line_number}: expected 'source target [prob]', "
                f"got {' '.join(parts)!r}"
            )
        sources_list.append(_parse_node(parts[0]))
        targets_list.append(_parse_node(parts[1]))
        if len(parts) > 2:
            has_probs = True
            try:
                probs_list.append(float(parts[2]))
            except ValueError:
                raise GraphError(
                    f"{path}:{line_number}: malformed probability {parts[2]!r}"
                ) from None
        else:
            probs_list.append(np.nan)  # mixed 2/3-column: nan = "use default"
    probs = np.array(probs_list, dtype=np.float64) if has_probs else None
    return np.array(sources_list, dtype=object), np.array(targets_list, dtype=object), probs


def compile_snap_csr(
    sources: np.ndarray,
    targets: np.ndarray,
    probs: Optional[np.ndarray],
    *,
    default_probability: float = 0.1,
    reciprocal_in_degree: bool = False,
    source_name: str = "<edges>",
) -> CompiledGraph:
    """Compile raw edge columns into a :class:`CompiledGraph`, vectorised.

    Replicates :meth:`CompiledGraph.from_social_graph` on the graph
    :func:`load_edge_list` would build from the same lines, bit for bit:

    * node order is first appearance in the ``source, target`` token stream;
    * duplicate edges keep their **first-occurrence** position in the edge
      enumeration order and their **last-occurrence** probability (re-adding
      an edge overwrites the probability in place);
    * self-loops are skipped (``SocialGraph`` rejects them; real SNAP files
      contain a few) without creating their node;
    * per-source edges are ranked by decreasing probability, ties by the
      string form of the target id.

    ``probs`` may be ``None`` (every edge gets ``default_probability``) or
    contain NaN holes for two-column lines in a mixed file.
    """
    require = float(default_probability)
    if not 0.0 <= require <= 1.0:
        raise GraphError(
            f"default_probability must be within [0, 1], got {default_probability}"
        )
    if probs is None:
        probs = np.full(len(sources), require, dtype=np.float64)
    else:
        probs = np.where(np.isnan(probs), require, probs.astype(np.float64))
        bad = (probs < 0.0) | (probs > 1.0)
        if bad.any():
            raise GraphError(
                f"{source_name}: edge probability {probs[np.argmax(bad)]!r} "
                "outside [0, 1]"
            )

    object_ids = sources.dtype == object
    keep = sources != targets  # drop self-loops without creating their nodes
    sources, targets, probs = sources[keep], targets[keep], probs[keep]
    num_edges_raw = len(sources)
    if num_edges_raw == 0:
        empty = np.empty(0, dtype=np.int64)
        return CompiledGraph(
            node_ids=[],
            indptr=np.zeros(1, dtype=np.int64),
            indices=empty,
            probs=np.empty(0, dtype=np.float64),
            edge_pos=empty.copy(),
            benefits=np.empty(0, dtype=np.float64),
            seed_costs=np.empty(0, dtype=np.float64),
            sc_costs=np.empty(0, dtype=np.float64),
        )

    # Node ranks in first-appearance order over the interleaved token stream.
    stream = np.empty(2 * num_edges_raw, dtype=sources.dtype)
    stream[0::2] = sources
    stream[1::2] = targets
    if object_ids:
        # Mixed int/str ids cannot be sorted by np.unique; a dict preserves
        # first-appearance order directly (slow path — small files only).
        rank_of: dict = {}
        for token in stream:
            if token not in rank_of:
                rank_of[token] = len(rank_of)
        node_ids: List = list(rank_of)
        stream_rank = np.fromiter(
            (rank_of[token] for token in stream), dtype=np.int64, count=len(stream)
        )
    else:
        unique, first_index, inverse = np.unique(
            stream, return_index=True, return_inverse=True
        )
        appearance = np.argsort(first_index, kind="stable")
        rank = np.empty(len(unique), dtype=np.int64)
        rank[appearance] = np.arange(len(unique), dtype=np.int64)
        node_ids = unique[appearance].tolist()
        stream_rank = rank[inverse]
    num_nodes = len(node_ids)
    src = stream_rank[0::2]
    dst = stream_rank[1::2]

    # Deduplicate (source, target) pairs: first occurrence fixes the edge's
    # slot in enumeration order, last occurrence fixes its probability.
    pair_key = src * np.int64(num_nodes) + dst
    by_key = np.argsort(pair_key, kind="stable")
    sorted_keys = pair_key[by_key]
    starts = np.r_[True, sorted_keys[1:] != sorted_keys[:-1]]
    first_pos = by_key[np.flatnonzero(starts)]
    group_last = np.r_[np.flatnonzero(starts)[1:], len(by_key)] - 1
    last_pos = by_key[group_last]
    e_src = src[first_pos]
    e_dst = dst[first_pos]
    e_prob = probs[last_pos]
    num_edges = len(first_pos)

    # Enumeration (coin-flip draw) order: sources in node order, each
    # source's targets in first-insertion order.
    enumeration = np.lexsort((first_pos, e_src))
    draw_position = np.empty(num_edges, dtype=np.int64)
    draw_position[enumeration] = np.arange(num_edges, dtype=np.int64)

    if reciprocal_in_degree and num_edges:
        in_degree = np.bincount(e_dst, minlength=num_nodes)
        e_prob = 1.0 / in_degree[e_dst]

    # Ranked CSR: per source by decreasing probability, ties by str(target).
    if object_ids:
        ids_str = np.array([str(node) for node in node_ids], dtype="U")
    else:
        ids_str = np.asarray(node_ids, dtype=np.int64).astype("U21")
    ranked = np.lexsort(
        (ids_str[e_dst] if num_edges else np.empty(0, "U1"), -e_prob, e_src)
    )
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(np.bincount(e_src, minlength=num_nodes), out=indptr[1:])
    zeros = np.zeros(num_nodes, dtype=np.float64)
    return CompiledGraph(
        node_ids=node_ids,
        indptr=indptr,
        indices=e_dst[ranked].astype(np.int64),
        probs=np.ascontiguousarray(e_prob[ranked]),
        edge_pos=draw_position[ranked],
        benefits=zeros,
        seed_costs=zeros.copy(),
        sc_costs=zeros.copy(),
    )


def load_snap_graph(
    path: PathLike,
    *,
    default_probability: float = 0.1,
    reciprocal_in_degree: bool = False,
    chunk_bytes: int = 1 << 24,
) -> CompiledGraph:
    """Stream a SNAP-style edge list straight into a :class:`CompiledGraph`.

    Identical semantics to ``load_edge_list(...).compiled()`` (same node
    order, edge ranking, draw-order ``edge_pos`` — see
    :func:`compile_snap_csr`) without ever building the adjacency dicts: the
    file is parsed in bounded-memory chunks and compiled with vectorised
    passes, which is what makes million-edge files practical.  Node
    attributes are all zero, as for a bare edge-list load.
    """
    path = Path(path)
    sources: List[np.ndarray] = []
    targets: List[np.ndarray] = []
    probs: List[Optional[np.ndarray]] = []
    for line_base, lines in _iter_line_chunks(path, chunk_bytes):
        parsed = _parse_snap_chunk(path, line_base, lines)
        if parsed is None:
            continue
        sources.append(parsed[0])
        targets.append(parsed[1])
        probs.append(parsed[2])
    if not sources:
        return compile_snap_csr(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), None,
            default_probability=default_probability,
            reciprocal_in_degree=reciprocal_in_degree,
            source_name=str(path),
        )
    object_ids = any(column.dtype == object for column in sources)
    if object_ids:
        id_dtype = object
        all_sources = np.concatenate([c.astype(object) for c in sources])
        all_targets = np.concatenate([c.astype(object) for c in targets])
    else:
        all_sources = np.concatenate(sources)
        all_targets = np.concatenate(targets)
    if any(column is not None for column in probs):
        all_probs = np.concatenate(
            [
                column if column is not None
                else np.full(len(chunk_sources), np.nan)
                for column, chunk_sources in zip(probs, sources)
            ]
        )
    else:
        all_probs = None
    return compile_snap_csr(
        all_sources, all_targets, all_probs,
        default_probability=default_probability,
        reciprocal_in_degree=reciprocal_in_degree,
        source_name=str(path),
    )


# ----------------------------------------------------------------------
# content-addressed compiled-graph cache
# ----------------------------------------------------------------------

_CACHE_ARRAY_FIELDS = (
    "indptr", "indices", "probs", "edge_pos", "benefits", "seed_costs", "sc_costs",
)


def default_graph_cache_dir() -> Path:
    """The compiled-graph cache directory (env override, else ``~/.cache``)."""
    override = os.environ.get(GRAPH_CACHE_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-graphs"


def snap_cache_key(
    path: PathLike,
    *,
    default_probability: float = 0.1,
    reciprocal_in_degree: bool = False,
) -> str:
    """Content hash identifying one compiled form of one edge-list file.

    Streams the source bytes through sha256 together with the build
    parameters and the cache format version: touching the file, changing a
    knob or upgrading the layout each produce a different key, so a cache
    entry can never be wrong — at worst it is unused.
    """
    digest = hashlib.sha256()
    digest.update(
        json.dumps(
            {
                "format": _CACHE_FORMAT_VERSION,
                "default_probability": float(default_probability),
                "reciprocal_in_degree": bool(reciprocal_in_degree),
            },
            sort_keys=True,
        ).encode("utf-8")
    )
    with Path(path).open("rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def snap_cache_path(
    path: PathLike,
    *,
    default_probability: float = 0.1,
    reciprocal_in_degree: bool = False,
    cache_dir: Optional[PathLike] = None,
) -> Path:
    """Directory a cached compile of ``path`` lives in (existing or not)."""
    base = Path(cache_dir) if cache_dir is not None else default_graph_cache_dir()
    return base / snap_cache_key(
        path,
        default_probability=default_probability,
        reciprocal_in_degree=reciprocal_in_degree,
    )


def _store_compiled(compiled: CompiledGraph, entry: Path) -> None:
    """Atomically publish a compiled graph under ``entry``.

    Everything is written into a sibling temp directory first and renamed
    into place, so readers can never observe a half-written entry; losing a
    publication race to another process is fine (their entry has the same
    content by construction).
    """
    tmp = entry.parent / f".tmp-{entry.name[:16]}-{os.getpid()}"
    tmp.mkdir(parents=True, exist_ok=True)
    try:
        for field in _CACHE_ARRAY_FIELDS:
            np.save(tmp / f"{field}.npy", np.ascontiguousarray(getattr(compiled, field)))
        node_ids = np.asarray(compiled.node_ids)
        if node_ids.dtype.kind not in "iu":
            node_ids = np.asarray(compiled.node_ids, dtype=object)
        np.save(tmp / "node_ids.npy", node_ids, allow_pickle=node_ids.dtype == object)
        (tmp / "meta.json").write_text(
            json.dumps(
                {
                    "format": _CACHE_FORMAT_VERSION,
                    "num_nodes": compiled.num_nodes,
                    "num_edges": compiled.num_edges,
                },
                indent=2,
            ),
            encoding="utf-8",
        )
        try:
            os.rename(tmp, entry)
        except OSError:
            shutil.rmtree(tmp, ignore_errors=True)  # someone else won the race
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise


def _load_cached_compiled(entry: Path) -> CompiledGraph:
    """Memory-mapped :class:`CompiledGraph` from a published cache entry.

    The CSR arrays are ``np.load(mmap_mode="r")`` views — pages fault in on
    demand and are shared between processes by the OS cache — and the node
    identifiers load lazily on first access, so integer-indexed consumers
    never touch them.
    """
    arrays = {
        field: np.load(entry / f"{field}.npy", mmap_mode="r")
        for field in _CACHE_ARRAY_FIELDS
    }
    ids_path = entry / "node_ids.npy"

    def load_node_ids() -> List:
        return np.load(ids_path, allow_pickle=True).tolist()

    return CompiledGraph(node_ids=None, node_ids_loader=load_node_ids, **arrays)


def load_compiled_snap(
    path: PathLike,
    *,
    default_probability: float = 0.1,
    reciprocal_in_degree: bool = False,
    cache_dir: Optional[PathLike] = None,
    use_cache: bool = True,
) -> CompiledGraph:
    """Load a SNAP edge list through the content-addressed compile cache.

    The first load of a given (file content, parameters) pair streams and
    compiles the edge list (:func:`load_snap_graph`) and publishes the CSR
    arrays under :func:`default_graph_cache_dir` (or ``cache_dir``); every
    later load memory-maps the published arrays without reading the edge
    list at all.  Cached and fresh compiles are bit-identical by
    construction — the key covers the source bytes and every knob.
    """
    path = Path(path)
    if not use_cache:
        return load_snap_graph(
            path,
            default_probability=default_probability,
            reciprocal_in_degree=reciprocal_in_degree,
        )
    entry = snap_cache_path(
        path,
        default_probability=default_probability,
        reciprocal_in_degree=reciprocal_in_degree,
        cache_dir=cache_dir,
    )
    if (entry / "meta.json").exists():
        return _load_cached_compiled(entry)
    compiled = load_snap_graph(
        path,
        default_probability=default_probability,
        reciprocal_in_degree=reciprocal_in_degree,
    )
    try:
        _store_compiled(compiled, entry)
    except OSError:
        return compiled  # cache dir unwritable: still return the fresh compile
    return compiled
