"""Graph persistence.

Two formats are supported:

* a SNAP-style whitespace edge list (``source target [probability]`` per
  line, ``#`` comments allowed) — enough to load the public datasets the paper
  uses if the user has them locally, and
* a self-contained JSON format that also stores the per-node economic
  attributes, used by the experiment harness to cache generated scenarios.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.exceptions import GraphError
from repro.graph.attributes import NodeAttributes
from repro.graph.social_graph import SocialGraph

PathLike = Union[str, Path]


def save_edge_list(graph: SocialGraph, path: PathLike) -> None:
    """Write ``graph`` as a whitespace edge list with probabilities."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write("# source target probability\n")
        for source, target, probability in graph.edges():
            handle.write(f"{source} {target} {probability}\n")


def load_edge_list(
    path: PathLike,
    *,
    default_probability: float = 0.1,
    reciprocal_in_degree: bool = False,
) -> SocialGraph:
    """Read a whitespace edge list.

    Lines starting with ``#`` are ignored.  Node identifiers are read as
    integers when possible and kept as strings otherwise.  If a line has no
    third column the edge receives ``default_probability``; passing
    ``reciprocal_in_degree=True`` recomputes all probabilities as
    ``1/in-degree`` after loading (the paper's standard setting).
    """
    path = Path(path)
    graph = SocialGraph()
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise GraphError(
                    f"{path}:{line_number}: expected 'source target [prob]', got {stripped!r}"
                )
            source = _parse_node(parts[0])
            target = _parse_node(parts[1])
            probability = float(parts[2]) if len(parts) > 2 else default_probability
            graph.add_edge(source, target, probability)
    if reciprocal_in_degree:
        graph.assign_reciprocal_in_degree_probabilities()
    return graph


def save_json(graph: SocialGraph, path: PathLike) -> None:
    """Write ``graph`` (topology + attributes) to a JSON document."""
    payload = {
        "nodes": [
            {"id": node, **graph.attributes(node).as_dict()} for node in graph.nodes()
        ],
        "edges": [
            {"source": source, "target": target, "probability": probability}
            for source, target, probability in graph.edges()
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def load_json(path: PathLike) -> SocialGraph:
    """Read a graph written by :func:`save_json`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    graph = SocialGraph()
    for record in payload.get("nodes", []):
        node = record["id"]
        graph.add_node(node, NodeAttributes.from_dict(record))
    for record in payload.get("edges", []):
        graph.add_edge(record["source"], record["target"], float(record["probability"]))
    return graph


def _parse_node(token: str):
    try:
        return int(token)
    except ValueError:
        return token
