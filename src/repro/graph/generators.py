"""Synthetic OSN generators.

The paper evaluates on four SNAP/Douban datasets (Table II) and, for the
scalability and optimality studies, on synthetic graphs produced by the
pattern-preserving generator PPGG [32].  Neither the raw datasets nor PPGG are
redistributable here, so this module provides deterministic generators that
reproduce the two structural properties the evaluation depends on:

* heavy-tailed (power-law) degree distributions with a controllable exponent
  ``eta`` — this is what makes seed cost (proportional to out-degree) and
  influence probability (``1/in-degree``) heterogeneous, and
* a controllable clustering level for "Facebook-like" graphs, obtained through
  a triangle-closing step (:func:`ppgg_like_graph`).

All generators return a :class:`~repro.graph.social_graph.SocialGraph` whose
edge probabilities are already set to ``1/in-degree`` (the paper's default);
economic attributes are attached later by :mod:`repro.economics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.graph.social_graph import SocialGraph
from repro.utils.rng import SeedLike, spawn_rng
from repro.utils.validation import require_positive, require_probability


@dataclass(frozen=True)
class GraphSpec:
    """Declarative description of a synthetic graph.

    Used by :mod:`repro.experiments.datasets` to describe the four named
    datasets once and build them lazily.
    """

    name: str
    num_nodes: int
    avg_out_degree: float
    power_law_exponent: float = 2.1
    clustering: float = 0.1
    seed: int = 0

    def build(self) -> SocialGraph:
        """Materialise the graph described by this spec."""
        return ppgg_like_graph(
            num_nodes=self.num_nodes,
            avg_out_degree=self.avg_out_degree,
            power_law_exponent=self.power_law_exponent,
            clustering=self.clustering,
            seed=self.seed,
        )


# ----------------------------------------------------------------------
# basic deterministic topologies (used heavily in tests and examples)
# ----------------------------------------------------------------------


def path_graph(num_nodes: int, probability: float = 0.5) -> SocialGraph:
    """A directed path ``0 -> 1 -> ... -> n-1`` with uniform edge probability."""
    require_positive(num_nodes, "num_nodes")
    require_probability(probability, "probability")
    graph = SocialGraph()
    graph.add_node(0)
    for node in range(1, num_nodes):
        graph.add_edge(node - 1, node, probability)
    return graph


def star_graph(num_leaves: int, probability: float = 0.5) -> SocialGraph:
    """A star with centre ``0`` pointing to leaves ``1..num_leaves``."""
    require_positive(num_leaves, "num_leaves")
    require_probability(probability, "probability")
    graph = SocialGraph()
    graph.add_node(0)
    for leaf in range(1, num_leaves + 1):
        graph.add_edge(0, leaf, probability)
    return graph


def tree_graph(
    branching: int, depth: int, probability: float = 0.5
) -> SocialGraph:
    """A complete directed tree rooted at node ``0``.

    Node ids follow breadth-first order, so node ``0`` is the root and the
    children of node ``i`` are ``branching*i + 1 .. branching*i + branching``.
    """
    require_positive(branching, "branching")
    require_probability(probability, "probability")
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    graph = SocialGraph()
    graph.add_node(0)
    frontier = [0]
    next_id = 1
    for _ in range(depth):
        next_frontier: List[int] = []
        for parent in frontier:
            for _ in range(branching):
                graph.add_edge(parent, next_id, probability)
                next_frontier.append(next_id)
                next_id += 1
        frontier = next_frontier
    return graph


def erdos_renyi_graph(
    num_nodes: int,
    edge_probability: float,
    seed: SeedLike = None,
    *,
    reciprocal_in_degree: bool = True,
) -> SocialGraph:
    """A directed Erdős–Rényi graph ``G(n, p)``.

    Each ordered pair ``(u, v)``, ``u != v``, receives an edge independently
    with probability ``edge_probability``.  Edge influence probabilities are
    either ``1/in-degree`` (default) or uniform at 0.1.
    """
    require_positive(num_nodes, "num_nodes")
    require_probability(edge_probability, "edge_probability")
    rng = spawn_rng(seed)
    graph = SocialGraph()
    for node in range(num_nodes):
        graph.add_node(node)
    if edge_probability > 0:
        mask = rng.random((num_nodes, num_nodes)) < edge_probability
        np.fill_diagonal(mask, False)
        sources, targets = np.nonzero(mask)
        for source, target in zip(sources.tolist(), targets.tolist()):
            graph.add_edge(source, target, 0.1)
    if reciprocal_in_degree:
        graph.assign_reciprocal_in_degree_probabilities()
    return graph


# ----------------------------------------------------------------------
# power-law / PPGG-like generators
# ----------------------------------------------------------------------


def power_law_graph(
    num_nodes: int,
    avg_out_degree: float,
    exponent: float = 2.1,
    seed: SeedLike = None,
    *,
    reciprocal_in_degree: bool = True,
) -> SocialGraph:
    """A directed graph with power-law out-degrees (configuration-style).

    Out-degrees are drawn from a discrete power-law with exponent ``exponent``
    (larger exponent = lighter tail), then rescaled so that the average
    out-degree is approximately ``avg_out_degree``.  Targets of each node are
    sampled preferentially (proportionally to an independent popularity score
    that is itself power-law distributed), which produces heavy-tailed
    in-degrees as well — the property the ``1/in-degree`` probability model
    depends on.
    """
    require_positive(num_nodes, "num_nodes")
    require_positive(avg_out_degree, "avg_out_degree")
    require_positive(exponent, "exponent")
    rng = spawn_rng(seed)

    out_degrees = _power_law_degrees(num_nodes, avg_out_degree, exponent, rng)
    popularity = _power_law_degrees(num_nodes, avg_out_degree, exponent, rng)
    popularity = popularity.astype(float) + 1.0
    popularity /= popularity.sum()

    graph = SocialGraph()
    for node in range(num_nodes):
        graph.add_node(node)

    node_ids = np.arange(num_nodes)
    for source in range(num_nodes):
        degree = int(min(out_degrees[source], num_nodes - 1))
        if degree <= 0:
            continue
        targets = rng.choice(node_ids, size=degree, replace=False, p=popularity)
        for target in targets.tolist():
            if target != source:
                graph.add_edge(source, int(target), 0.1)
    if reciprocal_in_degree:
        graph.assign_reciprocal_in_degree_probabilities()
    return graph


def ppgg_like_graph(
    num_nodes: int,
    avg_out_degree: float,
    power_law_exponent: float = 1.7,
    clustering: float = 0.3,
    seed: SeedLike = None,
    *,
    reciprocal_in_degree: bool = True,
) -> SocialGraph:
    """A clustered power-law graph standing in for the PPGG generator [32].

    The construction is a power-law configuration graph followed by a
    triangle-closing pass: for a ``clustering`` fraction of length-two directed
    paths ``u -> v -> w`` the closing edge ``u -> w`` is added.  This raises
    the (directed) clustering coefficient roughly proportionally to the
    requested level, giving a Facebook-like local structure, while keeping the
    degree tail governed by ``power_law_exponent`` — the two knobs the paper
    reports for its PPGG inputs (clustering 0.6394, η ∈ {1.7, 2.5}).
    """
    require_probability(clustering, "clustering")
    base = power_law_graph(
        num_nodes,
        avg_out_degree,
        exponent=power_law_exponent,
        seed=seed,
        reciprocal_in_degree=False,
    )
    rng = spawn_rng(seed if not isinstance(seed, np.random.Generator) else seed)
    if clustering > 0:
        closures = []
        for u in base.nodes():
            for v in base.out_neighbors(u):
                for w in base.out_neighbors(v):
                    if w != u and not base.has_edge(u, w):
                        closures.append((u, w))
        if closures:
            count = int(round(clustering * len(closures)))
            if count > 0:
                chosen = rng.choice(len(closures), size=min(count, len(closures)),
                                    replace=False)
                for index in np.atleast_1d(chosen).tolist():
                    u, w = closures[int(index)]
                    if not base.has_edge(u, w):
                        base.add_edge(u, w, 0.1)
    if reciprocal_in_degree:
        base.assign_reciprocal_in_degree_probabilities()
    return base


def _power_law_degrees(
    num_nodes: int,
    avg_degree: float,
    exponent: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw integer degrees from a discrete power law rescaled to ``avg_degree``."""
    # Pareto samples have tail index `exponent - 1`; shift so minimum is 1.
    raw = rng.pareto(max(exponent - 1.0, 0.1), size=num_nodes) + 1.0
    scaled = raw * (avg_degree / raw.mean())
    degrees = np.maximum(np.round(scaled), 1).astype(int)
    return np.minimum(degrees, num_nodes - 1)
