"""Per-node economic attributes of the S3CRM problem.

Each user of the OSN carries three quantities (Sec. III of the paper):

* ``benefit`` ``b(v)`` — the expected benefit gained if the user is activated,
* ``seed_cost`` ``c_seed(v)`` — the cost of activating the user directly as a
  seed,
* ``sc_cost`` ``c_sc(v)`` — the cost of the social coupon redeemed when the
  user is activated through a friend's referral.

The SC constraint ``k_i`` (how many coupons the user may hand out) is *not*
part of the static attributes: it is the decision variable of the problem and
lives in :class:`repro.core.allocation.SCAllocation`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import require_non_negative


@dataclass(frozen=True)
class NodeAttributes:
    """Immutable economic attributes of a single user.

    Parameters
    ----------
    benefit:
        Expected benefit ``b(v)`` obtained if the user is activated.
    seed_cost:
        Cost ``c_seed(v)`` of directly selecting the user as a seed.
    sc_cost:
        Cost ``c_sc(v)`` of the social coupon redeemed by this user.
    """

    benefit: float = 0.0
    seed_cost: float = 0.0
    sc_cost: float = 0.0

    def __post_init__(self) -> None:
        require_non_negative(self.benefit, "benefit")
        require_non_negative(self.seed_cost, "seed_cost")
        require_non_negative(self.sc_cost, "sc_cost")

    def with_benefit(self, benefit: float) -> "NodeAttributes":
        """Return a copy with the benefit replaced."""
        return replace(self, benefit=benefit)

    def with_seed_cost(self, seed_cost: float) -> "NodeAttributes":
        """Return a copy with the seed cost replaced."""
        return replace(self, seed_cost=seed_cost)

    def with_sc_cost(self, sc_cost: float) -> "NodeAttributes":
        """Return a copy with the SC cost replaced."""
        return replace(self, sc_cost=sc_cost)

    def as_dict(self) -> dict:
        """Serialise to a plain dictionary (used by :mod:`repro.graph.io`)."""
        return {
            "benefit": self.benefit,
            "seed_cost": self.seed_cost,
            "sc_cost": self.sc_cost,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NodeAttributes":
        """Inverse of :meth:`as_dict`."""
        return cls(
            benefit=float(data.get("benefit", 0.0)),
            seed_cost=float(data.get("seed_cost", 0.0)),
            sc_cost=float(data.get("sc_cost", 0.0)),
        )
