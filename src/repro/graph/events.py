"""Typed graph-mutation event batches and the delta CSR recompiler.

A live campaign's graph churns: edges appear and disappear, influence
probabilities drift, users join and leave.  Rebuilding the compiled CSR
snapshot — and worse, every per-world cascade snapshot built on it — from
scratch on each change is what froze the graph until now.  This module is
the ingestion path:

* :class:`GraphEventBatch` — an ordered batch of typed events (edge
  add/drop/reweight, node add/retire) with **tolerant** semantics: self-loop
  adds, drops/reweights of absent edges and retires of absent nodes are
  skipped, node adds upsert.  The same semantics apply whether the batch is
  replayed onto a :class:`~repro.graph.social_graph.SocialGraph` (the
  reference path) or delta-applied to a compiled snapshot, which is what the
  parity test harness pins.
* :func:`compute_application` — applies a batch to a
  :class:`~repro.graph.csr.CompiledGraph` *without recompiling from
  scratch*: only the touched CSR rows are rebuilt; runs of untouched rows
  are copied in bulk array slices (and for attribute-only batches the whole
  topology is aliased zero-copy); the result also carries the old→new
  node-index remap table.
* **Persistent draw positions** — the key to cheap snapshot reconciliation.
  Every surviving edge keeps its draw position (the offset of its coin flip
  inside a world's RNG stream), dropped edges leave permanent holes, and new
  edges are assigned fresh positions past the old stream width
  (``CompiledGraph.num_draws``).  Combined with the layered
  :class:`~repro.diffusion.engine.WorldSampler`, an unchanged edge therefore
  sees the *identical* coin flip in every world across graph versions — so
  a world is only dirty if a changed edge's flip actually flips its live
  set, which is exactly what :mod:`repro.diffusion.reconcile` tests.

The :class:`EventApplication` returned by the apply paths records everything
downstream layers need: the evolved snapshot, the remap table, the retired
old indices, and the per-edge draw-position records (added / dropped /
reweighted) that the dirty-world rule keys on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import GraphError
from repro.graph.attributes import NodeAttributes
from repro.graph.csr import CompiledGraph
from repro.graph.social_graph import SocialGraph
from repro.utils.validation import require_probability

NodeId = Hashable

__all__ = [
    "EdgeAdd",
    "EdgeDrop",
    "EdgeReweight",
    "NodeAdd",
    "NodeRetire",
    "GraphEvent",
    "GraphEventBatch",
    "EventApplication",
    "compute_application",
    "apply_event_batch",
]


@dataclass(frozen=True)
class EdgeAdd:
    """Add (or, if the edge exists, reweight) ``source -> target``.

    Self-loops are skipped — a user cannot refer a coupon to themselves.
    Missing endpoints are created with default attributes, exactly like
    :meth:`SocialGraph.add_edge`.
    """

    source: NodeId
    target: NodeId
    probability: float


@dataclass(frozen=True)
class EdgeDrop:
    """Remove ``source -> target``; skipped when the edge does not exist."""

    source: NodeId
    target: NodeId


@dataclass(frozen=True)
class EdgeReweight:
    """Change an existing edge's probability; skipped when absent.

    Unlike :class:`EdgeAdd` this never creates the edge — reweighting keeps
    the edge's draw position, so an unchanged-liveness world stays clean.
    """

    source: NodeId
    target: NodeId
    probability: float


@dataclass(frozen=True)
class NodeAdd:
    """Upsert a node.  ``attributes=None`` only ensures existence (an
    existing node keeps its attributes); a :class:`NodeAttributes` instance
    replaces them wholesale."""

    node: NodeId
    attributes: Optional[NodeAttributes] = None


@dataclass(frozen=True)
class NodeRetire:
    """Remove a node and every incident edge; skipped when absent."""

    node: NodeId


GraphEvent = Union[EdgeAdd, EdgeDrop, EdgeReweight, NodeAdd, NodeRetire]

_EVENT_TYPES = {
    "edge_add": EdgeAdd,
    "edge_drop": EdgeDrop,
    "edge_reweight": EdgeReweight,
    "node_add": NodeAdd,
    "node_retire": NodeRetire,
}


class GraphEventBatch:
    """An ordered, validated batch of graph events.

    Events apply strictly in order (a drop-then-re-add is a re-keyed edge
    with a fresh draw position, not a no-op).  Probabilities are validated
    at construction so a malformed batch never half-applies.
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable[GraphEvent]) -> None:
        events = tuple(events)
        for event in events:
            if isinstance(event, (EdgeAdd, EdgeReweight)):
                require_probability(event.probability, "probability")
            elif not isinstance(event, (EdgeDrop, NodeAdd, NodeRetire)):
                raise GraphError(f"unknown graph event {event!r}")
        self.events = events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[GraphEvent]:
        return iter(self.events)

    @classmethod
    def from_payloads(cls, payloads: Sequence[Mapping]) -> "GraphEventBatch":
        """Build a batch from plain dicts (the server / CLI wire format).

        Each payload carries a ``type`` of ``edge_add`` / ``edge_drop`` /
        ``edge_reweight`` / ``node_add`` / ``node_retire`` plus that type's
        fields.  ``node_add`` accepts optional ``benefit`` / ``seed_cost`` /
        ``sc_cost``; when any is present the node's attributes are replaced
        (absent fields default to 0.0), when none are it is a bare upsert.
        """
        events: List[GraphEvent] = []
        for payload in payloads:
            kind = payload.get("type")
            if kind not in _EVENT_TYPES:
                raise GraphError(
                    f"unknown graph event type {kind!r}; expected one of "
                    f"{sorted(_EVENT_TYPES)}"
                )
            try:
                if kind == "edge_add":
                    events.append(
                        EdgeAdd(
                            payload["source"],
                            payload["target"],
                            float(payload["probability"]),
                        )
                    )
                elif kind == "edge_drop":
                    events.append(EdgeDrop(payload["source"], payload["target"]))
                elif kind == "edge_reweight":
                    events.append(
                        EdgeReweight(
                            payload["source"],
                            payload["target"],
                            float(payload["probability"]),
                        )
                    )
                elif kind == "node_add":
                    attrs = None
                    if any(
                        key in payload for key in ("benefit", "seed_cost", "sc_cost")
                    ):
                        attrs = NodeAttributes(
                            benefit=float(payload.get("benefit", 0.0)),
                            seed_cost=float(payload.get("seed_cost", 0.0)),
                            sc_cost=float(payload.get("sc_cost", 0.0)),
                        )
                    events.append(NodeAdd(payload["node"], attrs))
                else:
                    events.append(NodeRetire(payload["node"]))
            except KeyError as error:
                raise GraphError(
                    f"graph event {kind!r} is missing field {error.args[0]!r}"
                ) from None
        return cls(events)

    def apply_to_graph(self, graph: SocialGraph) -> None:
        """Replay the batch onto a :class:`SocialGraph` (reference path).

        Applies the exact tolerant semantics of the compiled delta path —
        this is what the event-parity property suite replays a mutated copy
        through to pin the two paths together.
        """
        for event in self.events:
            if isinstance(event, EdgeAdd):
                if event.source == event.target:
                    continue
                graph.add_edge(event.source, event.target, event.probability)
            elif isinstance(event, EdgeDrop):
                if graph.has_edge(event.source, event.target):
                    graph.remove_edge(event.source, event.target)
            elif isinstance(event, EdgeReweight):
                if graph.has_edge(event.source, event.target):
                    graph.add_edge(event.source, event.target, event.probability)
            elif isinstance(event, NodeAdd):
                graph.add_node(event.node, event.attributes)
            else:  # NodeRetire
                if event.node in graph:
                    graph.remove_node(event.node)


class EventApplication:
    """The record of one batch applied to one compiled snapshot.

    Attributes
    ----------
    compiled:
        The evolved :class:`CompiledGraph`.
    remap:
        int64 array of length ``old_num_nodes``: old node index → new node
        index, ``-1`` for retired nodes.  Surviving nodes keep their
        relative order; new nodes are appended.
    identity_remap:
        ``True`` iff no node was retired — every old index maps to itself
        and per-world state needs no index translation.
    added / dropped / reweighted:
        Draw-position records of the edges the batch actually changed:
        ``(position, probability)`` for added edges (positions all at or
        past ``old_num_draws``), ``(position, old_probability)`` for
        dropped edges, ``(position, old_probability, new_probability)`` for
        reweighted edges.  These — not node ids — are what the dirty-world
        rule of :mod:`repro.diffusion.reconcile` tests against the draws.
    retired:
        Old node indices removed by the batch, ascending.
    num_new_draws:
        Fresh draw positions appended past the old stream width; the
        evolved sampler grows one RNG layer of exactly this width.
    """

    __slots__ = (
        "compiled",
        "remap",
        "identity_remap",
        "old_num_nodes",
        "old_num_draws",
        "added",
        "dropped",
        "reweighted",
        "retired",
        "num_new_draws",
    )

    def __init__(
        self,
        compiled: CompiledGraph,
        remap: np.ndarray,
        *,
        old_num_nodes: int,
        old_num_draws: int,
        added: List[Tuple[int, float]],
        dropped: List[Tuple[int, float]],
        reweighted: List[Tuple[int, float, float]],
        retired: Tuple[int, ...],
        num_new_draws: int,
    ) -> None:
        self.compiled = compiled
        self.remap = remap
        self.identity_remap = not retired
        self.old_num_nodes = int(old_num_nodes)
        self.old_num_draws = int(old_num_draws)
        self.added = added
        self.dropped = dropped
        self.reweighted = reweighted
        self.retired = retired
        self.num_new_draws = int(num_new_draws)

    @property
    def touched_edges(self) -> int:
        """How many edges the batch changed (added + dropped + reweighted)."""
        return len(self.added) + len(self.dropped) + len(self.reweighted)

    @property
    def rank_stable(self) -> bool:
        """Whether surviving edges keep their hand-off rank in every row.

        True when the batch reweighted nothing: surviving edges then keep
        their ``(-probability, str(target))`` sort keys, so within any row
        the surviving subsequence of the new ranked order equals the old
        one.  Clean worlds (where no changed edge is live) then have
        bit-identical live adjacency — the precondition for reusing their
        shared-memory world blocks across versions.
        """
        return not self.reweighted

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"EventApplication(nodes={self.old_num_nodes}->"
            f"{self.compiled.num_nodes}, added={len(self.added)}, "
            f"dropped={len(self.dropped)}, reweighted={len(self.reweighted)}, "
            f"retired={len(self.retired)})"
        )


def compute_application(
    compiled: CompiledGraph, batch: GraphEventBatch
) -> EventApplication:
    """Delta-apply ``batch`` to ``compiled``; neither input is mutated.

    The evolved snapshot is bit-identical (indptr/indices/probs and the
    attribute vectors; ``edge_pos`` intentionally differs) to compiling the
    equivalently mutated :class:`SocialGraph` from scratch, but only touched
    rows are rebuilt — untouched row runs are bulk slice copies, and a batch
    that changes no topology aliases every topology array zero-copy.
    """
    node_ids = compiled.node_ids
    index = compiled.index
    indptr = compiled.indptr
    indices = compiled.indices
    probs = compiled.probs
    edge_pos = compiled.edge_pos
    old_n = compiled.num_nodes
    old_num_draws = compiled.num_draws

    # Nodes are tracked as tokens: ("o", old_index) for originals, ("n", k)
    # for nodes created by the batch (including re-added retirees, which are
    # genuinely new nodes — their old edges and draw positions are gone).
    order: "Dict[Tuple[str, int], None]" = {("o", i): None for i in range(old_n)}
    current: Dict[NodeId, Tuple[str, int]] = {
        node: ("o", i) for i, node in enumerate(node_ids)
    }
    new_ids: List[NodeId] = []
    # Materialised (touched) out-rows: token -> {target_token: [current_prob,
    # draw_pos | None, original_prob]}.  A row enters this dict the moment an
    # event touches it (or a retire forces it) and is rebuilt in the output;
    # rows never materialised are copied from the old CSR wholesale.
    rows: Dict[Tuple[str, int], Dict[Tuple[str, int], List]] = {}
    attr_overrides: Dict[Tuple[str, int], NodeAttributes] = {}
    dropped: Dict[int, float] = {}
    retired_old: List[int] = []

    def id_of(token: Tuple[str, int]) -> NodeId:
        return node_ids[token[1]] if token[0] == "o" else new_ids[token[1]]

    def ensure(node: NodeId) -> Tuple[str, int]:
        token = current.get(node)
        if token is None:
            token = ("n", len(new_ids))
            new_ids.append(node)
            order[token] = None
            current[node] = token
        return token

    def materialize(token: Tuple[str, int]) -> Dict:
        row = rows.get(token)
        if row is None:
            row = {}
            if token[0] == "o":
                source = token[1]
                for slot in range(int(indptr[source]), int(indptr[source + 1])):
                    target = ("o", int(indices[slot]))
                    # Retired targets were already popped (with their drop
                    # recorded) when the retire materialised this row's
                    # in-edge sources — a target absent from `order` here can
                    # only be one whose drop is already on the books.
                    if target in order:
                        probability = float(probs[slot])
                        row[target] = [probability, int(edge_pos[slot]), probability]
            rows[token] = row
        return row

    def csr_has_edge(s_token: Tuple[str, int], t_token: Tuple[str, int]) -> bool:
        if s_token[0] != "o" or t_token[0] != "o":
            return False
        source = s_token[1]
        lo, hi = int(indptr[source]), int(indptr[source + 1])
        return bool(np.any(indices[lo:hi] == t_token[1]))

    def drop_record(record: List) -> None:
        if record[1] is not None:
            dropped[record[1]] = record[2]

    def retire(token: Tuple[str, int]) -> None:
        # Out-edges: every one still alive is dropped.
        out_row = materialize(token)
        for record in out_row.values():
            drop_record(record)
        del rows[token]
        # In-edges still living in un-materialised old CSR rows: force those
        # rows into `rows` while the token is still alive, so the edges (and
        # their draw positions) are seen before the pop below removes them.
        if token[0] == "o":
            for slot in np.flatnonzero(indices == token[1]):
                source = int(np.searchsorted(indptr, int(slot), side="right")) - 1
                s_token = ("o", source)
                if s_token in order and s_token not in rows:
                    materialize(s_token)
        # Pop the token as a target from every materialised row.
        for other in rows.values():
            record = other.pop(token, None)
            if record is not None:
                drop_record(record)
        del order[token]
        node = id_of(token)
        if current.get(node) is token:
            del current[node]
        attr_overrides.pop(token, None)
        if token[0] == "o":
            retired_old.append(token[1])

    for event in batch.events:
        if isinstance(event, EdgeAdd):
            if event.source == event.target:
                continue
            s_token = ensure(event.source)
            t_token = ensure(event.target)
            row = materialize(s_token)
            record = row.get(t_token)
            if record is not None:
                record[0] = float(event.probability)
            else:
                row[t_token] = [float(event.probability), None, None]
        elif isinstance(event, (EdgeDrop, EdgeReweight)):
            s_token = current.get(event.source)
            t_token = current.get(event.target)
            if s_token is None or t_token is None:
                continue
            if s_token in rows:
                row = rows[s_token]
                if t_token not in row:
                    continue
            elif csr_has_edge(s_token, t_token):
                row = materialize(s_token)
            else:
                continue
            if isinstance(event, EdgeDrop):
                drop_record(row.pop(t_token))
            else:
                row[t_token][0] = float(event.probability)
        elif isinstance(event, NodeAdd):
            token = ensure(event.node)
            if event.attributes is not None:
                attr_overrides[token] = event.attributes
        else:  # NodeRetire
            token = current.get(event.node)
            if token is not None:
                retire(token)

    tokens = list(order)
    n_new = len(tokens)
    new_index = {token: position for position, token in enumerate(tokens)}
    remap = np.full(old_n, -1, dtype=np.int64)
    for token, position in new_index.items():
        if token[0] == "o":
            remap[token[1]] = position
    identity = not retired_old

    # Attribute-only / no-op fast path: nothing structural moved, so the
    # whole topology is aliased zero-copy.
    if not rows and identity and not new_ids:
        if not attr_overrides:
            evolved = compiled
        else:
            benefits = compiled.benefits.copy()
            seed_costs = compiled.seed_costs.copy()
            sc_costs = compiled.sc_costs.copy()
            for token, attrs in attr_overrides.items():
                position = new_index[token]
                benefits[position] = attrs.benefit
                seed_costs[position] = attrs.seed_cost
                sc_costs[position] = attrs.sc_cost
            evolved = CompiledGraph(
                node_ids=node_ids,
                indptr=indptr,
                indices=indices,
                probs=probs,
                edge_pos=edge_pos,
                benefits=benefits,
                seed_costs=seed_costs,
                sc_costs=sc_costs,
                num_draws=old_num_draws,
            )
        return EventApplication(
            evolved,
            remap,
            old_num_nodes=old_n,
            old_num_draws=old_num_draws,
            added=[],
            dropped=[],
            reweighted=[],
            retired=(),
            num_new_draws=0,
        )

    # Assign fresh draw positions to new edges — deterministically: final
    # node order, within each touched row the ranked (hand-off) order — and
    # collect the changed-edge records.
    added: List[Tuple[int, float]] = []
    reweighted: List[Tuple[int, float, float]] = []
    row_sorted: Dict[Tuple[str, int], List] = {}
    next_position = old_num_draws
    for token in tokens:
        row = rows.get(token)
        if row is None:
            continue
        entries = sorted(
            row.items(), key=lambda item: (-item[1][0], str(id_of(item[0])))
        )
        row_sorted[token] = entries
        for _, record in entries:
            if record[1] is None:
                record[1] = next_position
                next_position += 1
                added.append((record[1], record[0]))
            elif record[0] != record[2]:
                reweighted.append((record[1], record[2], record[0]))
    num_new_draws = next_position - old_num_draws

    degrees = np.empty(n_new, dtype=np.int64)
    for position, token in enumerate(tokens):
        row = rows.get(token)
        if row is not None:
            degrees[position] = len(row)
        elif token[0] == "o":
            source = token[1]
            degrees[position] = int(indptr[source + 1] - indptr[source])
        else:
            degrees[position] = 0
    indptr_new = np.zeros(n_new + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr_new[1:])
    num_edges_new = int(indptr_new[-1])
    indices_new = np.empty(num_edges_new, dtype=np.int64)
    probs_new = np.empty(num_edges_new, dtype=np.float64)
    edge_pos_new = np.empty(num_edges_new, dtype=np.int64)

    position = 0
    while position < n_new:
        token = tokens[position]
        entries = row_sorted.get(token)
        if entries is not None:
            cursor = int(indptr_new[position])
            for t_token, record in entries:
                indices_new[cursor] = new_index[t_token]
                probs_new[cursor] = record[0]
                edge_pos_new[cursor] = record[1]
                cursor += 1
            position += 1
            continue
        if token[0] == "n":
            position += 1
            continue
        # A run of consecutive untouched original rows whose old indices are
        # also consecutive: one bulk slice copy per run.
        run_start = position
        first_old = token[1]
        while position < n_new:
            token = tokens[position]
            if (
                token[0] != "o"
                or token in rows
                or token[1] != first_old + (position - run_start)
            ):
                break
            position += 1
        old_lo = int(indptr[first_old])
        old_hi = int(indptr[first_old + (position - run_start)])
        new_lo = int(indptr_new[run_start])
        span = old_hi - old_lo
        if identity:
            indices_new[new_lo : new_lo + span] = indices[old_lo:old_hi]
        else:
            indices_new[new_lo : new_lo + span] = remap[indices[old_lo:old_hi]]
        probs_new[new_lo : new_lo + span] = probs[old_lo:old_hi]
        edge_pos_new[new_lo : new_lo + span] = edge_pos[old_lo:old_hi]

    # Attribute vectors: survivors (a prefix of the new order) are gathered
    # from the old vectors, new nodes default to zero attributes, explicit
    # NodeAdd attributes override either.
    survivors = np.array(
        [token[1] for token in tokens if token[0] == "o"], dtype=np.int64
    )
    benefits_new = np.zeros(n_new, dtype=np.float64)
    seed_costs_new = np.zeros(n_new, dtype=np.float64)
    sc_costs_new = np.zeros(n_new, dtype=np.float64)
    if survivors.size:
        benefits_new[: survivors.size] = compiled.benefits[survivors]
        seed_costs_new[: survivors.size] = compiled.seed_costs[survivors]
        sc_costs_new[: survivors.size] = compiled.sc_costs[survivors]
    for token, attrs in attr_overrides.items():
        slot = new_index[token]
        benefits_new[slot] = attrs.benefit
        seed_costs_new[slot] = attrs.seed_cost
        sc_costs_new[slot] = attrs.sc_cost

    evolved = CompiledGraph(
        node_ids=[id_of(token) for token in tokens],
        indptr=indptr_new,
        indices=indices_new,
        probs=probs_new,
        edge_pos=edge_pos_new,
        benefits=benefits_new,
        seed_costs=seed_costs_new,
        sc_costs=sc_costs_new,
        num_draws=old_num_draws + num_new_draws,
    )
    return EventApplication(
        evolved,
        remap,
        old_num_nodes=old_n,
        old_num_draws=old_num_draws,
        added=added,
        dropped=sorted(dropped.items()),
        reweighted=reweighted,
        retired=tuple(sorted(retired_old)),
        num_new_draws=num_new_draws,
    )


def apply_event_batch(graph: SocialGraph, batch: GraphEventBatch) -> EventApplication:
    """Apply ``batch`` to ``graph`` in place, keeping the CSR cache live.

    Delta-applies the batch to the (possibly freshly compiled) snapshot,
    replays it onto the adjacency dicts, and installs the evolved snapshot
    as the graph's compiled cache — the graph and its CSR never disagree,
    and the next ``graph.compiled()`` call is free.
    """
    application = compute_application(graph.compiled(), batch)
    batch.apply_to_graph(graph)
    graph._install_compiled(application.compiled)
    return application
