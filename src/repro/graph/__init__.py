"""Online-social-network graph substrate.

The graph subpackage provides the weighted directed graph that every other
layer of the library builds on: per-node economic attributes, influence
probabilities on edges, adjacency lists pre-sorted by influence probability
(the order in which social coupons are handed out), synthetic generators
standing in for the SNAP datasets of the paper, and persistence helpers.

Two representations coexist: the mutable adjacency-dict
:class:`~repro.graph.social_graph.SocialGraph` used for construction and
algorithmic bookkeeping, and the immutable integer-indexed
:class:`~repro.graph.csr.CompiledGraph` CSR snapshot the vectorized cascade
engine runs on (see :mod:`repro.diffusion.engine`).
"""

from repro.graph.attributes import NodeAttributes
from repro.graph.csr import CompiledGraph
from repro.graph.social_graph import SocialGraph
from repro.graph.generators import (
    GraphSpec,
    erdos_renyi_graph,
    path_graph,
    power_law_graph,
    ppgg_like_graph,
    star_graph,
    tree_graph,
)
from repro.graph.io import (
    load_edge_list,
    load_json,
    save_edge_list,
    save_json,
)
from repro.graph.metrics import (
    average_clustering_coefficient,
    degree_histogram,
    farthest_hop_from,
    reachable_set,
)
from repro.graph.sampling import (
    forest_fire_sample,
    random_node_sample,
    snowball_sample,
)

__all__ = [
    "CompiledGraph",
    "forest_fire_sample",
    "random_node_sample",
    "snowball_sample",
    "NodeAttributes",
    "SocialGraph",
    "GraphSpec",
    "erdos_renyi_graph",
    "path_graph",
    "power_law_graph",
    "ppgg_like_graph",
    "star_graph",
    "tree_graph",
    "load_edge_list",
    "load_json",
    "save_edge_list",
    "save_json",
    "average_clustering_coefficient",
    "degree_histogram",
    "farthest_hop_from",
    "reachable_set",
]
