"""Structural graph metrics used by the experiments.

These are deliberately dependency-free implementations operating directly on
:class:`~repro.graph.social_graph.SocialGraph`: degree histograms and the
clustering coefficient characterise generated datasets (Table II stand-ins),
and :func:`farthest_hop_from` supports the "average farthest hop from seeds"
metric of Table III.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Set

from repro.graph.social_graph import SocialGraph

NodeId = Hashable


def degree_histogram(graph: SocialGraph, *, direction: str = "out") -> Dict[int, int]:
    """Histogram mapping degree -> number of nodes with that degree.

    ``direction`` is ``"out"`` or ``"in"``.
    """
    if direction not in {"out", "in"}:
        raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")
    histogram: Dict[int, int] = {}
    for node in graph.nodes():
        degree = graph.out_degree(node) if direction == "out" else graph.in_degree(node)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def average_clustering_coefficient(graph: SocialGraph) -> float:
    """Average directed clustering coefficient.

    For each node the coefficient is the fraction of ordered pairs of distinct
    out-neighbours ``(v, w)`` for which the edge ``v -> w`` exists.  Nodes with
    fewer than two out-neighbours contribute zero, matching the convention of
    the PPGG paper's reported coefficient.
    """
    if graph.num_nodes == 0:
        return 0.0
    total = 0.0
    for node in graph.nodes():
        neighbors = list(graph.out_neighbors(node))
        if len(neighbors) < 2:
            continue
        closed = 0
        possible = len(neighbors) * (len(neighbors) - 1)
        for v in neighbors:
            for w in neighbors:
                if v != w and graph.has_edge(v, w):
                    closed += 1
        total += closed / possible
    return total / graph.num_nodes


def reachable_set(graph: SocialGraph, sources: Iterable[NodeId]) -> Set[NodeId]:
    """All nodes reachable from ``sources`` following directed edges."""
    visited: Set[NodeId] = set()
    frontier = deque()
    for source in sources:
        if source not in visited and source in graph:
            visited.add(source)
            frontier.append(source)
    while frontier:
        node = frontier.popleft()
        for neighbor in graph.out_neighbors(node):
            if neighbor not in visited:
                visited.add(neighbor)
                frontier.append(neighbor)
    return visited


def farthest_hop_from(
    graph: SocialGraph,
    sources: Iterable[NodeId],
    *,
    restrict_to: Iterable[NodeId] | None = None,
) -> int:
    """Largest BFS distance from ``sources`` to any reachable node.

    ``restrict_to`` limits both traversal and the maximum to a subset of nodes
    (the experiment harness passes the activated set so the metric matches the
    paper's "average farthest hop from seeds *within the influence spread*").
    Returns 0 when no node beyond the sources is reachable.
    """
    allowed = set(restrict_to) if restrict_to is not None else None
    distances: Dict[NodeId, int] = {}
    frontier: deque = deque()
    for source in sources:
        if source in graph and (allowed is None or source in allowed):
            distances[source] = 0
            frontier.append(source)
    farthest = 0
    while frontier:
        node = frontier.popleft()
        for neighbor in graph.out_neighbors(node):
            if allowed is not None and neighbor not in allowed:
                continue
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                farthest = max(farthest, distances[neighbor])
                frontier.append(neighbor)
    return farthest


def connected_component_sizes(graph: SocialGraph) -> List[int]:
    """Sizes of weakly connected components, largest first."""
    seen: Set[NodeId] = set()
    sizes: List[int] = []
    for start in graph.nodes():
        if start in seen:
            continue
        size = 0
        frontier = deque([start])
        seen.add(start)
        while frontier:
            node = frontier.popleft()
            size += 1
            for neighbor in list(graph.out_neighbors(node)) + list(
                graph.in_neighbors(node)
            ):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        sizes.append(size)
    return sorted(sizes, reverse=True)
