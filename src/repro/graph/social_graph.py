"""Weighted directed social graph.

:class:`SocialGraph` is the central substrate of the library.  It stores, for
every user, the economic attributes of :class:`~repro.graph.attributes.NodeAttributes`
and, for every directed edge ``(u, v)``, the influence probability
``P(e(u, v))`` with which ``u`` activates ``v``.

Two representation details matter for the algorithms built on top:

* out-neighbour lists are available **sorted by decreasing influence
  probability** (``ranked_out_neighbors``) because the SC-constrained cascade
  hands coupons to friends in exactly that order (Sec. III of the paper), and
* in-degrees are tracked incrementally because the standard experimental
  setting assigns ``P(e(u, v)) = 1 / in_degree(v)``.

The class is intentionally a plain adjacency-dict structure rather than a
wrapper around :mod:`networkx`: it is the *mutable construction* substrate.
For the Monte-Carlo hot loops it is compiled once into the immutable
integer-indexed CSR snapshot :class:`repro.graph.csr.CompiledGraph`, which
the vectorized cascade engine (:mod:`repro.diffusion.engine`) runs on.  A
conversion bridge to/from networkx is still provided for interoperability.
"""

from __future__ import annotations

from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graph.attributes import NodeAttributes
from repro.utils.validation import require_probability

NodeId = Hashable
Edge = Tuple[NodeId, NodeId]


class SocialGraph:
    """A weighted directed graph with per-node economic attributes."""

    def __init__(self) -> None:
        self._attrs: Dict[NodeId, NodeAttributes] = {}
        self._succ: Dict[NodeId, Dict[NodeId, float]] = {}
        self._pred: Dict[NodeId, Dict[NodeId, float]] = {}
        self._ranked_cache: Dict[NodeId, List[Tuple[NodeId, float]]] = {}
        self._num_edges = 0
        # Two sub-counters so derived snapshots can invalidate selectively:
        # topology covers anything the CSR adjacency arrays depend on (node
        # set, edges, probabilities), attributes only the benefit/cost
        # vectors.  ``version`` (their sum) keeps the historic monotone
        # any-mutation counter for coarse consumers.
        self._topology_version = 0
        self._attribute_version = 0
        self._compiled_cache = None
        self._compiled_versions: Tuple[int, int] = (-1, -1)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_node(
        self,
        node: NodeId,
        attributes: Optional[NodeAttributes] = None,
        *,
        benefit: Optional[float] = None,
        seed_cost: Optional[float] = None,
        sc_cost: Optional[float] = None,
    ) -> None:
        """Add ``node`` (or update its attributes if it already exists).

        Attributes may be given either as a :class:`NodeAttributes` instance
        or as individual keyword arguments; keyword arguments override the
        corresponding fields of ``attributes``.
        """
        is_new = node not in self._attrs
        base = attributes or self._attrs.get(node, NodeAttributes())
        if benefit is not None:
            base = base.with_benefit(benefit)
        if seed_cost is not None:
            base = base.with_seed_cost(seed_cost)
        if sc_cost is not None:
            base = base.with_sc_cost(sc_cost)
        self._attrs[node] = base
        self._succ.setdefault(node, {})
        self._pred.setdefault(node, {})
        if is_new:
            # A new node changes the compiled index space itself.
            self._topology_version += 1
        else:
            self._attribute_version += 1

    def add_edge(self, source: NodeId, target: NodeId, probability: float) -> None:
        """Add a directed edge ``source -> target`` with influence probability.

        Both endpoints are created with default attributes if they are not
        already present.  Re-adding an existing edge overwrites the
        probability.  Self-loops are rejected because a user cannot refer a
        coupon to themselves.
        """
        if source == target:
            raise GraphError(f"self-loop on node {source!r} is not allowed")
        require_probability(probability, "probability")
        if source not in self._attrs:
            self.add_node(source)
        if target not in self._attrs:
            self.add_node(target)
        if target not in self._succ[source]:
            self._num_edges += 1
        self._succ[source][target] = float(probability)
        self._pred[target][source] = float(probability)
        self._ranked_cache.pop(source, None)
        self._topology_version += 1

    def remove_edge(self, source: NodeId, target: NodeId) -> None:
        """Remove the edge ``source -> target``."""
        if source not in self._succ or target not in self._succ[source]:
            raise EdgeNotFoundError(source, target)
        del self._succ[source][target]
        del self._pred[target][source]
        self._num_edges -= 1
        self._ranked_cache.pop(source, None)
        self._topology_version += 1

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and every edge incident to it."""
        self._require_node(node)
        for target in self._succ[node]:
            del self._pred[target][node]
            self._num_edges -= 1
        for source in self._pred[node]:
            del self._succ[source][node]
            self._num_edges -= 1
            self._ranked_cache.pop(source, None)
        del self._succ[node]
        del self._pred[node]
        del self._attrs[node]
        self._ranked_cache.pop(node, None)
        self._topology_version += 1

    def set_attributes(self, node: NodeId, attributes: NodeAttributes) -> None:
        """Replace the attributes of an existing node."""
        self._require_node(node)
        self._attrs[node] = attributes
        self._attribute_version += 1

    def update_attributes(self, mapping: Mapping[NodeId, NodeAttributes]) -> None:
        """Replace the attributes of several nodes at once."""
        for node, attributes in mapping.items():
            self.set_attributes(node, attributes)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone mutation counter (bumped by every structural/attribute edit).

        Used to invalidate derived snapshots such as the cached
        :class:`~repro.graph.csr.CompiledGraph` — see :meth:`compiled`.
        """
        return self._topology_version + self._attribute_version

    @property
    def topology_version(self) -> int:
        """Counter of CSR-structural edits (node set, edges, probabilities)."""
        return self._topology_version

    @property
    def attribute_version(self) -> int:
        """Counter of attribute-only edits (benefits / costs)."""
        return self._attribute_version

    def compiled(self):
        """The CSR snapshot of this graph, compiled once and cached.

        Every estimator built on the same (unmutated) graph shares one
        :class:`~repro.graph.csr.CompiledGraph`, so ``compare``-style
        experiment runs pay the compilation cost once instead of once per
        algorithm.  A topology edit (node/edge/probability change)
        invalidates the cache wholesale; an attribute-only edit takes the
        cheap path — the next call returns a fresh snapshot *aliasing* the
        cached adjacency arrays with rebuilt benefit/cost vectors, never
        recompiling the CSR.
        """
        cache = self._compiled_cache
        versions = (self._topology_version, self._attribute_version)
        if cache is not None and self._compiled_versions == versions:
            return cache
        if cache is not None and self._compiled_versions[0] == versions[0]:
            self._compiled_cache = cache.with_attributes(self)
        else:
            from repro.graph.csr import CompiledGraph

            self._compiled_cache = CompiledGraph.from_social_graph(self)
        self._compiled_versions = versions
        return self._compiled_cache

    def apply_events(self, batch):
        """Apply a :class:`repro.graph.events.GraphEventBatch` in place.

        The batch is applied to the adjacency dicts *and*, when a compiled
        snapshot is cached, to the CSR via the delta recompiler — the evolved
        snapshot is installed as the new cache, so the next :meth:`compiled`
        call is free.  Returns the :class:`repro.graph.events.EventApplication`
        describing the evolution (remap table, draw-position records).
        """
        from repro.graph.events import apply_event_batch

        return apply_event_batch(self, batch)

    def _install_compiled(self, compiled) -> None:
        """Adopt an externally evolved snapshot as the current cache."""
        self._compiled_cache = compiled
        self._compiled_versions = (self._topology_version, self._attribute_version)

    @property
    def num_nodes(self) -> int:
        """Number of users in the graph."""
        return len(self._attrs)

    @property
    def num_edges(self) -> int:
        """Number of directed edges in the graph."""
        return self._num_edges

    def __len__(self) -> int:
        return len(self._attrs)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._attrs

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._attrs)

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over node identifiers (insertion order)."""
        return iter(self._attrs)

    def edges(self) -> Iterator[Tuple[NodeId, NodeId, float]]:
        """Iterate over ``(source, target, probability)`` triples."""
        for source, targets in self._succ.items():
            for target, probability in targets.items():
                yield source, target, probability

    def has_edge(self, source: NodeId, target: NodeId) -> bool:
        """Return whether the directed edge exists."""
        return source in self._succ and target in self._succ[source]

    def probability(self, source: NodeId, target: NodeId) -> float:
        """Return the influence probability of an existing edge."""
        if not self.has_edge(source, target):
            raise EdgeNotFoundError(source, target)
        return self._succ[source][target]

    def attributes(self, node: NodeId) -> NodeAttributes:
        """Return the :class:`NodeAttributes` of ``node``."""
        self._require_node(node)
        return self._attrs[node]

    def benefit(self, node: NodeId) -> float:
        """Benefit ``b(v)`` of ``node``."""
        return self.attributes(node).benefit

    def seed_cost(self, node: NodeId) -> float:
        """Seed cost ``c_seed(v)`` of ``node``."""
        return self.attributes(node).seed_cost

    def sc_cost(self, node: NodeId) -> float:
        """Social-coupon cost ``c_sc(v)`` of ``node``."""
        return self.attributes(node).sc_cost

    def out_neighbors(self, node: NodeId) -> Dict[NodeId, float]:
        """Mapping of out-neighbours to influence probabilities."""
        self._require_node(node)
        return dict(self._succ[node])

    def in_neighbors(self, node: NodeId) -> Dict[NodeId, float]:
        """Mapping of in-neighbours to influence probabilities."""
        self._require_node(node)
        return dict(self._pred[node])

    def out_degree(self, node: NodeId) -> int:
        """Number of out-neighbours (friends the user can refer)."""
        self._require_node(node)
        return len(self._succ[node])

    def in_degree(self, node: NodeId) -> int:
        """Number of in-neighbours."""
        self._require_node(node)
        return len(self._pred[node])

    def ranked_out_neighbors(self, node: NodeId) -> List[Tuple[NodeId, float]]:
        """Out-neighbours sorted by decreasing influence probability.

        Ties are broken by node identifier (string order) so the cascade order
        is deterministic.  The list is cached per node and invalidated when the
        node's outgoing edges change.
        """
        self._require_node(node)
        cached = self._ranked_cache.get(node)
        if cached is None:
            cached = sorted(
                self._succ[node].items(), key=lambda item: (-item[1], str(item[0]))
            )
            self._ranked_cache[node] = cached
        return cached

    def total_benefit(self) -> float:
        """Sum of ``b(v)`` over all users (used to set the λ ratio)."""
        return sum(attrs.benefit for attrs in self._attrs.values())

    def total_sc_cost(self) -> float:
        """Sum of ``c_sc(v)`` over all users."""
        return sum(attrs.sc_cost for attrs in self._attrs.values())

    def total_seed_cost(self) -> float:
        """Sum of ``c_seed(v)`` over all users (used to set the κ ratio)."""
        return sum(attrs.seed_cost for attrs in self._attrs.values())

    # ------------------------------------------------------------------
    # copies / conversions
    # ------------------------------------------------------------------

    def copy(self) -> "SocialGraph":
        """Return a deep-enough copy (attributes are immutable, so shared)."""
        clone = SocialGraph()
        clone._attrs = dict(self._attrs)
        clone._succ = {node: dict(targets) for node, targets in self._succ.items()}
        clone._pred = {node: dict(sources) for node, sources in self._pred.items()}
        clone._num_edges = self._num_edges
        return clone

    def subgraph(self, nodes: Iterable[NodeId]) -> "SocialGraph":
        """Return the induced subgraph on ``nodes``."""
        keep = set(nodes)
        missing = keep - set(self._attrs)
        if missing:
            raise NodeNotFoundError(next(iter(missing)))
        sub = SocialGraph()
        for node in keep:
            sub.add_node(node, self._attrs[node])
        for source in keep:
            for target, probability in self._succ[source].items():
                if target in keep:
                    sub.add_edge(source, target, probability)
        return sub

    def to_networkx(self):
        """Convert to a :class:`networkx.DiGraph` (networkx must be installed)."""
        import networkx as nx

        digraph = nx.DiGraph()
        for node, attrs in self._attrs.items():
            digraph.add_node(node, **attrs.as_dict())
        for source, target, probability in self.edges():
            digraph.add_edge(source, target, probability=probability)
        return digraph

    @classmethod
    def from_networkx(cls, digraph) -> "SocialGraph":
        """Build from a :class:`networkx.DiGraph` produced by :meth:`to_networkx`."""
        graph = cls()
        for node, data in digraph.nodes(data=True):
            graph.add_node(node, NodeAttributes.from_dict(data))
        for source, target, data in digraph.edges(data=True):
            graph.add_edge(source, target, float(data.get("probability", 0.0)))
        return graph

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[NodeId, NodeId, float]],
        attributes: Optional[Mapping[NodeId, NodeAttributes]] = None,
    ) -> "SocialGraph":
        """Build a graph from ``(source, target, probability)`` triples."""
        graph = cls()
        for source, target, probability in edges:
            graph.add_edge(source, target, probability)
        if attributes:
            for node, attrs in attributes.items():
                graph.add_node(node, attrs)
        return graph

    def assign_reciprocal_in_degree_probabilities(self) -> None:
        """Set every edge probability to ``1 / in_degree(target)``.

        This is the standard weighted-cascade setting used throughout the
        paper's evaluation (Sec. VI-A, following the IM literature).
        """
        for target, sources in self._pred.items():
            if not sources:
                continue
            probability = 1.0 / len(sources)
            for source in list(sources):
                self._succ[source][target] = probability
                self._pred[target][source] = probability
                self._ranked_cache.pop(source, None)
        self._topology_version += 1

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _require_node(self, node: NodeId) -> None:
        if node not in self._attrs:
            raise NodeNotFoundError(node)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SocialGraph(nodes={self.num_nodes}, edges={self.num_edges})"
