"""Compiled CSR graph backend.

:class:`CompiledGraph` is an immutable, integer-indexed snapshot of a
:class:`~repro.graph.social_graph.SocialGraph` built for the hot loops of the
Monte-Carlo benefit estimator.  Where ``SocialGraph`` stores adjacency as
``Dict[node, Dict[node, float]]`` — flexible, but every edge visit pays a hash
lookup — ``CompiledGraph`` stores it once as flat numpy arrays:

* a stable ``node -> int`` index (in ``graph.nodes()`` insertion order),
* CSR out-edge arrays ``indptr`` / ``indices`` / ``probs`` in which every
  node's out-edges appear **rank-ordered** (decreasing influence probability,
  ties broken by ``str(node)``) — exactly the coupon hand-off order of the
  SC-constrained cascade, so the cascade can walk ``indices[indptr[u]:
  indptr[u + 1]]`` without re-sorting,
* ``edge_pos``: for each rank-ordered edge, its position in the
  ``graph.edges()`` enumeration order.  Live-edge coin flips are drawn in
  enumeration order (matching :func:`repro.diffusion.live_edge.sample_worlds`
  draw for draw), then gathered through ``edge_pos`` into the ranked layout —
  this is what makes the compiled engine reproduce the dict-path worlds
  bit for bit under common random numbers, and
* dense per-node attribute vectors ``benefits`` / ``seed_costs`` /
  ``sc_costs``.

A compiled graph is a snapshot: mutating the source ``SocialGraph`` afterwards
does not update it.  Build it once per estimator (the estimators do this for
you) and rebuild after structural edits.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.exceptions import NodeNotFoundError
from repro.graph.social_graph import SocialGraph

NodeId = Hashable


class CompiledGraph:
    """Immutable CSR snapshot of a :class:`SocialGraph`.

    Attributes
    ----------
    node_ids:
        Node identifiers; position = compiled integer index.
    indptr / indices / probs:
        CSR out-adjacency.  The out-edges of node ``u`` occupy the slice
        ``indptr[u]:indptr[u + 1]`` and are sorted by decreasing probability
        (ties by ``str(target)``) — the coupon hand-off order.
    edge_pos:
        ``edge_pos[j]`` is the index of ranked edge ``j`` in the source
        graph's ``edges()`` enumeration order (the order coin flips are drawn
        in).
    benefits / seed_costs / sc_costs:
        Dense per-node attribute vectors aligned with ``node_ids``.
    """

    __slots__ = (
        "_node_ids",
        "_node_ids_loader",
        "_index",
        "indptr",
        "indices",
        "probs",
        "edge_pos",
        "benefits",
        "seed_costs",
        "sc_costs",
        "num_draws",
        "__weakref__",
    )

    def __init__(
        self,
        node_ids: Optional[List[NodeId]],
        indptr: np.ndarray,
        indices: np.ndarray,
        probs: np.ndarray,
        edge_pos: np.ndarray,
        benefits: np.ndarray,
        seed_costs: np.ndarray,
        sc_costs: np.ndarray,
        *,
        node_ids_loader=None,
        num_draws: Optional[int] = None,
    ) -> None:
        if node_ids is None and node_ids_loader is None:
            raise ValueError("either node_ids or node_ids_loader is required")
        self._node_ids = None if node_ids is None else list(node_ids)
        self._node_ids_loader = node_ids_loader
        self._index: Optional[Dict[NodeId, int]] = None
        self.indptr = indptr
        self.indices = indices
        self.probs = probs
        self.edge_pos = edge_pos
        self.benefits = benefits
        self.seed_costs = seed_costs
        self.sc_costs = sc_costs
        #: Width of one world's coin-flip stream.  Equals ``num_edges`` for a
        #: freshly compiled graph; grows past it on graphs evolved through
        #: :meth:`apply_events`, where dropped edges leave permanent holes in
        #: the draw-position space so that surviving edges keep their draw
        #: positions — and therefore their coin flips — across versions.
        self.num_draws = int(num_draws) if num_draws is not None else int(indices.shape[0])

    # ------------------------------------------------------------------
    # pickling
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle the arrays only; ``_index`` is derived and rebuilt lazily.

        Compiled graphs are shipped to worker processes by
        :mod:`repro.diffusion.parallel`, so the payload matters: the index
        dict roughly doubles it for no information.  (Zero-copy transport —
        :class:`repro.graph.shared.SharedCompiledGraph` — bypasses this
        entirely and ships a segment descriptor instead.)
        """
        return {
            "node_ids": self.node_ids,
            "indptr": self.indptr,
            "indices": self.indices,
            "probs": self.probs,
            "edge_pos": self.edge_pos,
            "benefits": self.benefits,
            "seed_costs": self.seed_costs,
            "sc_costs": self.sc_costs,
            "num_draws": self.num_draws,
        }

    def __setstate__(self, state: dict) -> None:
        # The index is derived data; workers that only run integer-indexed
        # cascades never ask for it, so it is built lazily on first access
        # instead of eagerly on every unpickle.
        self._node_ids = state["node_ids"]
        self._node_ids_loader = None
        self._index = None
        self.indptr = state["indptr"]
        self.indices = state["indices"]
        self.probs = state["probs"]
        self.edge_pos = state["edge_pos"]
        self.benefits = state["benefits"]
        self.seed_costs = state["seed_costs"]
        self.sc_costs = state["sc_costs"]
        # .get: pickles written before draw-position persistence existed.
        self.num_draws = int(state.get("num_draws", self.indices.shape[0]))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_social_graph(cls, graph: SocialGraph) -> "CompiledGraph":
        """Compile ``graph`` into CSR form (a one-time O(V + E log d) pass)."""
        node_ids = list(graph.nodes())
        index = {node: position for position, node in enumerate(node_ids)}
        num_nodes = len(node_ids)

        # Edges in enumeration (coin-flip draw) order.
        draw_sources: List[int] = []
        draw_targets: List[int] = []
        draw_probs: List[float] = []
        for source, target, probability in graph.edges():
            draw_sources.append(index[source])
            draw_targets.append(index[target])
            draw_probs.append(probability)
        num_edges = len(draw_probs)

        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        indices = np.empty(num_edges, dtype=np.int64)
        probs = np.empty(num_edges, dtype=np.float64)
        edge_pos = np.empty(num_edges, dtype=np.int64)

        # Group draw-order edge positions by source, then rank each group the
        # way ranked_out_neighbors does: decreasing probability, ties by the
        # string form of the target identifier.
        by_source: List[List[int]] = [[] for _ in range(num_nodes)]
        for position, source in enumerate(draw_sources):
            by_source[source].append(position)

        cursor = 0
        for node_index in range(num_nodes):
            positions = by_source[node_index]
            positions.sort(
                key=lambda pos: (-draw_probs[pos], str(node_ids[draw_targets[pos]]))
            )
            indptr[node_index] = cursor
            for pos in positions:
                indices[cursor] = draw_targets[pos]
                probs[cursor] = draw_probs[pos]
                edge_pos[cursor] = pos
                cursor += 1
        indptr[num_nodes] = cursor

        benefits = np.empty(num_nodes, dtype=np.float64)
        seed_costs = np.empty(num_nodes, dtype=np.float64)
        sc_costs = np.empty(num_nodes, dtype=np.float64)
        for node_index, node in enumerate(node_ids):
            attrs = graph.attributes(node)
            benefits[node_index] = attrs.benefit
            seed_costs[node_index] = attrs.seed_cost
            sc_costs[node_index] = attrs.sc_cost

        return cls(
            node_ids=node_ids,
            indptr=indptr,
            indices=indices,
            probs=probs,
            edge_pos=edge_pos,
            benefits=benefits,
            seed_costs=seed_costs,
            sc_costs=sc_costs,
        )

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def node_ids(self) -> List[NodeId]:
        """Node identifiers; position = compiled integer index.

        Materialised lazily when the graph was built from a loader (memmap
        cache, shared-memory attach) — pure integer-indexed consumers never
        pay for it.
        """
        ids = self._node_ids
        if ids is None:
            ids = self._node_ids = list(self._node_ids_loader())
        return ids

    @property
    def index(self) -> Dict[NodeId, int]:
        """The ``node -> compiled index`` mapping (treat as read-only)."""
        index = self._index
        if index is None:
            index = self._index = {
                node: position for position, node in enumerate(self.node_ids)
            }
        return index

    @property
    def num_nodes(self) -> int:
        """Number of users."""
        return int(self.indptr.shape[0]) - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return int(self.indices.shape[0])

    def __len__(self) -> int:
        return self.num_nodes

    def __contains__(self, node: NodeId) -> bool:
        return node in self.index

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.node_ids)

    def index_of(self, node: NodeId) -> int:
        """Compiled integer index of ``node``."""
        try:
            return self.index[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def node_of(self, node_index: int) -> NodeId:
        """Node identifier at compiled ``node_index``."""
        return self.node_ids[node_index]

    def out_degree(self, node: NodeId) -> int:
        """Number of out-neighbours of ``node``."""
        node_index = self.index_of(node)
        return int(self.indptr[node_index + 1] - self.indptr[node_index])

    def ranked_out_neighbors(self, node: NodeId) -> List[Tuple[NodeId, float]]:
        """Out-neighbours in hand-off order, as ``(node_id, probability)``.

        Matches :meth:`SocialGraph.ranked_out_neighbors` element for element.
        """
        node_index = self.index_of(node)
        start, end = int(self.indptr[node_index]), int(self.indptr[node_index + 1])
        return [
            (self.node_ids[int(target)], float(probability))
            for target, probability in zip(self.indices[start:end], self.probs[start:end])
        ]

    def indices_of(self, nodes: Iterable[NodeId]) -> List[int]:
        """Compiled indices of ``nodes``, skipping unknown ids, order-preserving."""
        seen: set = set()
        result: List[int] = []
        index = self.index
        for node in nodes:
            position = index.get(node)
            if position is not None and position not in seen:
                seen.add(position)
                result.append(position)
        return result

    def allocation_vector(self, allocation) -> np.ndarray:
        """Dense per-node coupon counts from a ``node -> int`` mapping.

        Unknown nodes and non-positive entries are ignored, mirroring the
        dict-path cascade's ``allocation.get(user, 0)`` semantics.
        """
        coupons = np.zeros(self.num_nodes, dtype=np.int64)
        index = self.index
        for node, count in allocation.items():
            position = index.get(node)
            if position is not None and int(count) > 0:
                coupons[position] = int(count)
        return coupons

    # ------------------------------------------------------------------
    # evolution
    # ------------------------------------------------------------------

    def apply_events(self, batch) -> "object":
        """Delta-recompile this snapshot under a :class:`GraphEventBatch`.

        Returns an :class:`repro.graph.events.EventApplication` carrying the
        evolved :class:`CompiledGraph` (touched CSR rows rebuilt, untouched
        row runs copied in bulk — whole arrays aliased for attribute-only
        batches), the old→new node-index remap table, and the draw-position
        records (added / dropped / reweighted) that snapshot reconciliation
        keys on.  This object is not mutated.
        """
        from repro.graph.events import compute_application

        return compute_application(self, batch)

    def with_attributes(self, graph: SocialGraph) -> "CompiledGraph":
        """A new snapshot aliasing this one's topology with fresh attributes.

        The attribute-only recompile fast path: ``indptr``/``indices``/
        ``probs``/``edge_pos`` (and the node-id list) are shared zero-copy
        with ``self``; only the dense benefit/cost vectors are rebuilt from
        ``graph``, whose node set must be unchanged.
        """
        node_ids = self.node_ids
        num_nodes = len(node_ids)
        benefits = np.empty(num_nodes, dtype=np.float64)
        seed_costs = np.empty(num_nodes, dtype=np.float64)
        sc_costs = np.empty(num_nodes, dtype=np.float64)
        for node_index, node in enumerate(node_ids):
            attrs = graph.attributes(node)
            benefits[node_index] = attrs.benefit
            seed_costs[node_index] = attrs.seed_cost
            sc_costs[node_index] = attrs.sc_cost
        return CompiledGraph(
            node_ids=node_ids,
            indptr=self.indptr,
            indices=self.indices,
            probs=self.probs,
            edge_pos=self.edge_pos,
            benefits=benefits,
            seed_costs=seed_costs,
            sc_costs=sc_costs,
            num_draws=self.num_draws,
        )

    def edges(self) -> Iterator[Tuple[NodeId, NodeId, float]]:
        """Edges as ``(source, target, probability)`` in ranked-CSR order."""
        for source_index in range(self.num_nodes):
            start = int(self.indptr[source_index])
            end = int(self.indptr[source_index + 1])
            for slot in range(start, end):
                yield (
                    self.node_ids[source_index],
                    self.node_ids[int(self.indices[slot])],
                    float(self.probs[slot]),
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CompiledGraph(nodes={self.num_nodes}, edges={self.num_edges})"
