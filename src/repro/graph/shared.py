"""Zero-copy shared-memory transport for :class:`CompiledGraph`.

A plain :class:`~repro.graph.csr.CompiledGraph` pickles its CSR arrays by
value, so registering a sampler on a worker pool ships the whole graph to
every worker — megabytes per worker on SNAP-scale graphs, and as many private
copies as there are workers.  :class:`SharedCompiledGraph` replaces that with
one :mod:`multiprocessing.shared_memory` segment holding every array (plus
the pickled ``node_ids`` list as a trailing byte blob) and a pickle payload
of **just the segment descriptor** — segment name, dtypes, shapes, offsets; a
few hundred bytes however large the graph is.  Unpickling attaches to the
segment and rebuilds read-only numpy views onto the same physical pages, so
all workers and the parent share one copy of the graph.

Ownership follows the package-wide creator-unlinks / attacher-closes rule:

* the **creating** process (via :func:`share_compiled`) owns the segment; a
  :func:`weakref.finalize` unlinks it when the graph is garbage collected,
  and the :mod:`repro.utils.shm` exit sweep covers abnormal teardown;
* an **attaching** process (a pool worker unpickling the descriptor) never
  unlinks — its finalizer merely closes the local mapping — so a crashed or
  killed worker cannot leak the segment, and a worker exiting cannot destroy
  the graph under its siblings.

Attached graphs materialise ``node_ids`` (and the node index) lazily from
the packed blob: workers that only run integer-indexed cascades never touch
either.
"""

from __future__ import annotations

import pickle
import weakref
from typing import List, Optional

import numpy as np

from repro.graph.csr import CompiledGraph, NodeId
from repro.utils import shm

#: CSR / attribute arrays packed into the segment, in manifest order.
_ARRAY_FIELDS = (
    "indptr",
    "indices",
    "probs",
    "edge_pos",
    "benefits",
    "seed_costs",
    "sc_costs",
)

#: Manifest field carrying the pickled node-identifier list.
_NODE_IDS_FIELD = "node_ids_blob"


class SharedCompiledGraph(CompiledGraph):
    """A :class:`CompiledGraph` whose arrays live in one shared segment.

    Behaviourally identical to its base class — same arrays, same values,
    same ranked-CSR order — it only changes *where the bytes live* and what
    a pickle of the graph contains (the segment descriptor instead of the
    arrays).  Build one with :func:`share_compiled`; unpickling a descriptor
    in another process yields an attached instance automatically.
    """

    __slots__ = ("segment", "descriptor", "owns_segment", "_finalizer")

    def __init__(
        self,
        *,
        node_ids: Optional[List[NodeId]],
        node_ids_loader,
        views: dict,
        segment,
        descriptor: dict,
        owns_segment: bool,
        num_draws: Optional[int] = None,
    ) -> None:
        super().__init__(
            node_ids,
            views["indptr"],
            views["indices"],
            views["probs"],
            views["edge_pos"],
            views["benefits"],
            views["seed_costs"],
            views["sc_costs"],
            node_ids_loader=node_ids_loader,
            num_draws=num_draws,
        )
        self.segment = segment
        self.descriptor = descriptor
        self.owns_segment = owns_segment
        if owns_segment:
            self._finalizer = weakref.finalize(self, shm.release_owned, segment)
        else:
            self._finalizer = weakref.finalize(self, shm.close_segment, segment)

    def __reduce__(self):
        # The whole point: the pickle payload is the descriptor, not the
        # arrays.  Hundreds of bytes regardless of graph size.
        return (attach_shared_graph, (self.descriptor,))

    def release(self) -> None:
        """Tear down now instead of at GC: creators unlink, attachers close."""
        self._finalizer()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        role = "owner" if self.owns_segment else "attached"
        return (
            f"SharedCompiledGraph(nodes={self.num_nodes}, "
            f"edges={self.num_edges}, segment={self.descriptor['segment']!r}, "
            f"{role})"
        )


def share_compiled(compiled: CompiledGraph) -> Optional[SharedCompiledGraph]:
    """Move ``compiled``'s arrays into a fresh shared segment.

    Returns the owning :class:`SharedCompiledGraph` (the original object is
    untouched; the new one views the shared pages, so the caller should use
    it *instead of* the original), an already-shared graph unchanged, or
    ``None`` when shared memory is unusable on this platform — the caller's
    cue to fall back to by-value transport.
    """
    if isinstance(compiled, SharedCompiledGraph):
        return compiled
    if not shm.shared_memory_available():
        return None
    node_ids = compiled.node_ids
    blob = pickle.dumps(node_ids, protocol=pickle.HIGHEST_PROTOCOL)
    arrays = [(field, getattr(compiled, field)) for field in _ARRAY_FIELDS]
    arrays.append((_NODE_IDS_FIELD, np.frombuffer(blob, dtype=np.uint8)))
    try:
        segment, manifest = shm.pack_arrays(arrays)
    except OSError:
        return None
    # Extra descriptor keys ride the manifest dict; attach_arrays ignores
    # them.  num_draws must travel with the arrays — on evolved graphs it
    # exceeds num_edges (dropped edges leave draw-position holes) and cannot
    # be re-derived from the array shapes.
    manifest["num_draws"] = compiled.num_draws
    _, views = shm.attach_arrays(manifest, segment=segment)
    views.pop(_NODE_IDS_FIELD)
    return SharedCompiledGraph(
        node_ids=node_ids,  # the creator already has the list; keep it
        node_ids_loader=None,
        views=views,
        segment=segment,
        descriptor=manifest,
        owns_segment=True,
        num_draws=compiled.num_draws,
    )


def attach_shared_graph(descriptor: dict) -> SharedCompiledGraph:
    """Attach to a shared graph segment by descriptor (the unpickle path)."""
    segment, views = shm.attach_arrays(descriptor)
    blob = views.pop(_NODE_IDS_FIELD)

    def load_node_ids() -> List[NodeId]:
        # tobytes() copies out of the segment, so the unpickled list never
        # references shared pages; the closure keeps the mapping alive.
        return pickle.loads(blob.tobytes())

    return SharedCompiledGraph(
        node_ids=None,
        node_ids_loader=load_node_ids,
        views=views,
        segment=segment,
        descriptor=descriptor,
        owns_segment=False,
        num_draws=descriptor.get("num_draws"),
    )
