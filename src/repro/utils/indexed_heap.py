"""A max-heap with key update support.

The ID phase of S3CA repeatedly extracts the candidate with the maximum
marginal redemption and updates priorities as deployments change, which is
exactly the decrease-key/increase-key pattern a plain :mod:`heapq` does not
support.  This implementation keeps an explicit position index so updates and
removals are ``O(log n)``.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterator, List, Optional, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)


class IndexedMaxHeap(Generic[K]):
    """Max-heap over ``(key, priority)`` pairs with ``O(log n)`` updates.

    Keys are hashable identifiers (node ids in practice).  Ties are broken by
    insertion order so behaviour is deterministic across runs.
    """

    def __init__(self) -> None:
        self._entries: List[Tuple[float, int, K]] = []
        self._positions: Dict[K, int] = {}
        self._counter = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._positions

    def __iter__(self) -> Iterator[K]:
        return iter(self._positions)

    def push(self, key: K, priority: float) -> None:
        """Insert ``key`` with ``priority`` or update it if already present."""
        if key in self._positions:
            self.update(key, priority)
            return
        self._counter += 1
        entry = (priority, -self._counter, key)
        self._entries.append(entry)
        index = len(self._entries) - 1
        self._positions[key] = index
        self._sift_up(index)

    def update(self, key: K, priority: float) -> None:
        """Change the priority of an existing ``key``."""
        index = self._positions[key]
        old_priority, order, _ = self._entries[index]
        self._entries[index] = (priority, order, key)
        if priority > old_priority:
            self._sift_up(index)
        elif priority < old_priority:
            self._sift_down(index)

    def peek(self) -> Tuple[K, float]:
        """Return ``(key, priority)`` of the maximum element without removing it."""
        if not self._entries:
            raise IndexError("peek from an empty heap")
        priority, _, key = self._entries[0]
        return key, priority

    def pop(self) -> Tuple[K, float]:
        """Remove and return ``(key, priority)`` of the maximum element."""
        if not self._entries:
            raise IndexError("pop from an empty heap")
        priority, _, key = self._entries[0]
        self._remove_at(0)
        return key, priority

    def remove(self, key: K) -> float:
        """Remove ``key`` and return its priority."""
        index = self._positions[key]
        priority = self._entries[index][0]
        self._remove_at(index)
        return priority

    def priority(self, key: K) -> float:
        """Return the current priority of ``key``."""
        return self._entries[self._positions[key]][0]

    def get(self, key: K, default: Optional[float] = None) -> Optional[float]:
        """Return the priority of ``key`` or ``default`` if absent."""
        if key not in self._positions:
            return default
        return self.priority(key)

    # -- internal helpers -------------------------------------------------

    def _remove_at(self, index: int) -> None:
        last = len(self._entries) - 1
        key = self._entries[index][2]
        if index != last:
            self._swap(index, last)
        self._entries.pop()
        del self._positions[key]
        if index < len(self._entries):
            self._sift_up(index)
            self._sift_down(index)

    def _swap(self, i: int, j: int) -> None:
        self._entries[i], self._entries[j] = self._entries[j], self._entries[i]
        self._positions[self._entries[i][2]] = i
        self._positions[self._entries[j][2]] = j

    def _sift_up(self, index: int) -> None:
        while index > 0:
            parent = (index - 1) // 2
            if self._entries[index][:2] <= self._entries[parent][:2]:
                break
            self._swap(index, parent)
            index = parent

    def _sift_down(self, index: int) -> None:
        size = len(self._entries)
        while True:
            left = 2 * index + 1
            right = left + 1
            largest = index
            if left < size and self._entries[left][:2] > self._entries[largest][:2]:
                largest = left
            if right < size and self._entries[right][:2] > self._entries[largest][:2]:
                largest = right
            if largest == index:
                return
            self._swap(index, largest)
            index = largest
