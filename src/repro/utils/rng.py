"""Deterministic random-number plumbing.

Every stochastic component of the library (cascade simulation, graph
generation, benefit sampling) accepts either an integer seed, a
:class:`numpy.random.Generator` or ``None``.  :func:`spawn_rng` normalises the
three cases; :class:`RandomSource` hands out independent child generators so
that changing the number of samples drawn by one component does not perturb
another component's stream.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def spawn_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` gives a fresh nondeterministic generator, an ``int`` gives a
    deterministic one, and an existing generator is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class RandomSource:
    """A tree of reproducible random generators.

    The experiment harness constructs one :class:`RandomSource` per run and
    derives named child generators from it, so every subsystem sees a stable
    stream regardless of how many draws the others make.
    """

    def __init__(self, seed: SeedLike = None) -> None:
        if isinstance(seed, np.random.Generator):
            self._seed_seq = None
            self._root = seed
        else:
            self._seed_seq = np.random.SeedSequence(seed)
            self._root = np.random.default_rng(self._seed_seq)
        self._children: dict[str, np.random.Generator] = {}

    @property
    def root(self) -> np.random.Generator:
        """The root generator."""
        return self._root

    def child(self, name: str) -> np.random.Generator:
        """Return a named child generator, created on first use.

        Children derived from the same seed and name are identical across
        runs, and distinct names give statistically independent streams.
        """
        if name not in self._children:
            if self._seed_seq is not None:
                digest = abs(hash(name)) % (2**32)
                child_seq = np.random.SeedSequence(
                    entropy=self._seed_seq.entropy, spawn_key=(digest,)
                )
                self._children[name] = np.random.default_rng(child_seq)
            else:
                self._children[name] = np.random.default_rng(
                    self._root.integers(0, 2**63 - 1)
                )
        return self._children[name]

    def integers(self, low: int, high: int) -> int:
        """Draw a single integer in ``[low, high)`` from the root generator."""
        return int(self._root.integers(low, high))
