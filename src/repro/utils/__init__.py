"""Shared utilities: indexed heap, RNG plumbing, timers and validation."""

from repro.utils.indexed_heap import IndexedMaxHeap
from repro.utils.rng import RandomSource, spawn_rng
from repro.utils.timer import Timer
from repro.utils.validation import (
    require_non_negative,
    require_positive,
    require_probability,
)

__all__ = [
    "IndexedMaxHeap",
    "RandomSource",
    "spawn_rng",
    "Timer",
    "require_non_negative",
    "require_positive",
    "require_probability",
]
