"""POSIX shared-memory plumbing for the zero-copy graph and world stores.

Everything here wraps :mod:`multiprocessing.shared_memory` with the three
behaviours the diffusion stack needs and the standard library does not give
directly:

* **Untracked segments.**  ``multiprocessing.resource_tracker`` unlinks every
  tracked segment when *any* process that touched it exits — so a worker
  attaching to the parent's graph would destroy it for everyone on worker
  exit (bpo-38119).  Segments created or attached through this module never
  reach the tracker at all (``track=False`` on Python 3.13+, tracker calls
  suppressed during open/unlink before that); lifetime is managed explicitly
  by the owner instead.
* **Owner-side sweep.**  Each creating process records the segments it owns
  in a PID-guarded registry; :func:`sweep_owned` unlinks them and runs at
  interpreter exit via :mod:`atexit`, so an owner that forgets to clean up
  (or is interrupted) does not leak ``/dev/shm`` entries.  The PID guard
  matters under ``fork``: children inherit the registry but must never unlink
  the parent's segments.
* **Array packing.**  :func:`pack_arrays` copies a set of named numpy arrays
  into one segment and returns a small manifest (segment name + per-field
  dtype/shape/offset) from which :func:`attach_arrays` rebuilds zero-copy
  read-only views in any process.  The manifest is a few hundred bytes of
  plain Python data — that is what travels over a pickle instead of the
  arrays themselves.

Attachers never unlink: creator-unlinks / attacher-closes is the ownership
rule everywhere in this package, which is what makes a crashed worker unable
to leak anything — the parent's sweep still covers every segment.
"""

from __future__ import annotations

import atexit
import contextlib
import logging
import os
import secrets
import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

logger = logging.getLogger(__name__)

try:  # pragma: no cover - the standard library always has it on Linux/macOS
    from multiprocessing import resource_tracker as _resource_tracker
    from multiprocessing.shared_memory import SharedMemory as _SharedMemory
except ImportError:  # pragma: no cover - exotic platforms only
    _resource_tracker = None
    _SharedMemory = None

#: Prefix of every segment this package creates; the leak probes and the CI
#: assertion key on it.
SEGMENT_PREFIX = "repro-"

#: Python 3.13+ accepts ``track=False`` natively; older versions need the
#: unregister workaround after the tracker has already seen the segment.
_SUPPORTS_TRACK = (
    _SharedMemory is not None
    and "track" in (getattr(_SharedMemory.__init__, "__kwdefaults__", None) or {})
)

#: Segment name -> creating PID.  Only entries whose PID matches the current
#: process are swept — fork-inherited copies of the registry stay inert.
_OWNED: Dict[str, int] = {}

#: 64-byte alignment for every packed field, comfortable for any SIMD width.
_ALIGN = 64


def shared_memory_available() -> bool:
    """Whether POSIX shared memory is usable on this platform."""
    return _SharedMemory is not None


_tracker_mutex = threading.Lock()


@contextlib.contextmanager
def _tracker_suppressed():
    """No-op the resource tracker for the duration (bpo-38119 workaround).

    Pre-3.13 ``SharedMemory`` unconditionally registers every open — create
    *and* attach — with the resource tracker, and ``unlink`` unregisters.
    Every process of the tree talks to one tracker whose name cache is a
    plain set, so the register/unregister pairs of concurrent workers
    interleave: two registers collapse into one entry and the second
    unregister makes the tracker print a ``KeyError`` traceback (and at
    shutdown it "cleans up" segments it never owned).  This module manages
    segment lifetime explicitly through the PID-guarded owner registry, so
    the tracker must simply never hear about our segments: suppress the
    calls at the source rather than unregistering after the fact.
    """
    if _SUPPORTS_TRACK or _resource_tracker is None:
        yield
        return
    with _tracker_mutex:
        saved_register = _resource_tracker.register
        saved_unregister = _resource_tracker.unregister
        _resource_tracker.register = lambda name, rtype: None
        _resource_tracker.unregister = lambda name, rtype: None
        try:
            yield
        finally:
            _resource_tracker.register = saved_register
            _resource_tracker.unregister = saved_unregister


if _SharedMemory is not None:

    class _Segment(_SharedMemory):
        """A ``SharedMemory`` whose destructor tolerates live array views.

        Numpy views onto the mapping routinely outlive the segment object
        (they keep the pages alive themselves); the base destructor's
        ``close()`` then raises :class:`BufferError`, which at interpreter
        shutdown prints an "Exception ignored" traceback.  Swallow it — the
        mapping is released when the views die, nothing leaks.
        """

        def __del__(self):
            try:
                super().__del__()
            except (BufferError, OSError) as error:
                # BufferError: live numpy views still pin the mapping (the
                # pages are released when they die).  OSError: the fd was
                # already closed by an explicit close().  Both are expected
                # at teardown; anything else should surface.
                logger.debug("segment destructor swallowed %r", error)

        def close(self):
            try:
                super().close()
            except BufferError:
                # Live numpy views pin the mapping (the kernel frees the
                # pages when they die), but the descriptor is independent
                # and must not be allowed to accumulate: close it now.
                # The base close() releases the buffer *first*, so a later
                # call cannot double-close the already-freed fd.
                fd = getattr(self, "_fd", -1)
                if fd >= 0:
                    try:
                        os.close(fd)
                    except OSError:  # pragma: no cover - already closed
                        pass
                    self._fd = -1
                raise

        def unlink(self):
            # The segment was opened with the tracker suppressed, so the
            # unregister message the base unlink would send is unbalanced —
            # suppress it the same way.
            with _tracker_suppressed():
                super().unlink()

else:  # pragma: no cover - exotic platforms only
    _Segment = None


def _open_segment(name: str, create: bool, size: int = 0):
    if _SharedMemory is None:  # pragma: no cover - exotic platforms only
        raise OSError("multiprocessing.shared_memory is unavailable")
    if _SUPPORTS_TRACK:
        return _Segment(name=name, create=create, size=size, track=False)
    with _tracker_suppressed():
        return _Segment(name=name, create=create, size=size)


def create_segment(name: Optional[str], size: int):
    """Create an untracked segment; raises :class:`FileExistsError` on a
    name collision (the caller decides whether that means "someone else won
    the race" or a bug).  ``name=None`` draws a random collision-free name."""
    if name is not None:
        return _open_segment(name, create=True, size=size)
    while True:
        candidate = f"{SEGMENT_PREFIX}{secrets.token_hex(8)}"
        try:
            return _open_segment(candidate, create=True, size=size)
        except FileExistsError:  # pragma: no cover - 64-bit collision
            continue


def attach_segment(name: str):
    """Attach to an existing untracked segment (:class:`FileNotFoundError`
    when it does not exist — the caller's fallback path)."""
    return _open_segment(name, create=False)


def close_segment(segment) -> None:
    """Close an attached segment, tolerating live exported array views.

    ``SharedMemory.close`` raises :class:`BufferError` while numpy arrays
    still view the mapping; in that case the views keep the mapping alive
    and the OS reclaims it when they die — nothing leaks either way.
    """
    try:
        segment.close()
    except BufferError:
        pass


def register_owned(name: str) -> None:
    """Record ``name`` for this process's exit sweep (creator side only)."""
    _OWNED[name] = os.getpid()


def unlink_segment(name: str) -> bool:
    """Unlink ``name`` if it exists; returns whether anything was removed.

    Safe to call for segments created by *other* processes (the worker-crash
    sweep does exactly that); attached processes keep their mappings alive,
    only the name disappears.
    """
    _OWNED.pop(name, None)
    try:
        segment = attach_segment(name)
    except FileNotFoundError:
        return False
    except OSError:  # pragma: no cover - permissions, platform quirks
        return False
    try:
        segment.unlink()
    finally:
        close_segment(segment)
    return True


def release_owned(segment) -> None:
    """Unlink + close a segment this process created (idempotent-ish owner
    teardown: missing names are tolerated, live attachers elsewhere keep
    their mappings)."""
    _OWNED.pop(segment.name, None)
    try:
        segment.unlink()
    except FileNotFoundError:
        pass
    close_segment(segment)


def sweep_owned() -> int:
    """Unlink every segment this process created; returns how many."""
    pid = os.getpid()
    removed = 0
    for name, owner_pid in list(_OWNED.items()):
        if owner_pid != pid:
            _OWNED.pop(name, None)
            continue
        if unlink_segment(name):
            removed += 1
    return removed


atexit.register(sweep_owned)


def owned_segment_names() -> List[str]:
    """Names this process currently owns (leak-probe introspection)."""
    pid = os.getpid()
    return [name for name, owner in _OWNED.items() if owner == pid]


# ----------------------------------------------------------------------
# array packing
# ----------------------------------------------------------------------


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def pack_arrays(
    arrays: Sequence[Tuple[str, np.ndarray]], *, name: Optional[str] = None
) -> Tuple[object, dict]:
    """Copy named arrays into one new segment; returns ``(segment, manifest)``.

    The manifest is plain picklable data — ``{"segment", "fields"}`` with one
    ``(field, dtype, shape, offset)`` entry per array — and is everything
    :func:`attach_arrays` needs to rebuild the views elsewhere.  The segment
    is registered for this process's exit sweep; the caller owns unlinking.
    """
    fields: List[Tuple[str, str, Tuple[int, ...], int]] = []
    offset = 0
    prepared: List[np.ndarray] = []
    for field, array in arrays:
        array = np.ascontiguousarray(array)
        prepared.append(array)
        offset = _aligned(offset)
        fields.append((field, array.dtype.str, tuple(array.shape), offset))
        offset += array.nbytes
    segment = create_segment(name, max(offset, 1))
    register_owned(segment.name)
    for array, (_, dtype, shape, field_offset) in zip(prepared, fields):
        if array.nbytes == 0:
            continue
        view = np.frombuffer(
            segment.buf, dtype=np.dtype(dtype), count=array.size, offset=field_offset
        )
        view[:] = array.reshape(-1)
    manifest = {"segment": segment.name, "fields": fields}
    return segment, manifest


def attach_arrays(
    manifest: dict, segment=None
) -> Tuple[object, Dict[str, np.ndarray]]:
    """Attach to a packed segment; returns ``(segment, {field: view})``.

    The views are read-only (shared pages must never be scribbled on by an
    attacher) and keep the mapping alive for as long as they exist.  Pass the
    already-open ``segment`` to build views without a second mapping (the
    creator's own zero-copy read path).
    """
    if segment is None:
        segment = attach_segment(manifest["segment"])
    views: Dict[str, np.ndarray] = {}
    for field, dtype, shape, offset in manifest["fields"]:
        dt = np.dtype(dtype)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        view = np.frombuffer(segment.buf, dtype=dt, count=count, offset=offset)
        view = view.reshape(shape)
        view.flags.writeable = False
        views[field] = view
    return segment, views
