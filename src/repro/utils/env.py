"""Parsing of ``REPRO_*`` environment knobs.

Every boolean-style environment switch in the package goes through
:func:`env_flag` so that the usual "off" spellings behave as off everywhere:
``REPRO_NO_NATIVE_KERNEL=0`` must *enable* the native kernel, exactly like
leaving the variable unset, not disable it the way a naive
``bool(os.environ.get(...))`` would.  Numeric knobs go through
:func:`env_int`, which treats the empty string as unset and rejects garbage
with a clear error instead of a deep ``ValueError`` later.
"""

from __future__ import annotations

import logging
import os
from typing import Optional

logger = logging.getLogger(__name__)

#: Spellings parsed as "flag is off" — including the empty string, so
#: ``REPRO_FOO= repro ...`` behaves like not exporting the variable at all.
FALSY = frozenset({"", "0", "false", "no", "off"})

#: Spellings parsed as "flag is on".
TRUTHY = frozenset({"1", "true", "yes", "on"})


def parse_flag(raw: Optional[str], *, default: bool = False, name: str = "") -> bool:
    """Parse one boolean-style knob value; ``None`` means unset."""
    if raw is None:
        return default
    value = raw.strip().lower()
    if value in FALSY:
        return False
    if value in TRUTHY:
        return True
    logger.debug(
        "unrecognised boolean value %r for %s; treating as set", raw, name or "flag"
    )
    return True


def env_flag(name: str, *, default: bool = False) -> bool:
    """Whether the boolean environment knob ``name`` is on.

    ``"0"``, ``""``, ``"false"``, ``"no"`` and ``"off"`` (any case, padded or
    not) parse as off; ``"1"``/``"true"``/``"yes"``/``"on"`` as on.  Any other
    non-empty value is treated as on (the historical "set means set"
    behaviour) with a debug log so typos are discoverable.
    """
    return parse_flag(os.environ.get(name), default=default, name=name)


def env_int(name: str, *, default: Optional[int] = None) -> Optional[int]:
    """Integer environment knob; unset or empty returns ``default``."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return int(raw.strip())
    except ValueError:
        raise ValueError(
            f"environment variable {name} must be an integer, got {raw!r}"
        ) from None


def env_str(name: str, *, default: Optional[str] = None) -> Optional[str]:
    """String environment knob; unset or empty returns ``default``."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    return raw.strip()
