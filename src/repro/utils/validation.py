"""Argument-validation helpers shared across the library.

These raise :class:`ValueError` with a consistent message format so test
assertions and user-facing errors read the same everywhere.
"""

from __future__ import annotations

import math
from typing import Union

Number = Union[int, float]


def require_positive(value: Number, name: str) -> Number:
    """Return ``value`` if it is a finite number strictly greater than zero."""
    _require_finite(value, name)
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(value: Number, name: str) -> Number:
    """Return ``value`` if it is a finite number greater than or equal to zero."""
    _require_finite(value, name)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_probability(value: Number, name: str) -> Number:
    """Return ``value`` if it lies in the closed interval ``[0, 1]``."""
    _require_finite(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def _require_finite(value: Number, name: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if math.isnan(value) or math.isinf(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
