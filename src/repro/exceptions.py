"""Exception hierarchy for the S3CRM reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  The concrete subclasses mirror the main failure
modes of the system: malformed graphs, infeasible economic configurations,
budget violations and invalid coupon allocations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class GraphError(ReproError):
    """Raised when a social graph is malformed or an operation references
    nodes/edges that do not exist."""


class NodeNotFoundError(GraphError):
    """Raised when an operation references a node that is not in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError):
    """Raised when an operation references an edge that is not in the graph."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"edge ({source!r} -> {target!r}) is not in the graph")
        self.source = source
        self.target = target


class ScenarioError(ReproError):
    """Raised when a scenario (graph + economics) is inconsistent, e.g. a node
    is missing a benefit or a cost."""


class BudgetError(ReproError):
    """Raised when a deployment would exceed the investment budget, or the
    budget itself is invalid (non-positive)."""


class AllocationError(ReproError):
    """Raised when a social-coupon allocation is invalid, e.g. a negative
    coupon count or more coupons than out-neighbours."""


class EstimationError(ReproError):
    """Raised when an expected-benefit estimator is configured incorrectly
    (e.g. zero Monte-Carlo samples) or asked to evaluate an invalid input."""


class ExperimentError(ReproError):
    """Raised by the experiment harness for invalid configurations."""


class ServerError(ReproError):
    """Raised by the campaign server (:mod:`repro.server`) for request and
    lifecycle failures; concrete subclasses carry the HTTP status to map
    onto."""

    #: HTTP status the server layer translates this error into.
    status = 500
