"""Reproduction of *Seed Selection and Social Coupon Allocation for Redemption
Maximization in Online Social Networks* (Chang, Shi, Yang, Chen — ICDE 2019).

The library implements the S3CRM optimisation problem, the S3CA approximation
algorithm (Investment Deployment, Guaranteed Path Identification and the SC
Maneuver phases), the SC-constrained independent cascade it is defined over,
the IM/PM/IM-S baselines of the paper's evaluation and a benchmark harness
that regenerates every table and figure of Section VI on synthetic stand-ins
for the original datasets.

Quickstart
----------
>>> from repro import S3CA, toy_scenario
>>> result = S3CA(toy_scenario(), num_samples=100, seed=7).solve()
>>> result.redemption_rate > 0
True
"""

from repro.core.allocation import SCAllocation, expected_sc_cost
from repro.core.deployment import Deployment
from repro.core.guaranteed_paths import GuaranteedPath, identify_guaranteed_paths
from repro.core.investment import InvestmentDeployment, InvestmentResult
from repro.core.maneuver import SCManeuver
from repro.core.s3ca import S3CA, S3CAResult
from repro.diffusion.engine import CompiledCascadeEngine
from repro.diffusion.exact import ExactEstimator
from repro.diffusion.factory import ESTIMATOR_METHODS, make_estimator
from repro.diffusion.monte_carlo import BenefitEstimator, MonteCarloEstimator
from repro.diffusion.sc_cascade import CascadeResult, simulate_sc_cascade
from repro.economics.budget import Budget
from repro.economics.coupons import LimitedCouponStrategy, UnlimitedCouponStrategy
from repro.economics.scenario import Scenario, ScenarioBuilder
from repro.exceptions import ReproError
from repro.experiments.datasets import named_dataset, toy_scenario
from repro.graph.attributes import NodeAttributes
from repro.graph.csr import CompiledGraph
from repro.graph.social_graph import SocialGraph

__version__ = "1.0.0"

__all__ = [
    "SCAllocation",
    "expected_sc_cost",
    "Deployment",
    "GuaranteedPath",
    "identify_guaranteed_paths",
    "InvestmentDeployment",
    "InvestmentResult",
    "SCManeuver",
    "S3CA",
    "S3CAResult",
    "ESTIMATOR_METHODS",
    "make_estimator",
    "CompiledCascadeEngine",
    "CompiledGraph",
    "ExactEstimator",
    "BenefitEstimator",
    "MonteCarloEstimator",
    "CascadeResult",
    "simulate_sc_cascade",
    "Budget",
    "LimitedCouponStrategy",
    "UnlimitedCouponStrategy",
    "Scenario",
    "ScenarioBuilder",
    "ReproError",
    "named_dataset",
    "toy_scenario",
    "NodeAttributes",
    "SocialGraph",
    "__version__",
]
