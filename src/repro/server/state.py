"""Resident scenario state: the thing the campaign server keeps warm.

A batch run pays graph compile, world sampling, kernel warm-up and pool
spin-up on every invocation; the server pays them once per registered
scenario and keeps the results resident:

* the built :class:`~repro.economics.scenario.Scenario` (with its compiled
  CSR graph cached on the :class:`~repro.graph.social_graph.SocialGraph`),
* one RNG-frozen :class:`~repro.diffusion.monte_carlo.MonteCarloEstimator`
  whose worlds, delta engine, memo caches and warmed kernel all of the
  scenario's solves and what-if queries share,
* for tiered solves, one :class:`~repro.diffusion.rr_sets.RRBenefitEstimator`
  screening sketch sampled on the first ``"tiered": true`` solve and reused
  by every later one (dropped when graph events evolve the topology), and
* counters proving what was (and was not) re-paid — ``graph_compiles`` /
  ``estimator_builds`` / ``kernel_warmups`` stay at 1 however many solves
  run, which is exactly what the warm-start tests assert.

Entries are keyed by a content fingerprint of everything that determines the
resident state (dataset recipe or SNAP file bytes, economics, seed, world
count), so registering the same inputs twice lands on the same entry.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.diffusion.factory import make_estimator
from repro.diffusion.monte_carlo import MonteCarloEstimator
from repro.diffusion.rr_sets import RRBenefitEstimator
from repro.economics.scenario import Scenario
from repro.exceptions import ReproError
from repro.experiments.config import ServerConfig
from repro.experiments.datasets import build_scenario, snap_scenario
from repro.server.errors import InvalidRequest, UnknownScenario
from repro.server.schemas import RegisterScenarioRequest


@dataclass
class ResidentScenario:
    """One registered scenario and everything kept warm for it."""

    scenario_id: str
    fingerprint: str
    label: str
    scenario: Scenario
    num_samples: int
    seed: int
    created_at: float = field(default_factory=time.time)
    #: Serialises estimator use: solves and what-ifs on one scenario take
    #: this lock, so they never interleave on the shared delta engine.
    lock: threading.RLock = field(default_factory=threading.RLock)
    estimator: Optional[MonteCarloEstimator] = None
    #: The screening tier of tiered solves: one RR sketch sampled on the
    #: first ``"tiered": true`` solve and reused by every later one (the
    #: per-solve :class:`~repro.diffusion.tiered.TieredEstimator` wrapper is
    #: throwaway; the sketch and the MC tier are the expensive parts).
    sketch: Optional[RRBenefitEstimator] = None
    #: Amortised-cost counters (each should hit 1 and stay there).
    graph_compiles: int = 0
    estimator_builds: int = 0
    kernel_warmups: int = 0
    sketch_builds: int = 0
    #: Wall-clock of the one-time builds (0.0 until they happen).
    graph_compile_seconds: float = 0.0
    estimator_build_seconds: float = 0.0
    sketch_build_seconds: float = 0.0
    #: Request counters.
    solves_completed: int = 0
    whatifs_answered: int = 0
    #: Graph-event bookkeeping: batches applied, and solves currently queued
    #: or running (events are refused with 409 while this is non-zero).
    events_applied: int = 0
    solves_in_flight: int = 0
    #: The last completed solve (the base every what-if answers from).
    last_solve: Optional[object] = None
    last_solve_job: Optional[str] = None

    def ensure_estimator(self, config: ServerConfig, pool=None) -> tuple:
        """The resident estimator, building it on first use.

        Returns ``(estimator, built)``; ``built`` is True only for the call
        that paid graph compile + world sampling + kernel warm-up.  Callers
        hold :attr:`lock`.
        """
        if self.estimator is not None:
            return self.estimator, False
        began = time.perf_counter()
        self.scenario.compiled_graph()
        self.graph_compile_seconds = time.perf_counter() - began
        self.graph_compiles += 1
        began = time.perf_counter()
        self.estimator = make_estimator(
            self.scenario,
            "mc-compiled",
            num_samples=self.num_samples,
            seed=self.seed,
            shard_size=config.shard_size,
            workers=None if pool is not None else config.workers,
            pool=pool,
            pipeline_depth=config.pipeline_depth,
            use_kernel=config.use_kernel,
            shared_memory=config.shared_memory,
        )
        self.estimator_build_seconds = time.perf_counter() - began
        self.estimator_builds += 1
        if self.estimator.kernel_active:
            self.kernel_warmups += 1
        return self.estimator, True

    def ensure_sketch(self) -> tuple:
        """The resident RR screening sketch, sampling it on first use.

        Returns ``(sketch, built)`` like :meth:`ensure_estimator`.  The
        sketch is dropped whenever a graph-event batch evolves the graph
        (its RR sets were sampled against the old topology), so the next
        tiered solve resamples it.  Callers hold :attr:`lock`.
        """
        if self.sketch is not None:
            return self.sketch, False
        began = time.perf_counter()
        graph = self.scenario.graph
        self.sketch = RRBenefitEstimator(
            graph,
            num_sets=max(2000, 25 * graph.num_nodes),
            seed=self.seed,
        )
        self.sketch_build_seconds = time.perf_counter() - began
        self.sketch_builds += 1
        return self.sketch, True

    def drop_sketch(self) -> None:
        """Invalidate the resident sketch (the graph changed under it)."""
        self.sketch = None

    def close(self) -> None:
        """Release the resident estimator (injected pools are left alone)."""
        with self.lock:
            if self.estimator is not None:
                self.estimator.close()
                self.estimator = None

    def info(self) -> dict:
        """JSON-ready description served by ``GET /scenarios/{id}``."""
        graph = self.scenario.graph
        estimator = self.estimator
        return {
            "scenario_id": self.scenario_id,
            "fingerprint": self.fingerprint,
            "label": self.label,
            "name": self.scenario.name,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "budget": self.scenario.budget_limit,
            "num_samples": self.num_samples,
            "seed": self.seed,
            "resident": {
                "estimator_built": estimator is not None,
                "sketch_built": self.sketch is not None,
                "graph_compiles": self.graph_compiles,
                "estimator_builds": self.estimator_builds,
                "kernel_warmups": self.kernel_warmups,
                "sketch_builds": self.sketch_builds,
                "kernel_backend": (
                    estimator.kernel_backend if estimator is not None else None
                ),
                "shared_memory_active": (
                    estimator.shared_memory_active if estimator is not None else False
                ),
                "solves_completed": self.solves_completed,
                "whatifs_answered": self.whatifs_answered,
                "events_applied": self.events_applied,
                "solves_in_flight": self.solves_in_flight,
                "has_solve": self.last_solve is not None,
            },
        }


class ScenarioRegistry:
    """Fingerprint-keyed registry of resident scenarios."""

    def __init__(self) -> None:
        self._by_id: Dict[str, ResidentScenario] = {}
        self._by_fingerprint: Dict[str, str] = {}
        self._lock = threading.Lock()

    def register(
        self, request: RegisterScenarioRequest, config: ServerConfig
    ) -> tuple:
        """Build (or dedupe onto) a resident scenario; returns ``(entry, reused)``."""
        num_samples = request.num_samples or config.num_samples
        seed = request.seed if request.seed is not None else config.seed
        fingerprint = self._fingerprint(request, num_samples=num_samples, seed=seed)
        with self._lock:
            existing_id = self._by_fingerprint.get(fingerprint)
            if existing_id is not None:
                return self._by_id[existing_id], True
        # Build outside the lock: SNAP ingestion can take a while and must
        # not block lookups.  A racing duplicate registration is resolved
        # below — first writer wins, the loser's build is discarded.
        scenario = self._build_scenario(request, config, seed=seed)
        entry = ResidentScenario(
            scenario_id=f"s-{fingerprint[:12]}",
            fingerprint=fingerprint,
            label=request.label or scenario.name,
            scenario=scenario,
            num_samples=num_samples,
            seed=seed,
        )
        with self._lock:
            existing_id = self._by_fingerprint.get(fingerprint)
            if existing_id is not None:
                return self._by_id[existing_id], True
            self._by_fingerprint[fingerprint] = entry.scenario_id
            self._by_id[entry.scenario_id] = entry
        return entry, False

    def get(self, scenario_id: str) -> ResidentScenario:
        with self._lock:
            entry = self._by_id.get(scenario_id)
        if entry is None:
            raise UnknownScenario(scenario_id)
        return entry

    def entries(self) -> List[ResidentScenario]:
        with self._lock:
            return sorted(self._by_id.values(), key=lambda entry: entry.created_at)

    def close(self) -> None:
        for entry in self.entries():
            entry.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_id)

    # ------------------------------------------------------------------

    @staticmethod
    def _build_scenario(
        request: RegisterScenarioRequest, config: ServerConfig, *, seed: int
    ) -> Scenario:
        try:
            if request.snap_path is not None:
                return snap_scenario(
                    request.snap_path,
                    budget=request.budget,
                    lam=request.lam,
                    kappa=request.kappa,
                    seed=seed,
                    cache_dir=config.graph_cache_dir,
                )
            return build_scenario(
                request.dataset,
                scale=request.scale,
                budget=request.budget,
                lam=request.lam,
                kappa=request.kappa,
                seed=seed,
            )
        except FileNotFoundError as error:
            raise InvalidRequest(f"snap_path not readable: {error}") from error
        except ReproError as error:
            raise InvalidRequest(str(error)) from error

    @staticmethod
    def _fingerprint(
        request: RegisterScenarioRequest, *, num_samples: int, seed: int
    ) -> str:
        """Content hash of everything that determines the resident state."""
        material = {
            "dataset": request.dataset,
            "scale": request.scale,
            "budget": request.budget,
            "lam": request.lam,
            "kappa": request.kappa,
            "seed": seed,
            "num_samples": num_samples,
        }
        if request.snap_path is not None:
            material["snap_sha256"] = _file_digest(request.snap_path)
        payload = json.dumps(material, sort_keys=True, default=str)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _file_digest(path: str) -> str:
    """sha256 of a file's bytes (same identity the CSR cache keys on)."""
    digest = hashlib.sha256()
    try:
        with open(path, "rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                digest.update(chunk)
    except OSError as error:
        raise InvalidRequest(f"snap_path not readable: {error}") from error
    return digest.hexdigest()
