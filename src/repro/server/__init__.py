"""The campaign server: S3CA as a long-running service.

Keeps compiled graphs, RNG-frozen world samplers, warmed kernels and one
shared shard pool resident across requests, so the second solve of a
registered scenario skips graph compile and kernel warm-up, and what-if
queries are answered by the delta engine's snapshot/splice path instead of
cold re-solves.

Needs the optional ``server`` extra (``pip install 's3crm-repro[server]'``)
for pydantic + an HTTP framework; everything here imports lazily so the base
install never pays for it.
"""

from __future__ import annotations

__all__ = [
    "CampaignService",
    "CampaignApi",
    "create_app",
    "serve",
    "available_framework",
]


def __getattr__(name: str):
    # Lazy so `import repro` works without the server extra installed.
    if name in ("CampaignService",):
        from repro.server.service import CampaignService

        return CampaignService
    if name in ("CampaignApi", "create_app", "serve", "available_framework"):
        from repro.server import app as _app

        return getattr(_app, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
